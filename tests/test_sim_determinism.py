"""Determinism regression net for the hot-path optimization work.

The sim substrate is allowed to get faster, never different: a seeded
experiment must emit byte-identical series before and after any kernel,
event, or link change.  The golden sha256 fingerprints below were
captured from the seed implementation and re-verified after the
event-driven link rewrite; if one of these fails, an optimization
changed event ordering or arithmetic, not just speed.

The second half guards the memory layout itself: the hot-path classes
promise ``__slots__`` all the way up their MRO, so a future edit that
quietly reintroduces per-instance ``__dict__`` (and its allocation cost)
fails here instead of only showing up as a benchmark regression.
"""

import hashlib

import pytest

from repro.experiments.demand import run_demand_trial
from repro.experiments.supply import run_supply_trial
from repro.net.link import LinkStats
from repro.net.packet import Packet
from repro.rpc.connection import RetryPolicy
from repro.rpc.logs import RoundTripEntry, ThroughputEntry
from repro.rpc.messages import (
    BulkPush,
    BulkSource,
    CallRequest,
    CallResponse,
    Fragment,
    ServerReply,
    WindowAck,
    WindowRequest,
)
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.queues import Semaphore, Store

GOLDEN_FIG8_STEP_UP_SEED0 = (
    "42409d4ba6fa78d7992e9a394772431e91bb5c0011fe7328005cdaaa4aafbfa7"
)
GOLDEN_FIG8_STEP_DOWN_SEED1 = (
    "ce688e8b37639f7aa36a87b5e10c0c3c5523c67dcb299bf0b7dd11ccdf3082a6"
)
GOLDEN_FIG9_TOTAL_SEED0 = (
    "43dd89b6cd363a4fe446291d47a6ea3b01764db9c5f5997c9468aff506f44dac"
)
GOLDEN_FIG9_SECOND_SEED0 = (
    "4c24d44dc97b796dc5c5d4b7b176063acaacd6abc9a58eeed1c372f9c7729ccc"
)


def fingerprint(series):
    """sha256 over the rounded (time, value) pairs of one series."""
    rounded = [(round(t, 9), round(v, 6)) for t, v in series]
    return hashlib.sha256(repr(rounded).encode()).hexdigest()


def test_fig8_supply_series_match_golden_fingerprints():
    assert fingerprint(run_supply_trial("step-up", seed=0).series) \
        == GOLDEN_FIG8_STEP_UP_SEED0
    assert fingerprint(run_supply_trial("step-down", seed=1).series) \
        == GOLDEN_FIG8_STEP_DOWN_SEED1


def test_fig9_demand_series_match_golden_fingerprints():
    trial = run_demand_trial(0.45, seed=0)
    assert fingerprint(trial.total_series) == GOLDEN_FIG9_TOTAL_SEED0
    assert fingerprint(trial.second_series) == GOLDEN_FIG9_SECOND_SEED0


def test_same_seed_same_fingerprint_within_one_process():
    first = run_supply_trial("step-up", seed=3)
    second = run_supply_trial("step-up", seed=3)
    assert fingerprint(first.series) == fingerprint(second.series)


def _noop():
    yield


def _hot_path_instances():
    """One live instance of every class promised to be slotted."""
    sim = Simulator()
    yield sim
    yield Event(sim, name="e")
    yield Timeout(sim, 1.0)
    yield AnyOf(sim, [sim.timeout(1.0)])
    yield AllOf(sim, [sim.timeout(1.0)])
    yield Process(sim, _noop())
    yield Store(sim, name="s")
    yield Semaphore(sim, capacity=2)
    yield sim.call_at(5.0, lambda: None)
    yield Packet(src="a", dst="b", port="p", size=100)
    yield LinkStats()
    yield RetryPolicy()
    yield CallRequest(connection_id="c", seq=1, op="op", body=None,
                      body_bytes=10, reply_port="p")
    yield CallResponse(connection_id="c", seq=1, body=None, body_bytes=10,
                       server_seconds=0.0)
    yield WindowRequest(connection_id="c", seq=1, transfer_id=1, offset=0,
                        window_bytes=1024, fragment_bytes=256, reply_port="p")
    yield Fragment(connection_id="c", seq=1, transfer_id=1, offset=0,
                   nbytes=256, last_in_window=False, last_in_transfer=False)
    yield BulkPush(connection_id="c", seq=1, transfer_id=1, offset=0,
                   nbytes=256, last_in_window=True, last_in_transfer=False,
                   reply_port="p")
    yield WindowAck(connection_id="c", seq=1, transfer_id=1, next_offset=256)
    yield ServerReply()
    yield BulkSource(transfer_id=1, nbytes=1024)
    yield RoundTripEntry(at=1.0, seconds=0.1, request_bytes=64,
                         response_bytes=64)
    yield ThroughputEntry(at=1.0, started=0.5, nbytes=1024, seconds=0.5)


@pytest.mark.parametrize(
    "obj", list(_hot_path_instances()),
    ids=lambda obj: type(obj).__name__,
)
def test_hot_path_classes_stay_slotted(obj):
    cls = type(obj)
    assert not hasattr(obj, "__dict__"), (
        f"{cls.__name__} instances grew a __dict__ — some class in its MRO "
        "dropped __slots__, reintroducing per-event allocation overhead"
    )
    for klass in cls.__mro__[:-1]:  # every ancestor except object
        assert "__slots__" in vars(klass), (
            f"{klass.__name__} (base of {cls.__name__}) lacks __slots__"
        )
