"""The Markov mobility-scenario generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.trace.scenarios import (
    SCENARIO_MODELS,
    MobilityModel,
    Zone,
    generate_scenario,
    urban_model,
)
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH


def test_zone_validation():
    with pytest.raises(ReproError):
        Zone("bad", -1, 10)
    with pytest.raises(ReproError):
        Zone("bad", 100, 0)


def test_model_validation_catches_bad_probabilities():
    model = MobilityModel()
    model.add_zone(Zone("a", 100, 10), {"a": 0.5})
    with pytest.raises(ReproError, match="sum"):
        model.validate()


def test_model_validation_catches_unknown_successor():
    model = MobilityModel()
    model.add_zone(Zone("a", 100, 10), {"ghost": 1.0})
    with pytest.raises(ReproError, match="unknown zone"):
        model.validate()


def test_empty_model_rejected():
    with pytest.raises(ReproError):
        MobilityModel().validate()


def test_generated_trace_has_requested_duration():
    trace = generate_scenario("urban", duration_seconds=600, seed=1)
    assert trace.duration == pytest.approx(600.0)


def test_generation_is_seeded():
    a = generate_scenario("highway", seed=5)
    b = generate_scenario("highway", seed=5)
    c = generate_scenario("highway", seed=6)
    assert a.segments == b.segments
    assert a.segments != c.segments


def test_all_families_generate():
    for family in SCENARIO_MODELS:
        trace = generate_scenario(family, duration_seconds=300, seed=0)
        assert trace.duration == pytest.approx(300.0)
        assert len(trace.segments) >= 2
        levels = {segment.bandwidth for segment in trace.segments}
        assert len(levels) >= 2  # coverage actually varies


def test_unknown_family():
    with pytest.raises(ReproError, match="urban"):
        generate_scenario("submarine")


def test_urban_statistics_resemble_the_walk():
    """Mostly connected, with real shadow time — Fig. 13's character."""
    trace = generate_scenario("urban", duration_seconds=3600, seed=3)
    high_time = sum(s.duration for s in trace.segments
                    if s.bandwidth == HIGH_BANDWIDTH)
    low_time = sum(s.duration for s in trace.segments
                   if s.bandwidth == LOW_BANDWIDTH)
    assert high_time + low_time == pytest.approx(3600.0)
    assert 0.35 <= high_time / 3600.0 <= 0.85


def test_dwell_floors_respected():
    trace = generate_scenario("urban", duration_seconds=3600, seed=0)
    # All but the (possibly truncated) final segment honor the 5 s floor.
    for segment in trace.segments[:-1]:
        assert segment.duration >= 5.0 - 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       duration=st.floats(min_value=60, max_value=1800))
def test_generation_robust_over_seeds(seed, duration):
    trace = generate_scenario("office", duration_seconds=duration, seed=seed)
    assert trace.duration == pytest.approx(duration)
    for segment in trace.segments:
        assert segment.duration > 0
        assert segment.bandwidth >= 0


def test_concurrent_experiment_runs_on_generated_scenario():
    """The robustness loop: Fig. 14's harness over a generated trace."""
    from repro.experiments.concurrent import run_concurrent_trial

    trace = generate_scenario("urban", duration_seconds=180, seed=2)
    result = run_concurrent_trial("odyssey", seed=1, trace=trace)
    assert result.video.stats.frames_displayed > 800
    assert result.web.stats.count > 100
    assert result.speech.stats.count > 50
