"""Bulk transfer over the live broker: windows, fragments, backpressure."""

import asyncio

import pytest

from repro.broker import BrokerClient
from repro.errors import BrokerError, RemoteCallError
from repro.live import BulkReceiver, LiveBroker, Throttle
from repro.rpc.messages import WindowRequest


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


async def start_live_broker(**kwargs):
    broker = LiveBroker(port=0, **kwargs)
    await broker.start()
    return broker


async def connect_receiver(broker, name):
    host, port = broker.address
    client = await BrokerClient(host, port, name).connect()
    return client, BulkReceiver(client)


def test_open_then_fetch_delivers_every_window():
    async def scenario():
        broker = await start_live_broker()
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            transfer_id = await receiver.open("blob", 100_000)
            result = await receiver.fetch(transfer_id, 20_000,
                                          window_bytes=8_192,
                                          fragment_bytes=1_024)
            return result, broker.describe_bulk()
        finally:
            await client.close()
            await broker.close()

    result, bulk = run(scenario())
    assert result.nbytes == 20_000
    assert result.windows == 3  # 8 KB + 8 KB + 4 KB remainder
    assert result.fragments == 20  # ceil per window: 8 + 8 + 4
    assert bulk["transfers_opened"] == 1
    assert bulk["windows_streamed"] == 3
    assert bulk["fragments_streamed"] == 20
    assert bulk["bytes_streamed"] == 20_000


def test_fetch_stops_at_the_end_of_the_content():
    async def scenario():
        broker = await start_live_broker()
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            transfer_id = await receiver.open("short", 5_000)
            # Ask for more than exists: the stream ends at the content.
            result = await receiver.fetch(transfer_id, 50_000,
                                          window_bytes=8_192,
                                          fragment_bytes=2_048)
            return result
        finally:
            await client.close()
            await broker.close()

    result = run(scenario())
    assert result.nbytes == 5_000
    assert result.windows == 1


def test_reports_feed_the_estimator_during_a_fetch():
    async def scenario():
        broker = await start_live_broker(
            throttle=Throttle(bandwidth=200_000))
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            transfer_id = await receiver.open("blob", 1 << 20)
            result = await receiver.fetch(transfer_id, 32_768,
                                          window_bytes=8_192,
                                          fragment_bytes=2_048)
            level = broker.viceroy.availability("alpha")
            return result, level
        finally:
            await client.close()
            await broker.close()

    result, level = run(scenario())
    # One throughput sample per window, so the estimate is primed and
    # lands within sight of the throttle's rate (scheduling noise aside).
    assert len(result.levels) == result.windows
    assert result.levels[-1] is not None
    assert level == pytest.approx(200_000, rel=0.6)


def test_throttle_paces_the_stream():
    async def scenario():
        broker = await start_live_broker(
            throttle=Throttle(bandwidth=50_000))
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            transfer_id = await receiver.open("blob", 1 << 20)
            started = asyncio.get_running_loop().time()
            await receiver.fetch(transfer_id, 25_000, report=False)
            return asyncio.get_running_loop().time() - started
        finally:
            await client.close()
            await broker.close()

    elapsed = run(scenario())
    # 25 kB through a 50 kB/s serial link takes ~0.5 s of link time.
    assert elapsed >= 0.35


def test_unshaped_fetch_is_fast():
    async def scenario():
        broker = await start_live_broker()  # throttle=None
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            transfer_id = await receiver.open("blob", 1 << 20)
            started = asyncio.get_running_loop().time()
            await receiver.fetch(transfer_id, 256_000, report=False)
            return asyncio.get_running_loop().time() - started
        finally:
            await client.close()
            await broker.close()

    assert run(scenario()) < 5.0


def test_concurrent_fetches_of_one_transfer_are_rejected():
    async def scenario():
        broker = await start_live_broker(
            throttle=Throttle(bandwidth=20_000))
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            transfer_id = await receiver.open("blob", 1 << 20)
            slow = asyncio.ensure_future(
                receiver.fetch(transfer_id, 10_000, report=False))
            await asyncio.sleep(0.05)
            with pytest.raises(BrokerError, match="already being fetched"):
                await receiver.fetch(transfer_id, 1_000)
            await slow
        finally:
            await client.close()
            await broker.close()

    run(scenario())


def test_window_against_unknown_transfer_tears_the_session_down():
    async def scenario():
        broker = await start_live_broker()
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            client.channel.send(WindowRequest(
                connection_id="alpha", seq=1, transfer_id=999,
                offset=0, window_bytes=1024, fragment_bytes=256,
                reply_port=""))
            for _ in range(100):
                if client.channel.closed:
                    break
                await asyncio.sleep(0.01)
            return client.channel.closed, broker.describe()["clients"]
        finally:
            await client.close(polite=False)
            await broker.close()

    closed, remaining = run(scenario())
    assert closed is True
    assert remaining == 0


def test_offset_past_the_end_yields_an_empty_terminal_window():
    async def scenario():
        broker = await start_live_broker()
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            transfer_id = await receiver.open("blob", 1_000)
            fragments = []
            queue = asyncio.Queue()
            receiver._queues[transfer_id] = queue
            client.channel.send(WindowRequest(
                connection_id="alpha", seq=1, transfer_id=transfer_id,
                offset=5_000, window_bytes=1024, fragment_bytes=256,
                reply_port=""))
            fragments.append(await asyncio.wait_for(queue.get(), 5.0))
            return fragments
        finally:
            await client.close()
            await broker.close()

    (fragment,) = run(scenario())
    assert fragment.nbytes == 0
    assert fragment.last_in_window is True
    assert fragment.last_in_transfer is True


def test_open_validates_its_body():
    async def scenario():
        broker = await start_live_broker()
        client, receiver = await connect_receiver(broker, "alpha")
        try:
            with pytest.raises(RemoteCallError, match="nbytes"):
                await receiver.open("blob", "not-a-size")
        finally:
            await client.close()
            await broker.close()

    run(scenario())


def test_disconnect_mid_stream_aborts_the_transfer_cleanly():
    async def scenario():
        broker = await start_live_broker(
            throttle=Throttle(bandwidth=10_000))
        client, receiver = await connect_receiver(broker, "beta")
        try:
            transfer_id = await receiver.open("blob", 1 << 20)
            fetch = asyncio.ensure_future(
                receiver.fetch(transfer_id, 100_000, report=False))
            await asyncio.sleep(0.15)  # a few fragments in flight
            await client.close(polite=False)
            fetch.cancel()
            try:
                await fetch
            except (asyncio.CancelledError, Exception):
                pass
            for _ in range(100):
                if not broker._stream_tasks:
                    break
                await asyncio.sleep(0.01)
            return broker.describe_bulk(), broker.describe()["clients"]
        finally:
            await broker.close()

    bulk, remaining = run(scenario())
    assert remaining == 0
    assert bulk["streams_aborted"] >= 1
