"""The sim transport adapter: channel semantics over the simulated net."""

import pytest

from repro.errors import ReproError, TransportError
from repro.net.network import Network
from repro.net.packet import HEADER_BYTES
from repro.rpc.messages import CallRequest, Fragment, WindowAck
from repro.sim.kernel import Simulator
from repro.transport import SimTransport, sim_packet_size
from repro.trace.replay import ReplayTrace, Segment
from repro.trace.waveforms import HIGH_BANDWIDTH


def build_world():
    sim = Simulator()
    trace = ReplayTrace([Segment(10_000, HIGH_BANDWIDTH, 0.0105)])
    network = Network(sim, trace)
    server = network.add_host("server")
    return sim, network, server, network.client


def request(seq, body=None):
    return CallRequest(connection_id="c", seq=seq, op="echo", body=body,
                       body_bytes=64, reply_port="")


def test_connect_accept_and_exchange():
    sim, network, server, client = build_world()
    transport = SimTransport(sim, network)
    server_got, client_got = [], []

    def on_channel(channel):
        channel.on_message = lambda m: (server_got.append(m),
                                        channel.send(WindowAck(
                                            "c", m.seq, 0, 0)))

    listener = transport.listen(server, "svc", on_channel)

    def client_process():
        channel = yield from transport.connect(
            client, "server", "svc", client_got.append)
        channel.send(request(1, body={"x": (1, 2)}))
        yield sim.timeout(1.0)
        channel.close()

    sim.process(client_process())
    sim.run()
    assert [m.seq for m in server_got] == [1]
    assert server_got[0].body == {"x": (1, 2)}
    assert [m.seq for m in client_got] == [1]
    assert listener.accepted == 1


def test_messages_arrive_in_order_and_channels_are_private():
    """Two clients get distinct per-channel ports; streams never mix."""
    sim, network, server, client = build_world()
    other = network.add_host("other")
    transport = SimTransport(sim, network)
    by_channel = {}

    def on_channel(channel):
        log = by_channel.setdefault(channel.local_port, [])
        channel.on_message = log.append

    transport.listen(server, "svc", on_channel)

    def talker(host, start):
        channel = yield from transport.connect(
            host, "server", "svc", lambda m: None)
        for seq in range(start, start + 5):
            channel.send(request(seq))
            yield sim.timeout(0.01)

    sim.process(talker(client, 0))
    sim.process(talker(other, 100))
    sim.run()
    assert len(by_channel) == 2
    streams = sorted([m.seq for m in log] for log in by_channel.values())
    assert streams == [[0, 1, 2, 3, 4], [100, 101, 102, 103, 104]]


def test_close_notifies_the_peer():
    sim, network, server, client = build_world()
    transport = SimTransport(sim, network)
    closes = []

    def on_channel(channel):
        channel.on_message = lambda m: None
        channel.on_close = closes.append

    transport.listen(server, "svc", on_channel)

    def client_process():
        channel = yield from transport.connect(
            client, "server", "svc", lambda m: None)
        yield sim.timeout(0.5)
        channel.close()
        # Idempotent: a second close must not resend or re-fire.
        channel.close()

    sim.process(client_process())
    sim.run()
    assert closes == [None]


def test_send_after_close_raises():
    sim, network, server, client = build_world()
    transport = SimTransport(sim, network)

    def on_channel(channel):
        channel.on_message = lambda m: None

    transport.listen(server, "svc", on_channel)
    failures = []

    def client_process():
        channel = yield from transport.connect(
            client, "server", "svc", lambda m: None)
        channel.close()
        try:
            channel.send(request(1))
        except TransportError as exc:
            failures.append(exc)

    sim.process(client_process())
    sim.run()
    assert len(failures) == 1


def test_listener_requires_a_message_handler():
    sim, network, server, client = build_world()
    transport = SimTransport(sim, network)
    transport.listen(server, "svc", lambda channel: None)  # forgets handler

    def client_process():
        yield from transport.connect(client, "server", "svc",
                                     lambda m: None)

    sim.process(client_process())
    with pytest.raises(TransportError, match="on_message"):
        sim.run()


def test_sim_packet_sizes_match_the_rpc_stack():
    assert sim_packet_size(request(1)) == HEADER_BYTES + 64
    assert sim_packet_size(
        Fragment("c", 1, 2, 0, 1400, False, False)) == HEADER_BYTES + 1400
    assert sim_packet_size(WindowAck("c", 1, 2, 0)) == HEADER_BYTES


def test_closed_listener_stops_accepting():
    sim, network, server, client = build_world()
    transport = SimTransport(sim, network)

    def on_channel(channel):
        channel.on_message = lambda m: None

    listener = transport.listen(server, "svc", on_channel)
    listener.close()
    listener.close()  # idempotent

    def client_process():
        yield from transport.connect(client, "server", "svc",
                                     lambda m: None)

    sim.process(client_process())
    # The open request lands on an unbound port: the net drops or faults
    # it; either way no accept ever arrives and no channel is created.
    try:
        sim.run(until=5.0)
    except ReproError:
        pass
    assert listener.accepted == 0
