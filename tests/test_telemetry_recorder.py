"""Recorders and the module-level enable/disable switch."""

import pytest

from repro import telemetry
from repro.telemetry.recorder import NULL_RECORDER, NullRecorder, TelemetryRecorder


@pytest.fixture(autouse=True)
def restore_recorder():
    yield
    telemetry.disable()


def test_null_recorder_is_inert():
    rec = NullRecorder()
    assert rec.enabled is False
    rec.count("x")
    rec.gauge("x", 1.0)
    rec.observe("x", 1.0)
    rec.event("x")
    rec.sample("x", 0.0, 1.0)
    rec.sample_series("x", [(0.0, 1.0)])
    rec.bind_clock(lambda: 5.0)
    assert rec.begin("x") is None
    rec.end(None)
    with rec.span("x") as span:
        assert span is None


def test_live_recorder_routes_to_registry_and_trace():
    rec = TelemetryRecorder(clock=lambda: 3.0)
    assert rec.enabled is True
    rec.count("calls", connection="c")
    rec.count("calls", 2.0, connection="c")
    rec.gauge("depth", 7.0)
    rec.observe("latency", 0.25, buckets=(0.1, 1.0))
    rec.event("tick", detail="d")
    assert rec.registry.counter("calls", connection="c").value == 3.0
    assert rec.registry.gauge("depth").value == 7.0
    assert rec.registry.histogram("latency").count == 1
    (event,) = rec.trace.events(kind="point")
    assert event["t"] == 3.0 and event["name"] == "tick"


def test_live_recorder_spans_and_series():
    clock = {"now": 0.0}
    rec = TelemetryRecorder(clock=lambda: clock["now"])
    span = rec.begin("work")
    clock["now"] = 1.0
    rec.end(span, status="ok")
    with rec.span("inner", parent=span):
        clock["now"] = 1.5
    ends = rec.trace.events(kind="end")
    assert [e["duration"] for e in ends] == [1.0, 0.5]
    rec.sample_series("bw", [(0.1, 5.0), (0.2, 6.0)], waveform="step-up")
    assert rec.trace.series("bw") == [(0.1, 5.0), (0.2, 6.0)]


def test_bind_clock_retargets_time_source():
    rec = TelemetryRecorder()
    assert rec.now() == 0.0
    rec.bind_clock(lambda: 42.0)
    rec.event("later")
    assert rec.trace.events()[0]["t"] == 42.0


def test_enable_disable_swap_module_recorder():
    assert telemetry.RECORDER is NULL_RECORDER
    rec = telemetry.enable(clock=lambda: 1.0)
    assert telemetry.RECORDER is rec and rec.enabled
    previous = telemetry.disable()
    assert previous is rec
    assert telemetry.RECORDER is NULL_RECORDER


def test_enable_accepts_sim_clock(sim):
    rec = telemetry.enable(sim=sim)
    sim.call_at(1.25, lambda: None)
    sim.run()
    assert rec.now() == 1.25


def test_enabled_context_restores_null_recorder():
    with telemetry.enabled() as rec:
        assert telemetry.RECORDER is rec
        rec.count("inside")
    assert telemetry.RECORDER is NULL_RECORDER
    assert rec.registry.counter("inside").value == 1.0


def test_enabled_context_leaves_foreign_recorder_alone():
    with telemetry.enabled():
        replacement = telemetry.enable()
    # Someone swapped recorders inside the block; the context manager
    # must not clobber the newer one on exit.
    assert telemetry.RECORDER is replacement


def test_instrumented_code_sees_recorder_through_module():
    def hot_path():
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("hits")

    hot_path()  # disabled: no-op
    with telemetry.enabled() as rec:
        hot_path()
    assert rec.registry.counter("hits").value == 1.0
