"""The emergency-response prefetcher (paper §2.3)."""

import pytest

from repro.apps.prefetch import (
    FieldWorker,
    TILE_FIDELITIES,
    build_maps,
    tile_bytes,
    walk_path,
)
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.errors import OdysseyError, ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant, step_down


def test_tile_sizes_deterministic_and_scaled():
    assert tile_bytes(3, 4, 1.0) == tile_bytes(3, 4, 1.0)
    assert tile_bytes(3, 4, 1.0) > tile_bytes(3, 4, 0.5) > tile_bytes(3, 4, 0.1)
    with pytest.raises(ReproError):
        tile_bytes(0, 0, 0.7)


def test_walk_path_shape():
    route = walk_path(20)
    assert len(route) == 20
    assert len(set(route)) == 20  # no revisits in a sweep
    assert route[0] == (0, 0)


def build_world(bandwidth_trace, prefetch=True, dwell=1.0, policy="adaptive",
                steps=24):
    sim = Simulator()
    network = Network(sim, bandwidth_trace)
    viceroy = Viceroy(sim, network)
    warden, server = build_maps(sim, viceroy, network, prefetch=prefetch)
    api = OdysseyAPI(viceroy, "field-worker")
    worker = FieldWorker(sim, api, "field-worker", "/odyssey/maps",
                         walk_path(steps), dwell_seconds=dwell, policy=policy)
    return sim, warden, worker


def test_prefetching_turns_views_into_cache_hits():
    sim, warden, worker = build_world(constant(HIGH_BANDWIDTH, duration=600))
    worker.start()
    sim.run(until=60.0)
    assert worker.stats.count == 24
    # The first view is cold; nearly everything after is prefetched.
    assert worker.stats.hit_rate > 0.8
    assert worker.stats.mean_view_seconds < 0.1


def test_no_prefetch_baseline_pays_full_latency():
    sim, warden, worker = build_world(
        constant(HIGH_BANDWIDTH, duration=600), prefetch=False
    )
    worker.start()
    sim.run(until=60.0)
    assert worker.stats.hit_rate == 0.0
    assert worker.stats.mean_view_seconds > 0.2  # full fetch per view


def test_adaptive_worker_degrades_resolution_at_low_bandwidth():
    sim, warden, worker = build_world(
        constant(LOW_BANDWIDTH, duration=600), dwell=1.0
    )
    worker.start()
    sim.run(until=60.0)
    # Full tiles need ~60 KB/s at 1 s dwell; at 40 KB/s the worker settles
    # on a lower resolution and keeps its views fast.
    assert worker.stats.mean_fidelity < 1.0
    late_views = worker.stats.views[4:]
    hits = sum(1 for _, _, hit, _ in late_views if hit)
    assert hits / len(late_views) > 0.6


def test_static_full_resolution_stalls_at_low_bandwidth():
    sim, warden, worker = build_world(
        constant(LOW_BANDWIDTH, duration=600), dwell=1.0, policy=1.0
    )
    worker.start()
    sim.run(until=60.0)
    adaptive_world = build_world(constant(LOW_BANDWIDTH, duration=600),
                                 dwell=1.0)
    _, _, adaptive = adaptive_world
    adaptive_world[0].run(until=60.0) if False else None
    # Static full resolution falls behind the walker: slower views.
    assert worker.stats.mean_view_seconds > 0.15


def test_worker_adapts_across_step_down():
    sim, warden, worker = build_world(step_down(duration=120), dwell=1.0,
                                      steps=100)
    worker.start()
    sim.run(until=110.0)
    early = [f for t, _, _, f in worker.stats.views if t < 55]
    late = [f for t, _, _, f in worker.stats.views if t > 70]
    assert early and late
    assert max(early) == 1.0  # full resolution while bandwidth lasts
    assert max(late) < 1.0  # degraded after the step


def test_fidelity_validation(sim, viceroy, network, run_process):
    warden, _ = build_maps(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "w")

    def flow():
        try:
            yield from api.tsop("/odyssey/maps", "set-fidelity",
                                {"fidelity": 0.33})
        except OdysseyError:
            return "rejected"

    assert run_process(flow()) == "rejected"


def test_cache_stats_tsop(sim, viceroy, network, run_process):
    warden, _ = build_maps(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "w")

    def flow():
        yield from api.tsop("/odyssey/maps", "get-tile", {"x": 0, "y": 0})
        stats = yield from api.tsop("/odyssey/maps", "cache-stats", {})
        return stats

    stats = run_process(flow())
    assert stats["fetched"] == 1
    assert stats["used_bytes"] > 0
