"""Small-exchange RPC: round trips, compute subtraction, errors."""

import pytest

from repro.errors import RpcError
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.trace.waveforms import ONE_WAY_LATENCY


@pytest.fixture
def service(sim, network):
    server = network.add_host("server")
    return RpcService(sim, server, "svc")


@pytest.fixture
def connection(sim, network, service):
    return RpcConnection(sim, network, "server", "svc", "test-conn")


def test_call_returns_body(sim, connection, service, run_process):
    service.register("echo", lambda body: ServerReply(body=body, body_bytes=64))

    def client():
        reply = yield from connection.call("echo", body="hello")
        return reply

    body, bulk = run_process(client())
    assert body == "hello"
    assert bulk is None


def test_round_trip_excludes_server_compute(sim, connection, service, run_process):
    service.register("slow", lambda body: ServerReply(compute_seconds=0.5))

    def client():
        yield from connection.call("slow")

    run_process(client())
    entry = connection.log.round_trips[0]
    # Elapsed includes the 0.5 s compute; the logged round trip must not.
    assert entry.seconds < 0.1
    assert entry.seconds >= 2 * ONE_WAY_LATENCY


def test_call_counts_and_sizes_logged(sim, connection, service, run_process):
    service.register("op", lambda body: ServerReply(body_bytes=128))

    def client():
        for _ in range(3):
            yield from connection.call("op", body_bytes=512)

    run_process(client())
    assert len(connection.log.round_trips) == 3
    entry = connection.log.round_trips[0]
    assert entry.request_bytes > 512  # includes header
    assert entry.response_bytes > 128


def test_unknown_op_raises(sim, connection, service):
    def client():
        yield from connection.call("missing")

    sim.process(client())
    with pytest.raises(RpcError, match="no handler"):
        sim.run()


def test_duplicate_registration_rejected(service):
    service.register("op", lambda body: ServerReply())
    with pytest.raises(RpcError):
        service.register("op", lambda body: ServerReply())


def test_handler_exception_travels_to_caller(sim, connection, service, run_process):
    def broken(body):
        raise KeyError("not found")

    service.register("broken", broken)

    def client():
        try:
            yield from connection.call("broken")
        except KeyError:
            return "caught"

    assert run_process(client()) == "caught"


def test_generator_handler_can_wait(sim, connection, service, run_process):
    def waiting(body):
        yield sim.timeout(0.3)
        return ServerReply(body="waited")

    service.register("waiting", waiting)

    def client():
        body, _ = yield from connection.call("waiting")
        return (body, sim.now)

    body, finished = run_process(client())
    assert body == "waited"
    assert finished > 0.3


def test_handler_must_return_server_reply(sim, connection, service):
    service.register("bad", lambda body: "not a reply")

    def client():
        yield from connection.call("bad")

    sim.process(client())
    with pytest.raises(RpcError, match="expected ServerReply"):
        sim.run()


def test_closed_connection_rejects_calls(sim, connection, service):
    connection.close()
    with pytest.raises(RpcError, match="closed"):
        next(connection.call("op"))
    connection.close()  # idempotent


def test_cpu_semaphore_serializes_compute(sim, network, run_process):
    server = network.add_host("busy-server")
    service = RpcService(sim, server, "busy", cpus=1)
    service.register("work", lambda body: ServerReply(compute_seconds=1.0))
    conn_a = RpcConnection(sim, network, "busy-server", "busy", "a")
    conn_b = RpcConnection(sim, network, "busy-server", "busy", "b")
    done = []

    def client(conn):
        yield from conn.call("work")
        done.append(sim.now)

    sim.process(client(conn_a))
    sim.process(client(conn_b))
    sim.run()
    # Second completion waits for the first's compute: >= 2 s apart start.
    assert done[1] - done[0] >= 0.99


def test_jitter_perturbs_compute(sim, network, run_process):
    import random

    server = network.add_host("jitter-server")
    service = RpcService(sim, server, "jit")
    service.register("work", lambda body: ServerReply(compute_seconds=1.0))
    service.set_jitter(random.Random(1), 0.2)
    conn = RpcConnection(sim, network, "jitter-server", "jit", "jc")

    def client():
        durations = []
        for _ in range(5):
            started = sim.now
            yield from connectionless_call(conn)
            durations.append(sim.now - started)
        return durations

    def connectionless_call(conn):
        yield from conn.call("work")

    durations = run_process(client())
    assert len(set(round(d, 6) for d in durations)) > 1  # actually varied
    for duration in durations:
        assert 0.75 <= duration <= 1.25


def test_jitter_fraction_validated(sim, network):
    import random

    server = network.add_host("s2")
    service = RpcService(sim, server, "v")
    with pytest.raises(RpcError):
        service.set_jitter(random.Random(0), 1.5)
