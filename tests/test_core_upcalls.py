"""Upcalls: exactly-once, in-order, block/ignore/fork semantics (§4.3)."""

import pytest

from repro import telemetry
from repro.core.resources import Resource
from repro.core.upcalls import Upcall, UpcallDispatcher
from repro.errors import OdysseyError


@pytest.fixture
def dispatcher(sim):
    return UpcallDispatcher(sim)


def upcall(n):
    return Upcall(n, Resource.NETWORK_BANDWIDTH, float(n))


def test_delivery_invokes_handler(sim, dispatcher):
    got = []
    dispatcher.register("app", "h", got.append)
    dispatcher.send("app", "h", upcall(1))
    sim.run()
    assert [u.request_id for u in got] == [1]


def test_exactly_once(sim, dispatcher):
    got = []
    dispatcher.register("app", "h", got.append)
    for i in range(10):
        dispatcher.send("app", "h", upcall(i))
    sim.run()
    assert [u.request_id for u in got] == list(range(10))


def test_in_order_per_receiver(sim, dispatcher):
    got = []
    dispatcher.register("app", "h", lambda u: got.append(u.request_id))
    # Send from different sim times; order of sends must be preserved.
    sim.call_in(0.1, dispatcher.send, "app", "h", upcall(1))
    sim.call_in(0.1, dispatcher.send, "app", "h", upcall(2))
    sim.call_in(0.2, dispatcher.send, "app", "h", upcall(3))
    sim.run()
    assert got == [1, 2, 3]


def test_delivery_is_asynchronous(sim, dispatcher):
    """Handlers run after the dispatch latency, not inline with send."""
    got = []
    dispatcher.register("app", "h", lambda u: got.append(sim.now))
    dispatcher.send("app", "h", upcall(1))
    assert got == []  # not yet delivered
    sim.run()
    assert got and got[0] > 0


def test_batched_delivery_preserves_fifo_in_one_event(sim):
    """batch=True drains the whole pending queue at one simulated instant,
    in FIFO order — one event per burst instead of one per upcall."""
    dispatcher = UpcallDispatcher(sim, batch=True)
    got = []
    dispatcher.register("app", "h",
                        lambda u: got.append((sim.now, u.request_id)))
    for i in range(5):
        dispatcher.send("app", "h", upcall(i))
    sim.run()
    assert [request_id for _, request_id in got] == list(range(5))
    times = {at for at, _ in got}
    assert times == {dispatcher.latency}  # the burst lands together


def test_batched_delivery_defers_handler_sent_upcalls(sim):
    """Upcalls a handler sends mid-batch go to the *next* batch, with a
    fresh dispatch latency — the snapshot count bounds each drain."""
    dispatcher = UpcallDispatcher(sim, batch=True)
    got = []

    def handler(u):
        got.append((sim.now, u.request_id))
        if u.request_id == 1:
            dispatcher.send("app", "h", upcall(99))

    dispatcher.register("app", "h", handler)
    dispatcher.send("app", "h", upcall(1))
    dispatcher.send("app", "h", upcall(2))
    sim.run()
    assert [request_id for _, request_id in got] == [1, 2, 99]
    assert got[2][0] == pytest.approx(got[0][0] + dispatcher.latency)


def test_batched_delivery_respects_block(sim):
    dispatcher = UpcallDispatcher(sim, batch=True)
    got = []
    dispatcher.register("app", "h", lambda u: got.append(u.request_id))
    dispatcher.block("app")
    dispatcher.send("app", "h", upcall(1))
    dispatcher.send("app", "h", upcall(2))
    sim.run()
    assert got == []
    dispatcher.unblock("app")
    sim.run()
    assert got == [1, 2]


def test_unknown_receiver_rejected(dispatcher):
    with pytest.raises(OdysseyError):
        dispatcher.send("ghost", "h", upcall(1))


def test_unknown_handler_raises_at_delivery(sim, dispatcher):
    dispatcher.register("app", "other", lambda u: None)
    dispatcher.send("app", "missing", upcall(1))
    with pytest.raises(OdysseyError, match="missing"):
        sim.run()


def test_blocked_receiver_queues_until_unblock(sim, dispatcher):
    got = []
    dispatcher.register("app", "h", lambda u: got.append((sim.now, u.request_id)))
    dispatcher.block("app")
    dispatcher.send("app", "h", upcall(1))
    dispatcher.send("app", "h", upcall(2))
    sim.run()
    assert got == []  # queued, not delivered
    dispatcher.unblock("app")
    sim.run()
    assert [request for _, request in got] == [1, 2]


def test_ignored_handler_discards(sim, dispatcher):
    got = []
    dispatcher.register("app", "h", got.append)
    dispatcher.ignore("app", "h")
    dispatcher.send("app", "h", upcall(1))
    sim.run()
    assert got == []
    # Re-registering clears the ignore (like resetting a signal disposition).
    dispatcher.register("app", "h", got.append)
    dispatcher.send("app", "h", upcall(2))
    sim.run()
    assert [u.request_id for u in got] == [2]


def test_broadcast_reaches_all(sim, dispatcher):
    got = {"a": [], "b": []}
    dispatcher.register("a", "h", got["a"].append)
    dispatcher.register("b", "h", got["b"].append)
    dispatcher.broadcast(["a", "b"], "h", upcall(9))
    sim.run()
    assert len(got["a"]) == len(got["b"]) == 1


def test_fork_inherits_dispositions_not_pending(sim, dispatcher):
    got = {"parent": [], "child": []}
    dispatcher.register("parent", "h", got["parent"].append)
    dispatcher.ignore("parent", "noisy")
    dispatcher.block("parent")
    dispatcher.send("parent", "h", upcall(1))  # queued (blocked)
    dispatcher.fork("parent", "child")
    receiver = dispatcher._receiver("child")
    assert "noisy" in receiver.ignored
    assert receiver.blocked
    assert len(receiver.queue) == 0  # pending deliveries not inherited
    dispatcher.unblock("parent")
    dispatcher.unblock("child")
    sim.run()
    assert len(got["parent"]) == 1
    assert got["child"] == []


def test_delivery_records_kept(sim, dispatcher):
    dispatcher.register("app", "h", lambda u: None)
    dispatcher.send("app", "h", upcall(5))
    sim.run()
    records = dispatcher.delivered_to("app")
    assert len(records) == 1
    _, handler, delivered = records[0]
    assert handler == "h"
    assert delivered.request_id == 5


def test_handler_sending_more_upcalls_keeps_order(sim, dispatcher):
    got = []

    def chain(u):
        got.append(u.request_id)
        if u.request_id < 3:
            dispatcher.send("app", "h", upcall(u.request_id + 1))

    dispatcher.register("app", "h", chain)
    dispatcher.send("app", "h", upcall(1))
    sim.run()
    assert got == [1, 2, 3]


def test_handler_results_are_returned_to_the_dispatcher(sim, dispatcher):
    """§4.3: 'results to be returned' — the sender can see handler output."""
    dispatcher.register("app", "h", lambda u: f"ack-{u.request_id}")
    dispatcher.send("app", "h", upcall(1))
    dispatcher.send("app", "h", upcall(2))
    sim.run()
    assert dispatcher.results == [
        ("app", "h", "ack-1"),
        ("app", "h", "ack-2"),
    ]


def test_failing_handler_does_not_stall_queue(sim, dispatcher):
    """A raising handler must not lose the rest of the receiver's queue."""
    got = []

    def boom(u):
        raise RuntimeError("handler bug")

    dispatcher.register("app", "bad", boom)
    dispatcher.register("app", "good", got.append)
    dispatcher.send("app", "bad", upcall(1))
    dispatcher.send("app", "good", upcall(2))
    dispatcher.send("app", "good", upcall(3))
    sim.run()
    assert [u.request_id for u in got] == [2, 3]


def test_failing_handler_is_recorded(sim, dispatcher):
    def boom(u):
        raise RuntimeError("handler bug")

    dispatcher.register("app", "bad", boom)
    dispatcher.send("app", "bad", upcall(7))
    sim.run()
    assert len(dispatcher.failures) == 1
    app, handler, failed_upcall, exc = dispatcher.failures[0]
    assert (app, handler, failed_upcall.request_id) == ("app", "bad", 7)
    assert isinstance(exc, RuntimeError)
    failures = dispatcher.failures_for("app")
    assert len(failures) == 1
    assert failures[0][1] == "bad"
    # The failed upcall still counts as delivered: exactly-once held.
    assert [u.request_id for (_, _, u) in dispatcher.delivered_to("app")] == [7]


def test_blocked_delivery_latency_accounted_in_trace(sim, dispatcher):
    """Delivery latency spans the blocked wait: upcalls queued while the
    receiver is blocked trace exactly once, in order, with latencies
    measured from enqueue — not from unblock."""
    got = []
    with telemetry.enabled(sim=sim) as rec:
        dispatcher.register("app", "h", lambda u: got.append(u.request_id))
        dispatcher.block("app")
        for i in range(3):
            dispatcher.send("app", "h", upcall(i))
        sim.call_in(1.0, dispatcher.unblock, "app")
        sim.run()
    assert got == [0, 1, 2]  # exactly once, in order
    delivered = rec.trace.events(name="upcall.delivered")
    assert [e["fields"]["request_id"] for e in delivered] == [0, 1, 2]
    times = [e["t"] for e in delivered]
    assert times == sorted(times)
    # All three were enqueued at t=0 and held until the unblock at t=1.
    assert all(e["fields"]["latency"] >= 1.0 for e in delivered)
    assert rec.registry.histogram("upcalls.delivery_seconds", app="app").count == 3


def test_has_receiver(dispatcher):
    assert not dispatcher.has_receiver("app")
    dispatcher.register("app", "h", lambda u: None)
    assert dispatcher.has_receiver("app")
