"""Centralized total estimation and per-connection shares."""

import pytest

from repro.errors import ReproError
from repro.estimation.share import ClientShares
from repro.rpc.logs import RpcLog


def make_shares(sim, *connection_ids):
    shares = ClientShares(sim)
    logs = {}
    for cid in connection_ids:
        log = RpcLog(sim, cid)
        shares.register(log)
        logs[cid] = log
    return shares, logs


def feed_window(sim, shares, log, nbytes, seconds):
    """Simulate a completed window: deliveries plus a throughput entry.

    In the full system the viceroy observes the log and forwards entries to
    the policy; these unit tests forward by hand.
    """
    started = sim.now
    sim.run(until=sim.now + seconds)
    log.add_delivery(nbytes)
    entry = log.add_throughput(started, nbytes)
    shares.on_throughput(log, entry)
    return entry


def test_duplicate_registration_rejected(sim):
    shares, logs = make_shares(sim, "a")
    with pytest.raises(ReproError):
        shares.register(logs["a"])


def test_total_none_before_data(sim):
    shares, _ = make_shares(sim, "a")
    assert shares.total is None
    assert shares.availability("a") is None


def test_single_connection_availability_equals_total(sim):
    shares, logs = make_shares(sim, "a")
    feed_window(sim, shares, logs["a"], 32768, 0.3)
    assert shares.total is not None
    assert shares.availability("a") == pytest.approx(shares.total)


def test_unknown_connection_rejected(sim):
    shares, _ = make_shares(sim, "a")
    with pytest.raises(ReproError):
        shares.availability("ghost")


def test_equal_users_get_equal_shares(sim):
    shares, logs = make_shares(sim, "a", "b")
    for _ in range(5):
        feed_window(sim, shares, logs["a"], 32768, 0.3)
        feed_window(sim, shares, logs["b"], 32768, 0.3)
    a, b = shares.availability("a"), shares.availability("b")
    assert a == pytest.approx(b, rel=0.05)
    assert a == pytest.approx(shares.total / 2, rel=0.1)


def test_heavier_user_gets_bigger_competed_share(sim):
    shares, logs = make_shares(sim, "big", "small")
    for _ in range(5):
        feed_window(sim, shares, logs["big"], 65536, 0.3)
        feed_window(sim, shares, logs["small"], 4096, 0.05)
    assert shares.availability("big") > shares.availability("small")


def test_idle_connection_still_gets_fair_share(sim):
    shares, logs = make_shares(sim, "busy", "idle")
    for _ in range(5):
        feed_window(sim, shares, logs["busy"], 65536, 0.5)
    fair = shares.fair_fraction * shares.total / 2
    assert shares.availability("idle") == pytest.approx(fair, rel=0.01)


def test_availabilities_sum_to_total(sim):
    shares, logs = make_shares(sim, "a", "b", "c")
    for nbytes, cid in ((65536, "a"), (32768, "b"), (8192, "c")):
        for _ in range(3):
            feed_window(sim, shares, logs[cid], nbytes, 0.2)
    snapshot = shares.snapshot()
    assert sum(snapshot.values()) == pytest.approx(shares.total, rel=1e-6)


def test_aggregate_sample_counts_concurrent_connections(sim):
    """A window observed while another connection moves bytes yields a
    capacity sample near the sum, not the observer's share."""
    shares, logs = make_shares(sim, "a", "b")
    started = sim.now
    sim.run(until=1.0)
    logs["a"].add_delivery(50_000)
    logs["b"].add_delivery(50_000)
    entry = logs["a"].add_throughput(started, 50_000)
    shares.on_throughput(logs["a"], entry)
    assert shares.total == pytest.approx(100_000, rel=0.05)


def test_unregister_removes_connection(sim):
    shares, logs = make_shares(sim, "a", "b")
    shares.unregister("b")
    assert shares.connection_count == 1
    with pytest.raises(ReproError):
        shares.availability("b")


def test_fair_fraction_validated(sim):
    with pytest.raises(ReproError):
        ClientShares(sim, fair_fraction=0)


def test_competing_parameters_validated(sim):
    with pytest.raises(ReproError):
        ClientShares(sim, competing_horizon=0.0)
    with pytest.raises(ReproError):
        ClientShares(sim, competing_rate_floor=-1.0)


def test_competing_defaults_come_from_module_constants(sim):
    from repro.estimation.share import COMPETING_HORIZON, COMPETING_RATE_FLOOR

    shares = ClientShares(sim)
    assert shares.competing_horizon == COMPETING_HORIZON
    assert shares.competing_rate_floor == COMPETING_RATE_FLOOR


def test_competing_rate_floor_gates_competition(sim):
    """A peer below the floor must not flip the estimator into the
    competing (raw-aggregate) regime; one above it must."""
    trickle = 100  # bytes moved by the peer during the observed window

    def run_with(floor):
        shares = ClientShares(sim, competing_rate_floor=floor)
        a, b = RpcLog(sim, "a"), RpcLog(sim, "b")
        shares.register(a)
        shares.register(b)
        # A round-trip observation gives Eq. 2 a dead time to subtract, so
        # the non-competing sample genuinely exceeds the raw aggregate.
        rtt = a.add_round_trip(0.1, 256, 64)
        shares.on_round_trip(a, rtt)
        started = sim.now
        sim.run(until=sim.now + 0.5)
        b.add_delivery(trickle)
        b.add_throughput(started, trickle)
        a.add_delivery(65536)
        entry = a.add_throughput(started, 65536)
        return shares.on_throughput(a, entry)

    # Floor above the peer's rate: peer ignored, Eq. 2 correction applies,
    # yielding a higher capacity sample than the raw aggregate.
    generous = run_with(floor=1e9)
    strict = run_with(floor=0.0)
    assert generous > strict
