"""The speech stack: cost model, warden placement, front-end loop."""

import pytest

from repro.apps.speech.model import (
    DEFAULT_COSTS,
    SpeechCosts,
    Utterance,
    crossover_bandwidth,
)
from repro.apps.speech.recognizer import SpeechFrontEnd
from repro.apps.speech.warden import build_speech
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.errors import OdysseyError, ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant


# -- cost model ----------------------------------------------------------


def test_utterance_compression_five_to_one():
    utterance = Utterance("u")
    assert utterance.raw_bytes / utterance.preprocessed_bytes == pytest.approx(
        5.0, rel=0.01
    )


def test_utterance_validation():
    with pytest.raises(ReproError):
        Utterance("u", raw_bytes=0)
    with pytest.raises(ReproError):
        Utterance("u", compression_ratio=1.0)


def test_hybrid_wins_at_reference_bandwidths():
    """Paper: 'hybrid translation is always the correct strategy' at the
    modulated levels."""
    utterance = Utterance("u")
    for bandwidth in (LOW_BANDWIDTH, HIGH_BANDWIDTH):
        hybrid = DEFAULT_COSTS.hybrid_seconds(utterance, bandwidth, 0.021)
        remote = DEFAULT_COSTS.remote_seconds(utterance, bandwidth, 0.021)
        assert hybrid <= remote


def test_remote_wins_above_crossover():
    """Paper: 'at higher bandwidths an adaptive strategy has benefits'."""
    utterance = Utterance("u")
    crossover = crossover_bandwidth(utterance)
    assert crossover > HIGH_BANDWIDTH  # above the reference range
    fast = crossover * 1.5
    hybrid = DEFAULT_COSTS.hybrid_seconds(utterance, fast, 0.021)
    remote = DEFAULT_COSTS.remote_seconds(utterance, fast, 0.021)
    assert remote < hybrid


def test_crossover_infinite_when_server_not_faster():
    costs = SpeechCosts(client_first_pass=0.1, server_first_pass=0.2)
    assert crossover_bandwidth(Utterance("u"), costs) == float("inf")


def test_recognition_times_match_paper():
    """Fig. 12's hybrid/remote values at the two pure bandwidth levels."""
    utterance = Utterance("u")
    # Impulse-down ~ high bandwidth: hybrid 0.76, remote 0.77.
    assert DEFAULT_COSTS.hybrid_seconds(utterance, HIGH_BANDWIDTH, 0.021) == \
        pytest.approx(0.76, abs=0.03)
    assert DEFAULT_COSTS.remote_seconds(utterance, HIGH_BANDWIDTH, 0.021) == \
        pytest.approx(0.77, abs=0.03)
    # Impulse-up ~ low bandwidth: hybrid 0.85, remote 1.11.
    assert DEFAULT_COSTS.hybrid_seconds(utterance, LOW_BANDWIDTH, 0.021) == \
        pytest.approx(0.85, abs=0.04)
    assert DEFAULT_COSTS.remote_seconds(utterance, LOW_BANDWIDTH, 0.021) == \
        pytest.approx(1.11, abs=0.05)


# -- warden + front-end -------------------------------------------------------


def build_recognizer(bandwidth, strategy):
    sim = Simulator()
    network = Network(sim, constant(bandwidth, duration=600))
    viceroy = Viceroy(sim, network)
    warden, server = build_speech(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "speech-fe")
    front_end = SpeechFrontEnd(sim, api, "speech-fe", "/odyssey/speech",
                               strategy=strategy)
    return sim, warden, server, front_end


def test_unknown_strategy_rejected(sim, viceroy, network, run_process):
    warden, _ = build_speech(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "fe")

    def flow():
        try:
            yield from api.tsop("/odyssey/speech", "set-strategy",
                                {"strategy": "telepathy"})
        except OdysseyError:
            return "rejected"

    assert run_process(flow()) == "rejected"


@pytest.mark.parametrize("strategy,expected", [
    ("hybrid", 0.80), ("remote", 0.81), ("adaptive", 0.80),
])
def test_recognition_time_at_high_bandwidth(strategy, expected):
    sim, warden, server, front_end = build_recognizer(HIGH_BANDWIDTH, strategy)
    front_end.start()
    sim.run(until=15.0)
    assert front_end.stats.count > 10
    assert front_end.stats.mean_seconds == pytest.approx(expected, abs=0.06)


def test_adaptive_chooses_hybrid_at_reference_bandwidths():
    for bandwidth in (LOW_BANDWIDTH, HIGH_BANDWIDTH):
        sim, warden, server, front_end = build_recognizer(bandwidth, "adaptive")
        front_end.start()
        sim.run(until=15.0)
        choices = {choice for _, choice, _ in warden.decisions}
        assert choices == {"hybrid"}


def test_adaptive_chooses_remote_on_fast_network():
    from repro.apps.speech.model import crossover_bandwidth

    fast = crossover_bandwidth(Utterance("benchmark-phrase")) * 2
    sim, warden, server, front_end = build_recognizer(fast, "adaptive")
    front_end.start()
    sim.run(until=20.0)
    choices = [choice for _, choice, _ in warden.decisions]
    # The first choice (no estimate) is the safe hybrid; once the estimate
    # reflects the fast network, remote wins.
    assert choices[-1] == "remote"


def test_local_strategy_needs_no_network():
    sim, warden, server, front_end = build_recognizer(LOW_BANDWIDTH, "local")
    front_end.start()
    sim.run(until=20.0)
    assert server.recognitions == 0
    assert front_end.stats.mean_seconds == pytest.approx(
        DEFAULT_COSTS.local_full_recognition, rel=0.05
    )


def test_write_then_read_returns_text(sim, viceroy, network, run_process):
    warden, _ = build_speech(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "fe")
    utterance = Utterance("hello")

    def flow():
        fd = api.open("/odyssey/speech/hello", flags="w")
        yield from api.write(fd, utterance)
        result = yield from api.read(fd)
        api.close(fd)
        return result

    result = run_process(flow())
    assert result["text"] == utterance.text


def test_decisions_recorded_with_bandwidth(sim, viceroy, network, run_process):
    warden, _ = build_speech(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "fe")

    def flow():
        fd = api.open("/odyssey/speech/u", flags="w")
        yield from api.write(fd, Utterance("u"))
        api.close(fd)

    run_process(flow())
    assert len(warden.decisions) == 1
    _, choice, _ = warden.decisions[0]
    assert choice == "hybrid"  # the no-estimate default is the safe choice


# -- vocabulary fidelity & disconnected operation (§8 / §2.1) -----------------


def test_vocabulary_tsop(sim, viceroy, network, run_process):
    warden, _ = build_speech(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "fe")

    def flow():
        vocab = yield from api.tsop("/odyssey/speech", "set-vocabulary",
                                    {"vocabulary": "small"})
        current = yield from api.tsop("/odyssey/speech", "get-vocabulary", {})
        return vocab, current

    assert run_process(flow()) == ("small", "small")


def test_unknown_vocabulary_rejected(sim, viceroy, network, run_process):
    warden, _ = build_speech(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "fe")

    def flow():
        try:
            yield from api.tsop("/odyssey/speech", "set-vocabulary",
                                {"vocabulary": "universal"})
        except ReproError:
            return "rejected"

    assert run_process(flow()) == "rejected"


def test_tiny_vocabulary_is_fast_but_degraded():
    assert DEFAULT_COSTS.local_seconds("tiny") < 1.0
    assert DEFAULT_COSTS.local_seconds("full") == \
        DEFAULT_COSTS.local_full_recognition


def test_disconnection_falls_back_to_local_tiny_vocabulary():
    """The §2.1 scenario: in a dead spot, speech degrades but keeps working.

    The very first recognition has no estimate and optimistically tries the
    network; every decision after that discovery goes local.
    """
    sim, warden, server, front_end = build_recognizer(300, "adaptive")
    front_end.start()
    sim.run(until=80.0)
    choices = [choice for _, choice, _ in warden.decisions]
    assert len(choices) >= 20
    assert set(choices[1:]) == {"local"}
    assert warden.vocabulary == "tiny"
    # Recognitions complete in usable time despite ~zero bandwidth (ignore
    # the expensive first attempt).
    later = [seconds for _, seconds in front_end.stats.recognitions[1:]]
    assert later and sum(later) / len(later) < 1.0


def test_reconnection_restores_full_vocabulary():
    sim = Simulator()
    from repro.trace.replay import ReplayTrace, Segment

    # Dead spot for 20 s, then good connectivity.
    trace = ReplayTrace([
        Segment(20, 300, 0.0105),
        Segment(600, HIGH_BANDWIDTH, 0.0105),
    ])
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)
    warden, server = build_speech(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "fe")
    front_end = SpeechFrontEnd(sim, api, "fe", "/odyssey/speech",
                               strategy="adaptive")
    front_end.start()
    sim.run(until=60.0)
    early = [choice for t, choice, _ in warden.decisions if 1 < t < 19]
    late = [choice for t, choice, _ in warden.decisions if t > 35]
    assert set(early) == {"local"}  # dead spot (after the first discovery)
    assert set(late) == {"hybrid"}  # probe noticed the link came back
    assert warden.vocabulary == "full"
