"""The three resource-management policies (§6.2.3)."""

import pytest

from repro.apps.bitstream import build_bitstream
from repro.core.policies import BlindOptimismPolicy
from repro.core.viceroy import Viceroy
from repro.errors import ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, step_down


def build_world(policy_factory):
    sim = Simulator()
    trace = step_down()
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network, policy=policy_factory(trace))
    app, warden, server = build_bitstream(sim, viceroy, network)
    return sim, viceroy, warden, app


def test_blind_optimism_tracks_trace_instantly():
    sim, viceroy, warden, app = build_world(BlindOptimismPolicy)
    cid = warden.primary_connection().connection_id
    assert viceroy.availability_for_connection(cid) == HIGH_BANDWIDTH
    sim.run(until=30.001)
    assert viceroy.availability_for_connection(cid) == LOW_BANDWIDTH


def test_blind_optimism_ignores_measurements():
    sim, viceroy, warden, app = build_world(BlindOptimismPolicy)
    app.start()
    sim.run(until=10.0)
    cid = warden.primary_connection().connection_id
    # Real throughput is below theoretical; blind optimism doesn't care.
    assert viceroy.availability_for_connection(cid) == HIGH_BANDWIDTH
    assert viceroy.total_bandwidth() == HIGH_BANDWIDTH


def test_blind_optimism_rechecks_windows_at_transitions():
    from repro.core.resources import Resource, ResourceDescriptor, Window

    sim, viceroy, warden, app = build_world(BlindOptimismPolicy)
    got = []
    viceroy.upcalls.register("app", "h", got.append)
    viceroy.request(
        "app", "/odyssey/bitstream/0",
        ResourceDescriptor(Resource.NETWORK_BANDWIDTH,
                           Window(HIGH_BANDWIDTH * 0.9, HIGH_BANDWIDTH * 1.1),
                           "h"),
    )
    sim.run(until=31.0)
    assert len(got) == 1
    assert got[0].level == LOW_BANDWIDTH


def test_laissez_faire_per_connection_isolation():
    from repro.core.policies import LaissezFairePolicy

    sim = Simulator()
    network = Network(sim, step_down())
    viceroy = Viceroy(sim, network, policy=LaissezFairePolicy())
    app0, warden0, _ = build_bitstream(sim, viceroy, network, index=0)
    app1, warden1, _ = build_bitstream(sim, viceroy, network, index=1)
    app0.start()
    sim.run(until=10.0)
    cid0 = warden0.primary_connection().connection_id
    cid1 = warden1.primary_connection().connection_id
    # Only the active connection has an estimate; the idle one knows nothing.
    assert viceroy.availability_for_connection(cid0) > 0
    assert viceroy.availability_for_connection(cid1) is None
    # total() under laissez-faire is just the best individual estimate.
    assert viceroy.total_bandwidth() == viceroy.availability_for_connection(cid0)


def test_laissez_faire_duplicate_registration_rejected():
    from repro.core.policies import LaissezFairePolicy

    sim = Simulator()
    network = Network(sim, step_down())
    viceroy = Viceroy(sim, network, policy=LaissezFairePolicy())
    app, warden, _ = build_bitstream(sim, viceroy, network)
    with pytest.raises((ReproError, Exception)):
        viceroy.policy.register_connection(warden.primary_connection())


def test_odyssey_policy_is_default():
    from repro.core.policies import OdysseyPolicy

    sim = Simulator()
    network = Network(sim, step_down())
    viceroy = Viceroy(sim, network)
    assert isinstance(viceroy.policy, OdysseyPolicy)
    assert viceroy.policy.shares is not None


def test_odyssey_policy_round_trip_exposed():
    sim, viceroy, warden, app = build_world(
        lambda trace: __import__("repro.core.policies", fromlist=["OdysseyPolicy"]).OdysseyPolicy()
    )
    app.start()
    sim.run(until=5.0)
    cid = warden.primary_connection().connection_id
    assert viceroy.policy.round_trip(cid) > 0
