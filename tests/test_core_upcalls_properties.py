"""Property tests: upcall semantics under arbitrary block/send interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resources import Resource
from repro.core.upcalls import Upcall, UpcallDispatcher
from repro.sim.kernel import Simulator

#: A schedule step: ("send", id) / ("block",) / ("unblock",) / ("run",)
steps_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(min_value=1, max_value=999)),
        st.tuples(st.just("block")),
        st.tuples(st.just("unblock")),
        st.tuples(st.just("run")),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(steps=steps_strategy)
def test_exactly_once_in_order_under_any_schedule(steps):
    """Whatever the interleaving of sends, blocks, unblocks and partial
    simulation runs, every sent upcall is delivered exactly once and in
    send order — once the receiver is finally unblocked and time passes."""
    sim = Simulator()
    dispatcher = UpcallDispatcher(sim)
    delivered = []
    dispatcher.register("app", "h",
                        lambda upcall: delivered.append(upcall.request_id))
    sent = []
    clock = 0.0
    for step in steps:
        if step[0] == "send":
            dispatcher.send("app", "h",
                            Upcall(step[1], Resource.NETWORK_BANDWIDTH, 0.0))
            sent.append(step[1])
        elif step[0] == "block":
            dispatcher.block("app")
        elif step[0] == "unblock":
            dispatcher.unblock("app")
        else:  # run a little
            clock += 0.1
            sim.run(until=clock)
    dispatcher.unblock("app")
    sim.run(until=clock + 10.0)
    assert delivered == sent


@settings(max_examples=50, deadline=None)
@given(
    per_app=st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.lists(st.integers(min_value=1, max_value=99), min_size=1,
                 max_size=10),
        min_size=1,
    )
)
def test_receivers_are_independent(per_app):
    """Order holds per receiver regardless of cross-receiver interleaving."""
    sim = Simulator()
    dispatcher = UpcallDispatcher(sim)
    delivered = {app: [] for app in per_app}
    for app in per_app:
        dispatcher.register(
            app, "h",
            lambda upcall, app=app: delivered[app].append(upcall.request_id),
        )
    # Interleave sends round-robin.
    pending = {app: list(ids) for app, ids in per_app.items()}
    while any(pending.values()):
        for app, ids in pending.items():
            if ids:
                dispatcher.send(
                    app, "h", Upcall(ids.pop(0),
                                     Resource.NETWORK_BANDWIDTH, 0.0)
                )
    sim.run()
    for app, ids in per_app.items():
        assert delivered[app] == list(ids)
