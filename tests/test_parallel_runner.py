"""The parallel trial runner: deterministic merge at any jobs count."""

import time

import pytest

from repro import telemetry
from repro.errors import ParallelError
from repro.experiments.harness import seeded_rngs
from repro.parallel import (
    ResultCache,
    TrialUnit,
    chunked,
    overrides,
    register_trial_function,
    resolve_trial_function,
    run_trials,
    run_units,
    sweep_units,
    trial_seeds,
)
from repro.sim.rng import RngRegistry

from test_sim_determinism import (
    GOLDEN_FIG8_STEP_DOWN_SEED1,
    GOLDEN_FIG8_STEP_UP_SEED0,
    fingerprint,
)


def _echo(tag, delay=0.0, seed=0):
    """Registered test trial: sleeps, then returns its identity."""
    if delay:
        time.sleep(delay)
    return (tag, seed)


@pytest.fixture
def echo_experiment():
    previous = register_trial_function("echo", f"{__name__}:_echo")
    yield "echo"
    if previous is None:
        from repro.parallel.runner import TRIAL_FUNCTIONS

        TRIAL_FUNCTIONS.pop("echo", None)
    else:
        register_trial_function("echo", previous)


def test_trial_seeds_reproduce_seeded_rngs():
    """A bare trial seed rebuilds exactly the registry the serial loop got."""
    registries = seeded_rngs(4, master_seed=9)
    seeds = trial_seeds(4, master_seed=9)
    for registry, seed in zip(registries, seeds):
        rebuilt = RngRegistry(seed)
        assert [rebuilt.stream("x").random() for _ in range(3)] \
            == [registry.stream("x").random() for _ in range(3)]


def test_unknown_experiment_raises():
    with pytest.raises(ParallelError, match="unknown experiment"):
        resolve_trial_function("no-such-experiment")


def test_unresolvable_reference_raises(echo_experiment):
    register_trial_function("echo", "repro.experiments.supply:not_a_function")
    with pytest.raises(ParallelError, match="cannot resolve"):
        resolve_trial_function("echo")


def test_chunked_splits_flat_results():
    assert chunked([1, 2, 3, 4, 5, 6], 3) == [[1, 2, 3], [4, 5, 6]]
    with pytest.raises(ParallelError):
        chunked([1], 0)


def test_results_come_back_in_unit_order(echo_experiment):
    """A slow first unit must not let later units overtake it."""
    units = [TrialUnit("echo", {"tag": 0, "delay": 0.2}, 0),
             TrialUnit("echo", {"tag": 1}, 1),
             TrialUnit("echo", {"tag": 2}, 2)]
    results = run_units(units, jobs=2, cache=None)
    assert results == [(0, 0), (1, 1), (2, 2)]


def test_run_trials_serial_and_parallel_agree(echo_experiment):
    serial = run_trials("echo", {"tag": "t"}, 3, master_seed=5,
                        jobs=1, cache=None)
    parallel = run_trials("echo", {"tag": "t"}, 3, master_seed=5,
                          jobs=3, cache=None)
    assert serial == parallel
    assert [seed for _, seed in serial] == trial_seeds(3, master_seed=5)


def test_jobs_config_default_applies(echo_experiment):
    with overrides(jobs=2):
        results = run_units([TrialUnit("echo", {"tag": i}, i)
                             for i in range(3)], cache=None)
    assert results == [(0, 0), (1, 1), (2, 2)]


def test_parallel_fig8_matches_golden_fingerprints():
    """The tentpole guarantee: jobs > 1 is byte-identical to serial."""
    units = [TrialUnit("supply", {"waveform_name": "step-up"}, 0),
             TrialUnit("supply", {"waveform_name": "step-down"}, 1)]
    step_up, step_down = run_units(units, jobs=2, cache=None)
    assert fingerprint(step_up.series) == GOLDEN_FIG8_STEP_UP_SEED0
    assert fingerprint(step_down.series) == GOLDEN_FIG8_STEP_DOWN_SEED1


def test_telemetry_shards_merge_in_unit_order():
    """Worker event shards land labelled, in unit order, uninterleaved."""
    units = [TrialUnit("supply", {"waveform_name": "step-up"}, 0),
             TrialUnit("supply", {"waveform_name": "step-down"}, 1)]
    with telemetry.enabled() as rec:
        run_units(units, jobs=2, cache=None)
    events = list(rec.trace.events())
    assert events
    assert all("worker" in event for event in events)
    waveforms = [event["fields"]["waveform"] for event in events
                 if event["fields"].get("waveform")]
    boundary = waveforms.index("step-down")
    assert set(waveforms[:boundary]) == {"step-up"}
    assert set(waveforms[boundary:]) == {"step-down"}


def test_telemetry_bypasses_cache(tmp_path, echo_experiment):
    """An observability run must execute, not answer from disk."""
    cache = ResultCache(root=tmp_path, fingerprint="f")
    unit = TrialUnit("echo", {"tag": "t"}, 0)
    run_units([unit], jobs=1, cache=cache)  # warm the cache
    assert cache.stats()["entries"] == 1
    with telemetry.enabled():
        run_units([unit], jobs=1, cache=cache)
    assert cache.hits == 0  # the warm entry was never consulted


def test_watchdog_aborts_hung_unit(echo_experiment):
    """A unit exceeding the wall-clock watchdog raises, naming the unit."""
    units = [TrialUnit("echo", {"tag": "fast"}, 0),
             TrialUnit("echo", {"tag": "slow", "delay": 30.0}, 7)]
    with pytest.raises(ParallelError, match=r"'echo' \(seed 7.*watchdog"):
        run_units(units, jobs=2, cache=None, timeout=0.5)


def test_watchdog_passes_fast_units(echo_experiment):
    units = [TrialUnit("echo", {"tag": i}, i) for i in range(3)]
    assert run_units(units, jobs=2, cache=None, timeout=30.0) \
        == [(0, 0), (1, 1), (2, 2)]


def test_watchdog_config_default_applies(echo_experiment):
    units = [TrialUnit("echo", {"tag": 0}, 0),
             TrialUnit("echo", {"tag": 1, "delay": 30.0}, 1)]
    with overrides(jobs=2, timeout=0.5):
        with pytest.raises(ParallelError, match="watchdog"):
            run_units(units, cache=None)


def test_watchdog_rejects_bad_timeout():
    from repro.parallel import resolve_timeout

    with pytest.raises(ParallelError):
        resolve_timeout(-1.0)
    with pytest.raises(ParallelError):
        resolve_timeout("soon")
    assert resolve_timeout(None) is None
    assert resolve_timeout(0) is None  # 0 disables, like --jobs 0 = all cores
    assert resolve_timeout(2.5) == 2.5


def test_sweep_units_are_well_formed():
    units = sweep_units(trials=2)
    assert all(isinstance(unit, TrialUnit) for unit in units)
    experiments = {unit.experiment for unit in units}
    assert {"supply", "demand", "video", "web", "speech",
            "adaptation", "turbulence"} <= experiments
    # concurrent is deliberately excluded: one 15-minute trial would
    # dominate the parallel critical path of the timed sweep.
    assert "concurrent" not in experiments
