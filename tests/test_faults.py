"""Fault plans, injectors, and the RPC retry machinery that rides them out."""

import pytest

from repro.errors import FaultError, RpcError, RpcTimeout
from repro.faults import (
    Blackout,
    FaultPlan,
    LossBurst,
    ServerSlowdown,
    ServerStall,
)
from repro.net.network import Network
from repro.rpc.connection import RetryPolicy, RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.sim.rng import RngRegistry
from repro.trace.replay import ReplayTrace, Segment
from repro.trace.waveforms import constant

BANDWIDTH = 100 * 1024


# -- plan validation ----------------------------------------------------------


def test_fault_windows_validated():
    with pytest.raises(FaultError):
        Blackout(start=-1.0, duration=5.0)
    with pytest.raises(FaultError):
        Blackout(start=0.0, duration=0.0)
    with pytest.raises(FaultError):
        LossBurst(start=0.0, duration=5.0, drop_fraction=0.0)
    with pytest.raises(FaultError):
        LossBurst(start=0.0, duration=5.0, drop_fraction=1.5)
    with pytest.raises(FaultError):
        ServerSlowdown(start=0.0, duration=5.0, factor=0.5)


def test_plan_rejects_unknown_fault_types():
    with pytest.raises(FaultError):
        FaultPlan(["not a fault"])


def test_plan_sorts_and_classifies():
    plan = FaultPlan([
        ServerStall(start=30.0, duration=5.0),
        Blackout(start=10.0, duration=2.0),
        LossBurst(start=20.0, duration=2.0),
    ])
    assert [f.start for f in plan] == [10.0, 20.0, 30.0]
    assert len(plan.blackouts) == 1
    assert len(plan.loss_bursts) == 1
    assert len(plan.server_faults) == 1


def test_plan_merges_overlapping_blackouts():
    """One link, one outage: overlapping/adjacent windows become one span."""
    plan = FaultPlan([
        Blackout(start=10.0, duration=5.0),
        Blackout(start=12.0, duration=8.0),  # overlaps the first
        Blackout(start=20.0, duration=2.0),  # adjacent to the merged span
        Blackout(start=40.0, duration=1.0),  # disjoint
    ])
    spans = [(b.start, b.end) for b in plan.blackouts]
    assert spans == [(10.0, 22.0), (40.0, 41.0)]


def test_plan_merge_keeps_containing_blackout():
    """A window nested inside another must not shrink the outer span."""
    plan = FaultPlan([
        Blackout(start=10.0, duration=20.0),
        Blackout(start=12.0, duration=2.0),
    ])
    assert [(b.start, b.end) for b in plan.blackouts] == [(10.0, 30.0)]


def test_plan_rejects_overlapping_server_stalls_same_port():
    with pytest.raises(FaultError, match="overlapping ServerStall"):
        FaultPlan([
            ServerStall(start=10.0, duration=10.0, port="a"),
            ServerStall(start=15.0, duration=10.0, port="a"),
        ])


def test_plan_rejects_overlap_with_wildcard_port():
    """A port=None stall targets every service, so it conflicts with any."""
    with pytest.raises(FaultError, match="overlapping ServerStall"):
        FaultPlan([
            ServerStall(start=10.0, duration=10.0),
            ServerStall(start=15.0, duration=10.0, port="a"),
        ])


def test_plan_allows_disjoint_and_cross_port_server_faults():
    plan = FaultPlan([
        ServerStall(start=10.0, duration=5.0, port="a"),
        ServerStall(start=15.0, duration=5.0, port="a"),  # touching, not overlapping
        ServerStall(start=12.0, duration=5.0, port="b"),  # different port
        ServerSlowdown(start=11.0, duration=5.0, port="a"),  # different kind
    ])
    assert len(plan.server_faults) == 4


# -- trace modulation ---------------------------------------------------------


def test_modulate_zeroes_blackout_window():
    trace = constant(BANDWIDTH, duration=100.0)
    plan = FaultPlan([Blackout(start=40.0, duration=10.0)])
    dark = plan.modulate(trace)
    assert dark.bandwidth_at(39.9) == BANDWIDTH
    assert dark.bandwidth_at(45.0) == 0.0
    assert dark.bandwidth_at(50.1) == BANDWIDTH
    assert dark.latency_at(45.0) == trace.latency_at(45.0)
    assert dark.duration == trace.duration


def test_modulate_preserves_existing_transitions():
    trace = ReplayTrace(
        [Segment(50.0, BANDWIDTH, 0.01), Segment(50.0, BANDWIDTH // 2, 0.02)],
        name="step",
    )
    plan = FaultPlan([Blackout(start=45.0, duration=10.0)])
    dark = plan.modulate(trace)
    # Blackout straddles the original transition at t=50.
    assert dark.bandwidth_at(44.0) == BANDWIDTH
    assert dark.bandwidth_at(47.0) == 0.0
    assert dark.bandwidth_at(53.0) == 0.0
    assert dark.bandwidth_at(56.0) == BANDWIDTH // 2
    # Latency follows the original schedule through the dark window.
    assert dark.latency_at(47.0) == 0.01
    assert dark.latency_at(53.0) == 0.02


def test_modulate_without_blackouts_returns_trace():
    trace = constant(BANDWIDTH, duration=10.0)
    plan = FaultPlan([ServerStall(start=1.0, duration=1.0)])
    assert plan.modulate(trace) is trace


# -- a wired client/server pair ----------------------------------------------


@pytest.fixture
def world(sim):
    network = Network(sim, constant(BANDWIDTH, duration=3600))
    server = network.add_host("server")
    service = RpcService(sim, server, "svc")
    service.register(
        "get",
        lambda body: ServerReply(body={"ok": True}, body_bytes=64,
                                 bulk=service.make_bulk(16 * 1024)),
    )
    conn = RpcConnection(sim, network, "server", "svc", "c0")
    return network, service, conn


# -- runtime injection --------------------------------------------------------


def test_loss_burst_drops_packets(sim, world, run_process):
    network, service, conn = world
    plan = FaultPlan([LossBurst(start=0.0, duration=3600.0,
                                drop_fraction=1.0)])
    injector = plan.arm(sim, network=network, rng=RngRegistry(0))

    def attempt():
        with pytest.raises(RpcTimeout):
            yield from conn.call("get", timeout=2.0)

    run_process(attempt())
    assert injector.packets_dropped > 0
    assert network.uplink.stats.packets_dropped > 0
    assert conn.timeouts == 1


def test_loss_bursts_require_network_and_rng(sim, world):
    network, _, _ = world
    plan = FaultPlan([LossBurst(start=0.0, duration=1.0)])
    with pytest.raises(FaultError):
        plan.arm(sim)
    with pytest.raises(FaultError):
        plan.arm(sim, network=network)  # no rng
    plan.arm(sim, network=network, rng=RngRegistry(0))
    with pytest.raises(FaultError):  # filter already installed
        plan.arm(sim, network=network, rng=RngRegistry(0))


def test_server_fault_needs_matching_service(sim, world):
    _, service, _ = world
    plan = FaultPlan([ServerStall(start=1.0, duration=1.0, port="other")])
    with pytest.raises(FaultError):
        plan.arm(sim, services=[service])


def test_server_stall_fires_and_is_recorded(sim, world, run_process):
    network, service, conn = world
    plan = FaultPlan([ServerStall(start=1.0, duration=5.0)])
    injector = plan.arm(sim, services=[service])

    def attempt():
        yield sim.timeout(2.0)
        assert service.in_outage
        with pytest.raises(RpcTimeout):
            yield from conn.call("get", timeout=1.0)

    run_process(attempt())
    assert injector.events == [(1.0, "stall", "svc")]
    assert service.dropped_during_outage > 0


def test_server_slowdown_stretches_compute(sim, world, run_process):
    network, service, conn = world
    service.register(
        "think", lambda body: ServerReply(body_bytes=64, compute_seconds=0.1)
    )
    plan = FaultPlan([ServerSlowdown(start=1.0, duration=10.0, factor=5.0)])
    plan.arm(sim, services=[service])

    def attempt():
        before = yield from timed_call()
        yield sim.timeout(1.0)  # into the slowdown window
        during = yield from timed_call()
        assert during > before + 0.3  # 0.1 s compute became 0.5 s

    def timed_call():
        started = sim.now
        yield from conn.call("think")
        return sim.now - started

    run_process(attempt())


# -- retry-with-backoff -------------------------------------------------------


def test_retry_policy_validated():
    with pytest.raises(RpcError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(RpcError):
        RetryPolicy(retries=-1)
    with pytest.raises(RpcError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(RpcError):
        RetryPolicy(backoff=2.0, cap=1.0)


def test_retry_policy_delays_grow_to_cap():
    policy = RetryPolicy(retries=5, backoff=1.0,
                         multiplier=2.0, cap=4.0)
    assert list(policy.delays()) == [1.0, 2.0, 4.0, 4.0, 4.0]


def test_retry_rides_out_server_stall(sim, world, run_process):
    network, service, conn = world
    FaultPlan([ServerStall(start=0.0, duration=4.0)]).arm(
        sim, services=[service]
    )
    retry = RetryPolicy(timeout=1.0, retries=8, backoff=0.5,
                        multiplier=1.0)

    def attempt():
        body, _ = yield from conn.call_with_retry("get", retry=retry)
        return body

    body = run_process(attempt())
    assert body == {"ok": True}
    assert conn.timeouts > 0
    assert conn.retries == conn.timeouts
    assert sim.now > 4.0  # success only after the stall lifted


def test_retry_budget_exhaustion_raises(sim, world, run_process):
    network, service, conn = world
    FaultPlan([ServerStall(start=0.0, duration=3600.0)]).arm(
        sim, services=[service]
    )
    retry = RetryPolicy(timeout=0.5, retries=2, backoff=0.1)

    def attempt():
        with pytest.raises(RpcTimeout):
            yield from conn.call_with_retry("get", retry=retry)

    run_process(attempt())
    assert conn.timeouts == 3  # initial attempt + 2 retries
    assert conn.retries == 2


def test_fetch_with_retry_restarts_transfer(sim, world, run_process):
    network, service, conn = world
    FaultPlan([ServerStall(start=0.0, duration=2.0)]).arm(
        sim, services=[service]
    )
    retry = RetryPolicy(timeout=1.0, retries=5, backoff=0.2,
                        multiplier=1.0)

    def attempt():
        _, _, nbytes = yield from conn.fetch_with_retry("get", retry=retry)
        return nbytes

    assert run_process(attempt()) == 16 * 1024
    assert conn.retries > 0
