"""Property tests: storms over the scenario corpus keep every invariant.

Two layers of property coverage:

- **Disconnected-mode recovery, corpus-wide** — every scenario family ×
  storm profile (and a hypothesis-driven seed sweep) runs a real shard
  under the invariant auditor and must come back with zero violations and
  a conserved deferred-op ledger.  The point of a *property* here is that
  the safety argument does not hinge on one blessed trace.
- **Estimator agility through the auditor** — the EWMA bandwidth filter,
  fed samples of a storm-modulated trace, must settle back into the
  target band within the settling SLO after the storm clears; a frozen
  estimator must be *flagged*, proving the settling invariant has teeth.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import InvariantAuditor, standard_profile
from repro.estimation.ewma import EwmaFilter
from repro.faults import Blackout, FaultPlan
from repro.fleet.shard import run_fleet_shard
from repro.trace.waveforms import constant

FAMILIES = ("urban", "highway", "office", "robustness")
DURATION = 30.0


def stormed_shard(family, profile_name, seed, clients=8):
    return run_fleet_shard(clients, DURATION, family=family, shard=0,
                           seed=seed, chaos=standard_profile(profile_name,
                                                             DURATION))


def assert_invariants(stats):
    assert stats.violations == ()
    assert stats.ops_lost == 0
    assert 0.0 <= stats.fidelity_floor <= 1.0
    assert stats.marks_attempted >= stats.marks_applied
    # Conservation arithmetic: everything enqueued is coalesced, still
    # queued, or terminally replayed (the auditor flags the remainder).
    assert stats.ops_enqueued >= stats.ops_coalesced + stats.ops_queued_at_end
    assert stats.churn_rejoined == stats.churn_left


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("profile_name", ("regional-blackout", "full-storm"))
def test_corpus_times_profiles_stay_clean(family, profile_name):
    assert_invariants(stormed_shard(family, profile_name, seed=11).chaos)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_any_seed_recovers_from_the_full_storm(seed):
    stats = stormed_shard("robustness", "full-storm", seed).chaos
    assert_invariants(stats)
    # The storm must actually have forced disconnected operation, or the
    # property is vacuous.
    assert stats.marks_deferred > 0


BANDWIDTH_LEVELS = st.sampled_from([64 * 1024, 256 * 1024, 1024 * 1024])


def estimate_series(trace, ewma, step=1.0, end=60.0):
    series = []
    t = 0.0
    while t <= end:
        series.append((t, ewma.update(trace.bandwidth_at(t))))
        t += step
    return series


@settings(max_examples=8, deadline=None)
@given(level=BANDWIDTH_LEVELS,
       dark=st.floats(min_value=5.0, max_value=15.0))
def test_ewma_settles_within_slo_after_storm(level, dark):
    """Post-storm, the paper's throughput filter re-enters the band fast."""
    plan = FaultPlan([Blackout(start=30.0, duration=dark)])
    trace = plan.modulate(constant(level, duration=60.0))
    auditor = InvariantAuditor(lambda: 60.0, settling_slo=10.0)
    for t, value in estimate_series(trace, EwmaFilter(gain=0.875)):
        auditor.note_estimate(t, value)
    auditor.note_storm(30.0, 30.0 + dark, target=level)
    assert auditor.finish(60.0) == []


def test_frozen_estimator_is_flagged():
    """The settling invariant has teeth: a wedged estimate violates."""
    plan = FaultPlan([Blackout(start=30.0, duration=10.0)])
    trace = plan.modulate(constant(256 * 1024, duration=60.0))
    auditor = InvariantAuditor(lambda: 60.0, settling_slo=10.0)
    ewma = EwmaFilter(gain=0.875)
    for t, value in estimate_series(trace, ewma, end=40.0):
        auditor.note_estimate(t, value)
    # The filter stops absorbing samples right at storm end: the series
    # never climbs back toward the target.
    auditor.note_storm(30.0, 40.0, target=256 * 1024)
    violations = auditor.finish(60.0)
    assert [v.invariant for v in violations] == ["settling"]
