"""The function/data-shipping placement engine (§8 generalization)."""

import math

import pytest

from repro.core.shipping import (
    Plan,
    PlacementEngine,
    crossover_bandwidth,
    DEFAULT_BANDWIDTH_GUESS,
)
from repro.errors import ReproError

LOCAL = Plan("local", local_seconds=4.0)
HYBRID = Plan("hybrid", local_seconds=0.28, remote_seconds=0.41,
              ship_bytes=4096, result_bytes=128)
REMOTE = Plan("remote", remote_seconds=0.56, ship_bytes=20480,
              result_bytes=128)


def test_plan_validation():
    with pytest.raises(ReproError):
        Plan("bad", local_seconds=-1)
    with pytest.raises(ReproError):
        Plan("bad", ship_bytes=-1)


def test_local_plan_ignores_network():
    engine = PlacementEngine()
    assert engine.predict(LOCAL, bandwidth=1) == 4.0
    assert not LOCAL.uses_network
    assert REMOTE.uses_network


def test_prediction_formula():
    engine = PlacementEngine()
    predicted = engine.predict(REMOTE, bandwidth=102400, round_trip=0.02)
    expected = 0.02 + (20480 + 128) / 102400 + 0.56
    assert predicted == pytest.approx(expected)


def test_decide_picks_fastest():
    engine = PlacementEngine(hysteresis=0.0)
    slow_net = engine.decide([LOCAL, HYBRID, REMOTE], bandwidth=1024)
    assert slow_net.name == "local"  # 4 s beats ~4.1 s hybrid at 1 KB/s
    fast_net = engine.decide([LOCAL, HYBRID, REMOTE], bandwidth=10**7)
    assert fast_net.name == "remote"


def test_decide_requires_plans():
    with pytest.raises(ReproError):
        PlacementEngine().decide([])


def test_hysteresis_keeps_incumbent_on_marginal_wins():
    engine = PlacementEngine(hysteresis=0.10)
    first = engine.decide([HYBRID, REMOTE], bandwidth=100 * 1024)
    assert first.name == "hybrid"
    # At a bandwidth where remote is only slightly faster, stick.
    marginal = engine.decide([HYBRID, REMOTE], bandwidth=200 * 1024)
    assert marginal.name == "hybrid"
    # A decisive improvement displaces the incumbent.
    decisive = engine.decide([HYBRID, REMOTE], bandwidth=10**7)
    assert decisive.name == "remote"


def test_reset_clears_incumbent():
    engine = PlacementEngine(hysteresis=0.5)
    engine.decide([HYBRID, REMOTE], bandwidth=100 * 1024)
    engine.reset()
    fresh = engine.decide([HYBRID, REMOTE], bandwidth=10**7)
    assert fresh.name == "remote"


def test_decisions_recorded():
    engine = PlacementEngine()
    engine.decide([HYBRID, REMOTE], bandwidth=100 * 1024)
    assert len(engine.decisions) == 1
    name, predicted, bandwidth = engine.decisions[0]
    assert name == "hybrid"
    assert predicted > 0
    assert bandwidth == 100 * 1024


def test_defaults_without_viceroy():
    engine = PlacementEngine()
    assert engine.current_bandwidth() == DEFAULT_BANDWIDTH_GUESS
    assert engine.current_round_trip() > 0


def test_crossover_between_hybrid_and_remote():
    crossover = crossover_bandwidth(REMOTE, HYBRID)
    # Below the crossover hybrid wins, above it remote wins.
    engine = PlacementEngine(hysteresis=0.0)
    below = engine.decide([HYBRID, REMOTE], bandwidth=crossover * 0.8)
    engine.reset()
    above = engine.decide([HYBRID, REMOTE], bandwidth=crossover * 1.2)
    assert below.name == "hybrid"
    assert above.name == "remote"


def test_crossover_infinite_when_one_plan_dominates():
    cheap = Plan("cheap", remote_seconds=0.1, ship_bytes=100)
    dear = Plan("dear", remote_seconds=0.5, ship_bytes=10_000)
    assert math.isinf(crossover_bandwidth(cheap, dear)) or \
        crossover_bandwidth(dear, cheap) == math.inf


def test_engine_reads_viceroy_estimates(sim, network, viceroy):
    from repro.apps.bitstream import build_bitstream

    app, warden, _ = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=10.0)
    cid = warden.primary_connection().connection_id
    engine = PlacementEngine(viceroy, connection_id=cid)
    assert engine.current_bandwidth() > DEFAULT_BANDWIDTH_GUESS
    assert 0.01 < engine.current_round_trip() < 0.2
