"""The Application base class and the negotiate() retry helper."""

import pytest

from repro.apps.base import Application, negotiate
from repro.apps.bitstream import build_bitstream
from repro.core.api import OdysseyAPI
from repro.core.resources import Resource
from repro.core.viceroy import Viceroy
from repro.errors import ProcessInterrupt, ToleranceError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant


class TickingApp(Application):
    def __init__(self, sim, api):
        super().__init__(sim, api, "ticker")
        self.ticks = 0

    def run(self):
        try:
            while True:
                yield self.sim.timeout(1.0)
                self.ticks += 1
        except ProcessInterrupt:
            return self.ticks


def test_application_start_stop(sim, api):
    app = TickingApp(sim, api)
    process = app.start()
    sim.run(until=5.5)
    app.stop()
    sim.run(until=6.0)
    assert not process.alive
    assert process.value == 5


def test_double_start_rejected(sim, api):
    app = TickingApp(sim, api)
    app.start()
    with pytest.raises(RuntimeError):
        app.start()


def test_stop_before_start_is_noop(sim, api):
    TickingApp(sim, api).stop()  # nothing to interrupt, nothing raised


def test_run_must_be_overridden(sim, api):
    app = Application(sim, api, "abstract")
    with pytest.raises(NotImplementedError):
        app.run()


def build_estimating_world():
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=300))
    viceroy = Viceroy(sim, network)
    app, warden, _ = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=10.0)  # estimates now exist
    return sim, viceroy


def test_negotiate_registers_first_try_when_window_fits():
    sim, viceroy = build_estimating_world()
    api = OdysseyAPI(viceroy, "bitstream-app-0")
    seen = []

    request_id = negotiate(
        api, "/odyssey/bitstream/0", Resource.NETWORK_BANDWIDTH,
        window_for=lambda level: (0.0, 1e12),
        on_level=seen.append,
    )
    assert request_id > 0
    assert seen == [None]  # no hint, one attempt
    api.cancel(request_id)


def test_negotiate_retries_with_reported_level():
    sim, viceroy = build_estimating_world()
    api = OdysseyAPI(viceroy, "bitstream-app-0")
    seen = []

    def window_for(level):
        if level is None:
            return (1e9, 1e12)  # absurdly optimistic: will be rejected
        return (level * 0.5, level * 2.0)  # second attempt fits

    request_id = negotiate(
        api, "/odyssey/bitstream/0", Resource.NETWORK_BANDWIDTH,
        window_for=window_for, on_level=seen.append,
    )
    assert request_id > 0
    assert seen[0] is None
    assert seen[1] > 0  # the ToleranceError's reported availability
    assert len(seen) == 2


def test_negotiate_surfaces_nonconverging_mapping():
    sim, viceroy = build_estimating_world()
    api = OdysseyAPI(viceroy, "bitstream-app-0")

    with pytest.raises(ToleranceError):
        negotiate(
            api, "/odyssey/bitstream/0", Resource.NETWORK_BANDWIDTH,
            window_for=lambda level: (1e9, 1e12),  # never contains the level
            on_level=lambda level: None,
        )


def test_negotiate_uses_level_hint():
    sim, viceroy = build_estimating_world()
    api = OdysseyAPI(viceroy, "bitstream-app-0")
    seen = []
    negotiate(
        api, "/odyssey/bitstream/0", Resource.NETWORK_BANDWIDTH,
        window_for=lambda level: (0.0, 1e12),
        on_level=seen.append,
        level_hint=12345.0,
    )
    assert seen == [12345.0]
