"""Property tests: the wire codec round-trips every RPC message.

The satellite contract for the transport layer: every
:mod:`repro.rpc.messages` dataclass survives encode -> frame -> split at
arbitrary byte boundaries -> decode *equal to what was sent*, and any
truncated or corrupted frame is rejected with a typed error — never
decoded into a different message.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, RemoteCallError, WireError
from repro.rpc.messages import (
    BulkPush,
    BulkSource,
    CallRequest,
    CallResponse,
    Fragment,
    ServerReply,
    WindowAck,
    WindowRequest,
)
from repro.transport.wire import (
    FRAME_HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    MESSAGE_KINDS,
    WIRE_VERSION,
    FrameDecoder,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    try_decode_frame,
)

# -- strategies --------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
small_text = st.text(max_size=20)
seqs = st.integers(min_value=0, max_value=2**31)
sizes = st.integers(min_value=0, max_value=2**31)

json_scalars = (st.none() | st.booleans()
                | st.integers(min_value=-(2**53), max_value=2**53)
                | finite_floats | small_text)

#: Bodies exercise every value form the codec supports, including dict
#: keys that collide with the codec's own tag repertoire.
tricky_keys = st.sampled_from(
    ["__tuple__", "__bytes__", "__map__", "__bulk__", "__error__", "plain"])
bulk_sources = st.builds(BulkSource, transfer_id=seqs, nbytes=sizes,
                         meta=st.none() | small_text)
errors = st.builds(RemoteCallError, st.sampled_from(
    ["RpcTimeout", "BrokerError", "ValueError"]), small_text)
bodies = st.recursive(
    json_scalars | st.binary(max_size=32) | bulk_sources | errors,
    lambda children: (
        st.lists(children, max_size=4)
        | st.lists(children, max_size=3).map(tuple)
        | st.dictionaries(small_text | tricky_keys, children, max_size=4)
        | st.dictionaries(
            st.integers(-100, 100) | st.lists(json_scalars, max_size=2)
            .map(tuple), children, max_size=3)
    ),
    max_leaves=10,
)

call_requests = st.builds(CallRequest, connection_id=small_text, seq=seqs,
                          op=small_text, body=bodies, body_bytes=sizes,
                          reply_port=small_text)
call_responses = st.builds(CallResponse, connection_id=small_text, seq=seqs,
                           body=bodies, body_bytes=sizes,
                           server_seconds=finite_floats,
                           error=st.none() | errors)
window_requests = st.builds(WindowRequest, connection_id=small_text,
                            seq=seqs, transfer_id=seqs, offset=sizes,
                            window_bytes=sizes, fragment_bytes=sizes,
                            reply_port=small_text)
fragments = st.builds(Fragment, connection_id=small_text, seq=seqs,
                      transfer_id=seqs, offset=sizes, nbytes=sizes,
                      last_in_window=st.booleans(),
                      last_in_transfer=st.booleans())
bulk_pushes = st.builds(BulkPush, connection_id=small_text, seq=seqs,
                        transfer_id=seqs, offset=sizes, nbytes=sizes,
                        last_in_window=st.booleans(),
                        last_in_transfer=st.booleans(),
                        reply_port=small_text, body=bodies,
                        response_seq=st.none() | seqs)
window_acks = st.builds(WindowAck, connection_id=small_text, seq=seqs,
                        transfer_id=seqs, next_offset=sizes)
server_replies = st.builds(ServerReply, body=bodies, body_bytes=sizes,
                           compute_seconds=finite_floats,
                           bulk=st.none() | bulk_sources)

messages = (call_requests | call_responses | window_requests | fragments
            | bulk_pushes | window_acks | server_replies)


# -- round trips -------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(message=messages)
def test_every_message_round_trips(message):
    """encode -> frame -> decode yields an equal message, and consumed
    covers exactly the frame."""
    frame = encode_frame(message)
    decoded, consumed = decode_frame(frame)
    assert decoded == message
    assert type(decoded) is type(message)
    assert consumed == len(frame)


@settings(max_examples=100, deadline=None)
@given(batch=st.lists(messages, min_size=1, max_size=5), data=st.data())
def test_stream_reassembles_across_arbitrary_splits(batch, data):
    """A concatenated stream fed in arbitrary-size chunks — any boundary
    the kernel might pick — yields the same messages in order."""
    stream = b"".join(encode_frame(m) for m in batch)
    decoder = FrameDecoder()
    received = []
    offset = 0
    while offset < len(stream):
        size = data.draw(st.integers(min_value=1,
                                     max_value=len(stream) - offset),
                         label="chunk size")
        received.extend(decoder.feed(stream[offset:offset + size]))
        offset += size
    assert received == batch
    assert decoder.pending_bytes == 0


@settings(max_examples=100, deadline=None)
@given(message=messages, data=st.data())
def test_truncated_frame_is_rejected(message, data):
    """Every proper prefix of a frame is incomplete: the strict decoder
    raises, the streaming one keeps waiting (never mis-decodes)."""
    frame = encode_frame(message)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1),
                    label="cut")
    with pytest.raises(FrameError):
        decode_frame(frame[:cut])
    assert try_decode_frame(frame[:cut]) is None


@settings(max_examples=150, deadline=None)
@given(message=messages, data=st.data())
def test_any_single_corrupt_byte_is_rejected(message, data):
    """Flip any one byte anywhere in the frame — header or payload — and
    the frame must fail with a typed error, not decode differently."""
    frame = bytearray(encode_frame(message))
    index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1),
                      label="index")
    flip = data.draw(st.integers(min_value=1, max_value=255), label="flip")
    frame[index] ^= flip
    with pytest.raises((FrameError, WireError)):
        decode_frame(bytes(frame))


@settings(max_examples=100, deadline=None)
@given(message=messages, data=st.data())
def test_corruption_poisons_the_streaming_decoder(message, data):
    """After a corrupt frame the decoder refuses further bytes: an
    LV-framed stream cannot be resynchronized past garbage.

    Corruption lands past the length field: a flipped length byte is only
    *detectable* once the (mis-)stated payload has arrived, so the decoder
    rightly keeps waiting there — covered by the strict-decode test above.
    """
    frame = bytearray(encode_frame(message))
    index = data.draw(st.integers(min_value=8, max_value=len(frame) - 1),
                      label="index")
    frame[index] ^= data.draw(st.integers(min_value=1, max_value=255),
                              label="flip")
    decoder = FrameDecoder()
    with pytest.raises((FrameError, WireError)):
        decoder.feed(bytes(frame))
    with pytest.raises(FrameError):
        decoder.feed(b"")


# -- value-codec corners -----------------------------------------------------

def test_tag_colliding_dict_keys_round_trip():
    body = {"__tuple__": [1, 2], "__bytes__": "not bytes", "plain": 3}
    message = CallRequest("c", 1, "op", body, 10, "r")
    decoded, _ = decode_frame(encode_frame(message))
    assert decoded.body == body


def test_non_string_dict_keys_round_trip():
    body = {1: "one", (2, "b"): "pair", None: "nil", 2.5: "half"}
    message = ServerReply(body=body)
    decoded, _ = decode_frame(encode_frame(message))
    assert decoded.body == body


def test_bulk_source_round_trips_consumed():
    source = BulkSource(7, 4096, meta={"name": "x"})
    source.consumed = 1024
    decoded, _ = decode_frame(encode_frame(ServerReply(bulk=source)))
    assert decoded.bulk == source
    assert decoded.bulk.consumed == 1024  # compare=False; check explicitly


def test_handler_exceptions_cross_as_remote_call_errors():
    message = CallResponse("c", 1, None, 64, 0.0,
                           error=ValueError("bad fidelity"))
    decoded, _ = decode_frame(encode_frame(message))
    assert decoded.error == RemoteCallError("ValueError", "bad fidelity")


def test_non_finite_floats_are_rejected():
    for value in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(WireError):
            encode_message(ServerReply(body=value))


def test_unencodable_values_are_rejected():
    with pytest.raises(WireError):
        encode_message(ServerReply(body=object()))


def test_non_message_objects_are_rejected():
    with pytest.raises(WireError):
        encode_message({"not": "a message"})


# -- frame-level corners -----------------------------------------------------

def test_bad_magic_is_rejected_even_on_a_short_buffer():
    with pytest.raises(FrameError):
        try_decode_frame(b"XY")  # detectable before a full header arrives


def test_wrong_version_is_rejected():
    frame = bytearray(encode_frame(WindowAck("c", 1, 2, 3)))
    frame[2] = WIRE_VERSION + 1
    with pytest.raises(FrameError, match="version"):
        try_decode_frame(bytes(frame))


def test_oversize_length_is_rejected_before_buffering():
    import struct

    header = struct.pack(">2sBBLL", MAGIC, WIRE_VERSION, 1,
                         MAX_FRAME_BYTES + 1, 0)
    with pytest.raises(FrameError, match="ceiling"):
        try_decode_frame(header)


def test_unknown_kind_is_rejected():
    known = {code for code, _ in MESSAGE_KINDS}
    assert 99 not in known
    with pytest.raises(WireError, match="unknown message kind"):
        decode_message(99, b"[]")


def test_kind_codes_are_stable():
    """The codes are the wire format: renumbering breaks every peer."""
    assert [(code, cls.__name__) for code, cls in MESSAGE_KINDS] == [
        (1, "CallRequest"), (2, "CallResponse"), (3, "WindowRequest"),
        (4, "Fragment"), (5, "BulkPush"), (6, "WindowAck"),
        (7, "ServerReply"),
    ]


def test_header_layout_is_stable():
    frame = encode_frame(WindowAck("c", 1, 2, 3))
    assert frame[:2] == MAGIC
    assert frame[2] == WIRE_VERSION
    assert len(frame) == FRAME_HEADER_BYTES + int.from_bytes(
        frame[4:8], "big")
