"""The Odyssey namespace: mounts, longest-prefix routing, readdir."""

import pytest

from repro.core.namespace import Namespace, normalize
from repro.errors import NoSuchObject, OdysseyError


class FakeWarden:
    def __init__(self, name):
        self.name = name

    def vfs_readdir(self, rest):
        return [f"{self.name}:{rest or 'root'}"]


def test_normalize():
    assert normalize("/a/b/../c") == "/a/c"
    assert normalize("/a/") == "/a"
    with pytest.raises(NoSuchObject):
        normalize("relative/path")
    with pytest.raises(NoSuchObject):
        normalize("")


def test_mount_and_resolve():
    ns = Namespace()
    video = FakeWarden("video")
    ns.mount("/odyssey/video", video)
    warden, rest = ns.resolve("/odyssey/video/movie1")
    assert warden is video
    assert rest == "movie1"
    warden, rest = ns.resolve("/odyssey/video")
    assert rest == ""


def test_longest_prefix_wins():
    ns = Namespace()
    outer, inner = FakeWarden("outer"), FakeWarden("inner")
    ns.mount("/odyssey/data", outer)
    ns.mount("/odyssey/data/special", inner)
    assert ns.resolve("/odyssey/data/x")[0] is outer
    assert ns.resolve("/odyssey/data/special/x")[0] is inner


def test_prefix_match_respects_component_boundaries():
    ns = Namespace()
    ns.mount("/odyssey/web", FakeWarden("web"))
    with pytest.raises(NoSuchObject):
        ns.resolve("/odyssey/webby/object")


def test_mount_outside_root_rejected():
    ns = Namespace()
    with pytest.raises(OdysseyError):
        ns.mount("/usr/local", FakeWarden("w"))


def test_double_mount_rejected():
    ns = Namespace()
    ns.mount("/odyssey/a", FakeWarden("a"))
    with pytest.raises(OdysseyError):
        ns.mount("/odyssey/a", FakeWarden("b"))


def test_unmount():
    ns = Namespace()
    ns.mount("/odyssey/a", FakeWarden("a"))
    ns.unmount("/odyssey/a")
    with pytest.raises(NoSuchObject):
        ns.resolve("/odyssey/a/x")
    with pytest.raises(OdysseyError):
        ns.unmount("/odyssey/a")


def test_unclaimed_path_raises():
    ns = Namespace()
    with pytest.raises(NoSuchObject):
        ns.resolve("/odyssey/nothing")


def test_readdir_root_lists_mounts():
    ns = Namespace()
    ns.mount("/odyssey/video", FakeWarden("v"))
    ns.mount("/odyssey/web", FakeWarden("w"))
    assert ns.readdir("/odyssey") == ["video", "web"]


def test_readdir_delegates_to_warden():
    ns = Namespace()
    ns.mount("/odyssey/video", FakeWarden("video"))
    assert ns.readdir("/odyssey/video/dir") == ["video:dir"]


def test_is_odyssey_path():
    ns = Namespace()
    assert ns.is_odyssey_path("/odyssey/anything")
    assert ns.is_odyssey_path("/odyssey")
    assert not ns.is_odyssey_path("/etc/passwd")


def test_mount_resolve_property():
    """Any mounted prefix resolves its own subtree to itself."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    name_strategy = st.text(
        alphabet="abcdefgh", min_size=1, max_size=6
    )

    @settings(max_examples=50, deadline=None)
    @given(names=st.lists(name_strategy, min_size=1, max_size=6,
                          unique=True),
           child=name_strategy)
    def check(names, child):
        ns = Namespace()
        wardens = {}
        for name in names:
            warden = FakeWarden(name)
            ns.mount(f"/odyssey/{name}", warden)
            wardens[name] = warden
        for name in names:
            resolved, rest = ns.resolve(f"/odyssey/{name}/{child}")
            assert resolved is wardens[name]
            assert rest == child
        assert ns.readdir("/odyssey") == sorted(names)

    check()
