"""The real transport: asyncio TCP channels speaking wire frames."""

import asyncio

import pytest

from repro.errors import TransportError
from repro.rpc.messages import CallRequest, CallResponse, WindowAck
from repro.transport import connect_tcp, serve_tcp


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


def request(seq, op="echo", body=None):
    return CallRequest(connection_id="c", seq=seq, op=op, body=body,
                       body_bytes=64, reply_port="")


async def start_echo_server():
    """A server replying to every CallRequest with a CallResponse."""
    channels = []

    def on_channel(channel):
        def on_message(message):
            channel.send(CallResponse(
                connection_id=message.connection_id, seq=message.seq,
                body=message.body, body_bytes=64, server_seconds=0.0))
        channels.append(channel)
        channel.open(on_message)

    server = await serve_tcp(on_channel)
    return server, channels


def test_request_response_round_trip():
    async def scenario():
        server, _ = await start_echo_server()
        replies = []
        client = await connect_tcp("127.0.0.1", server.port,
                                   replies.append)
        client.send(request(1, body={"tuple": (1, 2), "bytes": b"\x00\xff"}))
        await client.drain()
        while not replies:
            await asyncio.sleep(0.001)
        client.close()
        await client.wait_closed()
        await server.close()
        return replies

    (reply,) = run(scenario())
    assert isinstance(reply, CallResponse)
    assert reply.seq == 1
    assert reply.body == {"tuple": (1, 2), "bytes": b"\x00\xff"}


def test_many_frames_arrive_in_order():
    async def scenario():
        server, _ = await start_echo_server()
        replies = []
        client = await connect_tcp("127.0.0.1", server.port,
                                   replies.append)
        count = 500
        for seq in range(count):
            client.send(request(seq, body={"n": seq}))
        await client.drain()
        while len(replies) < count:
            await asyncio.sleep(0.001)
        client.close()
        await client.wait_closed()
        await server.close()
        return replies

    replies = run(scenario())
    assert [r.seq for r in replies] == list(range(500))


def test_peer_close_fires_on_close_exactly_once():
    async def scenario():
        server, server_channels = await start_echo_server()
        closes = []
        client = await connect_tcp("127.0.0.1", server.port,
                                   lambda m: None,
                                   on_close=closes.append)
        while not server_channels:
            await asyncio.sleep(0.001)
        server_channels[0].close()
        exc = await client.wait_closed()
        client.close()  # idempotent; must not re-fire on_close
        await server.close()
        return closes, exc, client.closed

    closes, exc, closed = run(scenario())
    assert closes == [None]  # clean EOF, exactly one callback
    assert exc is None
    assert closed


def test_send_after_close_raises():
    async def scenario():
        server, _ = await start_echo_server()
        client = await connect_tcp("127.0.0.1", server.port,
                                   lambda m: None)
        client.close()
        with pytest.raises(TransportError, match="closed"):
            client.send(request(1))
        await client.wait_closed()
        await server.close()

    run(scenario())


def test_garbage_from_peer_kills_the_server_channel():
    async def scenario():
        closes = []

        def on_channel(channel):
            channel.open(lambda m: None, on_close=closes.append)

        server = await serve_tcp(on_channel)
        _, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"this is not a frame")
        await writer.drain()
        while not closes:
            await asyncio.sleep(0.001)
        writer.close()
        await server.close()
        return closes

    closes = run(scenario())
    assert len(closes) == 1
    assert closes[0] is not None  # FrameError: bad magic


def test_wire_error_surfaces_through_on_close():
    async def scenario():
        raw_writers = []

        def on_channel(channel):
            channel.open(lambda m: None)
            raw_writers.append(channel)

        server = await serve_tcp(on_channel)
        closes = []
        client = await connect_tcp("127.0.0.1", server.port,
                                   lambda m: None,
                                   on_close=closes.append)
        while not raw_writers:
            await asyncio.sleep(0.001)
        # Bypass the frame encoder: write corrupt bytes straight to the
        # client through the accepted channel's writer.
        raw_writers[0]._writer.write(b"XX garbage that is no frame")
        await raw_writers[0]._writer.drain()
        exc = await client.wait_closed()
        await server.close()
        return closes, exc

    closes, exc = run(scenario())
    assert len(closes) == 1
    assert closes[0] is exc
    assert exc is not None  # FrameError: bad magic


def test_server_requires_on_channel_to_open():
    async def scenario():
        server = await serve_tcp(lambda channel: None)  # forgets open()
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        data = await reader.read(1)  # server closes the socket on us
        writer.close()
        await server.close()
        return data

    assert run(scenario()) == b""


def test_counters_track_traffic():
    async def scenario():
        server, server_channels = await start_echo_server()
        replies = []
        client = await connect_tcp("127.0.0.1", server.port,
                                   replies.append)
        for seq in range(3):
            client.send(request(seq))
        await client.drain()
        while len(replies) < 3:
            await asyncio.sleep(0.001)
        stats = (client.frames_sent, client.frames_received,
                 client.bytes_sent, client.bytes_received,
                 server.channels_accepted)
        client.close()
        await client.wait_closed()
        await server.close()
        return stats

    sent, received, bytes_sent, bytes_received, accepted = run(scenario())
    assert sent == 3 and received == 3
    assert bytes_sent > 0 and bytes_received > 0
    assert accepted == 1


def test_ephemeral_port_is_resolved():
    async def scenario():
        server = await serve_tcp(lambda c: c.open(lambda m: None))
        port = server.port
        await server.close()
        return port

    assert run(scenario()) > 0


def test_control_messages_cross_the_wire():
    async def scenario():
        received = []

        def on_channel(channel):
            channel.open(received.append)

        server = await serve_tcp(on_channel)
        client = await connect_tcp("127.0.0.1", server.port,
                                   lambda m: None)
        client.send(WindowAck("c", 9, 4, 65536))
        await client.drain()
        while not received:
            await asyncio.sleep(0.001)
        client.close()
        await client.wait_closed()
        await server.close()
        return received

    (ack,) = run(scenario())
    assert ack == WindowAck("c", 9, 4, 65536)


def test_send_after_peer_death_raises_typed_error():
    """Regression: a send racing the peer's reset surfaced the bare OS
    error; it must always be the typed TransportError."""

    async def scenario():
        server, server_channels = await start_echo_server()
        closes = []
        client = await connect_tcp("127.0.0.1", server.port,
                                   lambda m: None,
                                   on_close=closes.append)
        while not server_channels:
            await asyncio.sleep(0.001)
        server_channels[0]._writer.transport.abort()  # RST, not FIN
        await client.wait_closed()
        outcomes = []
        try:
            client.send(request(1))
        except TransportError as exc:
            outcomes.append(exc)
        await server.close()
        return closes, outcomes

    closes, outcomes = run(scenario())
    assert len(closes) == 1  # on_close fired exactly once despite the race
    assert len(outcomes) == 1


def test_drain_on_a_dead_channel_raises_typed_error():
    """Regression: drain after a peer death raised the bare
    ConnectionResetError asyncio stores on the transport."""

    async def scenario():
        server, server_channels = await start_echo_server()
        client = await connect_tcp("127.0.0.1", server.port,
                                   lambda m: None)
        while not server_channels:
            await asyncio.sleep(0.001)
        server_channels[0]._writer.transport.abort()
        await client.wait_closed()
        with pytest.raises(TransportError, match="drain on"):
            await client.drain()
        await server.close()

    run(scenario())


def test_drain_applies_backpressure_against_a_slow_reader():
    """A sender that drains must park until the reader catches up; the
    send buffer cannot balloon past the write high-water mark."""

    import socket as socket_module

    async def scenario():
        channels = []
        server = await serve_tcp(
            lambda ch: channels.append(ch.open(lambda m: None)))
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        while not channels:
            await asyncio.sleep(0.001)
        sender = channels[0]
        # Shrink every buffer between the two ends so backpressure bites
        # within a few frames instead of a few megabytes.
        sender._writer.transport.set_write_buffer_limits(high=16 * 1024)
        for transport_sock in (
                sender._writer.transport.get_extra_info("socket"),
                writer.get_extra_info("socket")):
            transport_sock.setsockopt(socket_module.SOL_SOCKET,
                                      socket_module.SO_SNDBUF, 16 * 1024)
            transport_sock.setsockopt(socket_module.SOL_SOCKET,
                                      socket_module.SO_RCVBUF, 16 * 1024)
        delay = 0.4
        loop = asyncio.get_running_loop()

        async def consume_after_delay():
            await asyncio.sleep(delay)
            while await reader.read(64 * 1024):
                pass

        consumer = asyncio.ensure_future(consume_after_delay())
        blob = b"x" * 65536
        started = loop.time()
        for seq in range(128):  # ~8 MB >> every buffer in the path
            sender.send(request(seq, body={"blob": blob}))
            await sender.drain()
        elapsed = loop.time() - started
        sender.close()
        await consumer
        writer.close()
        await server.close()
        return elapsed

    elapsed = run(scenario())
    # The sender cannot finish before the reader starts reading.
    assert elapsed >= 0.3
