"""Deterministic named random streams."""

from repro.sim.rng import RngRegistry


def test_same_name_same_object():
    registry = RngRegistry(0)
    assert registry.stream("a") is registry.stream("a")


def test_same_seed_same_sequence():
    first = RngRegistry(42).stream("jitter")
    second = RngRegistry(42).stream("jitter")
    assert [first.random() for _ in range(10)] == [second.random() for _ in range(10)]


def test_different_names_independent():
    registry = RngRegistry(0)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_consuming_one_stream_does_not_perturb_another():
    clean = RngRegistry(7)
    baseline = [clean.stream("stable").random() for _ in range(5)]
    registry = RngRegistry(7)
    for _ in range(100):
        registry.stream("noisy").random()
    assert [registry.stream("stable").random() for _ in range(5)] == baseline


def test_spawn_children_differ_from_parent_and_each_other():
    registry = RngRegistry(0)
    child_a = registry.spawn("trial-0")
    child_b = registry.spawn("trial-1")
    values = {
        registry.stream("x").random(),
        child_a.stream("x").random(),
        child_b.stream("x").random(),
    }
    assert len(values) == 3


def test_spawn_is_deterministic():
    a = RngRegistry(5).spawn("t").stream("s").random()
    b = RngRegistry(5).spawn("t").stream("s").random()
    assert a == b


def test_spawn_is_order_independent():
    """trial-i streams are identical whatever order trials spawn in.

    The parallel runner hands workers bare spawn seeds; nothing may
    depend on which trial spawned (or finished) first.
    """
    forward = RngRegistry(3)
    children = [forward.spawn(f"trial-{i}") for i in range(4)]
    forward_values = [c.stream("jitter").random() for c in children]

    backward = RngRegistry(3)
    reversed_children = {i: backward.spawn(f"trial-{i}")
                         for i in reversed(range(4))}
    backward_values = [reversed_children[i].stream("jitter").random()
                       for i in range(4)]
    assert forward_values == backward_values


def test_spawn_seed_rebuilds_spawned_registry():
    """RngRegistry(spawn_seed(name)) == spawn(name), stream for stream."""
    parent = RngRegistry(11)
    spawned = parent.spawn("trial-2")
    rebuilt = RngRegistry(parent.spawn_seed("trial-2"))
    for stream in ("jitter", "start", "noise"):
        assert [rebuilt.stream(stream).random() for _ in range(5)] \
            == [spawned.stream(stream).random() for _ in range(5)]


def test_spawn_seed_unaffected_by_consumed_streams():
    """Draining parent streams must not perturb child seeds."""
    clean = RngRegistry(7).spawn_seed("trial-0")
    noisy = RngRegistry(7)
    for _ in range(100):
        noisy.stream("noisy").random()
    noisy.spawn("other")
    assert noisy.spawn_seed("trial-0") == clean
