"""Deterministic named random streams."""

from repro.sim.rng import RngRegistry


def test_same_name_same_object():
    registry = RngRegistry(0)
    assert registry.stream("a") is registry.stream("a")


def test_same_seed_same_sequence():
    first = RngRegistry(42).stream("jitter")
    second = RngRegistry(42).stream("jitter")
    assert [first.random() for _ in range(10)] == [second.random() for _ in range(10)]


def test_different_names_independent():
    registry = RngRegistry(0)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_consuming_one_stream_does_not_perturb_another():
    clean = RngRegistry(7)
    baseline = [clean.stream("stable").random() for _ in range(5)]
    registry = RngRegistry(7)
    for _ in range(100):
        registry.stream("noisy").random()
    assert [registry.stream("stable").random() for _ in range(5)] == baseline


def test_spawn_children_differ_from_parent_and_each_other():
    registry = RngRegistry(0)
    child_a = registry.spawn("trial-0")
    child_b = registry.spawn("trial-1")
    values = {
        registry.stream("x").random(),
        child_a.stream("x").random(),
        child_b.stream("x").random(),
    }
    assert len(values) == 3


def test_spawn_is_deterministic():
    a = RngRegistry(5).spawn("t").stream("s").random()
    b = RngRegistry(5).spawn("t").stream("s").random()
    assert a == b
