"""Lint gate: run ruff as part of tier-1 wherever it is installed.

The offline test container does not ship ruff; the test skips there rather
than failing, so the suite stays runnable with the stdlib toolchain alone.
Configuration lives in pyproject.toml ([tool.ruff]).
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_ruff_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff not installed in this environment")
    result = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert result.returncode == 0, f"ruff found issues:\n{result.stdout}"
