"""Fleet-scale sharded simulation: determinism, seeding, merging, QoE."""

import pickle

import pytest

from repro.errors import ReproError
from repro.fleet import (
    FIDELITY_LEVELS,
    FleetClient,
    jain_fairness,
    run_fleet,
    run_fleet_shard,
    shard_populations,
    shard_seeds,
)
from repro.parallel import ResultCache
from repro.sim.rng import RngRegistry

#: A small but real fleet: four shards, every shard multi-client, short
#: priming so the whole thing stays a sub-second test.
SMALL_FLEET = dict(clients=64, shards=4, duration=8.0, prime=4.0)


def small_fleet(**overrides):
    return run_fleet(**{**SMALL_FLEET, "cache": None, **overrides})


# -- determinism ---------------------------------------------------------------


def test_fingerprint_is_byte_identical_across_jobs():
    """The cross-shard report must not depend on how shards were fanned
    out: submission-order merging makes jobs=1 and jobs=4 identical."""
    serial = small_fleet(jobs=1)
    parallel = small_fleet(jobs=4)
    assert serial.fingerprint() == parallel.fingerprint()
    assert repr(serial.shard_results) == repr(parallel.shard_results)


def test_fingerprint_varies_with_master_seed():
    assert small_fleet(jobs=1).fingerprint() \
        != small_fleet(jobs=1, master_seed=1).fingerprint()


def test_cache_hit_reproduces_the_report(tmp_path):
    """ShardResult carries no wall-clock state, so a fully cached rerun
    merges to the same fingerprint (only the harness wall time differs)."""
    cache = ResultCache(root=tmp_path / "cache", fingerprint="fleet-test")
    first = small_fleet(jobs=1, cache=cache)
    second = small_fleet(jobs=1, cache=cache)
    assert cache.hits == len(first.shard_results)
    assert first.fingerprint() == second.fingerprint()


# -- seeding -------------------------------------------------------------------


def test_shard_seeds_are_execution_order_independent():
    """A shard's seed is a pure function of (master seed, shard name):
    spawning in any order, or spawning only one, yields the same value."""
    forward = shard_seeds(8, master_seed=42)
    registry = RngRegistry(42)
    backward = [registry.spawn_seed(f"shard-{i}")
                for i in reversed(range(8))][::-1]
    assert forward == backward
    lone = RngRegistry(42).spawn_seed("shard-5")
    assert forward[5] == lone


def test_shard_seeds_are_distinct():
    seeds = shard_seeds(16, master_seed=0)
    assert len(set(seeds)) == 16


def test_shard_populations_split_evenly():
    assert shard_populations(1000, 8) == [125] * 8
    assert shard_populations(10, 4) == [3, 3, 2, 2]
    assert sum(shard_populations(1003, 8)) == 1003
    with pytest.raises(ReproError):
        shard_populations(3, 4)
    with pytest.raises(ReproError):
        shard_populations(10, 0)


# -- one shard -----------------------------------------------------------------


def test_shard_result_is_complete_and_picklable():
    result = run_fleet_shard(clients=24, duration=8.0, prime=4.0,
                             shard=3, seed=11)
    assert result.shard == 3 and result.seed == 11
    assert result.n_clients == 24 and len(result.records) == 24
    assert result.n_servers == 1  # 24 clients fit one 32-client server
    total = sum(record.bytes for record in result.records)
    assert total > 0
    for record in result.records:
        assert 0.0 < record.mean_fidelity <= 1.0
        assert record.chunks > 0
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result


def test_shard_pools_servers_by_population():
    result = run_fleet_shard(clients=40, duration=4.0, prime=2.0, seed=3)
    assert result.n_servers == 2  # ceil(40 / 32)


# -- merged report -------------------------------------------------------------


def test_report_merges_in_shard_order():
    report = small_fleet(jobs=1)
    assert [result.shard for result in report.shard_results] == [0, 1, 2, 3]
    assert len(report.records) == report.clients
    assert report.total_bytes == sum(r.bytes for r in report.records)
    assert 0.0 < report.mean_fidelity <= 1.0
    assert 0.0 < report.fairness <= 1.0
    p5, p50, p95 = report.fidelity_distribution()
    assert p5 <= p50 <= p95


def test_jain_fairness_bounds():
    assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
    assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0, 0]) == 1.0


# -- the client's ladder -------------------------------------------------------


@pytest.fixture
def client():
    return FleetClient(None, None, "c", "/odyssey/fleet/0",
                       chunk_bytes=32 * 1024, period=4.0)


def test_ladder_picks_highest_sustainable_level(client):
    full = client.demand(1.0)
    assert client.best_level_for(None) == 1.0  # optimistic before data
    assert client.best_level_for(full * 2) == 1.0
    assert client.best_level_for(full * 0.6) == 0.5
    assert client.best_level_for(0.0) == FIDELITY_LEVELS[0]


def test_lowest_window_is_open_at_the_bottom(client):
    lower, _ = client._window_for_level(FIDELITY_LEVELS[0])
    assert lower == 0.0  # always registrable, however bad the link


def test_windows_carry_hysteresis(client):
    lower, upper = client._window_for_level(0.5)
    assert lower < client.demand(0.5)  # guard below own demand
    assert upper > client.demand(1.0)  # guard above the next level


def test_mean_fidelity_is_time_weighted(client):
    client.fidelity_log = [(0.0, 1.0), (10.0, 0.5)]
    assert client.mean_fidelity(0.0, 20.0) == pytest.approx(0.75)
    # A change before the window start sets the initial value.
    assert client.mean_fidelity(10.0, 20.0) == pytest.approx(0.5)
    assert client.mean_fidelity(5.0, 15.0) == pytest.approx(0.75)


# -- CLI -----------------------------------------------------------------------


def test_fleet_cli_smoke(capsys):
    from repro.cli import main

    code = main(["fleet", "--clients", "16", "--shards", "4",
                 "--duration", "4", "--no-cache"])
    out = capsys.readouterr().out
    assert code == 0
    assert "16 clients x 4 shards" in out
    assert "fingerprint" in out and "fairness" in out
