"""The live warden: negotiation, adaptation, and disconnected handoff."""

import asyncio

import pytest

from repro.broker import BrokerClient
from repro.broker.server import REPORT_OP
from repro.errors import BrokerError
from repro.live import FidelityProfile, LiveBroker, LiveWarden, Throttle
from repro.live.warden import video_profile, web_profile


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


async def start_live_broker(**kwargs):
    broker = LiveBroker(port=0, **kwargs)
    await broker.start()
    return broker


def make_warden(broker, name, **kwargs):
    host, port = broker.address
    return LiveWarden(host, port, name, **kwargs)


# -- profiles and ladder arithmetic (no sockets) ------------------------------


def test_profiles_mirror_the_app_fidelity_tables():
    video = video_profile()
    assert video.levels == (0.01, 0.50, 1.00)
    assert video.name_of(0.01) == "bw"
    assert video.name_of(1.00) == "jpeg99"
    web = web_profile()
    assert web.levels == (0.05, 0.25, 0.50, 1.00)
    assert web.name_of(1.00) == "original"


def test_empty_profile_is_rejected():
    with pytest.raises(BrokerError, match="no fidelity levels"):
        FidelityProfile("hollow", {})


def test_demand_scales_with_fidelity():
    warden = LiveWarden.__new__(LiveWarden)
    warden.chunk_bytes = 16 * 1024
    warden.period = 0.25
    warden.profile = video_profile()
    assert warden.demand(1.0) == pytest.approx(65_536)
    assert warden.demand(0.5) == pytest.approx(32_768)
    assert warden.demand(0.01) == pytest.approx(655.36)


def test_best_level_for_walks_the_ladder():
    warden = LiveWarden.__new__(LiveWarden)
    warden.chunk_bytes = 16 * 1024
    warden.period = 0.25
    warden.profile = video_profile()
    assert warden.best_level_for(None) == 1.0  # optimistic
    assert warden.best_level_for(100_000) == 1.0
    assert warden.best_level_for(40_000) == 0.5
    assert warden.best_level_for(1_000) == 0.01
    assert warden.best_level_for(0.0) == 0.01  # floor rung, always


def test_windows_carry_the_fleet_guards():
    warden = LiveWarden.__new__(LiveWarden)
    warden.chunk_bytes = 16 * 1024
    warden.period = 0.25
    warden.profile = video_profile()
    lower, upper = warden.window_for_level(0.01)
    assert lower == 0.0  # bottom rung never violates downward
    assert upper == pytest.approx(32_768 * 1.3)
    lower, upper = warden.window_for_level(1.0)
    assert lower == pytest.approx(65_536 * 0.8)
    assert upper == 1e12  # top rung never violates upward
    lower, upper = warden.window_for_level(0.5)
    assert lower == pytest.approx(32_768 * 0.8)
    assert upper == pytest.approx(65_536 * 1.3)


# -- the full loop against a live broker --------------------------------------


def test_warden_settles_on_the_rung_the_link_sustains():
    async def scenario():
        broker = await start_live_broker(
            throttle=Throttle(bandwidth=40_000))
        warden = make_warden(broker, "settler")
        try:
            await warden.start()
            await warden.run(2.0)
            return warden.describe(), warden.fidelity
        finally:
            await warden.stop()
            await broker.close()

    snapshot, fidelity = run(scenario())
    # 40 kB/s sustains jpeg50 (demand 32 kB/s) but not jpeg99 (64 kB/s):
    # the optimistic start violates, the upcall lands, jpeg50 holds.
    assert fidelity == 0.5
    assert snapshot["fidelity"] == "jpeg50"
    assert snapshot["upcalls_received"] >= 1
    assert snapshot["renegotiations"] >= 1
    assert snapshot["fidelity_changes"] >= 1
    assert snapshot["failures"] == 0
    assert snapshot["chunks"] >= 3


def test_primed_broker_rejects_the_optimistic_window():
    async def scenario():
        broker = await start_live_broker()
        primer = await BrokerClient(*broker.address, "primer").connect()
        for _ in range(3):
            await primer.call(REPORT_OP, {
                "kind": "throughput", "seconds": 1.0, "nbytes": 20_000,
            })
        await primer.close()
        for _ in range(100):
            if not broker.viceroy.clients:
                break
            await asyncio.sleep(0.01)
        warden = make_warden(broker, "latecomer")
        try:
            await warden.start()
            return warden.describe(), warden.fidelity
        finally:
            await warden.stop()
            await broker.close()

    snapshot, fidelity = run(scenario())
    # ~20 kB/s on the books: the top rung's window (lower ~52 kB/s) is
    # structurally rejected and the warden re-anchors without an upcall.
    assert snapshot["rejections"] >= 1
    assert fidelity < 1.0
    assert snapshot["upcalls_received"] == 0


def test_disconnected_handoff_serves_the_cache_and_reintegrates():
    async def scenario():
        broker = await start_live_broker()
        warden = make_warden(broker, "roamer", probe_interval=60.0)
        try:
            await warden.start()
            await warden._cycle()  # one online chunk seeds the cache
            online_chunks = warden.chunks
            tracker = warden.client.tracker
            for _ in range(4):
                tracker.note_failure()
            offline = tracker.offline
            await warden._cycle()
            await warden._cycle()
            cache_chunks = warden.cache_chunks
            chunks_while_offline = warden.chunks - online_chunks
            while tracker.offline:
                tracker.note_success()
            await warden._cycle()  # reintegration renegotiates here
            return (warden.describe(), offline, cache_chunks,
                    chunks_while_offline)
        finally:
            await warden.stop()
            await broker.close()

    snapshot, offline, cache_chunks, chunks_while_offline = run(scenario())
    assert offline is True
    assert cache_chunks == 2
    assert chunks_while_offline == 0  # no network traffic while offline
    assert snapshot["reintegrations"] == 1
    assert snapshot["renegotiations"] >= 1
    assert snapshot["connectivity"] == "connected"


def test_connectivity_transitions_are_journaled():
    async def scenario():
        broker = await start_live_broker()
        warden = make_warden(broker, "journal", probe_interval=60.0)
        try:
            await warden.start()
            tracker = warden.client.tracker
            for _ in range(4):
                tracker.note_failure()
            while tracker.offline:
                tracker.note_success()
            return [(t.source.value, t.target.value)
                    for t in warden.connectivity_log]
        finally:
            await warden.stop()
            await broker.close()

    hops = run(scenario())
    assert hops == [
        ("connected", "degraded"),
        ("degraded", "disconnected"),
        ("disconnected", "reconnecting"),
        ("reconnecting", "connected"),
    ]
