"""Event trace: spans, points, samples, and the bounded ring buffer."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.trace import EventTrace


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def trace(clock):
    return EventTrace(clock)


def test_capacity_validated(clock):
    with pytest.raises(TelemetryError):
        EventTrace(clock, capacity=0)


def test_point_event_stamped_with_clock(trace, clock):
    clock.now = 1.5
    trace.point("tick", detail="x")
    (event,) = trace.events()
    assert event == {"t": 1.5, "kind": "point", "name": "tick",
                     "fields": {"detail": "x"}}


def test_span_records_duration_and_clears_open(trace, clock):
    span = trace.begin("work", connection="c")
    clock.now = 2.0
    assert trace.open_spans == (span,)
    trace.end(span, status="ok")
    assert trace.open_spans == ()
    begin, end = trace.events()
    assert begin["kind"] == "begin" and begin["span"] == span
    assert end["kind"] == "end" and end["duration"] == 2.0
    assert end["name"] == "work"


def test_nested_spans_carry_parent(trace):
    outer = trace.begin("outer")
    inner = trace.begin("inner", parent=outer)
    trace.end(inner)
    trace.end(outer)
    begin_inner = trace.events(name="inner", kind="begin")[0]
    assert begin_inner["parent"] == outer


def test_end_of_unknown_span_raises(trace):
    with pytest.raises(TelemetryError):
        trace.end(99)


def test_ring_buffer_drops_oldest_and_counts(clock):
    trace = EventTrace(clock, capacity=3)
    for i in range(5):
        trace.point(f"e{i}")
    assert len(trace) == 3
    assert trace.dropped == 2
    assert [e["name"] for e in trace.events()] == ["e2", "e3", "e4"]


def test_sample_uses_caller_time_and_series_round_trips(trace, clock):
    clock.now = 100.0  # the trace clock is *not* what samples record
    trace.sample("bw", 1.0, 10.0)
    trace.sample("bw", 2.0, 20.0)
    trace.sample("other", 1.5, 99.0)
    assert trace.series("bw") == [(1.0, 10.0), (2.0, 20.0)]


def test_events_filters_by_name_and_kind(trace):
    trace.point("a")
    span = trace.begin("b")
    trace.end(span)
    assert len(trace.events(name="b")) == 2
    assert len(trace.events(kind="end")) == 1
    assert trace.events(name="a", kind="begin") == []


def test_clear_resets_everything(trace):
    trace.begin("open")
    trace.point("p")
    trace.clear()
    assert len(trace) == 0
    assert trace.open_spans == ()
    assert trace.dropped == 0
