"""Agility metrics: settling time, detection delay, tracking error."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.estimation.agility import (
    detection_delay,
    series_bounds,
    settling_time,
    time_in_band,
    tracking_error,
)
from repro.estimation.ewma import EwmaFilter
from repro.trace.replay import ReplayTrace, Segment


def ramp_series(transition, before, after, step=0.5, rate=0.3, end=60.0):
    """A series that moves exponentially from ``before`` to ``after``."""
    series = []
    t = 0.0
    while t <= end:
        if t < transition:
            series.append((t, before))
        else:
            progress = 1 - math.exp(-rate * (t - transition))
            series.append((t, before + (after - before) * progress))
        t += step
    return series


def test_series_bounds():
    lo, hi = series_bounds(100, 0.10)
    assert lo == pytest.approx(90.0)
    assert hi == pytest.approx(110.0)


def test_settling_time_immediate_when_always_in_band():
    series = [(t, 100.0) for t in range(40)]
    assert settling_time(series, 20.0, 100.0) == 0.0


def test_settling_time_of_exponential_ramp():
    series = ramp_series(30.0, 40.0, 120.0)
    settle = settling_time(series, 30.0, 120.0, tolerance=0.10)
    # 90% progress with rate 0.3 takes ln(...)/0.3 ~ 6.6 s.
    assert 5.0 <= settle <= 9.0


def test_settling_requires_staying_in_band():
    series = [(0.0, 100.0), (1.0, 100.0), (2.0, 50.0), (3.0, 100.0), (4.0, 100.0)]
    # Enters at t=0 but leaves at t=2: settled only from t=3.
    assert settling_time(series, 0.0, 100.0) == 3.0


def test_settling_inf_when_never_in_band():
    series = [(t, 10.0) for t in range(10)]
    assert settling_time(series, 0.0, 100.0) == math.inf


def test_settling_needs_samples_after_transition():
    with pytest.raises(ReproError):
        settling_time([(0.0, 1.0)], 10.0, 1.0)


def test_settling_rejects_unsorted_series():
    with pytest.raises(ReproError):
        settling_time([(2.0, 1.0), (1.0, 1.0)], 0.0, 1.0)


def test_detection_delay_crossing():
    series = ramp_series(30.0, 40.0, 120.0)
    delay = detection_delay(series, 30.0, 40.0, 120.0, fraction=0.5)
    # 50% progress with rate 0.3 takes ln(2)/0.3 ~ 2.3 s.
    assert 1.5 <= delay <= 3.5


def test_detection_delay_downward():
    series = ramp_series(30.0, 120.0, 40.0)
    delay = detection_delay(series, 30.0, 120.0, 40.0, fraction=0.5)
    assert delay < math.inf


def test_detection_delay_never_crossed():
    series = [(t, 40.0) for t in range(60)]
    assert detection_delay(series, 30.0, 40.0, 120.0) == math.inf


def test_detection_fraction_validated():
    with pytest.raises(ReproError):
        detection_delay([(0, 1)], 0.0, 1, 2, fraction=0)


def test_tracking_error_zero_for_perfect_tracking():
    trace = ReplayTrace([Segment(30, 100, 0), Segment(30, 200, 0)])
    series = [(t, trace.bandwidth_at(t)) for t in range(0, 60)]
    assert tracking_error(series, trace) == pytest.approx(0.0)


def test_tracking_error_scales_with_deviation():
    trace = ReplayTrace([Segment(60, 100, 0)])
    small = [(t, 110.0) for t in range(60)]
    large = [(t, 200.0) for t in range(60)]
    assert tracking_error(large, trace) > tracking_error(small, trace)


def test_time_in_band():
    series = [(0, 100), (1, 100), (2, 50), (3, 100)]
    assert time_in_band(series, 100, tolerance=0.10) == pytest.approx(0.75)


def test_blackout_recovery_is_agile_but_capped():
    """Blackout→recovery agility: an estimate driven to 0 during a blackout
    climbs back under the rise cap (no uncapped jump) yet still settles
    near the recovered level within a bounded number of updates."""
    filt = EwmaFilter(0.875, rise_cap=0.10, rise_floor=1024.0, initial=2e5)
    for _ in range(20):  # blackout: zero-byte samples collapse the estimate
        filt.update(0.0)
    assert filt.value < 1.0
    filt.reset(0.0)  # link declared dead: estimate pinned to zero
    series = []
    for step in range(200):  # recovery: link back at 2e5
        series.append((float(step), filt.update(2e5)))
    # First recovery step is floor-capped, not a jump to the sample.
    assert series[0][1] <= 1024.0 * 1.10 + 1e-9
    assert filt.capped_rises > 0
    # Each step rises at most rise_cap — the paper's agility/stability knob.
    for (_, previous), (_, current) in zip(series, series[1:]):
        assert current <= previous * 1.10 + 1e-9
    # And recovery still settles: within 10% of the true level, and stays.
    settle = settling_time(series, 0.0, 2e5, tolerance=0.10)
    assert settle < series[-1][0]


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.floats(min_value=1, max_value=1e5), min_size=3,
                    max_size=40),
    target=st.floats(min_value=1, max_value=1e5),
)
def test_settling_time_nonnegative_or_inf(values, target):
    series = [(float(i), v) for i, v in enumerate(values)]
    result = settling_time(series, 0.0, target)
    assert result >= 0.0 or math.isinf(result)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.floats(min_value=1, max_value=1e5), min_size=2,
                       max_size=40))
def test_time_in_band_is_a_fraction(values):
    series = [(float(i), v) for i, v in enumerate(values)]
    fraction = time_in_band(series, target=values[0])
    assert 0.0 <= fraction <= 1.0
