"""The deferred-op log: order, capacity, coalescing, requeue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import DeferredOp, DeferredOpLog
from repro.errors import DeferredLogFull, OdysseyError


def make_op(opcode="post", coalesce=None, **inbuf):
    return DeferredOp(app="app", rest="x", opcode=opcode, inbuf=inbuf,
                      queued_at=0.0, coalesce=coalesce)


def test_capacity_validated():
    with pytest.raises(OdysseyError):
        DeferredOpLog(0)


def test_fifo_order_preserved():
    log = DeferredOpLog()
    ops = [make_op(n=i) for i in range(5)]
    for op in ops:
        log.append(op)
    assert log.drain() == ops
    assert len(log) == 0
    assert log.replayed == 5


def test_full_log_refuses_loudly():
    log = DeferredOpLog(capacity=2)
    log.append(make_op())
    log.append(make_op())
    with pytest.raises(DeferredLogFull):
        log.append(make_op())
    assert len(log) == 2  # the refused op was not half-admitted


def test_coalescing_keeps_only_the_latest():
    log = DeferredOpLog(capacity=4)
    log.append(make_op(coalesce="pos:m1", value=1))
    log.append(make_op(coalesce=None, value=2))
    log.append(make_op(coalesce="pos:m1", value=3))
    ops = log.drain()
    assert [op.inbuf["value"] for op in ops] == [2, 3]
    assert log.coalesced == 1


def test_coalescing_frees_the_slot():
    log = DeferredOpLog(capacity=2)
    log.append(make_op(coalesce="k", value=1))
    log.append(make_op(value=2))
    # Full — but a coalescing append replaces, so it still fits.
    log.append(make_op(coalesce="k", value=3))
    assert [op.inbuf["value"] for op in log.drain()] == [2, 3]


def test_distinct_coalesce_keys_do_not_merge():
    log = DeferredOpLog()
    log.append(make_op(coalesce="pos:m1", value=1))
    log.append(make_op(coalesce="pos:m2", value=2))
    assert len(log) == 2


def test_requeue_goes_to_the_front():
    log = DeferredOpLog(capacity=8)
    first, second = make_op(n=1), make_op(n=2)
    log.append(first)
    log.append(second)
    batch = log.drain()
    # A new op arrives while the replay is failing...
    late = log.append(make_op(n=3))
    # ...then the unplayed tail goes back in front of it.
    log.requeue(batch[1:])
    assert log.drain() == [second, late]
    assert log.enqueued == 3  # requeue is not a new enqueue


def test_sequence_numbers_are_monotonic():
    log = DeferredOpLog()
    ops = [log.append(make_op(n=i)) for i in range(4)]
    seqs = [op.seq for op in ops]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_sequences_are_per_log_not_global():
    """Two logs mint independent seq streams starting at 1.

    The old module-global counter restarted per worker process, so seq
    values collided across shards; per-log counters make each log's
    stream self-contained.
    """
    first, second = DeferredOpLog(), DeferredOpLog()
    first_seqs = [first.append(make_op(n=i)).seq for i in range(3)]
    second_seqs = [second.append(make_op(n=i)).seq for i in range(3)]
    assert first_seqs == [1, 2, 3]
    assert second_seqs == [1, 2, 3]


def test_checkpoint_restore_preserves_seq_and_order():
    import json

    log = DeferredOpLog(capacity=8)
    log.append(make_op(n=1, coalesce="k"))
    log.append(make_op(n=2))
    log.append(make_op(n=3, coalesce="k"))  # coalesces away op 1
    snapshot = json.loads(json.dumps(log.checkpoint()))  # must be JSON-safe

    clone = DeferredOpLog(capacity=8)
    assert clone.restore(snapshot) == 2
    assert [(op.seq, op.inbuf["n"]) for op in clone] \
        == [(op.seq, op.inbuf["n"]) for op in log]
    assert (clone.enqueued, clone.coalesced) == (log.enqueued, log.coalesced)
    # Post-restore appends continue past every restored seq — no duplicates.
    appended = clone.append(make_op(n=4))
    assert appended.seq > max(op.seq for op in clone if op is not appended)


def test_restore_advances_counter_past_snapshot():
    log = DeferredOpLog()
    for i in range(5):
        log.append(make_op(n=i))
    log.drain()  # queue empty, but counter must survive in the snapshot
    snapshot = log.checkpoint()
    clone = DeferredOpLog()
    clone.restore(snapshot)
    assert clone.append(make_op(n=99)).seq == 6


@settings(max_examples=100, deadline=None)
@given(keys=st.lists(
    st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
    min_size=0, max_size=40,
))
def test_at_most_one_op_per_coalesce_key(keys):
    """However appends interleave, each coalesce key occupies one slot and
    drain order matches (coalesced) arrival order."""
    log = DeferredOpLog(capacity=100)
    for i, key in enumerate(keys):
        log.append(make_op(coalesce=key, value=i))
    ops = log.drain()
    seen = [op.coalesce for op in ops if op.coalesce is not None]
    assert len(seen) == len(set(seen))
    seqs = [op.seq for op in ops]
    assert seqs == sorted(seqs)
    # Every keyed op that survived is the *last* appended for its key.
    last_for_key = {}
    for i, key in enumerate(keys):
        if key is not None:
            last_for_key[key] = i
    for op in ops:
        if op.coalesce is not None:
            assert op.inbuf["value"] == last_for_key[op.coalesce]
