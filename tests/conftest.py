"""Shared fixtures: simulators, networks, and wired-up worlds."""

import pytest

from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the on-disk result cache at a per-test directory.

    CLI invocations build a ResultCache by default; without this, a test
    run would scatter ``.repro-cache/`` entries into the repo root.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def network(sim):
    """A network with a constant high-bandwidth client link."""
    return Network(sim, constant(HIGH_BANDWIDTH, duration=3600))


@pytest.fixture
def viceroy(sim, network):
    return Viceroy(sim, network)


@pytest.fixture
def api(viceroy):
    return OdysseyAPI(viceroy, "test-app")


def drive(sim, generator, until=None):
    """Run ``generator`` as a process to completion; return its value."""
    process = sim.process(generator)
    if until is None:
        sim.run()
    else:
        sim.run(until=until)
    assert process.triggered, "process did not finish in time"
    return process.value


@pytest.fixture
def run_process(sim):
    """Fixture-ized :func:`drive` bound to the test simulator."""

    def runner(generator, until=None):
        return drive(sim, generator, until=until)

    return runner
