"""The broker load test: wall-clock throughput with zero lost upcalls."""

from repro.broker import (
    LoadtestReport,
    format_loadtest_report,
    run_loadtest,
)
from repro.broker.loadtest import percentile, summarize_latencies
from repro.cli import main


def test_small_loadtest_is_clean():
    """Eight clients, half a second: every call succeeds, every client
    gets its closing upcall, and the teardown is clean."""
    report = run_loadtest(clients=8, seconds=0.5)
    assert report.errors == 0
    assert report.timeouts == 0
    assert report.calls > 0
    assert report.relayed > 0  # cross-client relays happened
    assert report.upcalls_expected == 8
    assert report.upcalls_received == 8
    assert report.lost_upcalls == 0
    assert report.clean_shutdown
    assert report.ok
    assert report.calls_per_second > 0
    assert report.latency_ms["p50"] <= report.latency_ms["p99"]
    assert report.broker["upcalls_sent"] == 8
    assert report.broker["upcalls_acked"] == 8


def test_single_client_loadtest_skips_relays():
    report = run_loadtest(clients=1, seconds=0.2)
    assert report.ok
    assert report.relayed == 0


def test_percentile_is_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.50) == 2.0
    assert percentile(values, 0.95) == 4.0
    assert percentile(values, 0.0) == 1.0
    assert percentile([], 0.99) == 0.0


def test_latency_summary_is_monotone():
    summary = summarize_latencies([0.001 * n for n in range(1, 101)])
    assert (summary["p50"] <= summary["p95"] <= summary["p99"]
            <= summary["max"])
    assert summary["mean"] > 0


def test_report_formatting_flags_failures():
    report = LoadtestReport(clients=4, seconds=1.0,
                            address=("127.0.0.1", 1), external_broker=False,
                            upcalls_expected=4, upcalls_received=3,
                            clean_shutdown=True,
                            latency_ms=summarize_latencies([]))
    text = format_loadtest_report(report)
    assert "1 lost" in text
    assert "FAILED" in text
    assert not report.ok


def test_loadtest_cli_smoke(capsys):
    code = main(["loadtest", "--clients", "4", "--seconds", "0.2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict      OK" in out
    assert "4/4 delivered" in out


def test_serve_cli_bounded_run(capsys):
    code = main(["serve", "--run-seconds", "0.05"])
    out = capsys.readouterr().out
    assert code == 0
    assert "broker listening on 127.0.0.1:" in out
    assert "broker stopped" in out


def test_connect_cli_against_unreachable_broker(capsys):
    # Port 1 is never listening: connect must fail fast with exit 1.
    code = main(["connect", "--port", "1", "--timeout", "0.5"])
    err = capsys.readouterr().err
    assert code == 1
    assert "error:" in err
