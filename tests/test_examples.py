"""Smoke-run every example script: examples are part of the product.

Each example's ``main()`` is imported and executed with stdout captured;
these tests pin the examples to the public API so refactors cannot silently
break them.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "fidelity change" in out
    assert "frames displayed" in out
    assert "upcall" in out


@pytest.mark.slow
def test_adaptive_video(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["adaptive_video.py"])
    load_example("adaptive_video").main()
    out = capsys.readouterr().out
    assert "adaptive" in out
    assert "jpeg99" in out


@pytest.mark.slow
def test_agility_waveforms(capsys):
    load_example("agility_waveforms").main()
    out = capsys.readouterr().out
    assert "step-up" in out
    assert "settling time" in out
    assert "*" in out  # the dot plot rendered something


@pytest.mark.slow
def test_custom_warden(capsys):
    load_example("custom_warden").main()
    out = capsys.readouterr().out
    assert "sampling rate -> 100 Hz" in out
    assert "sampling rate -> 20 Hz" in out  # it adapted


@pytest.mark.slow
def test_battery_aware(capsys):
    load_example("battery_aware").main()
    out = capsys.readouterr().out
    assert "battery upcall" in out
    assert "jpeg50" in out


@pytest.mark.slow
def test_emergency_response(capsys):
    load_example("emergency_response").main()
    out = capsys.readouterr().out
    assert "prefetch hit rate" in out
    assert "budget left" in out


@pytest.mark.slow
def test_urban_walk_single_policy(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv",
                        ["urban_walk.py", "--policy", "odyssey"])
    load_example("urban_walk").main()
    out = capsys.readouterr().out
    assert "odyssey" in out
    assert "frames dropped" in out
