"""Report formatting and calibration inventory."""

from repro.experiments.calibration import calibration_lines
from repro.experiments.report import (
    format_demand_result,
    format_supply_result,
    series_to_csv,
)
from repro.experiments.stats import Cell


def test_series_to_csv():
    csv = series_to_csv([(0.0, 1.0), (1.5, 2.0)])
    lines = csv.strip().splitlines()
    assert lines[0] == "time,value"
    assert lines[1] == "0.0000,1.0"
    assert lines[2] == "1.5000,2.0"


def test_format_supply_result_smoke():
    from repro.experiments.supply import SupplyResult, SupplyTrial

    result = SupplyResult("step-down")
    result.trials.append(
        SupplyTrial("step-down", [(0.0, 100.0), (1.0, 110.0)], 2.0, 1.0)
    )
    text = format_supply_result(result)
    assert "step-down" in text
    assert "settling time" in text
    assert "2.00" in text


def test_format_demand_result_smoke():
    from repro.experiments.demand import DemandResult, DemandTrial

    result = DemandResult(0.45)
    result.trials.append(DemandTrial(0.45, [], [], [], 5.0))
    text = format_demand_result(result)
    assert "45%" in text
    assert "5.00" in text


def test_cell_precision_controls_format():
    assert str(Cell([1018, 1020], precision=0)) == "1019 (1)"
    assert "(" in f"{Cell([1.0]):>20s}"  # __format__ works in f-strings


def test_calibration_lines_cover_all_subsystems():
    text = "\n".join(calibration_lines())
    for fragment in ("modulated bandwidths", "EWMA gains", "rtt rise cap",
                     "video tracks", "jpeg99", "web image", "speech",
                     "latency goal"):
        assert fragment in text


def test_calibration_values_match_modules():
    from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH

    text = "\n".join(calibration_lines())
    assert str(LOW_BANDWIDTH) in text
    assert str(HIGH_BANDWIDTH) in text
