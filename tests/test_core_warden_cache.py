"""Byte-accounted LRU cache used by wardens."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.warden import WardenCache
from repro.errors import OdysseyError


def test_capacity_validated():
    with pytest.raises(OdysseyError):
        WardenCache(0)


def test_put_get_and_stats():
    cache = WardenCache(1000)
    assert cache.put("a", "value-a", 400)
    assert cache.get("a") == "value-a"
    assert cache.get("b") is None
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.used_bytes == 400


def test_eviction_is_lru():
    cache = WardenCache(1000)
    cache.put("a", 1, 400)
    cache.put("b", 2, 400)
    cache.get("a")  # refresh a
    cache.put("c", 3, 400)  # evicts b, the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_oversized_object_refused():
    cache = WardenCache(100)
    assert not cache.put("huge", None, 101)
    assert len(cache) == 0


def test_replacing_key_updates_accounting():
    cache = WardenCache(1000)
    cache.put("a", 1, 400)
    cache.put("a", 2, 100)
    assert cache.used_bytes == 100
    assert cache.get("a") == 2


def test_discard():
    cache = WardenCache(1000)
    cache.put("a", 1, 300)
    assert cache.discard("a")
    assert not cache.discard("a")
    assert cache.used_bytes == 0


def test_discard_matching():
    cache = WardenCache(10_000)
    for i in range(10):
        cache.put(("track-low", i), i, 100)
        cache.put(("track-high", i), i, 100)
    removed = cache.discard_matching(lambda key: key[0] == "track-low")
    assert removed == 10
    assert len(cache) == 10
    assert cache.used_bytes == 1000


def test_clear():
    cache = WardenCache(1000)
    cache.put("a", 1, 10)
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0


def test_nonpositive_size_rejected():
    cache = WardenCache(1000)
    for bad in (0, -1):
        with pytest.raises(OdysseyError):
            cache.put("a", 1, bad)
    assert len(cache) == 0


def test_peek_does_not_mutate():
    cache = WardenCache(1000)
    cache.put("a", 1, 400)
    cache.put("b", 2, 400)
    assert cache.peek("a") == 1
    assert cache.peek("missing") is None
    # No hit/miss accounting and no recency refresh: "a" is still the
    # least recently *used* entry, so the next insert evicts it.
    assert cache.hits == 0 and cache.misses == 0
    cache.put("c", 3, 400)
    assert cache.peek("a") is None
    assert cache.peek("b") == 2


def test_hit_ratio():
    cache = WardenCache(1000)
    assert cache.hit_ratio == 0.0  # no lookups yet
    cache.put("a", 1, 100)
    cache.get("a")
    cache.get("a")
    cache.get("missing")
    assert cache.hit_ratio == pytest.approx(2 / 3)


def test_hit_ratio_zero_lookups_regression():
    """hit_ratio must not divide by zero before any lookup happens."""
    cache = WardenCache(1000)
    assert cache.hit_ratio == 0.0
    cache.put("a", 1, 100)  # puts alone are not lookups
    cache.peek("a")  # nor are peeks
    assert cache.hit_ratio == 0.0


def test_age_tracks_clock():
    now = [0.0]
    cache = WardenCache(1000, clock=lambda: now[0])
    cache.put("a", 1, 100)
    now[0] = 7.5
    assert cache.age("a") == pytest.approx(7.5)
    assert cache.age("missing") is None
    # Re-inserting refreshes the stored-at stamp.
    cache.put("a", 2, 100)
    assert cache.age("a") == 0.0


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=20),
                  st.integers(min_value=1, max_value=500)),
        min_size=1, max_size=60,
    ),
    capacity=st.integers(min_value=100, max_value=2000),
)
def test_accounting_invariants(operations, capacity):
    """used_bytes always equals the sum of live entries and never exceeds
    capacity."""
    cache = WardenCache(capacity)
    live = {}
    for key, nbytes in operations:
        if cache.put(key, nbytes, nbytes):
            live[key] = nbytes
        # Reconcile against evictions by scanning what's actually present.
        live = {k: v for k, v in live.items() if k in cache}
        assert cache.used_bytes == sum(live.values())
        assert cache.used_bytes <= capacity
