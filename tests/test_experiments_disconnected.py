"""End-to-end disconnected-operation experiment.

One module-scoped comparison run backs several assertions: the trial is
deterministic per seed, so the cost is paid once.
"""

import pytest

from repro.experiments.disconnected import (
    BLACKOUT_SECONDS,
    BLACKOUT_START,
    DisconnectedResult,
    default_blackout_plan,
    run_disconnected_comparison,
    run_disconnected_trial,
)


@pytest.fixture(scope="module")
def comparison():
    return run_disconnected_comparison(seed=3)


def test_blackout_arc_completes(comparison):
    cached, _ = comparison
    # Phase 1: live fetches warmed the cache before the lights went out.
    assert cached.fetched_live > 0
    # Phase 2/3: the blackout was survived on stale cache hits.
    assert cached.served_stale > 0
    assert cached.blackout_attempts > 0
    assert cached.blackout_success_rate > 0.5
    assert cached.stale_ages and cached.mean_staleness > 0
    # Phase 4: mutating traffic was queued...
    assert cached.posts_deferred > 0
    # Phase 5: ...and replayed, in order, once the link returned.
    assert sum(cached.reintegrated.values()) == cached.posts_deferred
    assert cached.reintegrated.get("applied", 0) > 0
    assert cached.replay_in_order
    assert cached.final_state == "connected"


def test_disconnect_upcalls_issued(comparison):
    cached, uncached = comparison
    assert cached.disconnect_upcalls > 0
    assert uncached.disconnect_upcalls > 0
    # The app re-registered its window after recovery.
    assert cached.registrations > 1


def test_tracker_walked_the_expected_states(comparison):
    cached, _ = comparison
    targets = [target for _, _, target, _ in cached.transitions]
    for state in ("degraded", "disconnected", "reconnecting", "connected"):
        assert state in targets
    # The injected blackout produced a disconnection inside its window.
    assert any(
        target == "disconnected"
        and BLACKOUT_START <= time <= BLACKOUT_START + BLACKOUT_SECONDS + 10
        for time, _, target, _ in cached.transitions
    )


def test_checkpoint_survived_the_restart(comparison):
    cached, _ = comparison
    assert cached.checkpoint_registrations > 0
    assert cached.checkpoint_restored == cached.checkpoint_registrations
    assert cached.checkpoint_dropped == 0


def test_cache_is_what_makes_the_blackout_survivable(comparison):
    cached, uncached = comparison
    assert cached.blackout_success_rate > uncached.blackout_success_rate
    assert uncached.served_stale == 0
    # Without a cache, blackout reads fail fast rather than hang.
    assert uncached.failed_disconnected + uncached.failed_timeout > 0


def test_trials_are_deterministic():
    first = run_disconnected_trial(seed=11, duration=120.0)
    second = run_disconnected_trial(seed=11, duration=120.0)
    assert first == second


def test_bounded_staleness_trades_availability():
    """A tight staleness bound turns stale hits into typed failures."""
    plan = default_blackout_plan()
    loose = run_disconnected_trial(seed=3, faults=plan)
    tight = run_disconnected_trial(seed=3, faults=plan, max_staleness=2.0)
    assert tight.blackout_success_rate < loose.blackout_success_rate
    assert tight.failed_disconnected > loose.failed_disconnected
    assert all(age <= 2.0 for age in tight.stale_ages)


def test_result_rates_degenerate_cleanly():
    empty = DisconnectedResult(policy="odyssey", cache_enabled=True)
    assert empty.blackout_success_rate == 0.0
    assert empty.mean_staleness == 0.0
