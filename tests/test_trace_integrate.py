"""Exact integration of transmissions across piecewise-constant rates."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.trace.integrate import bytes_transferable, transmission_finish_time
from repro.trace.replay import ReplayTrace, Segment


def flat(bandwidth, duration=100.0):
    return ReplayTrace([Segment(duration, bandwidth, 0.0)])


def test_constant_rate_exact():
    trace = flat(1000)
    assert transmission_finish_time(trace, 0.0, 500) == pytest.approx(0.5)
    assert transmission_finish_time(trace, 10.0, 1000) == pytest.approx(11.0)


def test_zero_bytes_finish_immediately():
    assert transmission_finish_time(flat(1000), 3.0, 0) == 3.0


def test_negative_bytes_rejected():
    with pytest.raises(ReproError):
        transmission_finish_time(flat(1000), 0.0, -1)


def test_straddles_step_transition_exactly():
    trace = ReplayTrace([Segment(10, 100, 0), Segment(10, 300, 0)])
    # 500 bytes at t=5: 5 s at 100 B/s -> 500 done exactly at t=10?  No:
    # 5 s x 100 = 500 bytes exactly at the boundary.
    assert transmission_finish_time(trace, 5.0, 500) == pytest.approx(10.0)
    # 800 bytes at t=5: 500 by t=10, remaining 300 at 300 B/s -> t=11.
    assert transmission_finish_time(trace, 5.0, 800) == pytest.approx(11.0)


def test_stalls_through_zero_bandwidth_segment():
    trace = ReplayTrace([
        Segment(10, 100, 0), Segment(10, 0, 0), Segment(10, 100, 0),
    ])
    # 1500 bytes at t=0: 1000 by t=10, stall to t=20, 500 more by t=25.
    assert transmission_finish_time(trace, 0.0, 1500) == pytest.approx(25.0)


def test_trace_ending_at_zero_never_finishes():
    trace = ReplayTrace([Segment(10, 100, 0), Segment(10, 0, 0)])
    assert math.isinf(transmission_finish_time(trace, 0.0, 2000))


def test_past_trace_end_holds_final_rate():
    trace = flat(100, duration=10)
    assert transmission_finish_time(trace, 0.0, 2000) == pytest.approx(20.0)
    assert transmission_finish_time(trace, 50.0, 100) == pytest.approx(51.0)


def test_bytes_transferable_basics():
    trace = ReplayTrace([Segment(10, 100, 0), Segment(10, 300, 0)])
    assert bytes_transferable(trace, 0, 10) == pytest.approx(1000)
    assert bytes_transferable(trace, 5, 15) == pytest.approx(500 + 1500)
    with pytest.raises(ReproError):
        bytes_transferable(trace, 10, 5)


@settings(max_examples=80, deadline=None)
@given(
    segments=st.lists(
        st.builds(
            Segment,
            duration=st.floats(min_value=0.5, max_value=20.0),
            bandwidth=st.floats(min_value=1.0, max_value=1e6),
            latency=st.just(0.0),
        ),
        min_size=1, max_size=6,
    ),
    start=st.floats(min_value=0.0, max_value=50.0),
    nbytes=st.integers(min_value=1, max_value=10**7),
)
def test_finish_time_inverts_bytes_transferable(segments, start, nbytes):
    """∫rate over [start, finish] equals nbytes (the two functions agree)."""
    trace = ReplayTrace(segments)
    finish = transmission_finish_time(trace, start, nbytes)
    transferred = bytes_transferable(trace, start, finish)
    assert transferred == pytest.approx(nbytes, rel=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    bandwidth=st.floats(min_value=10.0, max_value=1e6),
    start=st.floats(min_value=0.0, max_value=10.0),
    nbytes=st.integers(min_value=1, max_value=10**6),
)
def test_finish_time_monotone_in_bytes(bandwidth, start, nbytes):
    trace = flat(bandwidth, duration=5.0)
    t_small = transmission_finish_time(trace, start, nbytes)
    t_large = transmission_finish_time(trace, start, nbytes * 2)
    assert t_large >= t_small >= start
