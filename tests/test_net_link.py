"""Modulated links: serialization, FIFO delivery, stats."""

import pytest

from repro.errors import LinkDown, NetworkError
from repro.net.link import SimplexLink
from repro.net.packet import HEADER_BYTES, Packet
from repro.sim.kernel import Simulator
from repro.trace.replay import ReplayTrace, Segment


def make_packet(size, tag=None):
    return Packet(src="a", dst="b", port="p", size=size, payload=tag)


def collecting_link(sim, trace):
    received = []
    link = SimplexLink(sim, trace, "test-link",
                       deliver=lambda p: received.append((sim.now, p)))
    return link, received


def test_packet_smaller_than_header_rejected():
    with pytest.raises(NetworkError):
        make_packet(HEADER_BYTES - 1)


def test_payload_bytes_excludes_header():
    packet = make_packet(HEADER_BYTES + 100)
    assert packet.payload_bytes == 100


def test_single_packet_latency_plus_transmission():
    sim = Simulator()
    trace = ReplayTrace([Segment(100, 1000, 0.5)])
    link, received = collecting_link(sim, trace)
    link.send(make_packet(1000))
    sim.run()
    # 1 s serialization + 0.5 s propagation.
    assert received[0][0] == pytest.approx(1.5)


def test_packets_serialize_fifo():
    sim = Simulator()
    trace = ReplayTrace([Segment(100, 1000, 0.0)])
    link, received = collecting_link(sim, trace)
    for tag in ("first", "second", "third"):
        link.send(make_packet(1000, tag))
    sim.run()
    times = [t for t, _ in received]
    tags = [p.payload for _, p in received]
    assert tags == ["first", "second", "third"]
    assert times == pytest.approx([1.0, 2.0, 3.0])


def test_transmission_straddles_bandwidth_step():
    sim = Simulator()
    trace = ReplayTrace([Segment(1, 1000, 0.0), Segment(100, 3000, 0.0)])
    link, received = collecting_link(sim, trace)
    # 4000 bytes: 1000 in the first second, 3000 in the next -> t=2.
    link.send(make_packet(4000))
    sim.run()
    assert received[0][0] == pytest.approx(2.0)


def test_fifo_preserved_across_latency_drop():
    sim = Simulator()
    trace = ReplayTrace([Segment(1.05, 10000, 1.0), Segment(100, 10000, 0.0)])
    link, received = collecting_link(sim, trace)
    link.send(make_packet(10000))  # finishes t=1, delivered t=2 (latency 1.0)
    link.send(make_packet(1000))   # finishes t=1.1, latency now 0
    sim.run()
    tags = [p.packet_id for _, p in received]
    assert tags == sorted(tags)
    assert received[1][0] >= received[0][0]


def test_stats_accumulate():
    sim = Simulator()
    trace = ReplayTrace([Segment(100, 1000, 0.0)])
    link, _ = collecting_link(sim, trace)
    for _ in range(3):
        link.send(make_packet(500))
    sim.run()
    assert link.stats.packets_sent == 3
    assert link.stats.bytes_sent == 1500
    assert link.stats.busy_seconds == pytest.approx(1.5)
    assert link.stats.max_queue_depth >= 2


def test_zero_bandwidth_forever_raises_linkdown():
    sim = Simulator()
    trace = ReplayTrace([Segment(1, 0, 0.0)])
    link, _ = collecting_link(sim, trace)
    link.send(make_packet(100))
    with pytest.raises(LinkDown):
        sim.run()


def test_stalled_packet_resumes_after_outage():
    sim = Simulator()
    trace = ReplayTrace([
        Segment(1, 1000, 0.0), Segment(5, 0, 0.0), Segment(100, 1000, 0.0),
    ])
    link, received = collecting_link(sim, trace)
    link.send(make_packet(2000))  # 1000 by t=1, stall 5 s, 1000 more by t=7
    sim.run()
    assert received[0][0] == pytest.approx(7.0)
