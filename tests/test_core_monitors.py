"""Monitors for the non-network resources of Fig. 3(c)."""

import pytest

from repro.core.monitors import (
    BatteryMonitor,
    CpuMonitor,
    DiskCacheMonitor,
    MoneyMonitor,
)
from repro.core.warden import WardenCache
from repro.errors import OdysseyError, ReproError


def test_battery_drains_linearly(sim):
    battery = BatteryMonitor(sim, capacity_minutes=10, tick=1.0)
    sim.run(until=60.0)
    assert battery.current() == pytest.approx(9.0, abs=0.05)


def test_battery_load_scales_drain(sim):
    battery = BatteryMonitor(sim, capacity_minutes=10, load=2.0, tick=1.0)
    sim.run(until=60.0)
    assert battery.current() == pytest.approx(8.0, abs=0.1)


def test_battery_never_negative(sim):
    battery = BatteryMonitor(sim, capacity_minutes=0.05, tick=1.0)
    sim.run(until=10.0)
    assert battery.current() == 0.0


def test_battery_validation(sim):
    with pytest.raises(ReproError):
        BatteryMonitor(sim, capacity_minutes=0)
    battery = BatteryMonitor(sim, capacity_minutes=10)
    with pytest.raises(ReproError):
        battery.set_load(-1)


def test_battery_history_recorded(sim):
    battery = BatteryMonitor(sim, capacity_minutes=10, tick=1.0)
    sim.run(until=5.0)
    assert len(battery.history) == 5


def test_cpu_monitor(sim):
    cpu = CpuMonitor(sim, rating_specint95=3.05)
    assert cpu.current() == pytest.approx(3.05)
    cpu.set_load(0.5)
    assert cpu.current() == pytest.approx(1.525)
    with pytest.raises(ReproError):
        cpu.set_load(1.5)
    with pytest.raises(ReproError):
        CpuMonitor(sim, rating_specint95=0)


def test_disk_cache_monitor_aggregates(sim):
    monitor = DiskCacheMonitor(sim)
    cache_a, cache_b = WardenCache(1024 * 10), WardenCache(1024 * 20)
    monitor.watch(cache_a)
    monitor.watch(cache_b)
    assert monitor.current() == pytest.approx(30.0)  # KB free
    cache_a.put("x", None, 5120)
    assert monitor.current() == pytest.approx(25.0)
    with pytest.raises(OdysseyError):
        monitor.watch(cache_a)


def test_money_monitor_budget(sim):
    money = MoneyMonitor(sim, budget_cents=100, cents_per_megabyte=10)
    money.charge(25)
    assert money.current() == 75
    money.charge_bytes(1024 * 1024)  # one megabyte
    assert money.current() == pytest.approx(65)
    assert money.spent == pytest.approx(35)
    with pytest.raises(ReproError):
        money.charge(-1)
    with pytest.raises(ReproError):
        MoneyMonitor(sim, budget_cents=-1)


def test_money_floor_at_zero(sim):
    money = MoneyMonitor(sim, budget_cents=10)
    money.charge(100)
    assert money.current() == 0.0


def test_cpu_monitor_pokes_viceroy(sim, viceroy):
    cpu = CpuMonitor(sim, rating_specint95=3.0)
    viceroy.attach_monitor(cpu)
    from repro.core.resources import Resource

    assert viceroy.availability(Resource.CPU) == 3.0
    cpu.set_load(0.9)
    assert viceroy.availability(Resource.CPU) == pytest.approx(0.3)
