"""Broker behavior: handshake, namespaces, relays, upcalls, liveness."""

import asyncio

import pytest

from repro.broker import Broker, BrokerClient
from repro.connectivity import AsyncHeartbeatProber
from repro.errors import RemoteCallError, RpcTimeout, TransportError


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


async def start_broker(**kwargs):
    broker = Broker(port=0, **kwargs)
    await broker.start()
    return broker


async def connect(broker, name):
    host, port = broker.address
    return await BrokerClient(host, port, name).connect()


def test_hello_assigns_a_namespace():
    async def scenario():
        broker = await start_broker()
        client = await connect(broker, "alpha")
        try:
            return (client.namespace, client.heartbeat_seconds,
                    broker.describe()["clients"])
        finally:
            await client.close()
            await broker.close()

    namespace, heartbeat, clients = run(scenario())
    assert namespace == "clients/alpha"
    assert heartbeat == broker_default_heartbeat()
    assert clients == 1


def broker_default_heartbeat():
    from repro.broker import DEFAULT_HEARTBEAT_TIMEOUT

    return DEFAULT_HEARTBEAT_TIMEOUT


def test_duplicate_names_are_rejected():
    async def scenario():
        broker = await start_broker()
        first = await connect(broker, "alpha")
        try:
            with pytest.raises(RemoteCallError, match="already connected"):
                await connect(broker, "alpha")
        finally:
            await first.close()
            await broker.close()

    run(scenario())


def test_calls_before_hello_are_rejected():
    async def scenario():
        broker = await start_broker()
        host, port = broker.address
        client = BrokerClient(host, port, "rude")
        from repro.transport import connect_tcp

        client.channel = await connect_tcp(host, port, client._on_message,
                                           on_close=client._on_close)
        try:
            with pytest.raises(RemoteCallError, match="__hello__"):
                await client.call("echo", {"x": 1})
            await client.ping()  # the ping probe alone works pre-hello
        finally:
            await client.close(polite=False)
            await broker.close()

    run(scenario())


def test_namespace_enforcement():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        try:
            with pytest.raises(RemoteCallError, match="outside your "
                                                      "namespace"):
                await alpha.call("__register__",
                                 {"op": "clients/beta/steal"})
            return broker.namespace_rejections
        finally:
            await alpha.close()
            await broker.close()

    assert run(scenario()) == 1


def test_relayed_calls_route_to_the_registered_owner():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        beta = await connect(broker, "beta")
        try:
            op = await beta.register_op("double",
                                        lambda body: {"v": body["v"] * 2})
            reply = await alpha.call(op, {"v": 21})
            fault_op = await beta.register_op(
                "boom", lambda body: (_ for _ in ()).throw(
                    ValueError("broken handler")))
            with pytest.raises(RemoteCallError,
                               match="broken handler") as caught:
                await alpha.call(fault_op, {})
            return reply, caught.value.kind, broker.calls_relayed
        finally:
            await alpha.close()
            await beta.close()
            await broker.close()

    reply, kind, relayed = run(scenario())
    assert reply == {"v": 42}
    assert kind == "ValueError"
    assert relayed == 2


def test_upcall_reaches_only_the_owning_connection():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        beta = await connect(broker, "beta")
        try:
            await alpha.request(0.0, 100.0)
            got = asyncio.Event()
            alpha.on_upcall(lambda body: got.set())
            pushed = await beta.report(500.0)
            await asyncio.wait_for(got.wait(), 5.0)
            # The ack must land before the broker counts it; poll briefly.
            for _ in range(100):
                if broker.upcalls_acked == 1:
                    break
                await asyncio.sleep(0.01)
            return (pushed, list(alpha.upcalls_received),
                    list(beta.upcalls_received), broker.upcalls_sent,
                    broker.upcalls_acked)
        finally:
            await alpha.close()
            await beta.close()
            await broker.close()

    pushed, alpha_upcalls, beta_upcalls, sent, acked = run(scenario())
    assert pushed == 1
    assert [u["level"] for u in alpha_upcalls] == [500.0]
    assert beta_upcalls == []
    assert (sent, acked) == (1, 1)


def test_windows_are_one_shot_and_cancellable():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        try:
            await alpha.request(0.0, 100.0)
            first = await alpha.report(500.0)
            second = await alpha.report(600.0)  # window already dropped
            rid = await alpha.request(0.0, 1000.0)
            await alpha.cancel(rid)
            third = await alpha.report(5000.0)  # cancelled: no upcall
            return first, second, third
        finally:
            await alpha.close()
            await broker.close()

    assert run(scenario()) == (1, 0, 0)


def test_request_outside_current_level_fails_like_the_viceroy():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        try:
            await alpha.report(50.0)
            with pytest.raises(RemoteCallError, match="available=50"):
                await alpha.request(100.0, 200.0)
        finally:
            await alpha.close()
            await broker.close()

    run(scenario())


def test_socket_death_tears_down_the_session():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        beta = await connect(broker, "beta")
        op = await beta.register_op("slow", lambda body: body)
        await beta.request(0.0, 100.0)
        # Kill beta's socket without a goodbye: the broker must clean up
        # its name, its op, and its registration.
        beta.channel.close()
        await beta.channel.wait_closed()
        for _ in range(200):
            if broker.describe()["clients"] == 1:
                break
            await asyncio.sleep(0.01)
        state = broker.describe()
        with pytest.raises(RemoteCallError, match="no handler"):
            await alpha.call(op, {})  # op unregistered with its owner
        replacement = await connect(broker, "beta")  # name is free again
        pushed = await alpha.report(500.0)  # dead registration is gone
        await replacement.close()
        await alpha.close()
        await broker.close()
        return state, pushed

    state, pushed = run(scenario())
    assert state["clients"] == 1
    assert state["client_ops"] == 0
    assert state["registrations"] == 0
    assert pushed == 0


def test_owner_death_fails_inflight_relayed_calls():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        beta = await connect(broker, "beta")
        blocked = asyncio.Event()

        def stall(body):
            blocked.set()
            raise RuntimeError("handler never really ran")

        # A handler that never answers: register the op, then kill the
        # owner while alpha's call is in flight.
        op = await beta.register_op("stall", stall)
        del beta._local_ops[op]  # swallow the relayed request silently
        call = asyncio.ensure_future(alpha.call(op, {}, timeout=10.0))
        for _ in range(200):
            if beta.channel.frames_received >= 1 and not call.done():
                break
            await asyncio.sleep(0.01)
        beta.channel.close()
        with pytest.raises(RemoteCallError, match="owner disconnected"):
            await call
        await alpha.close()
        await broker.close()

    run(scenario())


def test_heartbeat_reaper_expires_silent_sessions():
    async def scenario():
        broker = await start_broker(heartbeat_timeout=0.3)
        alpha = await connect(broker, "alpha")
        chatty = await connect(broker, "chatty")
        prober = AsyncHeartbeatProber(chatty, interval=0.05,
                                      timeout=1.0).start()
        # alpha goes silent; chatty keeps pinging.  After a few budgets
        # alpha is reaped and chatty survives.
        await asyncio.sleep(1.0)
        state = broker.describe()
        alive = not chatty.closed and chatty.tracker.state.name == "CONNECTED"
        await prober.stop()
        with pytest.raises((RemoteCallError, RpcTimeout, TransportError)):
            await alpha.call("echo", {})  # session gone; socket closed
        await chatty.close()
        await alpha.close(polite=False)
        await broker.close()
        return state, alive, prober.probes_sent

    state, alive, probes = run(scenario())
    assert state["sessions_expired"] == 1
    assert state["clients"] == 1
    assert alive
    assert probes > 5


def test_probe_failures_feed_the_tracker():
    async def scenario():
        broker = await start_broker()
        alpha = await connect(broker, "alpha")
        successes_before = alpha.tracker.probe_successes
        prober = AsyncHeartbeatProber(alpha, interval=0.02,
                                      timeout=5.0).start()
        await asyncio.sleep(0.2)
        await prober.stop()
        grew = alpha.tracker.probe_successes > successes_before
        await alpha.close()
        await broker.close()
        return grew

    assert run(scenario())
