"""Single-trial smoke runs of every figure/table module, with shape checks.

These are the fast versions of the benchmarks: one seeded trial each,
asserting the qualitative claims the paper makes.  The full five-trial
tables live in benchmarks/.
"""

import math

import pytest

from repro.experiments import concurrent, demand, speech, supply, video, web
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH


# -- Fig. 8: supply agility ------------------------------------------------


def test_step_up_detected_almost_instantaneously():
    trial = supply.run_supply_trial("step-up", seed=0)
    assert trial.detection < 1.5
    assert trial.settling < 3.0


def test_step_down_settles_around_two_seconds():
    trial = supply.run_supply_trial("step-down", seed=0)
    assert 0.5 <= trial.settling <= 4.0  # paper: 2.0 s


def test_impulse_up_leading_edge_traced():
    trial = supply.run_supply_trial("impulse-up", seed=0)
    during = [v for t, v in trial.series if 29.5 <= t <= 31.0]
    assert during and max(during) > 0.8 * HIGH_BANDWIDTH


def test_impulse_down_has_trailing_settling():
    trial = supply.run_supply_trial("impulse-down", seed=0)
    after = [v for t, v in trial.series if 32.0 <= t <= 34.0]
    assert after
    # Recovery toward high is under way but the dip is visible after the
    # impulse ends (trailing settling).
    dip = [v for t, v in trial.series if 30.0 <= t <= 32.0]
    assert min(dip) < 0.6 * HIGH_BANDWIDTH


def test_estimates_lie_below_theoretical():
    trial = supply.run_supply_trial("step-up", seed=0)
    steady = [v for t, v in trial.series if 50 <= t <= 58]
    assert steady
    for value in steady:
        assert value <= HIGH_BANDWIDTH * 1.02


# -- Fig. 9: demand agility --------------------------------------------------


def test_demand_low_utilization_settles_fast():
    trial = demand.run_demand_trial(0.10, seed=0)
    assert trial.second_settling < 8.0


def test_demand_full_utilization_settles_slower_but_settles():
    low = demand.run_demand_trial(0.10, seed=0)
    full = demand.run_demand_trial(1.00, seed=0)
    assert not math.isinf(full.second_settling)
    assert full.second_settling >= low.second_settling * 0.8


def test_demand_total_stays_near_link_capacity():
    trial = demand.run_demand_trial(1.00, seed=0)
    steady = [v for t, v in trial.total_series if 45 <= t <= 58]
    assert steady
    mean = sum(steady) / len(steady)
    assert mean == pytest.approx(HIGH_BANDWIDTH, rel=0.15)


def test_demand_streams_converge_to_fair_shares():
    trial = demand.run_demand_trial(1.00, seed=0)
    tail_second = [v for t, v in trial.second_series if 50 <= t <= 58]
    assert tail_second
    mean = sum(tail_second) / len(tail_second)
    assert mean == pytest.approx(HIGH_BANDWIDTH / 2, rel=0.25)


# -- Fig. 10: video ------------------------------------------------------------


def test_video_adaptive_beats_static_on_step_up():
    adaptive = video.run_video_trial("step-up", "adaptive", seed=0)
    jpeg99 = video.run_video_trial("step-up", "jpeg99", seed=0)
    jpeg50 = video.run_video_trial("step-up", "jpeg50", seed=0)
    # Fidelity at least JPEG-50's, drops far below JPEG-99's (paper's claim).
    assert adaptive.fidelity >= jpeg50.fidelity
    assert adaptive.stats.drops < jpeg99.stats.drops / 5
    assert adaptive.stats.drops < 30


def test_video_adaptive_matches_jpeg99_on_impulse_down():
    adaptive = video.run_video_trial("impulse-down", "adaptive", seed=0)
    assert adaptive.fidelity > 0.95
    assert adaptive.stats.drops < 60


# -- Fig. 11: web ---------------------------------------------------------------


def test_web_adaptive_meets_goal_everywhere():
    for waveform in ("step-up", "impulse-down"):
        browser = web.run_web_trial(waveform, "adaptive", seed=0)
        assert browser.stats.mean_seconds <= 0.45


def test_web_full_quality_misses_goal_except_impulse_down():
    slow = web.run_web_trial("impulse-up", 1.0, seed=0)
    fast = web.run_web_trial("impulse-down", 1.0, seed=0)
    assert slow.stats.mean_seconds > 0.45
    assert fast.stats.mean_seconds <= 0.45


def test_web_adaptive_fidelity_beats_static_that_meets_goal():
    adaptive = web.run_web_trial("step-up", "adaptive", seed=0)
    jpeg50 = web.run_web_trial("step-up", 0.5, seed=0)
    assert adaptive.stats.mean_fidelity > jpeg50.stats.mean_fidelity


# -- Fig. 12: speech ----------------------------------------------------------------


def test_speech_adaptive_reproduces_always_hybrid():
    for waveform in ("step-up", "impulse-down"):
        hybrid = speech.run_speech_trial(waveform, "hybrid", seed=0)
        adaptive = speech.run_speech_trial(waveform, "adaptive", seed=0)
        assert adaptive.stats.mean_seconds == pytest.approx(
            hybrid.stats.mean_seconds, abs=0.03
        )


def test_speech_remote_slower_at_reference_bandwidths():
    hybrid = speech.run_speech_trial("impulse-up", "hybrid", seed=0)
    remote = speech.run_speech_trial("impulse-up", "remote", seed=0)
    assert remote.stats.mean_seconds > hybrid.stats.mean_seconds + 0.1


# -- Fig. 14: concurrency -------------------------------------------------------------


@pytest.mark.slow
def test_concurrent_policy_ordering():
    results = {
        policy: concurrent.run_concurrent_trial(policy, seed=1)
        for policy in ("odyssey", "laissez-faire", "blind-optimism")
    }
    odyssey = results["odyssey"]
    laissez = results["laissez-faire"]
    blind = results["blind-optimism"]
    # Drops: Odyssey fewest, blind optimism most (paper: factors of 2-5).
    assert odyssey.video.stats.drops * 2 < laissez.video.stats.drops
    assert laissez.video.stats.drops < blind.video.stats.drops
    # Web pages load faster under Odyssey.
    assert odyssey.web.stats.mean_seconds < laissez.web.stats.mean_seconds
    assert odyssey.web.stats.mean_seconds < blind.web.stats.mean_seconds
    # Speech recognition fastest under Odyssey.
    assert odyssey.speech.stats.mean_seconds <= blind.speech.stats.mean_seconds
    # The trade: Odyssey runs at *lower* fidelity to meet performance goals.
    assert odyssey.video.fidelity < blind.video.fidelity
    assert odyssey.web.stats.mean_fidelity < blind.web.stats.mean_fidelity
