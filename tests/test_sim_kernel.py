"""Unit tests for the simulator event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, Timeout
from repro.sim.kernel import Simulator


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_time(sim):
    fired = []
    sim.timeout(2.5).add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_timeout_carries_value(sim):
    seen = []
    sim.timeout(1.0, value="payload").add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_order(sim):
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay, value=delay).add_callback(lambda e: order.append(e.value))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order(sim):
    order = []
    for tag in "abcde":
        sim.timeout(1.0, value=tag).add_callback(lambda e: order.append(e.value))
    sim.run()
    assert order == list("abcde")


def test_run_until_time_stops_exactly(sim):
    fired = []
    sim.timeout(5.0).add_callback(lambda e: fired.append("late"))
    sim.timeout(1.0).add_callback(lambda e: fired.append("early"))
    sim.run(until=3.0)
    assert fired == ["early"]
    assert sim.now == 3.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_past_time_rejected(sim):
    sim.run(until=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_run_until_event_returns_value(sim):
    event = sim.event()
    sim.call_in(2.0, event.succeed, 42)
    assert sim.run(until=event) == 42
    assert sim.now == 2.0


def test_run_until_failed_event_raises(sim):
    event = sim.event()
    sim.call_in(1.0, event.fail, ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=event)


def test_run_until_event_never_fired_raises(sim):
    event = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError, match="drained"):
        sim.run(until=event)


def test_step_on_empty_queue_raises(sim):
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time(sim):
    assert sim.peek() is None
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_call_at_and_call_in(sim):
    calls = []
    sim.call_at(2.0, calls.append, "at")
    sim.call_in(1.0, calls.append, "in")
    sim.run()
    assert calls == ["in", "at"]


def test_call_at_past_rejected(sim):
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_event_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_event_value_before_trigger_raises(sim):
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_unhandled_failed_event_propagates(sim):
    sim.event().fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_defused_failure_does_not_propagate(sim):
    event = sim.event()
    event.fail(RuntimeError("handled"))
    event.defuse()
    sim.run()  # no raise


def test_late_callback_runs_immediately(sim):
    event = sim.timeout(1.0, value="x")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_many_events_deterministic():
    def run_once():
        sim = Simulator()
        order = []
        for i in range(500):
            delay = (i * 37) % 97 / 10.0
            sim.timeout(delay, value=i).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        return order

    assert run_once() == run_once()
