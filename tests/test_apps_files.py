"""Consistency as fidelity: the file warden and document reader."""

import pytest

from repro.apps.files import (
    CONSISTENCY_LEVELS,
    DocumentReader,
    build_files,
)
from repro.apps.files.server import file_bytes
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.errors import OdysseyError, ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant


def build_world(bandwidth=HIGH_BANDWIDTH, update_period=None, n_docs=3):
    sim = Simulator()
    network = Network(sim, constant(bandwidth, duration=3600))
    viceroy = Viceroy(sim, network)
    warden, server = build_files(sim, viceroy, network,
                                 update_period=update_period)
    docs = [server.create(f"doc{i}") for i in range(n_docs)]
    api = OdysseyAPI(viceroy, "reader")
    return sim, warden, server, api, docs


def read_doc(sim, api, name):
    def flow():
        fd = api.open(f"/odyssey/files/{name}")
        contents = yield from api.read(fd)
        api.close(fd)
        return contents

    process = sim.process(flow())
    sim.run(until=sim.now + 10.0)
    return process.value


def test_file_sizes_deterministic():
    assert file_bytes("a", 1) == file_bytes("a", 1)
    assert file_bytes("a", 1) != file_bytes("a", 2)


def test_server_versioning():
    sim, warden, server, api, docs = build_world()
    assert server.version("doc0") == 1
    server.touch("doc0")
    assert server.version("doc0") == 2
    with pytest.raises(ReproError):
        server.version("ghost")
    with pytest.raises(ReproError):
        server.create("doc0")


def test_first_read_fetches_then_cache_serves():
    sim, warden, server, api, docs = build_world()
    first = read_doc(sim, api, "doc0")
    assert first["version"] == 1
    assert warden.refetches == 1
    # Strong consistency: the second read validates but need not refetch.
    second = read_doc(sim, api, "doc0")
    assert second["version"] == 1
    assert warden.validations == 1
    assert warden.refetches == 1


def test_strong_consistency_never_serves_stale():
    sim, warden, server, api, docs = build_world()
    read_doc(sim, api, "doc0")
    server.touch("doc0")
    contents = read_doc(sim, api, "doc0")
    assert contents["version"] == 2  # validation noticed, refetched


def test_relaxed_consistency_can_serve_stale_within_bound():
    sim, warden, server, api, docs = build_world()

    def flow():
        yield from api.tsop("/odyssey/files", "set-consistency",
                            {"consistency": 0.1})

    sim.process(flow())
    sim.run(until=1.0)
    read_doc(sim, api, "doc0")
    server.touch("doc0")
    contents = read_doc(sim, api, "doc0")  # within the 60 s bound
    assert contents["version"] == 1  # stale, by design
    assert warden.cache_serves >= 1


def test_relaxed_consistency_revalidates_after_bound():
    sim, warden, server, api, docs = build_world()

    def flow():
        yield from api.tsop("/odyssey/files", "set-consistency",
                            {"consistency": 0.1})

    sim.process(flow())
    sim.run(until=1.0)
    read_doc(sim, api, "doc0")
    server.touch("doc0")
    sim.run(until=sim.now + 61.0)  # past the 60 s staleness bound
    contents = read_doc(sim, api, "doc0")
    assert contents["version"] == 2


def test_consistency_level_validated():
    sim, warden, server, api, docs = build_world()

    def flow():
        try:
            yield from api.tsop("/odyssey/files", "set-consistency",
                                {"consistency": 0.7})
        except OdysseyError:
            return "rejected"

    process = sim.process(flow())
    sim.run(until=1.0)
    assert process.value == "rejected"


def test_stat_reports_cached_metadata():
    sim, warden, server, api, docs = build_world()
    read_doc(sim, api, "doc0")
    stat = api.stat("/odyssey/files/doc0")
    assert stat["version"] == 1
    assert stat["size"] > 0
    from repro.errors import NoSuchObject

    with pytest.raises(NoSuchObject):
        api.stat("/odyssey/files/never-read")


def run_reader(bandwidth, policy, update_period=3.0, until=60.0):
    sim, warden, server, api, docs = build_world(
        bandwidth=bandwidth, update_period=update_period
    )
    reader = DocumentReader(sim, api, "reader", "/odyssey/files", docs,
                            server, period_seconds=0.5, policy=policy)
    reader.start()
    sim.run(until=until)
    return reader, warden


def test_strong_reader_is_never_stale_but_pays_latency():
    reader, warden = run_reader(HIGH_BANDWIDTH, 1.0)
    assert reader.stats.count > 50
    assert reader.stats.stale_reads == 0
    assert reader.stats.mean_open_seconds > 0.02  # every open pays the wire


def test_relaxed_reader_is_fast_but_sometimes_stale():
    reader, warden = run_reader(HIGH_BANDWIDTH, 0.1)
    assert reader.stats.mean_open_seconds < 0.05
    assert reader.stats.stale_reads > 0  # the §2.2 trade, visible


def test_adaptive_reader_relaxes_at_low_bandwidth():
    strong_low, _ = run_reader(LOW_BANDWIDTH, 1.0)
    adaptive_low, _ = run_reader(LOW_BANDWIDTH, "adaptive")
    # At 40 KB/s the adaptive reader drops to a weaker consistency level,
    # opening faster than the always-strong reader...
    assert adaptive_low.stats.mean_open_seconds < \
        strong_low.stats.mean_open_seconds * 0.7
    levels = [level for _, _, _, _, level in adaptive_low.stats.opens]
    # The first open (no estimate) may be strong; the steady state is not.
    assert levels and max(levels[2:]) < 1.0
    # ...at the cost of some staleness (fidelity lowered, §2.2).
    assert adaptive_low.stats.stale_fraction >= 0.0


def test_adaptive_reader_stays_strong_at_high_bandwidth():
    adaptive, _ = run_reader(HIGH_BANDWIDTH, "adaptive")
    levels = [level for _, _, _, _, level in adaptive.stats.opens]
    assert levels
    assert max(levels) == 1.0
    assert sum(1 for l in levels if l == 1.0) / len(levels) > 0.8