"""Bulk transfers: windowed fetch, push, throughput logging."""

import pytest

from repro.errors import RpcError
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.trace.waveforms import HIGH_BANDWIDTH


@pytest.fixture
def service(sim, network):
    server = network.add_host("server")
    return RpcService(sim, server, "bulk")


@pytest.fixture
def connection(sim, network, service):
    return RpcConnection(sim, network, "server", "bulk", "bulk-conn")


def register_blob(service, nbytes, meta=None):
    service.register(
        "get-blob",
        lambda body: ServerReply(
            body="ok", bulk=service.make_bulk(nbytes, meta=meta)
        ),
    )


def test_fetch_returns_sizes_and_meta(sim, connection, service, run_process):
    register_blob(service, 100_000, meta={"kind": "blob"})

    def client():
        reply, meta, nbytes = yield from connection.fetch("get-blob")
        return reply, meta, nbytes

    reply, meta, nbytes = run_process(client())
    assert reply == "ok"
    assert meta == {"kind": "blob"}
    assert nbytes == 100_000


def test_fetch_time_matches_bandwidth(sim, connection, service, run_process):
    register_blob(service, 120 * 1024)

    def client():
        yield from connection.fetch("get-blob")
        return sim.now

    finished = run_process(client())
    # 120 KB at 120 KB/s is ~1 s; protocol overhead adds a bit.
    assert 1.0 <= finished <= 1.4


def test_throughput_entries_one_per_window(sim, connection, service, run_process):
    register_blob(service, 100_000)

    def client():
        yield from connection.fetch("get-blob")

    run_process(client())
    windows = connection.log.throughputs
    # 100 000 bytes in 32 KiB windows -> 4 windows (3 full + remainder).
    assert len(windows) == 4
    assert sum(w.nbytes for w in windows) == 100_000
    assert windows[-1].nbytes == 100_000 - 3 * 32 * 1024
    for window in windows:
        assert window.seconds > 0
        assert window.raw_rate <= HIGH_BANDWIDTH * 1.01


def test_fetch_without_bulk_raises(sim, connection, service):
    service.register("no-bulk", lambda body: ServerReply(body="x"))

    def client():
        yield from connection.fetch("no-bulk")

    sim.process(client())
    with pytest.raises(RpcError, match="no bulk data"):
        sim.run()


def test_fetch_ticket_can_resume(sim, connection, service, run_process):
    register_blob(service, 64 * 1024)

    def client():
        reply, ticket = yield from connection.call("get-blob")
        transfer_id, nbytes, _ = ticket
        got = yield from connection.fetch_ticket(transfer_id, nbytes)
        return got

    assert run_process(client()) == 64 * 1024


def test_bulk_source_freed_after_consumption(sim, connection, service, run_process):
    register_blob(service, 10_000)

    def client():
        yield from connection.fetch("get-blob")

    run_process(client())
    assert service._bulk_sources == {}


def test_push_ships_bytes_and_returns_reply(sim, connection, service, run_process):
    received = []

    def recognize(body):
        received.append(body)
        return ServerReply(body="text-result", compute_seconds=0.2)

    service.register("recognize", recognize)

    def client():
        reply = yield from connection.push("recognize", 50_000, body={"x": 1})
        return reply, sim.now

    reply, finished = run_process(client())
    assert reply == "text-result"
    assert received == [{"x": 1}]
    # 50 KB upstream at 120 KB/s ~ 0.41 s plus compute 0.2 plus overhead.
    assert 0.6 <= finished <= 1.0


def test_push_logs_sender_side_throughput(sim, connection, service, run_process):
    service.register("sink", lambda body: ServerReply())

    def client():
        yield from connection.push("sink", 70_000)

    run_process(client())
    windows = connection.log.throughputs
    assert len(windows) == 3  # 70 000 in 32 KiB windows
    assert sum(w.nbytes for w in windows) == 70_000


def test_push_throughput_excludes_server_compute(sim, connection, service,
                                                 run_process):
    service.register("slow-sink", lambda body: ServerReply(compute_seconds=5.0))

    def client():
        yield from connection.push("slow-sink", 32 * 1024)

    run_process(client())
    window = connection.log.throughputs[-1]
    # The window's ack returns before the 5 s compute; the throughput entry
    # must reflect transmission, not recognition time.
    assert window.seconds < 1.0


def test_push_requires_positive_bytes(connection):
    with pytest.raises(RpcError):
        next(connection.push("op", 0))


def test_deliveries_recorded_for_aggregation(sim, connection, service,
                                             run_process):
    register_blob(service, 40_000)

    def client():
        yield from connection.fetch("get-blob")

    run_process(client())
    assert connection.log.delivered_total >= 40_000
    assert connection.log.bytes_delivered_between(0, sim.now) >= 40_000
