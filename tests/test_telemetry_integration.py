"""End-to-end: instrumented experiment trials and the telemetry CLI."""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.experiments.supply import run_supply_trial
from repro.telemetry.export import events_to_series
from repro.telemetry.recorder import NULL_RECORDER


@pytest.fixture(scope="module")
def fig8_recorder():
    """One instrumented fig8 supply trial, shared across this module."""
    with telemetry.enabled() as rec:
        run_supply_trial("step-up", seed=0)
    return rec


def test_estimator_update_spans_recorded(fig8_recorder):
    trace = fig8_recorder.trace
    begins = trace.events(name="estimator.update", kind="begin")
    ends = trace.events(name="estimator.update", kind="end")
    assert begins and len(begins) == len(ends)
    # Only RPC operations in flight when the run was cut off may stay open.
    by_span = {e["span"]: e["name"] for e in trace.events(kind="begin")}
    assert all(by_span[s].startswith("rpc.") for s in trace.open_spans)


def test_upcall_events_recorded(fig8_recorder):
    trace = fig8_recorder.trace
    sent = trace.events(name="upcall.sent")
    delivered = trace.events(name="upcall.delivered")
    assert sent and delivered
    assert all(e["fields"]["latency"] >= 0.0 for e in delivered)


def test_live_events_have_monotonic_sim_timestamps(fig8_recorder):
    # Samples carry historical, caller-supplied timestamps; every *live*
    # event (point/begin/end) must appear in sim-time order.
    times = [e["t"] for e in fig8_recorder.trace.events()
             if e["kind"] != "sample"]
    assert times == sorted(times)


def test_estimate_series_bridged_into_trace(fig8_recorder):
    series = fig8_recorder.trace.series("fig8.estimate")
    assert len(series) > 10
    times = [t for t, _ in series]
    assert times == sorted(times)


def test_metrics_cover_rpc_upcalls_and_estimation(fig8_recorder):
    snap = fig8_recorder.registry.snapshot()
    counters = {c["name"] for c in snap["counters"]}
    histograms = {h["name"] for h in snap["histograms"]}
    assert {"rpc.calls", "upcalls.sent", "viceroy.upcalls",
            "estimation.rtt_updates"} <= counters
    assert {"rpc.round_trip_seconds", "upcalls.delivery_seconds"} <= histograms


def test_cli_telemetry_command(tmp_path, capsys):
    events_path = tmp_path / "events.jsonl"
    status = main(["telemetry", "--scenario", "fig8-supply",
                   "--waveform", "step-up", "--events-out", str(events_path)])
    assert status == 0
    assert telemetry.RECORDER is NULL_RECORDER  # no leak past the command
    captured = capsys.readouterr()
    assert "counters" in captured.out
    assert "upcalls.sent" in captured.out
    assert "# wrote" in captured.err
    events = [json.loads(line)
              for line in events_path.read_text().strip().split("\n")]
    assert any(e["kind"] == "begin" and e["name"] == "estimator.update"
               for e in events)
    assert events_to_series(events, "fig8.estimate")


def test_cli_events_out_wraps_experiment_commands(tmp_path, capsys):
    events_path = tmp_path / "fig8-events.jsonl"
    status = main(["fig8", "--waveform", "step-up", "--trials", "1",
                   "--events-out", str(events_path)])
    assert status == 0
    assert telemetry.RECORDER is NULL_RECORDER
    assert "# wrote" in capsys.readouterr().err
    events = [json.loads(line)
              for line in events_path.read_text().strip().split("\n")]
    assert any(e["name"] == "upcall.delivered" for e in events)
