"""Experiment machinery: worlds, seeding, stats cells."""

import pytest

from repro.core.policies import (
    BlindOptimismPolicy,
    LaissezFairePolicy,
    OdysseyPolicy,
)
from repro.errors import ReproError
from repro.experiments.harness import (
    PRIME_SECONDS,
    ExperimentWorld,
    seeded_rngs,
)
from repro.experiments.stats import Cell
from repro.trace.waveforms import LOW_BANDWIDTH, step_up


def test_world_primes_the_trace():
    world = ExperimentWorld("step-up")
    assert world.trace.duration == 60.0 + PRIME_SECONDS
    assert world.trace.bandwidth_at(0) == LOW_BANDWIDTH
    assert world.trace.bandwidth_at(PRIME_SECONDS + 1) == LOW_BANDWIDTH


def test_world_accepts_trace_object():
    world = ExperimentWorld(step_up())
    assert world.base_trace.name == "step-up"


def test_world_policies():
    assert isinstance(ExperimentWorld("step-up").viceroy.policy, OdysseyPolicy)
    assert isinstance(
        ExperimentWorld("step-up", policy="laissez-faire").viceroy.policy,
        LaissezFairePolicy,
    )
    assert isinstance(
        ExperimentWorld("step-up", policy="blind-optimism").viceroy.policy,
        BlindOptimismPolicy,
    )
    with pytest.raises(ReproError):
        ExperimentWorld("step-up", policy="anarchy")


def test_relative_shifts_by_prime():
    world = ExperimentWorld("step-up")
    assert world.relative([(PRIME_SECONDS + 5.0, 1)]) == [(5.0, 1)]


def test_run_for_advances_past_prime():
    world = ExperimentWorld("step-up")
    world.run_for(10.0)
    assert world.sim.now == PRIME_SECONDS + 10.0


def test_seeded_rngs_independent_and_reproducible():
    first = seeded_rngs(3, master_seed=9)
    second = seeded_rngs(3, master_seed=9)
    values_first = [rng.stream("x").random() for rng in first]
    values_second = [rng.stream("x").random() for rng in second]
    assert values_first == values_second
    assert len(set(values_first)) == 3


def test_start_offsets_are_seeded():
    a = ExperimentWorld("step-up", seed=1).start_offset()
    b = ExperimentWorld("step-up", seed=1).start_offset()
    c = ExperimentWorld("step-up", seed=2).start_offset()
    assert a == b
    assert a != c
    assert 0 <= a <= 0.25


def test_cell_statistics():
    cell = Cell([1.0, 2.0, 3.0])
    assert cell.mean == 2.0
    assert cell.std == pytest.approx(1.0)
    assert str(cell) == "2.00 (1.00)"
    assert str(Cell([5], precision=0)) == "5 (0)"
    with pytest.raises(ReproError):
        Cell([])
