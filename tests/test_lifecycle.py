"""Connection lifecycle end to end: connect → transfer → fault → retry →
unregister → re-register, plus regressions for the teardown bugfixes."""

import pytest

from repro.core.resources import Resource
from repro.errors import OdysseyError, RpcTimeout
from repro.experiments.robustness import RobustWarden, run_robustness_trial
from repro.faults import Blackout, FaultPlan, ServerStall
from repro.rpc.connection import RetryPolicy, RpcService
from repro.rpc.messages import ServerReply

OBJECT_BYTES = 16 * 1024
PATH = "/odyssey/robust/x"


@pytest.fixture
def wired(sim, network, viceroy):
    server = network.add_host("server")
    service = RpcService(sim, server, "svc")
    service.register(
        "get",
        lambda body: ServerReply(body_bytes=64,
                                 bulk=service.make_bulk(OBJECT_BYTES)),
    )
    warden = RobustWarden(
        sim, viceroy, "robust",
        retry=RetryPolicy(timeout=1.0, retries=6, backoff=0.25,
                          multiplier=1.0),
    )
    viceroy.mount("/odyssey/robust", warden)
    conn = warden.open_connection("server", "svc")
    return service, warden, conn


def test_transfer_then_clean_close(sim, viceroy, wired, api, run_process):
    service, warden, conn = wired

    def go():
        nbytes = yield from api.tsop(PATH, "fetch")
        assert nbytes == OBJECT_BYTES

    run_process(go())
    warden.close_connection(conn)
    assert conn not in warden.connections
    with pytest.raises(OdysseyError):
        viceroy.availability_for_connection(conn.connection_id)


def test_close_connection_requires_ownership(sim, viceroy, wired):
    _, _, conn = wired
    stranger = RobustWarden(sim, viceroy, "stranger")
    with pytest.raises(OdysseyError):
        stranger.close_connection(conn)


def test_late_reply_after_close_lands_harmlessly(sim, wired, run_process):
    """A reply in flight when its connection closes must not crash the host."""
    service, _, conn = wired
    service.register(
        "slow", lambda body: ServerReply(body_bytes=64, compute_seconds=0.05)
    )

    def go():
        with pytest.raises(RpcTimeout):
            yield from conn.call("slow", timeout=0.2)

    sim.call_in(0.02, conn.close)  # mid-flight: request sent, reply pending
    run_process(go())
    assert conn.late_replies == 1


def test_failover_notifies_and_allows_reregistration(sim, viceroy, wired,
                                                     api, run_process):
    service, warden, conn = wired
    notices = []
    api.on_upcall("w", notices.append)

    def seed():
        for _ in range(5):
            yield from api.tsop(PATH, "fetch")

    run_process(seed())
    api.request(PATH, Resource.NETWORK_BANDWIDTH, 0.0, 1e12, handler="w")

    replacement = warden.failover_connection(conn)
    assert warden.primary_connection() is replacement
    assert replacement.connection_id != conn.connection_id
    assert warden.failovers == 1

    sim.run(until=sim.now + 1.0)
    # The registration riding the dead connection was torn down with the
    # level=None teardown upcall...
    assert [u.level for u in notices] == [None]
    assert viceroy.registered_requests(api.app) == []
    # ...and the app can immediately re-register and keep transferring
    # through the replacement.
    api.request(PATH, Resource.NETWORK_BANDWIDTH, 0.0, 1e12, handler="w")

    def after():
        nbytes = yield from api.tsop(PATH, "fetch")
        assert nbytes == OBJECT_BYTES

    run_process(after())
    assert len(viceroy.registered_requests(api.app)) == 1


def test_full_lifecycle_under_faults():
    """The whole stack rides out a blackout, a stall, and a failover."""
    faults = FaultPlan([
        Blackout(start=20.0, duration=5.0),
        ServerStall(start=40.0, duration=5.0),
    ])
    result = run_robustness_trial(
        policy="odyssey", seed=3, duration=80.0, faults=faults,
        failover_at=60.0,
    )
    assert result.completed > 0
    assert result.timeouts > 0
    assert result.retries > 0
    assert result.exhausted == 0  # the retry budget outlasts every fault
    assert result.failovers == 1
    assert result.teardown_notices == 1
    assert result.registrations >= 2  # initial + post-teardown
    assert result.upcall_failures == 0
