"""Metrics registry: counters, gauges, histograms keyed by name + labels."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series,
)


def test_counter_increments_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(TelemetryError):
        counter.inc(-1)


def test_gauge_tracks_extremes_and_updates():
    gauge = Gauge()
    gauge.set(5.0)
    gauge.set(1.0)
    gauge.add(2.0)
    snap = gauge.snapshot()
    assert snap == {"value": 3.0, "min": 1.0, "max": 5.0, "updates": 3}


def test_histogram_buckets_observations():
    hist = Histogram(buckets=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 100.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 4
    assert snap["min"] == 0.5 and snap["max"] == 100.0
    assert snap["mean"] == pytest.approx(106.5 / 4)
    # bisect_left: a value equal to a boundary lands in that bucket.
    assert [b["count"] for b in snap["buckets"]] == [2, 1, 1]
    assert snap["buckets"][-1]["le"] == "inf"


def test_histogram_rejects_unsorted_or_empty_buckets():
    with pytest.raises(TelemetryError):
        Histogram(buckets=())
    with pytest.raises(TelemetryError):
        Histogram(buckets=(2.0, 1.0))


def test_registry_labels_split_series():
    registry = MetricsRegistry()
    registry.counter("rpc.calls", connection="a").inc()
    registry.counter("rpc.calls", connection="b").inc(2)
    registry.counter("rpc.calls", connection="a").inc()
    snap = registry.snapshot()
    values = {format_series(c["name"], c["labels"]): c["value"]
              for c in snap["counters"]}
    assert values == {"rpc.calls{connection=a}": 2.0,
                      "rpc.calls{connection=b}": 2.0}


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("metric")
    with pytest.raises(TelemetryError, match="counter"):
        registry.gauge("metric")


def test_registry_histogram_keeps_first_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(1.0, 2.0))
    assert registry.histogram("latency") is hist
    assert hist.buckets == (1.0, 2.0)
    assert registry.histogram("other").buckets == DEFAULT_BUCKETS


def test_snapshot_is_json_serializable_and_sorted():
    registry = MetricsRegistry()
    registry.gauge("b.gauge").set(1.0)
    registry.counter("a.counter", z="1", a="2").inc()
    registry.histogram("c.hist").observe(0.25)
    snap = registry.snapshot()
    json.dumps(snap)  # must not raise
    assert [c["name"] for c in snap["counters"]] == ["a.counter"]
    assert snap["counters"][0]["labels"] == {"a": "2", "z": "1"}


def test_format_series_without_labels():
    assert format_series("plain", {}) == "plain"
    assert format_series("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
