"""The background information filter (paper §2.3)."""

import pytest

from repro.apps.infofilter import (
    DETAIL_LEVELS,
    POLL_PERIODS,
    build_filter,
)
from repro.core.monitors import MoneyMonitor
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant


def build_world(trace, money=None):
    sim = Simulator()
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)
    if money is not None:
        viceroy.attach_monitor(money)
    app, warden, server = build_filter(sim, viceroy, network, money=money)
    return sim, app, warden, server


def test_filter_polls_and_alerts():
    sim, app, warden, server = build_world(constant(HIGH_BANDWIDTH, duration=600))
    app.start()
    sim.run(until=60.0)
    assert app.stats.count > 10
    assert app.stats.alerts >= 2
    versions = [v for _, v, _ in app.stats.polls]
    assert versions == sorted(versions)  # monotone feed


def test_full_detail_at_high_bandwidth():
    sim, app, warden, server = build_world(constant(HIGH_BANDWIDTH, duration=600))
    app.start()
    sim.run(until=30.0)
    details = {d for _, _, d in app.stats.polls}
    assert details == {1.0}
    assert app.period == POLL_PERIODS[0]


def test_degrades_detail_or_period_at_low_bandwidth():
    sim, app, warden, server = build_world(constant(LOW_BANDWIDTH, duration=600))
    app.start()
    sim.run(until=40.0)
    # Full detail at the fastest period needs ~10 KB/s -- affordable at 40
    # KB/s; but check adaptation machinery picked something affordable.
    assert app.demand(app.detail, app.period) <= LOW_BANDWIDTH * 1.1


def test_low_budget_conserves_money():
    money = MoneyMonitor(sim=Simulator(), budget_cents=100,
                         cents_per_megabyte=50)
    # Use a fresh world whose sim owns the monitor.
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=1200))
    viceroy = Viceroy(sim, network)
    money = MoneyMonitor(sim, budget_cents=20, cents_per_megabyte=60)
    viceroy.attach_monitor(money)
    from repro.apps.infofilter import build_filter

    app, warden, server = build_filter(sim, viceroy, network, money=money)
    app.start()
    sim.run(until=300.0)
    # Budget pacing caps the burn rate from the start: money remains after
    # five minutes, the filter never stops, and it runs below full detail
    # even though bandwidth alone would permit it.
    assert money.current() > money.budget_cents * 0.25
    late = [d for t, _, d in app.stats.polls if t > 200]
    assert late, "filter must keep running on a tight budget"
    assert max(d for _, _, d in app.stats.polls) < 1.0


def test_poll_detail_validated(run_process):
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=60))
    viceroy = Viceroy(sim, network)
    app, warden, server = build_filter(sim, viceroy, network)
    from repro.core.api import OdysseyAPI
    from repro.errors import OdysseyError

    api = OdysseyAPI(viceroy, "probe")

    def flow():
        try:
            yield from api.tsop("/odyssey/feed", "poll", {"detail": 0.9})
        except OdysseyError:
            return "rejected"

    process = sim.process(flow())
    # The feed server ticks forever; bound the run instead of exhausting it.
    sim.run(until=5.0)
    assert process.value == "rejected"


def test_staleness_metric():
    sim, app, warden, server = build_world(constant(HIGH_BANDWIDTH, duration=600))
    app.start()
    sim.run(until=30.0)
    staleness = app.stats.staleness(server.version, sim.now)
    # Polling every 2 s against a 1-version/s feed: a few versions behind.
    assert 0 <= staleness <= 5
