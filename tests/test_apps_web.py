"""The web stack: images, distillation, warden, cellophane browser."""

import pytest

from repro.apps.web.browser import (
    CellophaneBrowser,
    FIXED_OVERHEAD_SECONDS,
    LATENCY_GOAL_SECONDS,
)
from repro.apps.web.images import (
    BENCHMARK_IMAGE_BYTES,
    FIDELITY_LEVELS,
    ImageStore,
    WebImage,
    distilled_bytes,
)
from repro.apps.web.warden import build_web
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.errors import OdysseyError, ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant, ethernet


# -- image model -----------------------------------------------------------


def test_four_fidelity_levels():
    assert set(FIDELITY_LEVELS) == {1.0, 0.5, 0.25, 0.05}


def test_distilled_sizes_monotone():
    sizes = [distilled_bytes(BENCHMARK_IMAGE_BYTES, level)
             for level in sorted(FIDELITY_LEVELS)]
    assert sizes == sorted(sizes)
    assert distilled_bytes(BENCHMARK_IMAGE_BYTES, 1.0) == BENCHMARK_IMAGE_BYTES


def test_distilled_unknown_level():
    with pytest.raises(ReproError):
        distilled_bytes(1000, 0.42)


def test_image_store():
    store = ImageStore()
    image = store.add_benchmark_image()
    assert image.nbytes == 22 * 1024
    assert store.get(image.name) is image
    with pytest.raises(ReproError):
        store.add(WebImage(image.name, 10))
    with pytest.raises(ReproError):
        store.get("missing")
    with pytest.raises(ReproError):
        WebImage("x", 0)


def test_synthetic_corpus_deterministic():
    a, b = ImageStore(), ImageStore()
    images_a = a.add_synthetic_corpus(10, seed=3)
    images_b = b.add_synthetic_corpus(10, seed=3)
    assert [i.nbytes for i in images_a] == [i.nbytes for i in images_b]
    assert len({i.nbytes for i in images_a}) > 3  # actually varied


# -- wired world ----------------------------------------------------------------


def build_browser(bandwidth, policy, direct=False):
    sim = Simulator()
    if bandwidth == "ethernet":
        network = Network(sim, ethernet(duration=600))
    else:
        network = Network(sim, constant(bandwidth, duration=600))
    viceroy = Viceroy(sim, network)
    store = ImageStore()
    image = store.add_benchmark_image()
    warden, distiller, web_server = build_web(sim, viceroy, network, store,
                                              direct=direct)
    api = OdysseyAPI(viceroy, "netscape")
    browser = CellophaneBrowser(
        sim, api, "netscape", "/odyssey/web", image.name, image.nbytes,
        policy=policy,
    )
    return sim, browser, warden, distiller


def test_set_fidelity_validated(sim, viceroy, network, run_process):
    store = ImageStore()
    store.add_benchmark_image()
    warden, _, _ = build_web(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "n")

    def flow():
        try:
            yield from api.tsop("/odyssey/web/x", "set-fidelity",
                                {"fidelity": 0.42})
        except OdysseyError:
            return "rejected"

    assert run_process(flow()) == "rejected"


def test_full_quality_fetch_time_at_high_bandwidth():
    sim, browser, _, _ = build_browser(HIGH_BANDWIDTH, 1.0)
    browser.start()
    sim.run(until=20.0)
    # Paper Fig. 11 impulse-down (mostly high bandwidth): 0.34 s.
    assert browser.stats.mean_seconds == pytest.approx(0.38, abs=0.08)
    assert browser.stats.mean_fidelity == 1.0


def test_full_quality_misses_goal_at_low_bandwidth():
    sim, browser, _, _ = build_browser(LOW_BANDWIDTH, 1.0)
    browser.start()
    sim.run(until=20.0)
    assert browser.stats.mean_seconds > LATENCY_GOAL_SECONDS


def test_jpeg50_meets_goal_at_low_bandwidth():
    sim, browser, _, _ = build_browser(LOW_BANDWIDTH, 0.5)
    browser.start()
    sim.run(until=20.0)
    assert browser.stats.mean_seconds <= LATENCY_GOAL_SECONDS
    assert browser.stats.mean_fidelity == 0.5


def test_adaptive_meets_goal_at_both_levels():
    for bandwidth in (LOW_BANDWIDTH, HIGH_BANDWIDTH):
        sim, browser, _, _ = build_browser(bandwidth, "adaptive")
        browser.start()
        sim.run(until=30.0)
        # Allow the settling period a little slack.
        assert browser.stats.mean_seconds <= LATENCY_GOAL_SECONDS * 1.1


def test_adaptive_prefers_quality_at_high_bandwidth():
    sim, browser, _, _ = build_browser(HIGH_BANDWIDTH, "adaptive")
    browser.start()
    sim.run(until=30.0)
    assert browser.stats.mean_fidelity > 0.9


def test_adaptive_degrades_at_low_bandwidth():
    sim, browser, _, _ = build_browser(LOW_BANDWIDTH, "adaptive")
    browser.start()
    sim.run(until=30.0)
    assert 0.3 <= browser.stats.mean_fidelity <= 0.6  # JPEG-50 territory


def test_direct_mode_is_the_ethernet_baseline():
    sim, browser, warden, distiller = build_browser("ethernet", 1.0, direct=True)
    assert distiller is None
    browser.start()
    sim.run(until=20.0)
    # Paper: 0.20 s on the private Ethernet.
    assert browser.stats.mean_seconds == pytest.approx(0.20, abs=0.06)


def test_distillation_saves_bytes():
    sim, browser, warden, distiller = build_browser(LOW_BANDWIDTH, 0.05)
    browser.start()
    sim.run(until=10.0)
    assert distiller.bytes_saved > 0
    assert distiller.images_distilled == warden.images_fetched


def test_goal_met_fraction_stat():
    sim, browser, _, _ = build_browser(HIGH_BANDWIDTH, 0.05)
    browser.start()
    sim.run(until=10.0)
    assert browser.stats.goal_met_fraction() == 1.0


# -- non-image objects (§8 short-term) ---------------------------------------


def test_text_fidelity_levels_distinct_from_images():
    from repro.apps.web.images import TEXT_FIDELITY_LEVELS

    assert set(TEXT_FIDELITY_LEVELS) == {1.0, 0.5, 0.1}
    # Text distills harder at mid fidelity than JPEG does.
    assert TEXT_FIDELITY_LEVELS[0.5][1] > FIDELITY_LEVELS[0.5][1]


def test_distilled_bytes_by_kind():
    assert distilled_bytes(30_000, 0.5, kind="text") == int(30_000 * 0.35)
    with pytest.raises(ReproError):
        distilled_bytes(1000, 0.25, kind="text")  # not a text level
    with pytest.raises(ReproError):
        distilled_bytes(1000, 0.5, kind="video")  # unknown kind


def test_web_object_kind_validation():
    from repro.apps.web.images import WebObject

    page = WebObject("index.html", 30_000, kind="text")
    assert page.kind == "text"
    with pytest.raises(ReproError):
        WebObject("x", 100, kind="audio")


def test_page_store_helper():
    store = ImageStore()
    page = store.add_page("index.html")
    assert page.kind == "text"
    assert store.get("index.html") is page


def test_text_object_fetch_and_distillation(sim, viceroy, network, run_process):
    store = ImageStore()
    page = store.add_page("news.html", nbytes=40_000)
    warden, distiller, _ = build_web(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "netscape")

    def flow():
        yield from api.tsop("/odyssey/web/x", "set-fidelity",
                            {"fidelity": 0.5, "kind": "text"})
        result = yield from api.tsop("/odyssey/web/x", "get-image",
                                     {"name": "news.html", "kind": "text"})
        return result

    result = run_process(flow())
    assert result["kind"] == "text"
    assert result["nbytes"] == int(40_000 * 0.35)
    assert distiller.bytes_saved > 0


def test_per_kind_fidelities_independent(sim, viceroy, network, run_process):
    store = ImageStore()
    store.add_benchmark_image()
    warden, _, _ = build_web(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "netscape")

    def flow():
        yield from api.tsop("/odyssey/web/x", "set-fidelity",
                            {"fidelity": 0.1, "kind": "text"})
        image_level = yield from api.tsop("/odyssey/web/x", "get-fidelity",
                                          {"kind": "image"})
        text_level = yield from api.tsop("/odyssey/web/x", "get-fidelity",
                                         {"kind": "text"})
        return image_level, text_level

    assert run_process(flow()) == (1.0, 0.1)


def test_image_fidelity_rejected_for_text(sim, viceroy, network, run_process):
    store = ImageStore()
    store.add_page("p.html")
    warden, _, _ = build_web(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "netscape")

    def flow():
        try:
            yield from api.tsop("/odyssey/web/x", "set-fidelity",
                                {"fidelity": 0.25, "kind": "text"})
        except OdysseyError:
            return "rejected"

    assert run_process(flow()) == "rejected"
