"""Stress: many concurrent applications on one client (paper §2.3).

"The ability to execute multiple independent applications concurrently on
a mobile client is vital."  These tests push past the paper's three-app
scenario to check the machinery holds up: shares stay consistent, upcalls
keep flowing, nothing deadlocks.
"""

import pytest

from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant, step_down


def test_three_video_players_share_one_link():
    """Three adaptive players: none can afford JPEG(99); all keep playing."""
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=600))
    viceroy = Viceroy(sim, network)
    players = []
    for i in range(3):
        store = MovieStore()
        store.add(Movie(f"movie{i}", n_frames=400))
        host = network.add_host(f"video-server-{i}")
        build_video(sim, viceroy, network, store, server_host=host,
                    name=f"video{i}", mount=f"/odyssey/video{i}")
        api = OdysseyAPI(viceroy, f"xanim{i}")
        player = VideoPlayer(sim, api, f"xanim{i}", f"/odyssey/video{i}",
                             f"movie{i}", policy="adaptive")
        players.append(player)
        sim.call_in(i * 0.4, player.start)
    sim.run(until=45.0)

    for player in players:
        displayed = player.stats.frames_displayed
        assert displayed > 250, player.name
        # 3 x JPEG(99) demand (~300 KB/s) exceeds the link: every player
        # must have settled below the top track most of the time.
        jpeg99_share = player.stats.displayed.get("jpeg99", 0) / max(displayed, 1)
        assert jpeg99_share < 0.5, player.name

    # The viceroy's books stay balanced across all six+ connections.
    shares = viceroy.policy.shares
    snapshot = shares.snapshot()
    assert sum(snapshot.values()) == pytest.approx(shares.total, rel=1e-6)


def test_ten_bitstreams_remain_fair_and_live():
    from repro.apps.bitstream import build_bitstream

    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=600))
    viceroy = Viceroy(sim, network)
    apps = []
    for i in range(10):
        app, _, _ = build_bitstream(sim, viceroy, network, index=i,
                                    chunk_bytes=8 * 1024)
        sim.call_in(i * 0.1, app.start)
        apps.append(app)
    sim.run(until=30.0)
    rates = [app.bytes_consumed / 30.0 for app in apps]
    total_rate = sum(rates)
    assert total_rate > 0.8 * HIGH_BANDWIDTH
    # No starvation: the slowest gets at least a third of the mean.
    assert min(rates) > (total_rate / 10) / 3


def test_mixed_policies_under_churn():
    """Applications arriving and stopping; registrations stay consistent."""
    from repro.apps.bitstream import build_bitstream
    from repro.core.resources import Resource

    sim = Simulator()
    network = Network(sim, step_down().shifted(5.0))
    viceroy = Viceroy(sim, network)

    app0, warden0, _ = build_bitstream(sim, viceroy, network, index=0)
    app0.start()
    api = OdysseyAPI(viceroy, "bitstream-app-0")
    upcalls = []
    api.on_upcall("bw", upcalls.append)

    def churn():
        yield sim.timeout(5.0)
        level = api.availability("/odyssey/bitstream/0")
        api.request("/odyssey/bitstream/0", Resource.NETWORK_BANDWIDTH,
                    level * 0.6, level * 1.4, handler="bw")
        # A second stream arrives, shifting shares...
        app1, _, _ = build_bitstream(sim, viceroy, network, index=1)
        app1.start()
        yield sim.timeout(10.0)
        # ...and leaves again.
        app1.stop()

    sim.process(churn())
    sim.run(until=60.0)
    # The step down at t=35 (or the churn) must have violated the window.
    assert len(upcalls) == 1
    assert viceroy.registered_requests("bitstream-app-0") == []
    assert app0.bytes_consumed > 0


def test_hundred_requests_and_cancels_do_not_leak():
    from repro.apps.bitstream import build_bitstream
    from repro.core.resources import Resource

    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=120))
    viceroy = Viceroy(sim, network)
    app, _, _ = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=5.0)
    api = OdysseyAPI(viceroy, "bitstream-app-0")
    for _ in range(100):
        request_id = api.request("/odyssey/bitstream/0",
                                 Resource.NETWORK_BANDWIDTH, 0, 1e12)
        api.cancel(request_id)
    assert viceroy.registered_requests() == []
