"""Property tests on the video codec and movie invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.video.codec import SIZE_JITTER, TRACKS, frame_bytes, track
from repro.apps.video.movie import Movie

movie_names = st.text(alphabet="abcxyz", min_size=1, max_size=8)
track_names = st.sampled_from([spec.name for spec in TRACKS])
frame_indexes = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=100, deadline=None)
@given(movie=movie_names, track_name=track_names, index=frame_indexes)
def test_frame_bytes_bounded_around_mean(movie, track_name, index):
    mean = track(track_name).mean_frame_bytes
    size = frame_bytes(movie, track_name, index)
    assert size == frame_bytes(movie, track_name, index)  # deterministic
    assert mean * (1 - SIZE_JITTER) * 0.99 <= size \
        <= mean * (1 + SIZE_JITTER) * 1.01


@settings(max_examples=60, deadline=None)
@given(movie=movie_names, index=frame_indexes)
def test_better_tracks_are_bigger_on_average(movie, index):
    """Per-frame ordering can wobble with jitter, but a window of frames
    must order by track fidelity."""
    window = range(index, index + 25)
    totals = {
        spec.name: sum(frame_bytes(movie, spec.name, i) for i in window)
        for spec in TRACKS
    }
    assert totals["bw"] < totals["jpeg50"] < totals["jpeg99"]


@settings(max_examples=30, deadline=None)
@given(n_frames=st.integers(min_value=10, max_value=400),
       fps=st.floats(min_value=5.0, max_value=30.0))
def test_track_bandwidth_scales_with_fps(n_frames, fps):
    movie = Movie("m", n_frames=n_frames, fps=fps)
    for spec in TRACKS:
        demand = movie.track_bandwidth(spec.name)
        assert demand == pytest.approx(
            spec.mean_frame_bytes * fps, rel=SIZE_JITTER
        )


@settings(max_examples=30, deadline=None)
@given(n_frames=st.integers(min_value=10, max_value=300))
def test_meta_is_self_consistent(n_frames):
    movie = Movie("m", n_frames=n_frames)
    meta = movie.meta()
    assert meta["frames"] == n_frames
    for name, info in meta["tracks"].items():
        assert info["bandwidth"] == pytest.approx(movie.track_bandwidth(name))
        assert 0 < info["fidelity"] <= 1
