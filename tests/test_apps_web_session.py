"""Realistic browsing sessions over the extended web warden."""

import pytest

from repro.apps.web.browser import LATENCY_GOAL_SECONDS
from repro.apps.web.images import ImageStore
from repro.apps.web.session import BrowsingSession, Page, synthetic_site
from repro.apps.web.warden import build_web
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.errors import ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant, step_down


def test_page_validation():
    with pytest.raises(ReproError):
        Page(html="", images=())


def test_synthetic_site_deterministic():
    a = synthetic_site(ImageStore(), seed=1)
    b = synthetic_site(ImageStore(), seed=1)
    assert [p.html for p in a] == [p.html for p in b]
    assert all(len(p.images) == 3 for p in a)


def build_session(bandwidth, policy="adaptive", think=1.0, pages=6):
    sim = Simulator()
    network = Network(sim, constant(bandwidth, duration=3600))
    viceroy = Viceroy(sim, network)
    store = ImageStore()
    site = synthetic_site(store, pages=pages)
    build_web(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "browser")
    session = BrowsingSession(sim, api, "browser", "/odyssey/web", site,
                              store, think_seconds=think, policy=policy)
    return sim, session


def test_session_loads_every_page():
    sim, session = build_session(HIGH_BANDWIDTH)
    session.start()
    sim.run(until=60.0)
    assert session.stats.count == 6


def test_full_fidelity_at_high_bandwidth():
    sim, session = build_session(HIGH_BANDWIDTH)
    session.start()
    sim.run(until=60.0)
    # Full quality is marginal at 120 KB/s by design (the Fig. 11 goal);
    # the session should still be near-full and near-goal.
    assert session.stats.mean_image_fidelity > 0.85
    goal = session.page_goal_seconds(session.site[0])
    assert session.stats.goal_met_fraction(goal * 1.15) >= 0.8


def test_degrades_both_kinds_at_low_bandwidth():
    sim, session = build_session(LOW_BANDWIDTH)
    session.start()
    sim.run(until=90.0)
    assert session.stats.count == 6
    # Images degraded below full quality...
    assert session.stats.mean_image_fidelity < 0.9
    # ...and page loads still land near the scaled goal.
    goal = session.page_goal_seconds(session.site[0])
    assert session.stats.goal_met_fraction(goal * 1.2) >= 0.8


def test_adaptive_beats_static_full_at_low_bandwidth():
    sim_a, adaptive = build_session(LOW_BANDWIDTH, policy="adaptive")
    adaptive.start()
    sim_a.run(until=90.0)
    sim_s, static = build_session(LOW_BANDWIDTH, policy=1.0)
    static.start()
    sim_s.run(until=90.0)
    assert adaptive.stats.mean_load_seconds < static.stats.mean_load_seconds


def test_session_adapts_across_step_down():
    sim = Simulator()
    network = Network(sim, step_down().shifted(5.0))  # transition at t=35
    viceroy = Viceroy(sim, network)
    store = ImageStore()
    site = synthetic_site(store, pages=25)
    build_web(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "browser")
    session = BrowsingSession(sim, api, "browser", "/odyssey/web", site,
                              store, think_seconds=2.0)
    session.start()
    sim.run(until=120.0)
    early = [f for t, _, f, _ in session.stats.loads if t < 30]
    late = [f for t, _, f, _ in session.stats.loads if t > 45]
    assert early and late
    assert max(early) == 1.0  # full quality was reached while it lasted
    assert max(late) < 1.0  # degraded after the step
