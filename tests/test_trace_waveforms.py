"""Reference waveforms and the urban trace (paper Figs. 7 and 13)."""

import pytest

from repro.errors import ReproError
from repro.trace.waveforms import (
    HIGH_BANDWIDTH,
    IMPULSE_WIDTH,
    LOW_BANDWIDTH,
    WAVEFORM_DURATION,
    WAVEFORMS,
    ethernet,
    impulse_down,
    impulse_up,
    step_down,
    step_up,
    urban_walk,
    waveform,
)


def test_modulated_levels_match_paper():
    assert HIGH_BANDWIDTH == 120 * 1024
    assert LOW_BANDWIDTH == 40 * 1024


def test_step_up_shape():
    trace = step_up()
    assert trace.duration == WAVEFORM_DURATION
    assert trace.bandwidth_at(0) == LOW_BANDWIDTH
    assert trace.bandwidth_at(29.9) == LOW_BANDWIDTH
    assert trace.bandwidth_at(30.0) == HIGH_BANDWIDTH
    assert trace.transitions == [30.0]


def test_step_down_mirrors_step_up():
    up, down = step_up(), step_down()
    assert down.bandwidth_at(0) == up.bandwidth_at(59)
    assert down.bandwidth_at(59) == up.bandwidth_at(0)


@pytest.mark.parametrize("factory,wing_level,mid_level", [
    (impulse_up, LOW_BANDWIDTH, HIGH_BANDWIDTH),
    (impulse_down, HIGH_BANDWIDTH, LOW_BANDWIDTH),
])
def test_impulse_shape(factory, wing_level, mid_level):
    trace = factory()
    assert trace.duration == WAVEFORM_DURATION
    mid = WAVEFORM_DURATION / 2
    assert trace.bandwidth_at(0) == wing_level
    assert trace.bandwidth_at(mid) == mid_level
    assert trace.bandwidth_at(mid - IMPULSE_WIDTH) == wing_level
    assert trace.bandwidth_at(WAVEFORM_DURATION - 1) == wing_level
    # Impulse is exactly IMPULSE_WIDTH wide.
    start, end = trace.transitions
    assert end - start == IMPULSE_WIDTH


def test_impulse_width_bounds():
    with pytest.raises(ReproError):
        impulse_up(width=120.0)


def test_urban_walk_matches_figure_13():
    trace = urban_walk()
    minutes = [segment.duration / 60 for segment in trace.segments]
    # Fig. 13: high segments 3 1 1 1 2 interleaved with low segments 1 1 1 4.
    assert minutes == [3, 1, 1, 1, 1, 1, 1, 4, 2]
    assert sum(minutes) == 15
    assert trace.duration == 15 * 60
    assert trace.bandwidth_at(0) == HIGH_BANDWIDTH  # begins well-connected
    highs = [s.duration / 60 for s in trace.segments if s.bandwidth == HIGH_BANDWIDTH]
    lows = [s.duration / 60 for s in trace.segments if s.bandwidth == LOW_BANDWIDTH]
    assert highs == [3, 1, 1, 1, 2]
    assert lows == [1, 1, 1, 4]
    # The radio shadow: the four-minute low segment near the end.
    shadow = trace.segments[7]
    assert shadow.duration == 240.0
    assert shadow.bandwidth == LOW_BANDWIDTH
    assert trace.segments[-1].bandwidth == HIGH_BANDWIDTH  # good connectivity


def test_ethernet_is_fast_and_flat():
    trace = ethernet()
    assert trace.transitions == []
    assert trace.bandwidth_at(0) > 8 * HIGH_BANDWIDTH


def test_registry_contains_all_reference_waveforms():
    for name in ("step-up", "step-down", "impulse-up", "impulse-down",
                 "urban-walk", "ethernet"):
        assert name in WAVEFORMS
        assert waveform(name).duration > 0


def test_unknown_waveform_lists_known():
    with pytest.raises(ReproError, match="step-up"):
        waveform("sawtooth")
