"""The viceroy: requests, upcall generation, connection plumbing."""

import pytest

from repro.core.api import OdysseyAPI
from repro.core.monitors import BatteryMonitor
from repro.core.resources import Resource, ResourceDescriptor, Window
from repro.core.warden import Warden
from repro.errors import (
    BadDescriptor,
    OdysseyError,
    RequestNotFound,
    ToleranceError,
)
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply


class EchoWarden(Warden):
    TSOPS = {"fetch": "tsop_fetch"}

    def tsop_fetch(self, app, rest, inbuf):
        conn = self.primary_connection(rest)
        _, _, nbytes = yield from conn.fetch("get", body_bytes=64)
        return nbytes


@pytest.fixture
def wired(sim, network, viceroy):
    server = network.add_host("server")
    service = RpcService(sim, server, "svc")
    service.register(
        "get", lambda body: ServerReply(bulk=service.make_bulk(32 * 1024))
    )
    warden = EchoWarden(sim, viceroy, "echo")
    warden.open_connection("server", "svc")
    viceroy.mount("/odyssey/echo", warden)
    return warden


def bandwidth_descriptor(lower, upper, handler="h"):
    return ResourceDescriptor(
        Resource.NETWORK_BANDWIDTH, Window(lower, upper), handler
    )


def drive_traffic(sim, viceroy, warden, seconds=3.0):
    api = OdysseyAPI(viceroy, "driver")

    def loop():
        while True:
            yield from api.tsop("/odyssey/echo/x", "fetch")

    process = sim.process(loop())
    sim.run(until=sim.now + seconds)
    return process


def test_request_before_estimates_accepted(viceroy, wired):
    request_id = viceroy.request("app", "/odyssey/echo/x",
                                 bandwidth_descriptor(0, 1e9))
    assert request_id > 0
    assert len(viceroy.registered_requests("app")) == 1


def test_request_outside_window_raises_with_level(sim, viceroy, wired):
    drive_traffic(sim, viceroy, wired)
    with pytest.raises(ToleranceError) as excinfo:
        viceroy.request("app", "/odyssey/echo/x",
                        bandwidth_descriptor(1e8, 1e9))
    assert excinfo.value.available > 0


def test_cancel_removes_registration(viceroy, wired):
    request_id = viceroy.request("app", "/odyssey/echo/x",
                                 bandwidth_descriptor(0, 1e9))
    viceroy.cancel(request_id)
    assert viceroy.registered_requests("app") == []
    with pytest.raises(RequestNotFound):
        viceroy.cancel(request_id)


def test_violation_generates_upcall_and_drops_registration(sim, viceroy, wired):
    got = []
    viceroy.upcalls.register("app", "h", got.append)
    drive_traffic(sim, viceroy, wired, seconds=2.0)
    level = viceroy.availability(Resource.NETWORK_BANDWIDTH,
                                 path="/odyssey/echo/x")
    # Register a window the estimate is inside, whose upper bound the next
    # entries will cross... instead: a window that is already-violated soon:
    viceroy.request("app", "/odyssey/echo/x",
                    bandwidth_descriptor(level * 0.99, level * 1.01))
    # More traffic perturbs the estimate out of the 2%-wide window.
    drive_traffic(sim, viceroy, wired, seconds=5.0)
    sim.run(until=sim.now + 1.0)
    assert len(got) == 1  # exactly one upcall: registration was dropped
    assert got[0].resource is Resource.NETWORK_BANDWIDTH
    assert viceroy.registered_requests("app") == []


def test_availability_by_path_and_connection(sim, viceroy, wired):
    drive_traffic(sim, viceroy, wired)
    by_path = viceroy.availability(Resource.NETWORK_BANDWIDTH,
                                   path="/odyssey/echo/x")
    cid = wired.primary_connection().connection_id
    by_conn = viceroy.availability_for_connection(cid)
    assert by_path == by_conn > 0


def test_latency_resource_reports_microseconds(sim, viceroy, wired):
    drive_traffic(sim, viceroy, wired)
    latency = viceroy.availability(Resource.NETWORK_LATENCY,
                                   path="/odyssey/echo/x")
    # One-way ~10.5 ms = 10 500 us, plus transmission time.
    assert 8_000 < latency < 40_000


def test_monitor_resource_needs_attachment(viceroy):
    with pytest.raises(BadDescriptor):
        viceroy.availability(Resource.BATTERY_POWER)


def test_attached_monitor_serves_availability(sim, viceroy):
    monitor = BatteryMonitor(sim, capacity_minutes=90)
    viceroy.attach_monitor(monitor)
    assert viceroy.availability(Resource.BATTERY_POWER) == 90
    with pytest.raises(OdysseyError):
        viceroy.attach_monitor(monitor)


def test_monitor_violation_generates_upcall(sim, viceroy):
    monitor = BatteryMonitor(sim, capacity_minutes=10, tick=1.0)
    viceroy.attach_monitor(monitor)
    got = []
    viceroy.upcalls.register("app", "low-battery", got.append)
    descriptor = ResourceDescriptor(
        Resource.BATTERY_POWER, Window(9.5, 1e9), "low-battery"
    )
    viceroy.request("app", "/odyssey/whatever", descriptor)
    sim.run(until=120)
    assert len(got) == 1
    assert got[0].level < 9.5


def test_duplicate_connection_registration_rejected(sim, viceroy, wired):
    conn = wired.primary_connection()
    with pytest.raises(OdysseyError):
        viceroy.register_connection(conn)


def test_unregister_connection(sim, viceroy, wired):
    cid = wired.primary_connection().connection_id
    viceroy.unregister_connection(cid)
    with pytest.raises(OdysseyError):
        viceroy.availability_for_connection(cid)


def test_unknown_connection_availability_rejected(viceroy):
    with pytest.raises(OdysseyError):
        viceroy.availability_for_connection("ghost")


def test_describe_snapshot(sim, viceroy, wired):
    drive_traffic(sim, viceroy, wired, seconds=2.0)
    viceroy.request("app", "/odyssey/echo/x", bandwidth_descriptor(0, 1e12))
    snapshot = viceroy.describe()
    assert snapshot["policy"] == "odyssey"
    assert snapshot["total_bandwidth"] > 0
    assert snapshot["mounts"] == {"/odyssey/echo": "echo"}
    assert list(snapshot["connections"]) == ["echo:0"]
    assert snapshot["connections"]["echo:0"] > 0
    assert len(snapshot["registrations"]) == 1
    registration = snapshot["registrations"][0]
    assert registration["app"] == "app"
    assert registration["resource"] == "network-bandwidth"


def test_unregister_unknown_connection_raises(viceroy):
    with pytest.raises(OdysseyError, match="ghost"):
        viceroy.unregister_connection("ghost")


def test_unregister_tears_down_registrations(sim, viceroy, wired):
    """Registrations keyed on a dead connection must not survive it."""
    drive_traffic(sim, viceroy, wired, seconds=2.0)
    cid = wired.primary_connection().connection_id
    viceroy.request("app", "/odyssey/echo/x", bandwidth_descriptor(0, 1e12))
    torn_down = viceroy.unregister_connection(cid)
    assert torn_down == 1
    assert viceroy.registered_requests("app") == []
    # A later recheck must not trip over the dead connection id.
    viceroy.recheck_bandwidth()


def test_unregister_notifies_with_teardown_upcall(sim, viceroy, wired):
    got = []
    viceroy.upcalls.register("app", "h", got.append)
    drive_traffic(sim, viceroy, wired, seconds=2.0)
    cid = wired.primary_connection().connection_id
    request_id = viceroy.request("app", "/odyssey/echo/x",
                                 bandwidth_descriptor(0, 1e12))
    viceroy.unregister_connection(cid)
    sim.run(until=sim.now + 1.0)
    assert len(got) == 1
    assert got[0].request_id == request_id
    assert got[0].resource is Resource.NETWORK_BANDWIDTH
    assert got[0].level is None  # the teardown signal


def test_unregister_without_notify_drops_silently(sim, viceroy, wired):
    got = []
    viceroy.upcalls.register("app", "h", got.append)
    drive_traffic(sim, viceroy, wired, seconds=2.0)
    cid = wired.primary_connection().connection_id
    viceroy.request("app", "/odyssey/echo/x", bandwidth_descriptor(0, 1e12))
    viceroy.unregister_connection(cid, notify=False)
    sim.run(until=sim.now + 1.0)
    assert got == []
    assert viceroy.registered_requests("app") == []


def test_unregister_skips_apps_without_receiver(sim, viceroy, wired):
    """No receiver registered: teardown drops the registration silently."""
    drive_traffic(sim, viceroy, wired, seconds=2.0)
    cid = wired.primary_connection().connection_id
    viceroy.request("loner", "/odyssey/echo/x", bandwidth_descriptor(0, 1e12))
    assert viceroy.unregister_connection(cid) == 1
    sim.run(until=sim.now + 1.0)  # nothing to deliver, nothing to raise
    assert viceroy.registered_requests("loner") == []
