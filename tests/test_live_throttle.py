"""The synthetic serial link pacing the live broker's bulk plane."""

import asyncio

import pytest

from repro.errors import BrokerError
from repro.live import Throttle, square_wave
from repro.trace.replay import ReplayTrace, Segment


class FakeClock:
    """A controllable wall clock: sleep() advances now() instantly."""

    def __init__(self):
        self.time = 100.0
        self.sleeps = []

    def now(self):
        return self.time

    async def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.time += seconds


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


def test_ctor_requires_exactly_one_shape():
    with pytest.raises(BrokerError, match="exactly one"):
        Throttle()
    with pytest.raises(BrokerError, match="exactly one"):
        Throttle(bandwidth=100, trace=square_wave(2, 1, 1.0))
    with pytest.raises(BrokerError, match="positive"):
        Throttle(bandwidth=0)


def test_constant_bandwidth_rate():
    throttle = Throttle(bandwidth=5_000, clock=FakeClock())
    assert throttle.rate_at(0.0) == 5_000
    assert throttle.rate_at(1e6) == 5_000
    assert throttle.rate_now() == 5_000


def test_trace_rate_loops_by_default():
    wave = square_wave(high=100, low=50, phase_seconds=1.0)
    throttle = Throttle(trace=wave, clock=FakeClock())
    assert throttle.rate_at(0.5) == 100
    assert throttle.rate_at(1.5) == 50
    # Past the 2 s period the wave repeats...
    assert throttle.rate_at(2.5) == 100
    assert throttle.rate_at(3.5) == 50
    # ...unless looping is off, which holds the final segment's rate.
    frozen = Throttle(trace=wave, clock=FakeClock(), loop=False)
    assert frozen.rate_at(2.5) == 50
    assert frozen.rate_at(99.0) == 50


def test_acquire_serializes_like_a_modem():
    async def scenario():
        clock = FakeClock()
        throttle = Throttle(bandwidth=1_000, clock=clock)
        await throttle.acquire(500)  # 0.5 s of link time
        first_done = clock.now()
        await throttle.acquire(250)  # queued behind: 0.25 s more
        return first_done - 100.0, clock.now() - 100.0, throttle

    first, second, throttle = run(scenario())
    assert first == pytest.approx(0.5)
    assert second == pytest.approx(0.75)
    assert throttle.bytes_shaped == 750
    assert throttle.fragments_shaped == 2


def test_concurrent_acquirers_split_the_link():
    async def scenario():
        clock = FakeClock()
        throttle = Throttle(bandwidth=1_000, clock=clock)
        # Two "clients" grab the link back to back without the clock
        # advancing between the calls: the second queues behind the
        # first on _free_at, exactly like packets on a serial line.
        started = clock.now()
        one = throttle.acquire(1_000)
        two = throttle.acquire(1_000)
        await one
        await two
        return clock.now() - started

    # 2000 bytes through 1000 B/s: 2 s of link time in total.
    assert run(scenario()) == pytest.approx(2.0)


def test_blackout_segment_parks_the_link():
    async def scenario():
        clock = FakeClock()
        trace = ReplayTrace([Segment(0.5, 0.0, 0.002),
                             Segment(10.0, 1_000.0, 0.002)],
                            name="blackout-then-up")
        throttle = Throttle(trace=trace, clock=clock)
        await throttle.acquire(100)
        return clock.now() - 100.0

    elapsed = run(scenario())
    # The acquire walked past the 0.5 s dead zone, then transmitted
    # 100 bytes at 1000 B/s.
    assert elapsed >= 0.5 + 0.1
    assert elapsed < 1.0


def test_square_wave_validates_its_shape():
    with pytest.raises(BrokerError, match="rates must be positive"):
        square_wave(high=0, low=10, phase_seconds=1.0)
    with pytest.raises(BrokerError, match="phase must be positive"):
        square_wave(high=10, low=5, phase_seconds=0)
    wave = square_wave(high=10, low=5, phase_seconds=1.5)
    assert wave.duration == pytest.approx(3.0)
