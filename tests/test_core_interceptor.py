"""The interceptor and its local file system (Fig. 2's architecture)."""

import pytest

from repro.core.api import OdysseyAPI
from repro.core.interceptor import Interceptor, LocalFS
from repro.core.warden import Warden
from repro.errors import NoSuchObject, OdysseyError


# -- LocalFS ----------------------------------------------------------------


@pytest.fixture
def fs():
    return LocalFS()


def test_write_read_roundtrip(fs):
    assert fs.write_file("/var/log/app.log", "hello") == 5
    assert fs.read_file("/var/log/app.log") == "hello"


def test_read_missing_file(fs):
    with pytest.raises(NoSuchObject):
        fs.read_file("/nothing")


def test_append(fs):
    fs.write_file("/notes", "a")
    fs.append_file("/notes", "b")
    assert fs.read_file("/notes") == "ab"


def test_unlink(fs):
    fs.write_file("/tmp/x", "data")
    fs.unlink("/tmp/x")
    with pytest.raises(NoSuchObject):
        fs.read_file("/tmp/x")
    with pytest.raises(NoSuchObject):
        fs.unlink("/tmp/x")


def test_stat_files_and_dirs(fs):
    fs.write_file("/etc/conf", "xy")
    assert fs.stat("/etc/conf") == {"size": 2, "type": "file"}
    assert fs.stat("/etc")["type"] == "directory"
    with pytest.raises(NoSuchObject):
        fs.stat("/missing")


def test_mkdir_and_readdir(fs):
    fs.mkdir("/home/user")
    fs.write_file("/home/user/a.txt", "1")
    fs.write_file("/home/user/b.txt", "2")
    fs.write_file("/home/other/c.txt", "3")
    assert fs.readdir("/home/user") == ["a.txt", "b.txt"]
    assert fs.readdir("/home") == ["other", "user"]
    with pytest.raises(NoSuchObject):
        fs.readdir("/nowhere")


def test_intermediate_directories_created(fs):
    fs.write_file("/a/b/c/d.txt", "deep")
    assert fs.stat("/a/b/c")["type"] == "directory"
    assert fs.readdir("/a") == ["b"]


def test_file_directory_conflicts(fs):
    fs.write_file("/x", "f")
    with pytest.raises(OdysseyError):
        fs.mkdir("/x")
    fs.mkdir("/d")
    with pytest.raises(OdysseyError):
        fs.write_file("/d", "f")


# -- Interceptor ----------------------------------------------------------------


class TinyWarden(Warden):
    def vfs_open(self, app, rest, flags="r"):
        return {"rest": rest}

    def vfs_read(self, app, handle, nbytes):
        yield self.sim.timeout(0.01)
        return f"odyssey:{handle['rest']}"


@pytest.fixture
def interceptor(sim, viceroy):
    warden = TinyWarden(sim, viceroy, "tiny")
    viceroy.mount("/odyssey/tiny", warden)
    api = OdysseyAPI(viceroy, "app")
    return Interceptor(api)


def test_odyssey_paths_redirected(sim, interceptor, run_process):
    def flow():
        handle = interceptor.open("/odyssey/tiny/obj")
        data = yield from interceptor.read(handle)
        interceptor.close(handle)
        return handle[0], data

    kind, data = run_process(flow())
    assert kind == "odyssey"
    assert data == "odyssey:obj"
    assert interceptor.redirected == 1


def test_local_paths_pass_through(sim, interceptor, run_process):
    interceptor.localfs.write_file("/home/user/prefs", "volume=7")

    def flow():
        handle = interceptor.open("/home/user/prefs")
        data = yield from interceptor.read(handle)
        interceptor.close(handle)
        return handle[0], data

    kind, data = run_process(flow())
    assert kind == "local"
    assert data == "volume=7"
    assert interceptor.passed_through == 1
    assert interceptor.redirected == 0


def test_local_write_through_interceptor(sim, interceptor, run_process):
    def flow():
        handle = interceptor.open("/var/spool/utterance.raw", flags="w")
        count = yield from interceptor.write(handle, "PCM" * 10)
        return count

    assert run_process(flow()) == 30
    assert interceptor.localfs.read_file("/var/spool/utterance.raw")


def test_open_missing_local_file(interceptor):
    with pytest.raises(NoSuchObject):
        interceptor.open("/no/such/file")


def test_stat_and_readdir_route_correctly(interceptor):
    interceptor.localfs.write_file("/etc/fstab", "/dev/wd0a /")
    assert interceptor.stat("/etc/fstab")["type"] == "file"
    assert "tiny" in interceptor.readdir("/odyssey")
    assert interceptor.redirected >= 1
    assert interceptor.passed_through >= 1
