"""Replay traces: construction, querying, serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.trace.replay import ReplayTrace, Segment, parse_trace, serialize_trace

segments_strategy = st.lists(
    st.builds(
        Segment,
        duration=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        bandwidth=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        latency=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)


def test_segment_validation():
    with pytest.raises(ReproError):
        Segment(0, 100, 0.01)
    with pytest.raises(ReproError):
        Segment(1, -5, 0.01)
    with pytest.raises(ReproError):
        Segment(1, 100, -0.01)


def test_empty_trace_rejected():
    with pytest.raises(ReproError):
        ReplayTrace([])


def test_bandwidth_at_boundaries():
    trace = ReplayTrace([Segment(10, 100, 0.01), Segment(10, 200, 0.02)])
    assert trace.bandwidth_at(0) == 100
    assert trace.bandwidth_at(9.999) == 100
    assert trace.bandwidth_at(10) == 200
    assert trace.bandwidth_at(19.9) == 200


def test_values_clamp_outside_range():
    trace = ReplayTrace([Segment(10, 100, 0.01), Segment(10, 200, 0.02)])
    assert trace.bandwidth_at(-5) == 100
    assert trace.bandwidth_at(1000) == 200
    assert trace.latency_at(1000) == 0.02


def test_transitions_skip_no_op_boundaries():
    trace = ReplayTrace([
        Segment(10, 100, 0.01),
        Segment(10, 100, 0.01),  # same parameters: not a transition
        Segment(10, 200, 0.01),
    ])
    assert trace.transitions == [20.0]


def test_duration_sums_segments():
    trace = ReplayTrace([Segment(10, 1, 0), Segment(5, 2, 0)])
    assert trace.duration == 15.0


def test_mean_bandwidth_weighted():
    trace = ReplayTrace([Segment(10, 100, 0), Segment(30, 200, 0)])
    assert trace.mean_bandwidth() == pytest.approx((100 * 10 + 200 * 30) / 40)
    assert trace.mean_bandwidth(0, 10) == pytest.approx(100)
    assert trace.mean_bandwidth(10, 40) == pytest.approx(200)


def test_mean_bandwidth_past_end_holds_final_value():
    trace = ReplayTrace([Segment(10, 100, 0)])
    assert trace.mean_bandwidth(0, 20) == pytest.approx(100)


def test_shifted_prepends_priming_segment():
    trace = ReplayTrace([Segment(10, 100, 0.01), Segment(10, 200, 0.01)])
    shifted = trace.shifted(30.0)
    assert shifted.duration == 50.0
    assert shifted.bandwidth_at(0) == 100
    assert shifted.bandwidth_at(35) == 100
    assert shifted.bandwidth_at(45) == 200
    assert trace.shifted(0) is trace


def test_parse_rejects_malformed_lines():
    with pytest.raises(ReproError, match="expected 3 fields"):
        parse_trace("1.0 2.0\n")
    with pytest.raises(ReproError, match="line 1"):
        parse_trace("a b c\n")


def test_parse_skips_comments_and_blanks():
    text = "# header\n\n10 100 0.01  # trailing comment\n"
    trace = parse_trace(text)
    assert len(trace.segments) == 1
    assert trace.segments[0] == Segment(10, 100, 0.01)


@settings(max_examples=50, deadline=None)
@given(segments=segments_strategy)
def test_serialize_parse_roundtrip(segments):
    original = ReplayTrace(segments)
    parsed = parse_trace(serialize_trace(original))
    assert len(parsed.segments) == len(original.segments)
    for a, b in zip(parsed.segments, original.segments):
        assert a.duration == pytest.approx(b.duration, rel=1e-5)
        assert a.bandwidth == pytest.approx(b.bandwidth, rel=1e-5)
        assert a.latency == pytest.approx(b.latency, rel=1e-5)


@settings(max_examples=50, deadline=None)
@given(segments=segments_strategy, t=st.floats(min_value=0, max_value=500))
def test_segment_at_consistent_with_bandwidth_at(segments, t):
    trace = ReplayTrace(segments)
    assert trace.bandwidth_at(t) == trace.segment_at(t).bandwidth
