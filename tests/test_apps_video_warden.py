"""Unit tests for video-warden internals: stride, nearest-frame, watchers."""

import pytest

from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant


def build_world(bandwidth=HIGH_BANDWIDTH, frames=100, **warden_kwargs):
    sim = Simulator()
    network = Network(sim, constant(bandwidth, duration=600))
    viceroy = Viceroy(sim, network)
    store = MovieStore()
    store.add(Movie("m", n_frames=frames))
    warden, server = build_video(sim, viceroy, network, store, **warden_kwargs)
    api = OdysseyAPI(viceroy, "app")
    return sim, warden, api


def get_meta(sim, api):
    process = sim.process(api.tsop("/odyssey/video", "get-meta", {"movie": "m"}))
    sim.run(until=1.0)
    return process.value


def test_get_meta_caches_metadata():
    sim, warden, api = build_world()
    meta = get_meta(sim, api)
    assert meta["frames"] == 100
    assert warden._meta is meta
    assert warden.vfs_readdir("") == ["m"]
    assert warden.vfs_stat("m")["type"] == "movie"


def test_exact_fetch_returns_requested_index():
    sim, warden, api = build_world()
    get_meta(sim, api)

    def flow():
        got, nbytes = yield from api.tsop(
            "/odyssey/video", "get-frame",
            {"movie": "m", "track": "jpeg50", "index": 7, "exact": True},
        )
        return got, nbytes

    process = sim.process(flow())
    sim.run(until=5.0)
    got, nbytes = process.value
    assert got == 7
    assert nbytes > 0


def test_nearest_available_prefers_smallest_at_or_after():
    sim, warden, api = build_world()
    get_meta(sim, api)
    warden._movie = "m"
    warden.cache.put(("m", "jpeg50", 10), 100, 100)
    warden.cache.put(("m", "jpeg50", 14), 100, 100)
    warden._inflight.add(("m", "jpeg50", 12))
    assert warden._nearest_available("m", "jpeg50", 9) == 10
    assert warden._nearest_available("m", "jpeg50", 11) == 12
    assert warden._nearest_available("m", "jpeg50", 13) == 14
    assert warden._nearest_available("m", "jpeg50", 15) is None
    assert warden._nearest_available("m", "jpeg99", 0) is None  # other track


def test_stride_tracks_bandwidth_estimate():
    sim, warden, api = build_world(bandwidth=LOW_BANDWIDTH)
    get_meta(sim, api)

    def flow():
        # A couple of fetches give the estimator data.
        for i in (0, 1):
            yield from api.tsop(
                "/odyssey/video", "get-frame",
                {"movie": "m", "track": "jpeg99", "index": i, "exact": True},
            )

    sim.process(flow())
    sim.run(until=5.0)
    warden._update_stride("jpeg99")
    # JPEG(99) demands ~98 KB/s; at ~40 KB/s the stride must be ~3.
    assert warden._stride == 3
    warden._update_stride("bw")
    assert warden._stride == 1  # the B&W track always fits


def test_stride_defaults_to_one_without_estimate():
    sim, warden, api = build_world()
    get_meta(sim, api)
    warden._update_stride("jpeg99")
    assert warden._stride == 1


def test_upgrade_discards_only_stale_lower_track_frames():
    sim, warden, api = build_world()
    get_meta(sim, api)
    warden._track = "jpeg50"
    for index in (4, 5, 6):
        warden.cache.put(("m", "jpeg50", index), 100, 100)
    # Frames behind the switch position are kept (they may be displayed);
    # frames at/after it are the paper's discarded prefetches.
    warden._note_track("jpeg99", position=5)
    assert ("m", "jpeg50", 4) in warden.cache
    assert ("m", "jpeg50", 5) not in warden.cache
    assert ("m", "jpeg50", 6) not in warden.cache
    assert warden.bytes_wasted >= 200


def test_downgrade_keeps_prefetched_high_quality_frames():
    sim, warden, api = build_world()
    get_meta(sim, api)
    warden._track = "jpeg99"
    warden.cache.put(("m", "jpeg99", 8), 100, 100)
    warden._note_track("jpeg50", position=5)
    assert ("m", "jpeg99", 8) in warden.cache


def test_watcher_satisfied_by_first_fresh_arrival():
    sim, warden, api = build_world()
    get_meta(sim, api)

    def demand():
        got, _ = yield from api.tsop(
            "/odyssey/video", "get-frame",
            {"movie": "m", "track": "jpeg50", "index": 0},
        )
        # Jump far ahead of anything in flight: the watcher path.
        got2, _ = yield from api.tsop(
            "/odyssey/video", "get-frame",
            {"movie": "m", "track": "jpeg50", "index": 50},
        )
        return got, got2

    process = sim.process(demand())
    sim.run(until=10.0)
    got, got2 = process.value
    # A cold non-exact request is satisfied by the first fresh arrival at
    # or just after the index (the realigned prefetcher starts at index+1).
    assert got in (0, 1)
    assert got2 >= 50  # a fresh frame at or after the requested index
    assert warden._watchers == []  # watcher cleaned up


def test_save_position_live_and_conflict():
    sim, warden, api = build_world()
    get_meta(sim, api)

    def flow():
        first = yield from api.tsop("/odyssey/video", "save-position",
                                    {"movie": "m", "position": 40})
        second = yield from api.tsop("/odyssey/video", "save-position",
                                     {"movie": "m", "position": 30})
        return first, second

    process = sim.process(flow())
    sim.run(until=5.0)
    first, second = process.value
    assert first["conflict"] is False
    assert second["conflict"] is True  # the position went backwards


def test_save_position_defers_coalesces_and_reintegrates():
    sim, warden, api = build_world()
    get_meta(sim, api)
    conn = warden.primary_connection()
    tracker = warden.connectivity(conn)
    for _ in range(tracker.disconnect_after):
        tracker.note_failure()
    assert tracker.offline

    def queue():
        a = yield from api.tsop("/odyssey/video", "save-position",
                                {"movie": "m", "position": 10})
        b = yield from api.tsop("/odyssey/video", "save-position",
                                {"movie": "m", "position": 20})
        return a, b

    process = sim.process(queue())
    sim.run(until=sim.now + 1.0)
    a, b = process.value
    assert a["deferred"] and b["deferred"]
    # Same movie: the two saves coalesce to the latest position.
    assert len(warden.deferred) == 1
    assert warden.deferred.coalesced == 1

    tracker.note_success()
    tracker.note_success()  # RECONNECTING -> CONNECTED: replay kicks off
    sim.run(until=sim.now + 5.0)
    assert [r.status for r in warden.reintegration_reports] == ["applied"]
    assert warden.reintegration_reports[0].detail["position"] == 20


def test_cache_stats_tsop():
    sim, warden, api = build_world()
    get_meta(sim, api)

    def flow():
        yield from api.tsop(
            "/odyssey/video", "get-frame",
            {"movie": "m", "track": "jpeg50", "index": 0, "exact": True},
        )
        stats = yield from api.tsop("/odyssey/video", "cache-stats", {})
        return stats

    process = sim.process(flow())
    sim.run(until=5.0)
    stats = process.value
    assert stats["entries"] >= 1
    assert stats["used_bytes"] > 0
