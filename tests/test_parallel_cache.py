"""The on-disk result cache: keys, invalidation, and escape hatches."""

import pytest

from repro.faults import Blackout, FaultPlan
from repro.parallel import (
    ResultCache,
    TrialUnit,
    canonical_params,
    code_fingerprint,
    register_trial_function,
    run_units,
)

_CALLS = []


def _counted(tag, seed=0):
    _CALLS.append((tag, seed))
    return (tag, seed)


@pytest.fixture
def counted_experiment():
    _CALLS.clear()
    previous = register_trial_function("counted", f"{__name__}:_counted")
    yield "counted"
    if previous is None:
        from repro.parallel.runner import TRIAL_FUNCTIONS

        TRIAL_FUNCTIONS.pop("counted", None)
    else:
        register_trial_function("counted", previous)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache", fingerprint="test-fp")


def test_roundtrip(cache):
    cache.put("supply", {"waveform_name": "step-up"}, 3, {"value": [1, 2]})
    hit, value = cache.get("supply", {"waveform_name": "step-up"}, 3)
    assert hit and value == {"value": [1, 2]}


def test_missing_entry_is_miss(cache):
    hit, value = cache.get("supply", {"waveform_name": "step-up"}, 3)
    assert not hit and value is None
    assert cache.misses == 1


def test_hit_skips_execution(cache, counted_experiment):
    unit = TrialUnit("counted", {"tag": "a"}, 7)
    first = run_units([unit], jobs=1, cache=cache)
    second = run_units([unit], jobs=1, cache=cache)
    assert first == second == [("a", 7)]
    assert _CALLS == [("a", 7)]  # the second run never executed
    assert cache.hits == 1 and cache.misses == 1


def test_key_varies_by_every_component(cache):
    base = cache.key("supply", {"w": "step-up"}, 0)
    assert cache.key("demand", {"w": "step-up"}, 0) != base
    assert cache.key("supply", {"w": "step-down"}, 0) != base
    assert cache.key("supply", {"w": "step-up"}, 1) != base
    other = ResultCache(root=cache.root, fingerprint="other-fp")
    assert other.key("supply", {"w": "step-up"}, 0) != base


def test_code_fingerprint_invalidates_on_edit(tmp_path):
    """Editing any .py file under the fingerprinted tree changes the key."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("X = 1\n")
    before = code_fingerprint(root=src)
    cache = ResultCache(root=tmp_path / "cache", fingerprint=before)
    cache.put("supply", {}, 0, "stale")
    (src / "mod.py").write_text("X = 2\n")
    after = code_fingerprint(root=src)
    assert after != before
    edited = ResultCache(root=tmp_path / "cache", fingerprint=after)
    hit, _ = edited.get("supply", {}, 0)
    assert not hit


def test_code_fingerprint_ignores_pycache(tmp_path):
    src = tmp_path / "src"
    (src / "__pycache__").mkdir(parents=True)
    (src / "mod.py").write_text("X = 1\n")
    before = code_fingerprint(root=src)
    (src / "__pycache__" / "mod.cpython-311.pyc").write_bytes(b"\x00")
    assert code_fingerprint(root=src) == before


def test_default_fingerprint_covers_repro_sources(tmp_path, monkeypatch):
    """The real cache key moves when any file under src/repro changes."""
    import repro

    assert ResultCache(root=tmp_path).fingerprint == code_fingerprint()
    import os

    root = os.path.dirname(os.path.abspath(repro.__file__))
    assert code_fingerprint() == code_fingerprint(root=root)


def test_corrupt_entry_is_miss(cache):
    cache.put("supply", {}, 0, "good")
    path = cache._path("supply", cache.key("supply", {}, 0))
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    hit, value = cache.get("supply", {}, 0)
    assert not hit and value is None


def test_stats_and_clear(cache):
    cache.put("supply", {"w": "a"}, 0, 1)
    cache.put("supply", {"w": "b"}, 0, 2)
    cache.put("demand", {"u": 0.45}, 0, 3)
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["experiments"] == {"supply": 2, "demand": 1}
    assert stats["bytes"] > 0
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0


def test_canonical_params_is_order_insensitive():
    assert canonical_params({"a": 1, "b": 2}) \
        == canonical_params({"b": 2, "a": 1})


class _Config:
    """A non-JSON param carrying a nested dict (insertion-order trap)."""

    def __init__(self, table):
        self.table = table


def test_opaque_nested_dicts_hash_order_insensitively(cache):
    """Semantically equal params whose nested dicts were built in a
    different insertion order must produce the same cache key — raw
    pickle bytes encode insertion order, canonicalization scrubs it."""
    forward = _Config({"alpha": 1, "beta": {"x": 1, "y": 2}})
    backward = _Config({"beta": {"y": 2, "x": 1}, "alpha": 1})
    assert canonical_params({"config": forward}) \
        == canonical_params({"config": backward})
    cache.put("supply", {"config": forward}, 0, "cached")
    hit, value = cache.get("supply", {"config": backward}, 0)
    assert hit and value == "cached"


def test_opaque_dicts_with_different_values_still_differ():
    assert canonical_params({"config": _Config({"a": 1})}) \
        != canonical_params({"config": _Config({"a": 2})})


def test_canonical_params_hashes_object_fields_not_repr():
    """Two structurally different fault plans must not share a key."""
    plan_a = FaultPlan([Blackout(start=10.0, duration=5.0)], name="same")
    plan_b = FaultPlan([Blackout(start=20.0, duration=5.0)], name="same")
    assert repr(plan_a) == repr(plan_b)  # the trap canonical_params avoids
    assert canonical_params({"faults": plan_a}) \
        != canonical_params({"faults": plan_b})
    plan_c = FaultPlan([Blackout(start=10.0, duration=5.0)], name="same")
    assert canonical_params({"faults": plan_a}) \
        == canonical_params({"faults": plan_c})
