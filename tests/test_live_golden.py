"""Golden regression: the live stack must not perturb the deterministic sim.

Same contract :mod:`tests.test_transport_golden` enforces for the
transport layer, one level up: importing :mod:`repro.live` — and even
running a full live demo (broker, wardens, wall-clock estimation, real
sockets) in this process — leaves every seeded simulation byte-identical
at any ``--jobs``.  The live viceroy reuses the sim's estimation classes
through :class:`~repro.live.viceroy.WallSim`; this test is what proves
that reuse reads the substrate without writing to it.
"""

# Import order is the point: the live stack loads first.
import asyncio

import repro.live  # noqa: F401
from repro.chaos import run_chaos_fleet
from repro.experiments.demand import run_demand_trial
from repro.experiments.supply import run_supply_trial
from repro.fleet import run_fleet
from repro.live import run_live_demo

from tests.test_sim_determinism import (
    GOLDEN_FIG8_STEP_DOWN_SEED1,
    GOLDEN_FIG8_STEP_UP_SEED0,
    GOLDEN_FIG9_SECOND_SEED0,
    GOLDEN_FIG9_TOTAL_SEED0,
    fingerprint,
)


def test_fig8_fig9_fingerprints_survive_the_live_import():
    assert fingerprint(run_supply_trial("step-up", seed=0).series) \
        == GOLDEN_FIG8_STEP_UP_SEED0
    assert fingerprint(run_supply_trial("step-down", seed=1).series) \
        == GOLDEN_FIG8_STEP_DOWN_SEED1
    trial = run_demand_trial(0.45, seed=0)
    assert fingerprint(trial.total_series) == GOLDEN_FIG9_TOTAL_SEED0
    assert fingerprint(trial.second_series) == GOLDEN_FIG9_SECOND_SEED0


def test_fingerprints_survive_a_live_demo_in_process():
    """Harsher than importing: run the whole adapting stack — wall-clock
    viceroy, throttled bulk plane, real upcalls — then re-run a seeded
    experiment.  Still byte-identical: live estimation state lives on the
    broker instance, never on the shared estimation modules."""

    report = asyncio.run(asyncio.wait_for(
        run_live_demo(clients=2, seconds=1.2), 60.0))
    assert report.ok, report.problems
    assert fingerprint(run_supply_trial("step-up", seed=0).series) \
        == GOLDEN_FIG8_STEP_UP_SEED0
    trial = run_demand_trial(0.45, seed=0)
    assert fingerprint(trial.total_series) == GOLDEN_FIG9_TOTAL_SEED0


def test_fleet_and_chaos_fingerprints_are_jobs_invariant_here():
    """The parallel path too: worker processes import repro.live via this
    module, and the merged fingerprints must match serial at any --jobs."""
    fleet_kwargs = dict(clients=32, shards=2, duration=6.0, prime=3.0,
                        cache=None)
    assert run_fleet(jobs=1, **fleet_kwargs).fingerprint() \
        == run_fleet(jobs=2, **fleet_kwargs).fingerprint()
    chaos_kwargs = dict(shards=2, duration=8.0, cache=None)
    assert run_chaos_fleet(16, jobs=1, **chaos_kwargs).fingerprint() \
        == run_chaos_fleet(16, jobs=2, **chaos_kwargs).fingerprint()
