"""Trace algebra operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.trace.algebra import (
    add_latency,
    clip,
    concat,
    scale_bandwidth,
    scale_time,
    with_fading,
)
from repro.trace.waveforms import (
    HIGH_BANDWIDTH,
    LOW_BANDWIDTH,
    step_down,
    step_up,
    urban_walk,
)


def test_concat_plays_back_to_back():
    trace = concat(step_up(), step_down())
    assert trace.duration == 120.0
    assert trace.bandwidth_at(10) == LOW_BANDWIDTH
    assert trace.bandwidth_at(45) == HIGH_BANDWIDTH
    assert trace.bandwidth_at(70) == HIGH_BANDWIDTH
    assert trace.bandwidth_at(100) == LOW_BANDWIDTH
    with pytest.raises(ReproError):
        concat()


def test_scale_bandwidth():
    halved = scale_bandwidth(step_up(), 0.5)
    assert halved.bandwidth_at(0) == LOW_BANDWIDTH / 2
    assert halved.bandwidth_at(40) == HIGH_BANDWIDTH / 2
    assert halved.duration == 60.0
    with pytest.raises(ReproError):
        scale_bandwidth(step_up(), 0)


def test_scale_time():
    stretched = scale_time(step_up(), 2.0)
    assert stretched.duration == 120.0
    assert stretched.transitions == [60.0]
    with pytest.raises(ReproError):
        scale_time(step_up(), -1)


def test_add_latency():
    slower = add_latency(step_up(), 0.05)
    assert slower.latency_at(0) == pytest.approx(0.0605)
    with pytest.raises(ReproError):
        add_latency(step_up(), -0.1)


def test_clip_inside_trace():
    clipped = clip(urban_walk(), 300.0)
    assert clipped.duration == pytest.approx(300.0)
    assert clipped.bandwidth_at(10) == urban_walk().bandwidth_at(10)


def test_clip_past_end_holds_final_value():
    clipped = clip(step_up(), 100.0)
    assert clipped.duration == pytest.approx(100.0)
    assert clipped.bandwidth_at(90) == HIGH_BANDWIDTH


def test_fading_preserves_mean_roughly():
    base = step_up()
    faded = with_fading(base, amplitude=0.2, period=0.5, seed=3)
    assert faded.duration == pytest.approx(base.duration)
    # Mean over each half stays near the base level.
    assert faded.mean_bandwidth(0, 30) == pytest.approx(LOW_BANDWIDTH, rel=0.08)
    assert faded.mean_bandwidth(30, 60) == pytest.approx(HIGH_BANDWIDTH, rel=0.08)


def test_fading_is_seeded():
    a = with_fading(step_up(), seed=1)
    b = with_fading(step_up(), seed=1)
    c = with_fading(step_up(), seed=2)
    assert a.segments == b.segments
    assert a.segments != c.segments


def test_fading_validation():
    with pytest.raises(ReproError):
        with_fading(step_up(), amplitude=1.0)
    with pytest.raises(ReproError):
        with_fading(step_up(), period=0)


@settings(max_examples=30, deadline=None)
@given(factor=st.floats(min_value=0.1, max_value=10.0))
def test_scaling_roundtrip(factor):
    base = step_down()
    there_and_back = scale_bandwidth(scale_bandwidth(base, factor), 1 / factor)
    for t in (0, 15, 45, 59):
        assert there_and_back.bandwidth_at(t) == pytest.approx(
            base.bandwidth_at(t), rel=1e-9
        )


def test_estimation_tracks_faded_trace():
    """Integration: the estimator follows a noisy (faded) step."""
    from repro.apps.bitstream import build_bitstream
    from repro.core.viceroy import Viceroy
    from repro.net.network import Network
    from repro.sim.kernel import Simulator

    trace = with_fading(step_down().shifted(10.0), amplitude=0.1, seed=4)
    sim = Simulator()
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)
    app, _, _ = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=65.0)
    tail = [v for t, v in viceroy.policy.shares.total_history if 55 <= t <= 64]
    mean_tail = sum(tail) / len(tail)
    assert mean_tail == pytest.approx(LOW_BANDWIDTH, rel=0.2)
