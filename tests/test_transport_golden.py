"""Golden regression: the transport/broker import must not perturb the sim.

The tentpole promise of the transport work is that the deterministic path
is untouched: loading :mod:`repro.transport` and :mod:`repro.broker` —
module import, class definition, even running an asyncio broker in the
same process — leaves every seeded simulation byte-identical.  The
imports below happen *before* the experiment modules run, so any
import-time side effect on the sim substrate (a monkeypatch, a shared
counter, an RNG draw) would shift the fingerprints and fail here.
"""

# Import order is the point: transport and broker first.
import asyncio

import repro.broker  # noqa: F401
import repro.transport  # noqa: F401
from repro.broker import Broker
from repro.chaos import run_chaos_fleet
from repro.experiments.demand import run_demand_trial
from repro.experiments.supply import run_supply_trial
from repro.fleet import run_fleet

from tests.test_sim_determinism import (
    GOLDEN_FIG8_STEP_DOWN_SEED1,
    GOLDEN_FIG8_STEP_UP_SEED0,
    GOLDEN_FIG9_SECOND_SEED0,
    GOLDEN_FIG9_TOTAL_SEED0,
    fingerprint,
)


def test_fig8_fig9_fingerprints_survive_the_transport_import():
    assert fingerprint(run_supply_trial("step-up", seed=0).series) \
        == GOLDEN_FIG8_STEP_UP_SEED0
    assert fingerprint(run_supply_trial("step-down", seed=1).series) \
        == GOLDEN_FIG8_STEP_DOWN_SEED1
    trial = run_demand_trial(0.45, seed=0)
    assert fingerprint(trial.total_series) == GOLDEN_FIG9_TOTAL_SEED0
    assert fingerprint(trial.second_series) == GOLDEN_FIG9_SECOND_SEED0


def test_fingerprints_survive_a_live_broker_in_process():
    """Harsher than importing: run a real broker (its own event loop,
    sockets, wall-clock timers) in this process, then re-run a seeded
    experiment.  Still byte-identical — sim time never touches it."""

    async def exercise():
        broker = await Broker(port=0).start()
        await broker.close()

    asyncio.run(exercise())
    assert fingerprint(run_supply_trial("step-up", seed=0).series) \
        == GOLDEN_FIG8_STEP_UP_SEED0


def test_fleet_and_chaos_fingerprints_are_jobs_invariant_here():
    """The parallel path too: worker processes import the same modules,
    and the merged fingerprints must match serial at any --jobs."""
    fleet_kwargs = dict(clients=32, shards=2, duration=6.0, prime=3.0,
                        cache=None)
    assert run_fleet(jobs=1, **fleet_kwargs).fingerprint() \
        == run_fleet(jobs=2, **fleet_kwargs).fingerprint()
    chaos_kwargs = dict(shards=2, duration=8.0, cache=None)
    assert run_chaos_fleet(16, jobs=1, **chaos_kwargs).fingerprint() \
        == run_chaos_fleet(16, jobs=2, **chaos_kwargs).fingerprint()
