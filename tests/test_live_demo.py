"""The checked live demo and its CLI surface."""

import asyncio
import json

from repro.cli import main
from repro.live import LiveReport, format_live_report, run_live_demo


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 60.0))


def _warden_row(name, **overrides):
    row = {
        "client": name, "app": "video", "fidelity": "jpeg50",
        "fidelity_changes": 2, "upcalls_received": 1, "renegotiations": 1,
        "rejections": 0, "chunks": 10, "bytes_fetched": 100_000,
        "stalls": 0, "failures": 0, "cache_chunks": 0, "reintegrations": 0,
        "connectivity": "connected",
    }
    row.update(overrides)
    return row


def _passing_report(**broker_overrides):
    report = LiveReport(clients=1, seconds=1.0, high=80_000, low=8_000)
    report.wardens = [_warden_row("live-0")]
    report.broker = {"upcalls_sent": 1, "upcalls_acked": 1,
                     "calls_served": 50, "clients": 0}
    report.broker.update(broker_overrides)
    return report


# -- the judgement, on synthetic snapshots ------------------------------------


def test_check_passes_a_clean_run():
    report = _passing_report().check()
    assert report.ok
    assert report.problems == []
    assert "OK: every client" in format_live_report(report)


def test_check_flags_lost_and_unacked_upcalls():
    report = _passing_report(upcalls_sent=3, upcalls_acked=2).check()
    assert not report.ok
    assert any("lost upcalls" in p for p in report.problems)
    assert any("unacked upcalls" in p for p in report.problems)


def test_check_flags_stuck_adaptation():
    report = _passing_report(upcalls_sent=0, upcalls_acked=0)
    report.wardens = [_warden_row("live-0", upcalls_received=0,
                                  fidelity_changes=0, renegotiations=0)]
    report.check()
    assert any("stuck adaptation" in p for p in report.problems)
    assert any("no upcall received" in p for p in report.problems)
    assert any("fidelity never changed" in p for p in report.problems)
    assert any("never re-registered" in p for p in report.problems)


def test_check_flags_failures_and_dirty_shutdown():
    report = _passing_report()
    report.wardens = [_warden_row("live-0", failures=2)]
    report.sessions_left = 1
    report.check()
    assert any("2 failed exchanges" in p for p in report.problems)
    assert any("dirty shutdown" in p for p in report.problems)
    formatted = format_live_report(report)
    assert "FAILED:" in formatted
    assert report.to_dict()["ok"] is False


# -- one real end-to-end run ---------------------------------------------------


def test_live_demo_completes_an_adaptation_cycle_per_client():
    transitions = []

    def on_transition(name, when, level, rung):
        transitions.append((name, rung))

    report = run(run_live_demo(clients=2, seconds=1.5,
                               on_transition=on_transition))
    assert report.ok, report.problems
    assert report.upcalls_received >= 2
    assert report.sessions_left == 0
    assert len(transitions) >= 2
    assert {name for name, _ in transitions} == {"live-0", "live-1"}
    payload = report.to_dict()
    assert payload["ok"] is True
    assert len(payload["wardens"]) == 2
    json.dumps(payload)  # the CLI writes this; it must be serializable


def test_cli_live_smoke(tmp_path, capsys):
    out = tmp_path / "live.json"
    code = main(["live", "--clients", "2", "--seconds", "1.5",
                 "--quiet", "--json-out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert payload["clients"] == 2
    captured = capsys.readouterr()
    assert "OK: every client" in captured.out
