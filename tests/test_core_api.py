"""The per-application OdysseyAPI façade (Fig. 3's system-call surface)."""

import pytest

from repro.core.api import OdysseyAPI
from repro.core.resources import Resource
from repro.core.warden import Warden
from repro.errors import NoSuchObject, NoSuchOperation, OdysseyError, ToleranceError


class MiniWarden(Warden):
    TSOPS = {"double": "tsop_double"}

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.objects = {"greeting": "hello world"}
        self.closed = []

    def tsop_double(self, app, rest, inbuf):
        return inbuf["value"] * 2
        yield  # pragma: no cover

    def vfs_open(self, app, rest, flags="r"):
        if rest not in self.objects:
            raise NoSuchObject(rest)
        return {"name": rest, "pos": 0}

    def vfs_read(self, app, handle, nbytes):
        data = self.objects[handle["name"]]
        yield self.sim.timeout(0.01)  # a little simulated work
        return data if nbytes is None else data[:nbytes]

    def vfs_write(self, app, handle, data):
        self.objects[handle["name"]] = data
        return len(data)
        yield  # pragma: no cover

    def vfs_close(self, app, handle):
        self.closed.append(handle["name"])

    def vfs_stat(self, rest):
        return {"size": len(self.objects[rest])}

    def vfs_readdir(self, rest):
        return sorted(self.objects)


@pytest.fixture
def warden(sim, viceroy):
    warden = MiniWarden(sim, viceroy, "mini")
    viceroy.mount("/odyssey/mini", warden)
    return warden


def test_open_read_close(sim, api, warden, run_process):
    def flow():
        fd = api.open("/odyssey/mini/greeting")
        assert fd >= 3
        data = yield from api.read(fd, 5)
        api.close(fd)
        return data

    assert run_process(flow()) == "hello"
    assert warden.closed == ["greeting"]


def test_read_after_close_is_bad_fd(sim, api, warden, run_process):
    def flow():
        fd = api.open("/odyssey/mini/greeting")
        api.close(fd)
        try:
            yield from api.read(fd, 1)
        except OdysseyError:
            return "bad fd"

    assert run_process(flow()) == "bad fd"


def test_write(sim, api, warden, run_process):
    def flow():
        fd = api.open("/odyssey/mini/greeting", flags="w")
        count = yield from api.write(fd, "new text")
        api.close(fd)
        return count

    assert run_process(flow()) == 8
    assert warden.objects["greeting"] == "new text"


def test_open_missing_object(api, warden):
    with pytest.raises(NoSuchObject):
        api.open("/odyssey/mini/nothing")


def test_tsop_by_path_and_fd(sim, api, warden, run_process):
    def flow():
        by_path = yield from api.tsop("/odyssey/mini/greeting", "double",
                                      {"value": 21})
        fd = api.open("/odyssey/mini/greeting")
        by_fd = yield from api.tsop_fd(fd, "double", {"value": 10})
        return by_path, by_fd

    assert run_process(flow()) == (42, 20)


def test_unknown_tsop(sim, api, warden, run_process):
    def flow():
        try:
            yield from api.tsop("/odyssey/mini/greeting", "missing", {})
        except NoSuchOperation as exc:
            return str(exc)

    assert "double" in run_process(flow())  # error lists supported opcodes


def test_stat_and_readdir(api, warden):
    assert api.stat("/odyssey/mini/greeting")["size"] == 11
    assert api.readdir("/odyssey/mini") == ["greeting"]
    assert "mini" in api.readdir("/odyssey")


def test_request_fd_variant(sim, network, viceroy, warden):
    """request/request_fd resolve paths to the warden's connection."""
    from repro.rpc.connection import RpcService
    from repro.rpc.messages import ServerReply

    server = network.add_host("server")
    service = RpcService(sim, server, "svc")
    service.register("noop", lambda body: ServerReply())
    warden.open_connection("server", "svc")

    api = OdysseyAPI(viceroy, "fd-app")
    request_id = api.request("/odyssey/mini/greeting",
                             Resource.NETWORK_BANDWIDTH, 0, 1e9)
    api.cancel(request_id)
    fd = api.open("/odyssey/mini/greeting")
    request_id = api.request_fd(fd, Resource.NETWORK_BANDWIDTH, 0, 1e9)
    api.cancel(request_id)


def test_fds_are_per_application(viceroy, warden):
    first = OdysseyAPI(viceroy, "one")
    second = OdysseyAPI(viceroy, "two")
    fd = first.open("/odyssey/mini/greeting")
    with pytest.raises(OdysseyError):
        second.close(fd)
