"""The benchmark baseline comparator: the logic behind CI's perf-gate.

The gate's contract: a run within the committed tolerance bands passes, a
genuine slowdown (the canonical synthetic case is 3x against a 2x band)
fails, a baseline metric absent from the run fails (renames must be
re-baselined deliberately), and malformed inputs error out loudly rather
than passing vacuously.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench import (
    DEFAULT_TOLERANCE,
    MIN_SECONDS_TOLERANCE,
    capture_baseline,
    compare_metrics,
    format_report,
    headline_metrics,
    load_baseline,
    write_baseline,
)
from repro.bench.baseline import load_report
from repro.errors import BenchmarkError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SLOWDOWN = 3.0  # the synthetic regression the gate must catch


def run_report(scale=1.0):
    """A minimal pytest-benchmark JSON report, optionally slowed down."""
    return {
        "benchmarks": [
            {
                "name": "test_event_loop_throughput",
                "stats": {"min": 0.010 * scale, "mean": 0.012 * scale},
                "extra_info": {"events_per_second": 1e6 / scale},
            },
            {
                "name": "test_rpc_fetch_throughput",
                "stats": {"min": 0.020 * scale, "mean": 0.022 * scale},
                "extra_info": {},
            },
        ]
    }


@pytest.fixture
def baseline_doc():
    return capture_baseline(
        headline_metrics(run_report()),
        tolerance=2.0,
        captured_at="2026-08-05",
        directions={"test_event_loop_throughput.events_per_second": "higher"},
    )


def test_headline_metrics_flattens_stats_and_extra_info():
    metrics = headline_metrics(run_report())
    assert metrics["test_event_loop_throughput.min_seconds"] == 0.010
    assert metrics["test_event_loop_throughput.mean_seconds"] == 0.012
    assert metrics["test_event_loop_throughput.events_per_second"] == 1e6
    assert metrics["test_rpc_fetch_throughput.min_seconds"] == 0.020


def test_headline_metrics_rejects_malformed_report():
    with pytest.raises(BenchmarkError):
        headline_metrics({"no_benchmarks_key": []})
    with pytest.raises(BenchmarkError):
        headline_metrics({"benchmarks": ["not a dict"]})


def test_identical_run_passes(baseline_doc):
    report = compare_metrics(headline_metrics(run_report()), baseline_doc)
    assert report.ok
    assert not report.regressions and not report.missing
    assert "PASS" in format_report(report)


def test_within_tolerance_passes(baseline_doc):
    # 1.5x slower sits inside the 2x band on every "lower" metric, and
    # the matching 1/1.5 rate drop sits inside the "higher" band.
    report = compare_metrics(headline_metrics(run_report(1.5)), baseline_doc)
    assert report.ok


def test_synthetic_slowdown_fails(baseline_doc):
    # The acceptance case: 3x slower must blow through the 2x band.
    report = compare_metrics(
        headline_metrics(run_report(SLOWDOWN)), baseline_doc
    )
    assert not report.ok
    bad = {c.metric for c in report.regressions}
    assert "test_event_loop_throughput.min_seconds" in bad
    assert "test_rpc_fetch_throughput.min_seconds" in bad
    # The rate metric regresses in the "higher" direction.
    assert "test_event_loop_throughput.events_per_second" in bad
    assert "FAIL" in format_report(report)


def test_missing_baseline_metric_fails(baseline_doc):
    current = headline_metrics(run_report())
    del current["test_rpc_fetch_throughput.min_seconds"]
    report = compare_metrics(current, baseline_doc)
    assert not report.ok
    assert [c.metric for c in report.missing] == [
        "test_rpc_fetch_throughput.min_seconds"
    ]


def test_new_run_metric_is_reported_not_gated(baseline_doc):
    current = headline_metrics(run_report())
    current["test_brand_new_bench.min_seconds"] = 1e9  # huge but ungated
    report = compare_metrics(current, baseline_doc)
    assert report.ok
    assert report.new_metrics == ["test_brand_new_bench.min_seconds"]


def test_tolerance_scale_widens_every_band(baseline_doc):
    slowed = headline_metrics(run_report(SLOWDOWN))
    assert not compare_metrics(slowed, baseline_doc).ok
    assert compare_metrics(slowed, baseline_doc, tolerance_scale=2.0).ok
    with pytest.raises(BenchmarkError):
        compare_metrics(slowed, baseline_doc, tolerance_scale=0.5)


def test_only_filter_judges_named_metrics(baseline_doc):
    # Regress only the RPC benchmark; a filter naming the event-loop
    # metric alone must still pass, and one naming RPC must fail.
    current = headline_metrics(run_report())
    current["test_rpc_fetch_throughput.min_seconds"] *= SLOWDOWN
    assert compare_metrics(
        current, baseline_doc,
        only=["test_event_loop_throughput.min_seconds"],
    ).ok
    report = compare_metrics(
        current, baseline_doc,
        only=["test_rpc_fetch_throughput.min_seconds"],
    )
    assert not report.ok
    assert [c.metric for c in report.regressions] == [
        "test_rpc_fetch_throughput.min_seconds"
    ]


def test_only_filter_rejects_unknown_names(baseline_doc):
    # A typo in the CI gate's metric list must fail the gate loudly,
    # never shrink it to a vacuous pass.
    with pytest.raises(BenchmarkError):
        compare_metrics(
            headline_metrics(run_report()), baseline_doc,
            only=["test_event_loop_throughput.min_seconds",
                  "test_nonexistent.min_seconds"],
        )


def test_capture_rejects_sub_unity_tolerance():
    with pytest.raises(BenchmarkError):
        capture_baseline({"m": 1.0}, tolerance=0.9)


def test_baseline_roundtrip_and_validation(tmp_path, baseline_doc):
    path = tmp_path / "baseline.json"
    write_baseline(baseline_doc, path)
    assert load_baseline(path) == baseline_doc

    path.write_text("{not json")
    with pytest.raises(BenchmarkError):
        load_baseline(path)

    path.write_text(json.dumps({"metrics": {"m": {"value": "fast"}}}))
    with pytest.raises(BenchmarkError):
        load_baseline(path)

    path.write_text(json.dumps(
        {"metrics": {"m": {"value": 1.0, "direction": "sideways"}}}
    ))
    with pytest.raises(BenchmarkError):
        load_baseline(path)

    with pytest.raises(BenchmarkError):
        load_baseline(tmp_path / "does_not_exist.json")

    with pytest.raises(BenchmarkError):
        load_report(tmp_path / "does_not_exist.json")


def test_committed_baseline_is_valid():
    doc = load_baseline(os.path.join(REPO_ROOT, "benchmarks", "baseline.json"))
    assert doc["schema"] == "repro-bench-baseline/1"
    assert doc["metrics"], "committed baseline must gate at least one metric"
    for name, entry in doc["metrics"].items():
        if name.endswith(".min_seconds"):
            # min-of-N is the low-noise statistic: two independent captures
            # agreed within a few percent, so it earns the tighter band.
            assert entry["tolerance"] >= MIN_SECONDS_TOLERANCE
        else:
            assert entry["tolerance"] >= DEFAULT_TOLERANCE


def _run_script(args, cwd):
    return subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "benchmarks", "baseline.py"),
         *args],
        cwd=cwd, capture_output=True, text=True,
    )


def test_script_exit_codes_match_gate_semantics(tmp_path):
    """The exact command perf-gate runs: exit 0/1/2 for pass/fail/error."""
    run_json = tmp_path / "run.json"
    run_json.write_text(json.dumps(run_report()))
    baseline_json = tmp_path / "baseline.json"

    captured = _run_script(
        ["capture", "--json", str(run_json), "--out", str(baseline_json)],
        cwd=tmp_path,
    )
    assert captured.returncode == 0, captured.stderr

    ok = _run_script(
        ["compare", "--json", str(run_json), "--baseline", str(baseline_json)],
        cwd=tmp_path,
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr
    assert "PASS" in ok.stdout

    run_json.write_text(json.dumps(run_report(SLOWDOWN)))
    slow = _run_script(
        ["compare", "--json", str(run_json), "--baseline", str(baseline_json)],
        cwd=tmp_path,
    )
    assert slow.returncode == 1
    assert "REGRESSION" in slow.stdout

    run_json.write_text("{not json")
    broken = _run_script(
        ["compare", "--json", str(run_json), "--baseline", str(baseline_json)],
        cwd=tmp_path,
    )
    assert broken.returncode == 2
    assert "error:" in broken.stderr


def test_capture_per_metric_tolerances():
    from repro.bench.baseline import (
        MIN_SECONDS_TOLERANCE,
        capture_baseline,
        default_tolerances,
    )

    metrics = {"bench_a.min_seconds": 0.1, "bench_a.mean_seconds": 0.12,
               "bench_a.custom": 5.0}
    tolerances = default_tolerances(metrics)
    assert tolerances == {"bench_a.min_seconds": MIN_SECONDS_TOLERANCE}
    doc = capture_baseline(metrics, tolerances=tolerances)
    assert doc["metrics"]["bench_a.min_seconds"]["tolerance"] \
        == MIN_SECONDS_TOLERANCE
    assert doc["metrics"]["bench_a.mean_seconds"]["tolerance"] == 2.0
    assert doc["metrics"]["bench_a.custom"]["tolerance"] == 2.0
    with pytest.raises(BenchmarkError):
        capture_baseline(metrics, tolerances={"bench_a.custom": 0.5})


def test_capture_default_directions_flip_quality_metrics():
    """QoE-style metrics gate drops, not rises: a ``"lower"`` band on
    clients/s would fail a faster runner and never catch a fidelity
    regression."""
    from repro.bench.baseline import capture_baseline, default_directions

    metrics = {"fleet.fleet_clients_per_second": 100.0,
               "fleet.fleet_mean_fidelity": 0.5,
               "fleet.fleet_fairness": 0.8,
               "suite.suite_speedup": 2.5,
               "fleet.fleet_wall_seconds": 2.0,
               "fleet.fleet_upcalls": 400.0}
    directions = default_directions(metrics)
    assert directions == {"fleet.fleet_clients_per_second": "higher",
                          "fleet.fleet_mean_fidelity": "higher",
                          "fleet.fleet_fairness": "higher",
                          "suite.suite_speedup": "higher"}
    doc = capture_baseline(metrics, directions=directions)
    assert doc["metrics"]["fleet.fleet_wall_seconds"]["direction"] == "lower"
    assert doc["metrics"]["fleet.fleet_upcalls"]["direction"] == "lower"
    report = compare_metrics(
        current={**metrics, "fleet.fleet_mean_fidelity": 0.2},
        baseline_doc=doc,
    )
    assert [c.metric for c in report.regressions] \
        == ["fleet.fleet_mean_fidelity"]
    # Being faster than baseline is never a regression.
    assert compare_metrics(
        current={**metrics, "fleet.fleet_clients_per_second": 500.0},
        baseline_doc=doc,
    ).ok
