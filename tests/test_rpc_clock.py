"""The clock seam: retry arithmetic identical on sim and wall time."""

import asyncio
import time

import pytest

from repro.errors import RpcTimeout
from repro.rpc.clock import MonotonicClock, RetrySchedule, SimClock
from repro.rpc.connection import RetryPolicy
from repro.sim.kernel import Simulator


class FakeClock:
    """A hand-cranked clock so deadline arithmetic is exact."""

    def __init__(self):
        self.time = 0.0
        self.sleeps = []

    def now(self):
        return self.time

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.time += seconds
        return _nothing()  # awaitable, per the MonotonicClock contract


async def _nothing():
    return None


def test_sim_clock_reads_sim_time():
    sim = Simulator()
    clock = SimClock(sim)
    assert clock.now() == sim.now

    seen = []

    def process():
        yield clock.sleep(2.5)
        seen.append(clock.now())

    sim.process(process())
    sim.run()
    assert seen == [2.5]


def test_monotonic_clock_reads_wall_time():
    clock = MonotonicClock()
    before = time.monotonic()
    now = clock.now()
    after = time.monotonic()
    assert before <= now <= after

    async def nap():
        start = clock.now()
        await clock.sleep(0.01)
        return clock.now() - start

    assert asyncio.run(nap()) >= 0.009


def test_schedule_without_deadline_never_clips():
    clock = FakeClock()
    policy = RetryPolicy(timeout=3.0, retries=2, backoff=1.0)
    schedule = RetrySchedule(policy, clock)
    assert schedule.deadline_at is None
    clock.time = 1_000.0
    assert schedule.attempt_timeout() == 3.0
    assert schedule.past_deadline(1e9) is False


def test_schedule_clips_attempt_timeout_to_deadline():
    clock = FakeClock()
    policy = RetryPolicy(timeout=5.0, retries=3, backoff=1.0, deadline=8.0)
    schedule = RetrySchedule(policy, clock)
    assert schedule.attempt_timeout() == 5.0  # plenty of budget left
    clock.time = 6.0
    assert schedule.attempt_timeout() == pytest.approx(2.0)  # clipped
    assert schedule.past_deadline(1.0) is False
    assert schedule.past_deadline(2.0) is True  # 6 + 2 >= 8


def test_schedule_walks_the_policy_backoff():
    clock = FakeClock()
    policy = RetryPolicy(timeout=1.0, retries=3, backoff=0.5,
                         multiplier=2.0)
    schedule = RetrySchedule(policy, clock)
    delays = [schedule.next_delay() for _ in range(5)]
    expected = list(policy.delays()) + [None, None]
    assert delays == expected[:5]
    assert delays[-1] is None  # exhausted -> the driver re-raises


def test_broker_client_retry_honours_deadline():
    """The wall-clock twin of the sim retry loop: a deadline exhausts
    retries even when attempts remain."""
    from repro.broker.client import BrokerClient

    client = BrokerClient("127.0.0.1", 1, "t", clock=FakeClock())
    attempts = []

    async def failing_call(op, body=None, body_bytes=256, timeout=None):
        attempts.append(timeout)
        client.clock.time += timeout  # the attempt burns its full budget
        raise RpcTimeout("synthetic")

    client.call = failing_call
    policy = RetryPolicy(timeout=2.0, retries=5, backoff=1.0,
                         multiplier=1.0, deadline=5.0)
    with pytest.raises(RpcTimeout, match="deadline"):
        asyncio.run(client.call_with_retry("op", retry=policy))
    # t=0: attempt(2) -> t=2, backoff 1 -> t=3; attempt clipped to 2 ->
    # t=5; next backoff would land at the deadline -> exhausted.
    assert attempts == [2.0, pytest.approx(2.0)]
    assert client.clock.sleeps == [1.0]
