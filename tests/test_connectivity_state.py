"""The connectivity state machine: hysteresis, legal edges, recovery.

The property tests pin the two invariants the disconnected-operation
subsystem leans on: the machine only ever walks edges in
:data:`VALID_TRANSITIONS` (in particular it never jumps
CONNECTED -> RECONNECTING), and once faults clear it always returns to
CONNECTED — under arbitrary evidence streams and under evidence derived
from blackout plans shaped like the robustness scenario family's.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import (
    VALID_TRANSITIONS,
    ConnState,
    ConnectivityTracker,
)
from repro.errors import OdysseyError
from repro.faults import Blackout, FaultPlan


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_tracker(**kwargs):
    return ConnectivityTracker(FakeClock(), name="t", **kwargs)


# -- construction -----------------------------------------------------------

def test_starts_connected():
    tracker = make_tracker()
    assert tracker.state is ConnState.CONNECTED
    assert not tracker.offline
    assert tracker.transitions == []


@pytest.mark.parametrize("kwargs", [
    {"degrade_after": 0},
    {"recover_after": 0},
    {"degrade_after": 3, "disconnect_after": 3},
    {"degrade_after": 3, "disconnect_after": 2},
])
def test_threshold_validation(kwargs):
    with pytest.raises(OdysseyError):
        make_tracker(**kwargs)


# -- hysteresis down --------------------------------------------------------

def test_single_failure_does_not_degrade():
    tracker = make_tracker(degrade_after=2)
    tracker.note_failure()
    assert tracker.state is ConnState.CONNECTED


def test_consecutive_failures_degrade_then_disconnect():
    tracker = make_tracker(degrade_after=2, disconnect_after=4)
    tracker.note_failure()
    tracker.note_failure()
    assert tracker.state is ConnState.DEGRADED
    assert not tracker.offline
    tracker.note_failure()
    assert tracker.state is ConnState.DEGRADED
    tracker.note_failure()
    assert tracker.state is ConnState.DISCONNECTED
    assert tracker.offline


def test_success_resets_the_failure_run():
    tracker = make_tracker(degrade_after=2)
    tracker.note_failure()
    tracker.note_success()
    tracker.note_failure()
    assert tracker.state is ConnState.CONNECTED  # never two in a row


# -- recovery ---------------------------------------------------------------

def march_to_disconnected(tracker):
    for _ in range(tracker.disconnect_after):
        tracker.note_failure()
    assert tracker.state is ConnState.DISCONNECTED


def test_first_success_enters_reconnecting_not_connected():
    tracker = make_tracker(recover_after=2)
    march_to_disconnected(tracker)
    tracker.note_success()
    assert tracker.state is ConnState.RECONNECTING
    assert tracker.offline  # still not trusted
    tracker.note_success()
    assert tracker.state is ConnState.CONNECTED
    assert not tracker.offline


def test_relapse_while_reconnecting():
    tracker = make_tracker()
    march_to_disconnected(tracker)
    tracker.note_success()
    tracker.note_failure()
    assert tracker.state is ConnState.DISCONNECTED


def test_degraded_recovers_without_visiting_reconnecting():
    tracker = make_tracker(degrade_after=2, recover_after=2)
    tracker.note_failure()
    tracker.note_failure()
    tracker.note_success()
    tracker.note_success()
    assert tracker.state is ConnState.CONNECTED
    visited = {t.target for t in tracker.transitions}
    assert ConnState.RECONNECTING not in visited


# -- bookkeeping ------------------------------------------------------------

def test_transitions_record_time_and_reason():
    clock = FakeClock()
    tracker = ConnectivityTracker(clock, degrade_after=1, disconnect_after=2)
    clock.now = 5.0
    tracker.note_failure()
    assert tracker.transitions[-1].time == 5.0
    assert tracker.transitions[-1].source is ConnState.CONNECTED
    assert tracker.transitions[-1].target is ConnState.DEGRADED
    assert "failure" in tracker.transitions[-1].reason
    clock.now = 9.0
    assert tracker.time_in_state() == pytest.approx(4.0)


def test_subscribers_see_every_transition():
    tracker = make_tracker()
    seen = []
    tracker.subscribe(seen.append)
    march_to_disconnected(tracker)
    tracker.note_success()
    tracker.note_success()
    assert [t.target for t in seen] == [
        ConnState.DEGRADED, ConnState.DISCONNECTED,
        ConnState.RECONNECTING, ConnState.CONNECTED,
    ]
    assert seen == tracker.transitions


def test_probe_evidence_counted_separately():
    tracker = make_tracker()
    tracker.note_success(probe=True)
    tracker.note_failure(probe=True)
    tracker.note_failure()
    assert tracker.probe_successes == 1
    assert tracker.probe_failures == 1
    assert tracker.successes == 1 and tracker.failures == 2


def test_illegal_move_raises():
    tracker = make_tracker()
    with pytest.raises(OdysseyError):
        tracker._move(ConnState.RECONNECTING, "forced")


# -- properties -------------------------------------------------------------

EVIDENCE = st.lists(st.booleans(), min_size=0, max_size=200)
THRESHOLDS = st.tuples(
    st.integers(min_value=1, max_value=4),   # degrade_after
    st.integers(min_value=1, max_value=4),   # disconnect_after - degrade_after
    st.integers(min_value=1, max_value=4),   # recover_after
)


@settings(max_examples=200, deadline=None)
@given(evidence=EVIDENCE, thresholds=THRESHOLDS)
def test_only_legal_edges_ever_taken(evidence, thresholds):
    """Any evidence stream: every transition is a legal edge, and the
    machine never jumps CONNECTED -> RECONNECTING."""
    degrade, gap, recover = thresholds
    tracker = make_tracker(degrade_after=degrade,
                           disconnect_after=degrade + gap,
                           recover_after=recover)
    for ok in evidence:
        tracker.note_success() if ok else tracker.note_failure()
    for transition in tracker.transitions:
        assert transition.target in VALID_TRANSITIONS[transition.source]
        assert not (transition.source is ConnState.CONNECTED
                    and transition.target is ConnState.RECONNECTING)
    # Consecutive transitions chain: each starts where the last ended.
    states = [ConnState.CONNECTED] + [t.target for t in tracker.transitions]
    for before, transition in zip(states, tracker.transitions):
        assert transition.source is before


@settings(max_examples=200, deadline=None)
@given(evidence=EVIDENCE, thresholds=THRESHOLDS)
def test_always_recovers_once_faults_clear(evidence, thresholds):
    """After any history, sustained success always reaches CONNECTED."""
    degrade, gap, recover = thresholds
    tracker = make_tracker(degrade_after=degrade,
                           disconnect_after=degrade + gap,
                           recover_after=recover)
    for ok in evidence:
        tracker.note_success() if ok else tracker.note_failure()
    # Worst case: one success only reaches RECONNECTING, then the run
    # to recover_after must complete from there.
    for _ in range(recover + 1):
        tracker.note_success()
    assert tracker.state is ConnState.CONNECTED


@st.composite
def blackout_plans(draw):
    """FaultPlans shaped like the robustness family's outage windows."""
    n = draw(st.integers(min_value=1, max_value=4))
    faults, t = [], 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=1.0, max_value=30.0))
        duration = draw(st.floats(min_value=0.5, max_value=40.0))
        faults.append(Blackout(start=t, duration=duration))
        t += duration
    return FaultPlan(faults, name="generated")


@settings(max_examples=100, deadline=None)
@given(plan=blackout_plans(), thresholds=THRESHOLDS,
       step=st.floats(min_value=0.5, max_value=3.0))
def test_recovers_after_any_blackout_plan(plan, thresholds, step):
    """Evidence sampled through any blackout plan: legal edges throughout,
    and CONNECTED again once the last blackout clears."""
    degrade, gap, recover = thresholds
    clock = FakeClock()
    tracker = ConnectivityTracker(clock, degrade_after=degrade,
                                  disconnect_after=degrade + gap,
                                  recover_after=recover)

    def dark(t):
        return any(f.start <= t < f.start + f.duration for f in plan.faults)

    end = max(f.start + f.duration for f in plan.faults)
    # Sample evidence on a fixed cadence: a probe/fetch fails while any
    # blackout covers it, succeeds otherwise.  Run well past the last
    # fault so recovery hysteresis has the successes it needs.
    t = 0.0
    while t < end + step * (recover + 2):
        clock.now = t
        tracker.note_failure() if dark(t) else tracker.note_success()
        t += step
    assert tracker.state is ConnState.CONNECTED
    for transition in tracker.transitions:
        assert transition.target in VALID_TRANSITIONS[transition.source]
