"""Exporters: JSONL event logs, series bridges, metrics summaries."""

import json

from repro.telemetry.export import (
    events_to_jsonl,
    events_to_series,
    metrics_summary,
    series_to_csv,
    series_to_jsonl,
    write_events_jsonl,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import EventTrace


def _trace_with_events():
    trace = EventTrace(lambda: 1.0)
    trace.point("tick", detail="x")
    span = trace.begin("work")
    trace.end(span)
    return trace


def test_events_to_jsonl_round_trips():
    text = events_to_jsonl(_trace_with_events().events())
    lines = text.strip().split("\n")
    parsed = [json.loads(line) for line in lines]
    assert [e["kind"] for e in parsed] == ["point", "begin", "end"]
    assert parsed[0]["fields"] == {"detail": "x"}


def test_events_to_jsonl_stringifies_unserializable_fields():
    trace = EventTrace(lambda: 0.0)
    trace.point("odd", obj=object())
    json.loads(events_to_jsonl(trace.events()).strip())  # must not raise


def test_write_events_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    count = write_events_jsonl(_trace_with_events().events(), path)
    assert count == 3
    lines = path.read_text(encoding="utf-8").strip().split("\n")
    assert len(lines) == 3
    assert json.loads(lines[-1])["kind"] == "end"


def test_series_to_csv_format():
    text = series_to_csv([(0.5, 100.0), (1.25, 250.5)])
    assert text == "time,value\n0.5000,100.0\n1.2500,250.5\n"


def test_series_jsonl_round_trips_through_events():
    series = [(0.1, 5.0), (0.2, 6.5)]
    text = series_to_jsonl(series, name="fig8.estimate", waveform="step-up")
    events = [json.loads(line) for line in text.strip().split("\n")]
    assert events_to_series(events, "fig8.estimate") == series
    assert events_to_series(events, "other") == []
    assert events[0]["fields"] == {"waveform": "step-up"}


def test_metrics_summary_renders_all_sections():
    registry = MetricsRegistry()
    registry.counter("rpc.calls", connection="a").inc(3)
    registry.gauge("warden.deferred_depth").set(2.0)
    registry.histogram("rpc.round_trip_seconds").observe(0.02)
    text = metrics_summary(registry.snapshot())
    assert "counters" in text and "gauges" in text and "histograms" in text
    assert "rpc.calls{connection=a}" in text
    assert "warden.deferred_depth" in text
    assert "rpc.round_trip_seconds" in text


def test_metrics_summary_empty():
    assert metrics_summary(MetricsRegistry().snapshot()) == "no metrics recorded\n"
