"""Per-connection bandwidth estimation (Eq. 2) and its defenses."""

import pytest

from repro.estimation.bandwidth import (
    BASE_RTT_HORIZON,
    MAX_CORRECTION_FACTOR,
    ConnectionEstimator,
)
from repro.rpc.logs import RoundTripEntry, RpcLog, ThroughputEntry


def rtt_entry(at, seconds):
    return RoundTripEntry(at, seconds, 100, 100)


def tput_entry(at, started, nbytes):
    return ThroughputEntry(at, started, nbytes, at - started)


def test_eq2_subtracts_dead_round_trip(sim):
    estimator = ConnectionEstimator(sim)
    log = RpcLog(sim, "c")
    estimator.on_round_trip(log, rtt_entry(0.0, 0.021))
    # 32 KiB that took 0.30 s: Eq. 2 recovers 32768 / (0.30 - 0.021).
    sample = estimator.bandwidth_sample(tput_entry(0.3, 0.0, 32768))
    assert sample == pytest.approx(32768 / (0.30 - 0.021))


def test_estimate_smoothed_with_gain(sim):
    estimator = ConnectionEstimator(sim)
    log = RpcLog(sim, "c")
    estimator.on_throughput(log, tput_entry(1.0, 0.0, 100_000))
    first = estimator.bandwidth
    estimator.on_throughput(log, tput_entry(3.0, 2.0, 50_000))
    expected = 0.875 * estimator.bandwidth_sample(tput_entry(3.0, 2.0, 50_000)) \
        + 0.125 * first
    assert estimator.bandwidth == pytest.approx(expected)


def test_correction_capped_at_twice_raw_rate(sim):
    estimator = ConnectionEstimator(sim)
    log = RpcLog(sim, "c")
    # A polluted round trip nearly as large as the window time.
    estimator.on_round_trip(log, rtt_entry(0.0, 0.29))
    sample = estimator.bandwidth_sample(tput_entry(0.3, 0.0, 3000))
    raw = 3000 / 0.3
    assert sample <= MAX_CORRECTION_FACTOR * raw + 1e-9


def test_base_rtt_is_windowed_minimum(sim):
    estimator = ConnectionEstimator(sim)
    log = RpcLog(sim, "c")
    sim.run(until=1.0)
    estimator.on_round_trip(log, rtt_entry(1.0, 0.020))
    sim.run(until=2.0)
    for _ in range(10):
        estimator.on_round_trip(log, rtt_entry(2.0, 0.200))  # congested
    assert estimator.base_round_trip == pytest.approx(0.020)
    # The smoothed estimate crept upward (rise-capped), the base did not.
    assert estimator.round_trip > 0.020


def test_base_rtt_forgets_stale_minimum(sim):
    estimator = ConnectionEstimator(sim)
    log = RpcLog(sim, "c")
    estimator.on_round_trip(log, rtt_entry(0.0, 0.010))
    sim.run(until=BASE_RTT_HORIZON + 5)
    estimator.on_round_trip(log, rtt_entry(sim.now, 0.050))
    assert estimator.base_round_trip == pytest.approx(0.050)


def test_own_log_aggregation_counts_pipelined_windows(sim):
    estimator = ConnectionEstimator(sim)
    log = RpcLog(sim, "c")
    sim.run(until=1.0)
    # Two overlapping windows delivered 2 x 8 KiB during the same second.
    log.add_delivery(8192)
    log.add_delivery(8192)
    entry = tput_entry(1.0, 0.0, 8192)
    with_aggregation = estimator.bandwidth_sample(entry, log)
    without = estimator.bandwidth_sample(entry)
    assert with_aggregation == pytest.approx(2 * without)


def test_isolated_estimator_ignores_own_log(sim):
    estimator = ConnectionEstimator(sim, aggregate_own_log=False)
    log = RpcLog(sim, "c")
    sim.run(until=1.0)
    log.add_delivery(8192)
    log.add_delivery(8192)
    entry = tput_entry(1.0, 0.0, 8192)
    assert estimator.bandwidth_sample(entry, log) == pytest.approx(
        estimator.bandwidth_sample(entry)
    )


def test_eq2_rtt_mode_validation(sim):
    with pytest.raises(ValueError):
        ConnectionEstimator(sim, eq2_rtt="nonsense")


def test_smoothed_mode_uses_polluted_rtt(sim):
    base = ConnectionEstimator(sim, eq2_rtt="base")
    naive = ConnectionEstimator(sim, eq2_rtt="smoothed")
    log = RpcLog(sim, "c")
    for estimator in (base, naive):
        estimator.on_round_trip(log, rtt_entry(0.0, 0.020))
        for _ in range(20):
            estimator.on_round_trip(log, rtt_entry(0.0, 0.500))
    entry = tput_entry(1.0, 0.0, 32768)
    # The naive estimator subtracts a bigger R, inflating its sample.
    assert naive.bandwidth_sample(entry) > base.bandwidth_sample(entry)


def test_history_records_estimates(sim):
    estimator = ConnectionEstimator(sim)
    log = RpcLog(sim, "c")
    sim.run(until=2.0)
    estimator.on_throughput(log, tput_entry(2.0, 1.0, 10_000))
    assert len(estimator.history) == 1
    at, value = estimator.history[0]
    assert at == 2.0
    assert value == estimator.bandwidth
