"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_calibration(capsys):
    code, out = run_cli(capsys, "calibration")
    assert code == 0
    assert "modulated bandwidths" in out
    assert "video tracks" in out


def test_waveform_trace_format(capsys):
    code, out = run_cli(capsys, "waveform", "step-up")
    assert code == 0
    assert "duration_s" in out
    assert "122880" in out and "40960" in out


def test_waveform_csv_format(capsys):
    code, out = run_cli(capsys, "waveform", "impulse-down", "--format", "csv",
                        "--step", "5")
    assert code == 0
    lines = out.strip().splitlines()
    assert lines[0] == "time_s,bandwidth_bytes_per_s"
    assert len(lines) == 14  # header + 0..60 in 5 s steps


def test_unknown_waveform_errors(capsys):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        main(["waveform", "sine"])


def test_fig8_single_waveform(capsys):
    code, out = run_cli(capsys, "fig8", "--waveform", "step-down",
                        "--trials", "1")
    assert code == 0
    assert "settling time" in out


def test_fig8_csv(capsys):
    code, out = run_cli(capsys, "fig8", "--waveform", "step-up",
                        "--trials", "1", "--format", "csv")
    assert code == 0
    assert out.startswith("time_s,estimate_bytes_per_s")


def test_fig9_single_utilization(capsys):
    code, out = run_cli(capsys, "fig9", "--utilization", "0.1",
                        "--trials", "1")
    assert code == 0
    assert "second stream settling" in out


def test_fig12_table(capsys):
    code, out = run_cli(capsys, "fig12", "--trials", "1")
    assert code == 0
    assert "hybrid" in out and "remote" in out and "adaptive" in out


def test_scenario(capsys):
    code, out = run_cli(capsys, "scenario", "--policy", "blind-optimism",
                        "--seed", "2")
    assert code == 0
    assert "video" in out and "speech" in out
    assert "blind-optimism" in out


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_knows_the_transport_commands():
    parser = build_parser()
    args = parser.parse_args(["serve", "--port", "7777",
                              "--heartbeat", "2.5"])
    assert (args.port, args.heartbeat, args.run_seconds) == (7777, 2.5, None)
    args = parser.parse_args(["connect", "--port", "7777",
                              "--call", "echo", "--body", "{}"])
    assert (args.port, args.name, args.call) == (7777, "probe", "echo")
    args = parser.parse_args(["loadtest", "--clients", "64",
                              "--seconds", "2"])
    assert (args.clients, args.seconds, args.port) == (64, 2.0, None)


def test_connect_requires_a_port():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["connect"])


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


@pytest.mark.slow
def test_all_report(capsys, tmp_path):
    out_file = tmp_path / "report.txt"
    code, out = run_cli(capsys, "all", "--trials", "1",
                        "--no-extensions", "--out", str(out_file))
    assert code == 0
    assert "Reproduction report" in out
    assert "Fig. 10" in out and "Fig. 14" in out
    assert out_file.read_text() == out


def test_jobs_flag_global_and_per_command(capsys):
    code_global, out_global = run_cli(
        capsys, "--jobs", "2", "fig8", "--waveform", "step-up",
        "--trials", "2")
    code_sub, out_sub = run_cli(
        capsys, "fig8", "--waveform", "step-up", "--trials", "2",
        "--jobs", "2", "--no-cache")
    assert code_global == code_sub == 0
    assert out_global == out_sub  # parallel output identical to serial


def test_jobs_zero_means_all_cores(capsys):
    code, out = run_cli(capsys, "--jobs", "0", "fig8",
                        "--waveform", "step-up", "--trials", "1")
    assert code == 0
    assert "settling time" in out


def test_second_run_is_cache_hit(capsys, tmp_path, monkeypatch):
    import time

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    start = time.perf_counter()
    run_cli(capsys, "fig8", "--waveform", "step-up", "--trials", "1")
    cold = time.perf_counter() - start
    start = time.perf_counter()
    code, out = run_cli(capsys, "fig8", "--waveform", "step-up",
                        "--trials", "1")
    warm = time.perf_counter() - start
    assert code == 0
    assert warm < cold  # the hit never rebuilds the simulation
    code, out = run_cli(capsys, "cache")
    assert "supply" in out


def test_cache_stats_and_clear(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    run_cli(capsys, "turbulence", "--trials", "1")
    code, out = run_cli(capsys, "cache", "stats")
    assert code == 0
    assert "turbulence" in out
    code, out = run_cli(capsys, "cache", "clear")
    assert code == 0
    assert "removed" in out
    code, out = run_cli(capsys, "cache")
    assert "entries    : 0" in out


def test_no_cache_leaves_cache_empty(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, _ = run_cli(capsys, "--no-cache", "fig8", "--waveform", "step-up",
                      "--trials", "1")
    assert code == 0
    code, out = run_cli(capsys, "cache")
    assert "entries    : 0" in out


def test_bench_capture_never_clobbers(tmp_path):
    from repro.cli import _unique_path

    target = tmp_path / "BENCH_2026-08-05.json"
    assert _unique_path(str(target)) == str(target)
    target.write_text("{}")
    second = _unique_path(str(target))
    assert second == str(tmp_path / "BENCH_2026-08-05-2.json")
    (tmp_path / "BENCH_2026-08-05-2.json").write_text("{}")
    assert _unique_path(str(target)) \
        == str(tmp_path / "BENCH_2026-08-05-3.json")
