"""End-to-end scenarios exercising the whole stack at once."""

import pytest

from repro.apps.bitstream import build_bitstream
from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.core.resources import Resource
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.replay import ReplayTrace, Segment
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, step_down


def test_full_adaptation_loop_narrative():
    """The §2.1 scenario in miniature: detect, notify, adapt, recover."""
    sim = Simulator()
    # high -> radio shadow -> high
    trace = ReplayTrace([
        Segment(20, HIGH_BANDWIDTH, 0.0105),
        Segment(20, LOW_BANDWIDTH, 0.0105),
        Segment(20, HIGH_BANDWIDTH, 0.0105),
    ])
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)
    store = MovieStore()
    store.add(Movie("walk", n_frames=600))
    build_video(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "xanim")
    player = VideoPlayer(sim, api, "xanim", "/odyssey/video", "walk",
                         policy="adaptive")
    player.start()
    sim.run(until=62.0)

    # The player downgraded entering the shadow and upgraded leaving it.
    directions = [(old, new) for _, old, new in player.stats.switches]
    assert ("jpeg99", "jpeg50") in directions
    assert ("jpeg50", "jpeg99") in directions
    # Both tracks saw real playback.
    assert player.stats.displayed["jpeg99"] > 100
    assert player.stats.displayed["jpeg50"] > 100
    # Upcalls drove it.
    assert len(viceroy.upcalls.delivered_to("xanim")) >= 2


def test_determinism_same_seed_same_world():
    """Two identically-seeded runs are bit-identical."""
    from repro.experiments.video import run_video_trial

    first = run_video_trial("step-down", "adaptive", seed=7)
    second = run_video_trial("step-down", "adaptive", seed=7)
    assert first.stats.frame_log == second.stats.frame_log
    assert first.stats.switches == second.stats.switches


def test_different_seeds_differ():
    from repro.experiments.video import run_video_trial

    first = run_video_trial("step-down", "adaptive", seed=1)
    second = run_video_trial("step-down", "adaptive", seed=2)
    # Jitter makes trials distinct (that is where sigma comes from).
    assert first.stats.frame_log != second.stats.frame_log


def test_many_connections_share_and_report():
    """Five bitstreams: shares sum to the total; each gets a fair slice."""
    sim = Simulator()
    from repro.trace.waveforms import constant

    network = Network(sim, constant(HIGH_BANDWIDTH, duration=300))
    viceroy = Viceroy(sim, network)
    apps = []
    for i in range(5):
        app, _, _ = build_bitstream(sim, viceroy, network, index=i,
                                    chunk_bytes=16 * 1024)
        app.start()
        apps.append(app)
    sim.run(until=30.0)
    shares = viceroy.policy.shares
    snapshot = shares.snapshot()
    assert len(snapshot) == 5
    assert sum(snapshot.values()) == pytest.approx(shares.total, rel=1e-6)
    mean_share = shares.total / 5
    for value in snapshot.values():
        assert value == pytest.approx(mean_share, rel=0.45)
    # And all five actually moved data (~120 KB/s x 30 s / 5 each).
    for app in apps:
        assert app.bytes_consumed > 500 * 1024


def test_battery_and_bandwidth_adapt_together():
    """Multiple resource dimensions at once: the §8 medium-term plan."""
    from repro.core.monitors import BatteryMonitor

    sim = Simulator()
    trace = step_down().shifted(5.0)
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)
    battery = BatteryMonitor(sim, capacity_minutes=2.0, tick=1.0)
    viceroy.attach_monitor(battery)
    app, warden, _ = build_bitstream(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "bitstream-app-0")
    events = []
    api.on_upcall("battery", lambda up: events.append(("battery", up.level)))
    api.on_upcall("bw", lambda up: events.append(("bw", up.level)))
    api.request("/odyssey/bitstream/0", Resource.BATTERY_POWER, 1.0, 1e9,
                handler="battery")
    app.start()

    def register_bw():
        yield sim.timeout(10.0)
        level = api.availability("/odyssey/bitstream/0")
        api.request("/odyssey/bitstream/0", Resource.NETWORK_BANDWIDTH,
                    level * 0.7, level * 1.3, handler="bw")

    sim.process(register_bw())
    sim.run(until=80.0)
    kinds = {kind for kind, _ in events}
    assert kinds == {"battery", "bw"}


def test_cancel_prevents_upcall():
    sim = Simulator()
    trace = step_down().shifted(5.0)
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)
    app, warden, _ = build_bitstream(sim, viceroy, network)
    api = OdysseyAPI(viceroy, "bitstream-app-0")
    api.on_upcall("bw", lambda up: pytest.fail("cancelled request fired"))
    app.start()
    sim.run(until=10.0)
    level = api.availability("/odyssey/bitstream/0")
    request_id = api.request("/odyssey/bitstream/0",
                             Resource.NETWORK_BANDWIDTH,
                             level * 0.9, level * 1.1, handler="bw")
    api.cancel(request_id)
    sim.run(until=60.0)  # bandwidth steps down; nothing may fire
