"""EWMA smoothing (paper Eq. 1) and the rise cap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.estimation.ewma import EwmaFilter


def test_first_sample_initializes():
    filt = EwmaFilter(0.5)
    assert not filt.primed
    assert filt.value is None
    filt.update(10)
    assert filt.primed
    assert filt.value == 10


def test_equation_one_weighting():
    filt = EwmaFilter(0.875, initial=40.0)
    assert filt.update(120.0) == pytest.approx(0.875 * 120 + 0.125 * 40)


def test_gain_bounds():
    with pytest.raises(ReproError):
        EwmaFilter(0)
    with pytest.raises(ReproError):
        EwmaFilter(1.5)
    EwmaFilter(1.0)  # gain of exactly 1 tracks samples directly


def test_negative_sample_rejected():
    filt = EwmaFilter(0.5)
    with pytest.raises(ReproError):
        filt.update(-1)


def test_rise_cap_limits_upward_steps():
    filt = EwmaFilter(0.875, rise_cap=0.10, initial=100.0)
    filt.update(1000.0)
    assert filt.value == pytest.approx(110.0)  # capped at +10%


def test_rise_cap_never_limits_falls():
    filt = EwmaFilter(0.875, rise_cap=0.10, initial=100.0)
    filt.update(0.0)
    assert filt.value == pytest.approx(12.5)  # full fall applied


def test_rise_cap_validation():
    with pytest.raises(ReproError):
        EwmaFilter(0.5, rise_cap=0)


def test_reset():
    filt = EwmaFilter(0.5, initial=10)
    filt.update(20)
    filt.reset()
    assert filt.value is None
    assert filt.updates == 0


@settings(max_examples=100, deadline=None)
@given(
    gain=st.floats(min_value=0.01, max_value=1.0),
    samples=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                     max_size=50),
)
def test_value_bounded_by_sample_range(gain, samples):
    """Without a cap, the filtered value stays inside [min, max] of samples."""
    filt = EwmaFilter(gain)
    for sample in samples:
        filt.update(sample)
    assert min(samples) - 1e-6 <= filt.value <= max(samples) + 1e-6


@settings(max_examples=100, deadline=None)
@given(
    gain=st.floats(min_value=0.01, max_value=1.0),
    cap=st.floats(min_value=0.01, max_value=1.0),
    samples=st.lists(st.floats(min_value=1, max_value=1e6), min_size=2,
                     max_size=30),
)
def test_rise_cap_invariant(gain, cap, samples):
    """No update may raise the value by more than the cap fraction."""
    filt = EwmaFilter(gain, rise_cap=cap)
    filt.update(samples[0])
    previous = filt.value
    for sample in samples[1:]:
        current = filt.update(sample)
        assert current <= previous * (1 + cap) + 1e-9
        previous = current


def test_recovery_from_zero_is_capped():
    """An estimate that hit 0 must not jump uncapped on the first
    post-recovery sample — the cap base falls back to ``rise_floor``."""
    filt = EwmaFilter(0.875, rise_cap=0.10, rise_floor=100.0, initial=0.0)
    filt.update(1e6)
    assert filt.value == pytest.approx(110.0)  # max(0, floor) * (1 + cap)
    assert filt.capped_rises == 1


def test_recovery_climbs_multiplicatively_after_floor():
    filt = EwmaFilter(0.875, rise_cap=0.10, rise_floor=100.0, initial=0.0)
    values = [filt.update(1e6) for _ in range(4)]
    for previous, current in zip(values, values[1:]):
        assert current == pytest.approx(previous * 1.10)
    assert filt.capped_rises == 4


def test_rise_floor_validation():
    with pytest.raises(ReproError):
        EwmaFilter(0.5, rise_cap=0.1, rise_floor=0)


def test_rise_floor_irrelevant_for_positive_values():
    """A floor above the current value must not loosen the cap while the
    value is positive — positive-value behavior is unchanged."""
    filt = EwmaFilter(0.875, rise_cap=0.10, rise_floor=1e9, initial=100.0)
    filt.update(1e6)
    assert filt.value == pytest.approx(110.0)


@settings(max_examples=50, deadline=None)
@given(gain=st.floats(min_value=0.1, max_value=1.0),
       target=st.floats(min_value=1, max_value=1e5))
def test_converges_to_constant_input(gain, target):
    filt = EwmaFilter(gain, initial=0.0)
    for _ in range(200):
        filt.update(target)
    assert filt.value == pytest.approx(target, rel=1e-3)
