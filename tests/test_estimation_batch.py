"""BatchedEstimator vs the scalar EwmaFilter: exact element-wise equality.

The batched lanes must be **bit-identical** to scalar filters fed the
same samples — every assertion here is ``==`` on floats, never approx —
including the rise cap with its additive floor, unprimed-lane
initialization, and the deferred (queue + flush) path the fleet shards
use.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.estimation.batch import HAVE_NUMPY, BatchedEstimator
from repro.estimation.ewma import EwmaFilter

# Samples spanning zero, sub-unity, and bandwidth-scale magnitudes so the
# rise cap, the additive floor (value at 0), and plain smoothing all
# exercise; None = "no sample for this lane this round".
samples = st.one_of(
    st.none(),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
              allow_infinity=False),
)

configs = st.fixed_dictionaries({
    "gain": st.sampled_from([0.125, 0.5, 0.75, 0.875, 1.0]),
    "rise_cap": st.one_of(st.none(),
                          st.sampled_from([0.05, 0.1, 0.5, 2.0])),
    "rise_floor": st.sampled_from([0.5, 1.0, 1024.0]),
})


def make_pair(config, lanes):
    batch = BatchedEstimator(**config)
    views = [batch.add_lane() for _ in range(lanes)]
    scalars = [EwmaFilter(**config) for _ in range(lanes)]
    return batch, views, scalars


def assert_lanes_equal(views, scalars):
    for view, scalar in zip(views, scalars):
        assert view.value == scalar.value          # exact, not approx
        assert view.primed == scalar.primed
        assert view.updates == scalar.updates
        assert view.capped_rises == scalar.capped_rises


@settings(max_examples=200, deadline=None)
@given(config=configs,
       rounds=st.lists(st.lists(samples, min_size=4, max_size=4),
                       min_size=1, max_size=30))
def test_vectorized_rounds_match_scalar_filters(config, rounds):
    batch, views, scalars = make_pair(config, lanes=4)
    for row in rounds:
        batch.update(row)
        for scalar, sample in zip(scalars, row):
            if sample is not None:
                scalar.update(sample)
        assert_lanes_equal(views, scalars)


@settings(max_examples=100, deadline=None)
@given(config=configs,
       streams=st.lists(st.lists(st.floats(min_value=0.0, max_value=1e9,
                                           allow_nan=False,
                                           allow_infinity=False),
                                 max_size=20),
                        min_size=1, max_size=6),
       read_every=st.integers(min_value=1, max_value=7))
def test_deferred_lanes_match_scalar_filters(config, streams, read_every):
    """The fleet path: defer per-lane, flush on read, histories included."""
    batch = BatchedEstimator(**config)
    histories = [[] for _ in streams]
    views = [batch.add_lane(history=history) for history in histories]
    scalars = [EwmaFilter(**config) for _ in streams]
    expected = [[] for _ in streams]
    step = 0
    for lane, stream in enumerate(streams):
        for t, sample in enumerate(stream):
            views[lane].defer(float(t), sample)
            expected[lane].append((float(t), scalars[lane].update(sample)))
            step += 1
            if step % read_every == 0:
                assert_lanes_equal(views, scalars)  # reads force a flush
    batch.flush()
    assert_lanes_equal(views, scalars)
    assert histories == expected  # same pairs, same order, exact floats


def test_rise_cap_additive_floor_engages_from_zero():
    # An estimate driven to 0 must recover capped at floor * (1 + cap),
    # not jump to the first post-recovery sample (EwmaFilter's contract).
    config = {"gain": 0.875, "rise_cap": 0.1, "rise_floor": 1.0}
    batch, (view,), (scalar,) = make_pair(config, lanes=1)
    for sample in [0.0, 0.0, 1e6, 1e6, 5.0, 1e6]:
        batch.update([sample])
        scalar.update(sample)
        assert view.value == scalar.value
    assert view.capped_rises == scalar.capped_rises > 0


def test_initial_seed_matches_scalar():
    batch = BatchedEstimator(gain=0.5)
    view = batch.add_lane(initial=42.0)
    scalar = EwmaFilter(0.5, initial=42.0)
    assert view.value == scalar.value == 42.0
    batch.update([10.0])
    scalar.update(10.0)
    assert view.value == scalar.value


def test_eager_lane_update_returns_new_value():
    batch = BatchedEstimator(gain=0.875)
    view = batch.add_lane()
    assert view.update(100.0) == 100.0
    scalar = EwmaFilter(0.875, initial=100.0)
    assert view.update(200.0) == scalar.update(200.0)


def test_lane_growth_past_initial_capacity():
    batch = BatchedEstimator(gain=0.5)
    views = [batch.add_lane() for _ in range(40)]  # beyond the 16 seed slots
    batch.update([float(i) for i in range(40)])
    assert [v.value for v in views] == [float(i) for i in range(40)]


def test_validation_matches_scalar_contract():
    with pytest.raises(ReproError):
        BatchedEstimator(gain=0.0)
    with pytest.raises(ReproError):
        BatchedEstimator(gain=0.5, rise_cap=-1.0)
    with pytest.raises(ReproError):
        BatchedEstimator(gain=0.5, rise_floor=0.0)
    batch = BatchedEstimator(gain=0.5)
    view = batch.add_lane()
    with pytest.raises(ReproError):
        view.defer(0.0, -1.0)  # raises at defer time, like scalar update
    with pytest.raises(ReproError):
        batch.update([-1.0])
    with pytest.raises(ReproError):
        batch.update([1.0, 2.0])  # wrong width


def test_numpy_backend_is_active():
    # The container ships numpy; if this starts failing the fleet path
    # silently lost its vectorization — worth a loud signal.
    assert HAVE_NUMPY
