"""CalendarQueue vs a heapq reference model: identical pop order, always.

The calendar queue replaced the kernel's binary heap; every seeded run
staying byte-identical rests on the two structures agreeing on full
``(time, sequence)`` order — FIFO among duplicate timestamps included —
through bucket wraps, overflow redistribution, ring growth and shrink,
and zero-delay pushes into the bucket being drained.  The hypothesis
suite drives both with the same interleaved operation sequences and
asserts exact agreement at every step.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.calqueue import MIN_BUCKETS, CalendarQueue

# Times mixing a continuum with a handful of magnet values so duplicate
# timestamps (the FIFO tiebreak) occur constantly, plus bucket-boundary
# multiples of the default width.
times = st.one_of(
    st.floats(min_value=0.0, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, 0.05, 0.1, 1.0, 1.0, 2.5, 12.8, 12.8]),
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), times),
        st.tuples(st.just("pop"), st.just(0.0)),
        st.tuples(st.just("peek"), st.just(0.0)),
    ),
    max_size=200,
)

# Geometries spanning the regimes: the kernel default; a ring so narrow
# everything overflows and redistribution/growth carries the load; huge
# buckets (everything lands in one, entry sort does the work); a
# one-bucket ring (constructor rounds up to MIN_BUCKETS); a microscopic
# width driving bucket indexes to ~5e7 so the horizon never covers the
# workload without resizing.
geometries = st.sampled_from([
    (0.05, 256),
    (0.001, 4),
    (10.0, 4),
    (0.05, 1),
    (1e-6, 2),
])


@settings(max_examples=300, deadline=None)
@given(geometry=geometries, ops=operations)
def test_interleaved_ops_match_heap_reference(geometry, ops):
    width, nbuckets = geometry
    queue = CalendarQueue(width=width, nbuckets=nbuckets)
    heap = []
    seq = 0
    for op, time in ops:
        if op == "push":
            queue.push(time, seq, f"item-{seq}")
            heapq.heappush(heap, (time, seq, f"item-{seq}"))
            seq += 1
        elif op == "pop":
            if heap:
                assert queue.pop() == heapq.heappop(heap)
            else:
                with pytest.raises(SimulationError):
                    queue.pop()
        else:
            assert queue.peek() == (heap[0] if heap else None)
        assert len(queue) == len(heap)
    while heap:
        assert queue.pop() == heapq.heappop(heap)
    assert queue.peek() is None
    assert len(queue) == 0


@settings(max_examples=100, deadline=None)
@given(geometry=geometries,
       batch=st.lists(times, min_size=1, max_size=100))
def test_drain_order_is_global_sort(geometry, batch):
    width, nbuckets = geometry
    queue = CalendarQueue(width=width, nbuckets=nbuckets)
    for seq, time in enumerate(batch):
        queue.push(time, seq, seq)
    drained = [queue.pop() for _ in range(len(batch))]
    assert drained == sorted(drained)
    assert drained == sorted(
        (time, seq, seq) for seq, time in enumerate(batch))


@settings(max_examples=100, deadline=None)
@given(count=st.integers(min_value=1, max_value=200),
       time=st.sampled_from([0.0, 0.05, 1.0, 40.0]))
def test_duplicate_timestamps_pop_fifo(count, time):
    queue = CalendarQueue()
    for seq in range(count):
        queue.push(time, seq, f"p{seq}")
    assert [queue.pop()[2] for _ in range(count)] \
        == [f"p{seq}" for seq in range(count)]


def test_zero_delay_push_mid_drain_lands_in_live_bucket():
    # The kernel's commonest pattern: a popped event's callback schedules
    # at the *current* time, into the bucket being drained (sorted, so
    # the insort path), and must pop before anything later.
    queue = CalendarQueue()
    for seq in range(3):
        queue.push(1.0, seq, f"old{seq}")
    queue.push(2.0, 3, "later")
    assert queue.pop() == (1.0, 0, "old0")
    queue.push(1.0, 4, "echo")     # zero-delay relative to the pop
    queue.push(0.5, 5, "past")     # behind the cursor: clamped, key-ordered
    assert [queue.pop() for _ in range(4)] == [
        (0.5, 5, "past"), (1.0, 1, "old1"), (1.0, 2, "old2"),
        (1.0, 4, "echo"),
    ]
    assert queue.pop() == (2.0, 3, "later")


def test_overflow_growth_then_idle_shrink():
    queue = CalendarQueue(width=0.05, nbuckets=4)
    nb_before = queue._nb
    # Far beyond a 4-bucket horizon: pressure doubles the ring.
    for seq in range(64):
        queue.push(100.0 + seq, seq, seq)
    assert queue._nb > nb_before
    assert len(queue) == 64
    drained = [queue.pop() for _ in range(64)]
    assert drained == sorted(drained) and len({s for _, s, _ in drained}) == 64
    # Cursor-jump across idle time with a near-empty queue shrinks back.
    queue.push(1e6, 64, "lone")
    assert queue.pop() == (1e6, 64, "lone")
    assert queue._nb >= MIN_BUCKETS


def test_geometry_validation():
    with pytest.raises(SimulationError):
        CalendarQueue(width=0.0)
    with pytest.raises(SimulationError):
        CalendarQueue(nbuckets=0)
    assert CalendarQueue(nbuckets=3)._nb == 4  # rounded up to a power of two


def test_clear_keeps_geometry():
    queue = CalendarQueue(width=0.05, nbuckets=4)
    for seq in range(50):
        queue.push(float(seq), seq, seq)
    nb = queue._nb
    queue.clear()
    assert len(queue) == 0 and queue.peek() is None
    assert queue._nb == nb
    queue.push(0.25, 99, "fresh")
    assert queue.pop() == (0.25, 99, "fresh")
