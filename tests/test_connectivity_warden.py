"""Disconnected operation end to end at the warden/viceroy layer:
degraded service, write deferral, heartbeat recovery, reintegration,
disconnected upcalls, and viceroy checkpoint/restore."""

import json

import pytest

from repro.connectivity import ConnState, DeferredOp
from repro.core.resources import Resource, ResourceDescriptor, Window
from repro.core.warden import Warden
from repro.errors import Disconnected, OdysseyError, RpcTimeout
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply


class StoreWarden(Warden):
    """A key/value warden: cached reads, deferrable versioned writes."""

    TSOPS = {"read": "tsop_read", "write": "tsop_write"}
    DEFERRABLE_TSOPS = frozenset({"write"})

    def tsop_read(self, app, rest, inbuf):
        conn = self.primary_connection(rest)
        key = inbuf["key"]

        def fetch_op():
            reply, _ = yield from conn.call("get", body={"key": key},
                                            timeout=1.0)
            return reply["value"], 100

        value = yield from self.resilient_fetch(conn, key, fetch_op)
        return value

    def tsop_write(self, app, rest, inbuf):
        conn = self.primary_connection(rest)
        reply, _ = yield from conn.call("put", body=dict(inbuf), timeout=1.0)
        return reply

    def coalesce_key(self, opcode, rest, inbuf):
        return inbuf.get("slot")


@pytest.fixture
def world(sim, network, viceroy):
    server = network.add_host("store-server")
    service = RpcService(sim, server, "store")
    values = {"k1": "v1", "k2": "v2"}
    writes = []
    accepted = {"version": -1}

    def _get(body):
        return ServerReply(body={"value": values[body["key"]]}, body_bytes=64)

    def _put(body):
        writes.append(dict(body))
        version = body.get("version", 0)
        conflict = version <= accepted["version"]
        if not conflict:
            accepted["version"] = version
        return ServerReply(body={"conflict": conflict}, body_bytes=32)

    service.register("get", _get)
    service.register("put", _put)
    warden = StoreWarden(sim, viceroy, "store")
    conn = warden.open_connection("store-server", "store")
    viceroy.mount("/odyssey/store", warden)
    return sim, service, warden, conn, writes


def read(warden, key):
    return warden.tsop("app", "x", "read", {"key": key})


def write(warden, **inbuf):
    return warden.tsop("app", "x", "write", inbuf)


def finish(sim, generator):
    """Run exactly until ``generator`` completes.

    Unlike the ``run_process`` fixture this works with a live heartbeat
    prober (whose endless probe loop keeps the event queue non-empty).
    """
    return sim.run(until=sim.process(generator))


def go_offline(sim, service, warden, outage=3600.0):
    """Drive the tracker to DISCONNECTED with failed reads during an outage.

    Warm-cached reads serve stale instead of raising, so outcomes are
    ignored — only the evidence fed to the tracker matters here.
    """
    service.set_outage(outage)
    tracker = warden.connectivity(warden.primary_connection())
    while not tracker.offline:
        try:
            finish(sim, read(warden, "k1"))
        except (RpcTimeout, Disconnected):
            pass
    assert tracker.state is ConnState.DISCONNECTED
    return tracker


# -- degraded service --------------------------------------------------------

def test_healthy_reads_are_write_through(sim, world, run_process):
    _, service, warden, conn, _ = world
    assert run_process(read(warden, "k1")) == "v1"
    assert run_process(read(warden, "k1")) == "v1"
    # Both reads hit the network (the cache only *serves* when degraded)...
    assert service.requests_served == 2
    # ...but the copy is cached, ready for an outage.
    assert warden.cache.peek("k1") == "v1"


def test_timeout_falls_back_to_cache(sim, world, run_process):
    _, service, warden, conn, _ = world
    run_process(read(warden, "k1"))
    service.set_outage(3600.0)
    assert run_process(read(warden, "k1")) == "v1"
    assert warden.stale_served == 1
    assert len(warden.staleness_served) == 1
    assert warden.connectivity(conn).failures == 1


def test_timeout_with_cold_cache_reraises(sim, world, run_process):
    _, service, warden, conn, _ = world
    service.set_outage(3600.0)
    with pytest.raises(RpcTimeout):
        run_process(read(warden, "k1"))


def test_disconnected_reads_never_touch_network(sim, world, run_process):
    _, service, warden, conn, _ = world
    run_process(read(warden, "k1"))
    go_offline(sim, service, warden)
    attempts = service.requests_served + service.dropped_during_outage

    start = sim.now
    assert run_process(read(warden, "k1")) == "v1"
    assert sim.now == start  # served instantly, no network wait
    assert warden.stale_served >= 1
    assert warden.staleness_served[-1] > 0
    assert service.requests_served + service.dropped_during_outage == attempts


def test_disconnected_miss_is_typed_error(sim, world, run_process):
    _, service, warden, conn, _ = world
    run_process(read(warden, "k1"))
    go_offline(sim, service, warden)
    with pytest.raises(Disconnected) as excinfo:
        run_process(read(warden, "k2"))
    assert excinfo.value.key == "k2"
    assert warden.disconnected_misses == 1


def test_staleness_bound_enforced(sim, network, viceroy, run_process):
    server = network.add_host("s2")
    service = RpcService(sim, server, "svc")
    service.register("get", lambda body: ServerReply(body={"value": 1},
                                                     body_bytes=64))
    warden = StoreWarden(sim, viceroy, "bounded", max_staleness=5.0)
    warden.open_connection("s2", "svc")
    run_process(read(warden, "k1"))
    go_offline(sim, service, warden)

    def wait_then_read():
        yield sim.timeout(30.0)  # the cached copy ages past the bound
        value = yield from read(warden, "k1")
        return value

    with pytest.raises(Disconnected) as excinfo:
        run_process(wait_then_read())
    assert excinfo.value.age > 5.0


# -- deferral and reintegration ----------------------------------------------

def test_writes_defer_while_offline(sim, world, run_process):
    _, service, warden, conn, _ = world
    run_process(read(warden, "k1"))
    go_offline(sim, service, warden)
    marker = run_process(write(warden, version=1))
    assert marker["deferred"] is True
    assert len(warden.deferred) == 1


def test_writes_defer_behind_a_backlog_even_when_connected(world,
                                                           run_process):
    """Write ordering: a new write must not overtake queued ones."""
    sim, service, warden, conn, writes = world
    warden.deferred.append(DeferredOp(app="app", rest="x", opcode="write",
                                      inbuf={"version": 1}, queued_at=0.0))
    marker = run_process(write(warden, version=2))
    assert marker["deferred"] is True
    assert [op.inbuf["version"] for op in warden.deferred] == [1, 2]
    assert writes == []  # nothing reached the server out of order


def test_coalesced_writes_keep_only_latest(sim, world, run_process):
    _, service, warden, conn, _ = world
    go_offline(sim, service, warden)
    run_process(write(warden, slot="pos", version=1))
    run_process(write(warden, slot="pos", version=2))
    run_process(write(warden, version=3))
    assert len(warden.deferred) == 2
    assert warden.deferred.coalesced == 1


def test_heartbeat_recovery_triggers_ordered_replay(sim, world, run_process):
    _, service, warden, conn, writes = world
    run_process(read(warden, "k1"))
    warden.start_heartbeat(conn, interval=1.0, timeout=0.5)
    go_offline(sim, service, warden, outage=12.0)
    for version in (1, 2, 3):
        finish(sim, write(warden, version=version))

    sim.run(until=sim.now + 20.0)  # the outage expires; probes find the link

    tracker = warden.connectivity(conn)
    assert tracker.state is ConnState.CONNECTED
    assert tracker.probe_successes >= 2
    assert len(warden.deferred) == 0
    assert [r.status for r in warden.reintegration_reports] == \
        ["applied", "applied", "applied"]
    assert [w["version"] for w in writes] == [1, 2, 3]
    seqs = [r.op.seq for r in warden.reintegration_reports]
    assert seqs == sorted(seqs)


def test_replayed_conflicts_are_reported(sim, world, run_process):
    _, service, warden, conn, writes = world
    run_process(write(warden, version=5))  # live write: server is at 5
    warden.start_heartbeat(conn, interval=1.0, timeout=0.5)
    go_offline(sim, service, warden, outage=12.0)
    finish(sim, write(warden, version=3))  # stale: will conflict on replay
    finish(sim, write(warden, version=6))

    sim.run(until=sim.now + 20.0)
    assert [r.status for r in warden.reintegration_reports] == \
        ["conflict", "applied"]


def test_prober_is_silent_while_connected(sim, world, run_process):
    _, service, warden, conn, _ = world
    prober = warden.start_heartbeat(conn, interval=0.5, timeout=0.5)
    sim.run(until=sim.now + 10.0)
    assert prober.probes_sent == 0


def test_duplicate_heartbeat_rejected(sim, world):
    _, _, warden, conn, _ = world
    warden.start_heartbeat(conn)
    with pytest.raises(OdysseyError):
        warden.start_heartbeat(conn)


def test_heartbeat_follows_failover(sim, world):
    _, _, warden, conn, _ = world
    warden.start_heartbeat(conn, interval=0.25, timeout=0.5)
    replacement = warden.failover_connection(conn)
    prober = warden._probers[replacement.connection_id]
    assert prober.interval == 0.25
    assert conn.connection_id not in warden._probers


# -- disconnected upcalls ----------------------------------------------------

def test_disconnect_upcall_fires_with_level_zero(sim, world, viceroy,
                                                 run_process):
    _, service, warden, conn, _ = world
    received = []
    viceroy.upcalls.register("app", "h", received.append)
    descriptor = ResourceDescriptor(Resource.NETWORK_BANDWIDTH,
                                    Window(0, 1e12), "h")
    request_id = viceroy.request("app", "/odyssey/store/x", descriptor)
    go_offline(sim, service, warden)
    sim.run(until=sim.now + 1.0)  # let the dispatcher deliver

    assert viceroy.disconnect_upcalls == 1
    assert [u.level for u in received if u.request_id == request_id] == [0.0]
    assert viceroy.registered_requests("app") == []  # one-shot, dropped


# -- checkpoint / restore ----------------------------------------------------

def test_checkpoint_restore_round_trips(sim, world, viceroy):
    _, _, warden, conn, _ = world
    descriptor = ResourceDescriptor(Resource.NETWORK_BANDWIDTH,
                                    Window(10.0, 99.0), "h")
    request_id = viceroy.request("app", "/odyssey/store/x", descriptor)

    snapshot = json.loads(json.dumps(viceroy.checkpoint()))
    restored, dropped = viceroy.restore(snapshot)

    assert (restored, dropped) == (1, [])
    (reg,) = viceroy.registered_requests("app")
    assert reg.request_id == request_id
    assert reg.descriptor.window == Window(10.0, 99.0)
    assert reg.descriptor.handler == "h"
    assert reg.connection_id == conn.connection_id
    assert snapshot["connectivity"][conn.connection_id] == "connected"


def test_restore_drops_unknown_connections(sim, world, viceroy):
    _, _, warden, conn, _ = world
    descriptor = ResourceDescriptor(Resource.NETWORK_BANDWIDTH,
                                    Window(0, 1e12), "h")
    request_id = viceroy.request("app", "/odyssey/store/x", descriptor)
    snapshot = viceroy.checkpoint()
    warden.close_connection(conn, notify=False)

    restored, dropped = viceroy.restore(snapshot)
    assert restored == 0
    assert dropped == [request_id]


def test_checkpoint_restore_preserves_deferred_ops(sim, world, viceroy):
    _, _, warden, conn, _ = world
    first = warden.deferred.append(DeferredOp(
        app="app", rest="x", opcode="write",
        inbuf={"slot": "a", "version": 1}, queued_at=sim.now, coalesce="a"))
    second = warden.deferred.append(DeferredOp(
        app="app", rest="x", opcode="write",
        inbuf={"slot": "b", "version": 2}, queued_at=sim.now, coalesce="b"))
    saved = [(op.seq, op.inbuf) for op in warden.deferred]

    snapshot = json.loads(json.dumps(viceroy.checkpoint()))
    assert warden.name in snapshot["deferred"]
    warden.deferred.clear()
    viceroy.restore(snapshot)

    assert [(op.seq, op.inbuf) for op in warden.deferred] == saved
    # The seq counter survives too: new appends never reuse a restored seq.
    third = warden.deferred.append(DeferredOp(
        app="app", rest="x", opcode="write",
        inbuf={"slot": "c"}, queued_at=sim.now))
    assert third.seq > max(first.seq, second.seq)


def test_restore_advances_request_ids(sim, world, viceroy):
    _, _, warden, conn, _ = world
    descriptor = ResourceDescriptor(Resource.NETWORK_BANDWIDTH,
                                    Window(0, 1e12), "h")
    request_id = viceroy.request("app", "/odyssey/store/x", descriptor)
    snapshot = viceroy.checkpoint()
    viceroy.restore(snapshot)
    fresh = viceroy.request("app2", "/odyssey/store/y", descriptor)
    assert fresh > request_id  # no duplicate ids after a restore
