"""The live viceroy: wall-clock estimation behind the broker's RPC surface."""

import asyncio

import pytest

from repro.broker import BrokerClient
from repro.broker.server import REPORT_OP, REQUEST_OP
from repro.errors import BrokerError, RemoteCallError
from repro.live import LiveBroker, LiveViceroy, WallSim
from repro.rpc.clock import MonotonicClock


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


async def start_live_broker(**kwargs):
    broker = LiveBroker(port=0, **kwargs)
    await broker.start()
    return broker


async def connect(broker, name):
    host, port = broker.address
    return await BrokerClient(host, port, name).connect()


# -- WallSim: the entire sim-vs-live estimation seam -------------------------


def test_wall_sim_now_tracks_the_monotonic_clock():
    clock = MonotonicClock()
    sim = WallSim(clock)
    first = sim.now
    second = sim.now
    assert first <= second
    assert abs(first - clock.now()) < 1.0


# -- LiveViceroy: estimation without any sockets ------------------------------


def test_adopt_and_abandon_lifecycle():
    viceroy = LiveViceroy()
    viceroy.adopt("a")
    assert viceroy.clients == ["a"]
    with pytest.raises(BrokerError, match="already adopted"):
        viceroy.adopt("a")
    viceroy.abandon("a")
    assert viceroy.clients == []
    viceroy.abandon("a")  # idempotent
    assert viceroy.availability("a") is None


def test_absorb_requires_an_adopted_client():
    viceroy = LiveViceroy()
    with pytest.raises(BrokerError, match="no adopted client"):
        viceroy.absorb("ghost", {"kind": "delivery", "nbytes": 100})


def test_absorb_rejects_unknown_and_malformed_kinds():
    viceroy = LiveViceroy()
    viceroy.adopt("a")
    with pytest.raises(BrokerError, match="unknown report kind"):
        viceroy.absorb("a", {"kind": "telepathy"})
    with pytest.raises(BrokerError, match="malformed"):
        viceroy.absorb("a", {"kind": "round_trip"})  # missing seconds
    with pytest.raises(BrokerError, match="positive seconds"):
        viceroy.absorb("a", {"kind": "throughput",
                             "seconds": 0.0, "nbytes": 100})


def test_throughput_sample_primes_availability():
    viceroy = LiveViceroy()
    viceroy.adopt("a")
    assert viceroy.availability("a") is None
    level = viceroy.absorb("a", {"kind": "throughput",
                                 "seconds": 1.0, "nbytes": 50_000})
    # One connection: the split degenerates to the total estimate.
    assert level == pytest.approx(viceroy.total())
    assert level == pytest.approx(50_000, rel=0.25)


def test_round_trip_and_delivery_samples_feed_the_shared_logs():
    viceroy = LiveViceroy()
    viceroy.adopt("a")
    viceroy.absorb("a", {"kind": "round_trip", "seconds": 0.01})
    viceroy.absorb("a", {"kind": "delivery", "nbytes": 4096})
    assert viceroy.shares.estimator("a").round_trip == pytest.approx(0.01)
    assert viceroy._logs["a"].delivered_total == 4096
    assert viceroy.reports_absorbed == 2


def test_two_clients_split_the_total():
    viceroy = LiveViceroy()
    viceroy.adopt("a")
    viceroy.adopt("b")
    viceroy.absorb("a", {"kind": "throughput",
                         "seconds": 1.0, "nbytes": 80_000})
    a = viceroy.availability("a")
    b = viceroy.availability("b")
    total = viceroy.total()
    assert a is not None and b is not None
    # Everyone gets at least the fair share; shares sum to the total.
    fair = viceroy.shares.fair_fraction * total / 2
    assert a >= fair and b >= fair
    assert a + b == pytest.approx(total)
    snapshot = viceroy.describe()
    assert set(snapshot["clients"]) == {"a", "b"}
    assert snapshot["total"] == pytest.approx(total)


# -- LiveBroker: the viceroy surface over real TCP ----------------------------


def test_hello_adopts_and_disconnect_abandons():
    async def scenario():
        broker = await start_live_broker()
        client = await connect(broker, "alpha")
        adopted = list(broker.viceroy.clients)
        await client.close()
        for _ in range(100):
            if not broker.viceroy.clients:
                break
            await asyncio.sleep(0.01)
        remaining = list(broker.viceroy.clients)
        await broker.close()
        return adopted, remaining

    adopted, remaining = run(scenario())
    assert adopted == ["alpha"]
    assert remaining == []


def test_estimation_report_returns_the_availability():
    async def scenario():
        broker = await start_live_broker()
        client = await connect(broker, "alpha")
        try:
            reply = await client.call(REPORT_OP, {
                "kind": "throughput", "seconds": 1.0, "nbytes": 40_000,
            })
            return reply
        finally:
            await client.close()
            await broker.close()

    reply = run(scenario())
    assert reply["resource"] == "bandwidth"
    assert reply["level"] == pytest.approx(40_000, rel=0.25)
    assert reply["upcalls"] == 0


def test_window_violation_pushes_an_upcall_to_the_owner():
    async def scenario():
        broker = await start_live_broker()
        client = await connect(broker, "alpha")
        try:
            reply = await client.call(REQUEST_OP, {
                "resource": "bandwidth", "lower": 30_000, "upper": 1e12,
            })
            request_id = reply["request_id"]
            # Drive the estimate well below the window's lower bound.
            for _ in range(6):
                await client.call(REPORT_OP, {
                    "kind": "throughput", "seconds": 1.0, "nbytes": 1_000,
                })
            for _ in range(100):
                if client.upcalls_received:
                    break
                await asyncio.sleep(0.01)
            return (request_id, list(client.upcalls_received),
                    broker.upcalls_sent, broker.describe()["registrations"])
        finally:
            await client.close()
            await broker.close()

    request_id, upcalls, sent, registrations = run(scenario())
    assert sent == 1
    assert len(upcalls) == 1
    assert upcalls[0]["request_id"] == request_id
    assert upcalls[0]["resource"] == "bandwidth"
    assert upcalls[0]["level"] < 30_000
    assert registrations == 0  # one-shot: dropped on violation


def test_one_client_report_can_violate_anothers_window():
    """The shared total moves every client's split — the reason the
    recheck scans all bandwidth registrations, not just the reporter's."""

    async def scenario():
        broker = await start_live_broker()
        alpha = await connect(broker, "alpha")
        beta = await connect(broker, "beta")
        try:
            # Both primed high; beta holds a window needing >= 20 kB/s.
            for client in (alpha, beta):
                await client.call(REPORT_OP, {
                    "kind": "throughput", "seconds": 1.0, "nbytes": 100_000,
                })
            await beta.call(REQUEST_OP, {
                "resource": "bandwidth", "lower": 20_000, "upper": 1e12,
            })
            # Alpha alone reports collapse; beta must hear about it.
            for _ in range(8):
                await alpha.call(REPORT_OP, {
                    "kind": "throughput", "seconds": 1.0, "nbytes": 500,
                })
            for _ in range(100):
                if beta.upcalls_received:
                    break
                await asyncio.sleep(0.01)
            return list(beta.upcalls_received), list(alpha.upcalls_received)
        finally:
            await alpha.close()
            await beta.close()
            await broker.close()

    beta_upcalls, alpha_upcalls = run(scenario())
    assert len(beta_upcalls) == 1
    assert alpha_upcalls == []


def test_out_of_window_registration_is_rejected_with_the_level():
    async def scenario():
        broker = await start_live_broker()
        client = await connect(broker, "alpha")
        try:
            await client.call(REPORT_OP, {
                "kind": "throughput", "seconds": 1.0, "nbytes": 5_000,
            })
            return await client.call(REQUEST_OP, {
                "resource": "bandwidth", "lower": 50_000, "upper": 1e12,
            })
        finally:
            await client.close()
            await broker.close()

    reply = run(scenario())
    assert reply["rejected"] is True
    assert reply["request_id"] is None
    assert 0 < reply["available"] < 50_000


def test_malformed_window_and_plain_level_reports_keep_base_semantics():
    async def scenario():
        broker = await start_live_broker()
        client = await connect(broker, "alpha")
        try:
            with pytest.raises(RemoteCallError, match="lower/upper"):
                await client.call(REQUEST_OP, {"resource": "bandwidth"})
            with pytest.raises(RemoteCallError, match="inverted"):
                await client.call(REQUEST_OP, {
                    "resource": "bandwidth", "lower": 10.0, "upper": 1.0,
                })
            # A plain level report (no "kind") uses the base broker's
            # reported-level semantics: existing clients run unchanged.
            request_id = await client.request(0.0, 50.0, resource="battery")
            upcalls = await client.report(90.0, resource="battery")
            for _ in range(100):
                if client.upcalls_received:
                    break
                await asyncio.sleep(0.01)
            return request_id, upcalls, list(client.upcalls_received)
        finally:
            await client.close()
            await broker.close()

    request_id, upcalls, received = run(scenario())
    assert upcalls == 1
    assert received[0]["request_id"] == request_id
    assert received[0]["resource"] == "battery"


def test_describe_includes_estimation_and_bulk_planes():
    async def scenario():
        broker = await start_live_broker()
        client = await connect(broker, "alpha")
        try:
            await client.call(REPORT_OP, {
                "kind": "throughput", "seconds": 1.0, "nbytes": 10_000,
            })
            return broker.describe()
        finally:
            await client.close()
            await broker.close()

    snapshot = run(scenario())
    assert snapshot["estimation"]["reports_absorbed"] == 1
    assert "alpha" in snapshot["estimation"]["clients"]
    assert snapshot["bulk"]["transfers_opened"] == 0
