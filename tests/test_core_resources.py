"""Resources, windows of tolerance, descriptors."""

import pytest

from repro.core.resources import Registration, Resource, ResourceDescriptor, Window
from repro.errors import BadDescriptor


def test_all_six_generic_resources_present():
    labels = {r.label for r in Resource}
    assert labels == {
        "network-bandwidth", "network-latency", "disk-cache-space",
        "cpu", "battery-power", "money",
    }


def test_resources_carry_units():
    assert Resource.NETWORK_BANDWIDTH.unit == "bytes/second"
    assert Resource.BATTERY_POWER.unit == "minutes"
    assert Resource.MONEY.unit == "cents"
    assert Resource.CPU.unit == "SPECint95"


def test_lookup_by_label():
    assert Resource.from_label("cpu") is Resource.CPU
    with pytest.raises(BadDescriptor):
        Resource.from_label("bogons")


def test_window_contains_inclusive():
    window = Window(10.0, 20.0)
    assert window.contains(10.0)
    assert window.contains(20.0)
    assert window.contains(15.0)
    assert not window.contains(9.99)
    assert not window.contains(20.01)


def test_window_validation():
    with pytest.raises(BadDescriptor):
        Window(-1.0, 10.0)
    with pytest.raises(BadDescriptor):
        Window(10.0, 5.0)
    Window(5.0, 5.0)  # degenerate but legal


def test_descriptor_validation():
    descriptor = ResourceDescriptor(
        Resource.NETWORK_BANDWIDTH, Window(0, 100), handler="h"
    )
    assert descriptor.handler == "h"
    with pytest.raises(BadDescriptor):
        ResourceDescriptor("bandwidth", Window(0, 100))
    with pytest.raises(BadDescriptor):
        ResourceDescriptor(Resource.CPU, (0, 100))


def test_registration_ids_unique():
    descriptor = ResourceDescriptor(Resource.CPU, Window(0, 1))
    a = Registration("app", "/p", descriptor)
    b = Registration("app", "/p", descriptor)
    assert a.request_id != b.request_id
