"""The video player stack: codec, movies, warden, player."""

import pytest

from repro.apps.video.codec import (
    SIZE_JITTER,
    TRACKS,
    better_tracks,
    frame_bytes,
    next_better,
    track,
)
from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.core.viceroy import Viceroy
from repro.errors import ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, constant


# -- codec ---------------------------------------------------------------


def test_three_tracks_ascending_fidelity():
    fidelities = [spec.fidelity for spec in TRACKS]
    assert fidelities == sorted(fidelities)
    assert fidelities == [0.01, 0.50, 1.00]


def test_track_lookup():
    assert track("jpeg99").jpeg_quality == 99
    with pytest.raises(KeyError, match="jpeg50"):
        track("mpeg")


def test_frame_sizes_deterministic_and_bounded():
    sizes = [frame_bytes("m", "jpeg50", i) for i in range(200)]
    assert sizes == [frame_bytes("m", "jpeg50", i) for i in range(200)]
    mean = track("jpeg50").mean_frame_bytes
    for size in sizes:
        assert abs(size - mean) <= mean * SIZE_JITTER * 1.01


def test_frame_sizes_vary_by_movie_and_frame():
    assert frame_bytes("a", "jpeg50", 0) != frame_bytes("b", "jpeg50", 0)
    assert len({frame_bytes("a", "jpeg50", i) for i in range(50)}) > 10


def test_better_tracks():
    assert [t.name for t in better_tracks("bw")] == ["jpeg50", "jpeg99"]
    assert next_better("jpeg99") is None
    assert next_better("jpeg50").name == "jpeg99"


# -- movies ----------------------------------------------------------------


def test_movie_bandwidths_straddle_modulated_levels():
    movie = Movie("m", n_frames=600)
    jpeg99 = movie.track_bandwidth("jpeg99")
    jpeg50 = movie.track_bandwidth("jpeg50")
    bw = movie.track_bandwidth("bw")
    assert bw < jpeg50 < LOW_BANDWIDTH < jpeg99 < HIGH_BANDWIDTH


def test_movie_meta_contents():
    movie = Movie("m", n_frames=100, fps=10)
    meta = movie.meta()
    assert meta["frames"] == 100
    assert set(meta["tracks"]) == {"bw", "jpeg50", "jpeg99"}
    assert meta["tracks"]["jpeg99"]["fidelity"] == 1.0


def test_storage_overhead_is_modest():
    """Paper: all three tracks cost ~60 % more than the best track alone."""
    movie = Movie("m", n_frames=200)
    all_tracks = movie.storage_bytes()
    best_only = sum(movie.frame_bytes("jpeg99", i) for i in range(200))
    overhead = all_tracks / best_only - 1.0
    assert 0.2 < overhead < 0.8


def test_movie_validation():
    with pytest.raises(ReproError):
        Movie("m", n_frames=0)
    movie = Movie("m", n_frames=10)
    with pytest.raises(ReproError):
        movie.frame_bytes("jpeg50", 10)


def test_movie_store():
    store = MovieStore()
    movie = store.add(Movie("m"))
    assert store.get("m") is movie
    assert "m" in store and len(store) == 1
    with pytest.raises(ReproError):
        store.add(Movie("m"))
    with pytest.raises(ReproError):
        store.get("missing")


# -- warden + player integration ------------------------------------------------


def build_player(bandwidth, policy, frames=200):
    sim = Simulator()
    network = Network(sim, constant(bandwidth, duration=600))
    viceroy = Viceroy(sim, network)
    store = MovieStore()
    store.add(Movie("m", n_frames=frames))
    warden, server = build_video(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "xanim")
    player = VideoPlayer(sim, api, "xanim", "/odyssey/video", "m", policy=policy)
    return sim, warden, player


def test_jpeg50_plays_cleanly_at_low_bandwidth():
    sim, warden, player = build_player(LOW_BANDWIDTH, "jpeg50")
    player.start()
    sim.run(until=30.0)
    assert player.stats.drops <= 2
    assert player.stats.displayed.get("jpeg50", 0) >= 198


def test_jpeg99_plays_cleanly_at_high_bandwidth():
    sim, warden, player = build_player(HIGH_BANDWIDTH, "jpeg99")
    player.start()
    sim.run(until=30.0)
    assert player.stats.drops <= 10
    assert player.fidelity == 1.0


def test_jpeg99_mostly_drops_at_low_bandwidth():
    sim, warden, player = build_player(LOW_BANDWIDTH, "jpeg99")
    player.start()
    sim.run(until=30.0)
    # Sustainable display rate is bandwidth / frame size ~ 4 fps of 10.
    assert player.stats.drops > 100
    assert player.stats.displayed.get("jpeg99", 0) > 30  # but not zero


def test_adaptive_picks_jpeg50_at_low_bandwidth():
    sim, warden, player = build_player(LOW_BANDWIDTH, "adaptive")
    player.start()
    sim.run(until=30.0)
    assert player.stats.displayed.get("jpeg50", 0) > 150
    assert player.stats.drops < 20


def test_adaptive_picks_jpeg99_at_high_bandwidth():
    sim, warden, player = build_player(HIGH_BANDWIDTH, "adaptive")
    player.start()
    sim.run(until=30.0)
    assert player.stats.displayed.get("jpeg99", 0) > 150


def test_warden_reads_ahead():
    sim, warden, player = build_player(HIGH_BANDWIDTH, "jpeg50")
    player.start()
    sim.run(until=5.0)
    # More frames fetched than displayed: the cache is warm ahead of play.
    assert warden.frames_fetched > sum(player.stats.displayed.values())
    assert warden.cache.hits > 0


def test_upgrade_discards_stale_prefetches():
    sim, warden, player = build_player(HIGH_BANDWIDTH, "adaptive", frames=400)

    # Force a low initial estimate so the player starts at jpeg50, then
    # let the high-bandwidth estimate trigger an upgrade.
    player.start()
    sim.run(until=40.0)
    if player.stats.switches:
        assert warden.bytes_wasted >= 0  # accounting exists
    # After playing at jpeg99, cached jpeg50 frames beyond the switch point
    # are gone.
    sim.run(until=41.0)


def test_player_fidelity_weighted_mean():
    sim, warden, player = build_player(HIGH_BANDWIDTH, "jpeg50")
    player.start()
    sim.run(until=30.0)
    assert player.fidelity == pytest.approx(0.5)
