"""Dynamic sets: completion-order iteration reduces aggregate latency."""

import pytest

from repro.core.dynsets import DynamicSet, SetStats, iterate_in_order
from repro.errors import ReproError
from repro.net.network import Network
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.sim.kernel import Simulator
from repro.trace.waveforms import LOW_BANDWIDTH, constant


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, constant(LOW_BANDWIDTH, duration=3600))
    server = network.add_host("repository")
    service = RpcService(sim, server, "objects")

    def get_object(body):
        return ServerReply(
            body=body["name"],
            bulk=service.make_bulk(body["nbytes"], meta=body["name"]),
        )

    service.register("get", get_object)
    connection = RpcConnection(sim, network, "repository", "objects", "search")

    def fetch(spec):
        name, nbytes = spec
        yield from connection.fetch("get", body={"name": name, "nbytes": nbytes})
        return name

    return sim, fetch


#: A search result set: one large document among small ones.
MIXED_SET = [("huge", 400_000)] + [(f"small{i}", 4_000) for i in range(6)]


def run_dynamic(sim, fetch, specs, parallelism=4):
    dynset = DynamicSet(sim, specs, fetch, parallelism=parallelism)
    process = sim.process(dynset.iterate())
    sim.run()
    return dynset, process.value


def test_all_members_delivered(world):
    sim, fetch = world
    dynset, results = run_dynamic(sim, fetch, MIXED_SET)
    assert {spec for spec, _ in results} == set(MIXED_SET)
    assert dynset.stats.makespan > 0
    assert len(dynset.stats.yields) == len(MIXED_SET)


def test_small_members_complete_before_the_huge_one(world):
    sim, fetch = world
    dynset, results = run_dynamic(sim, fetch, MIXED_SET)
    order = [spec[0] for spec, _ in results]
    # The huge member is listed first but yields last (or nearly so).
    assert order.index("huge") >= len(order) - 2


def test_aggregate_latency_beats_in_order(world):
    sim, fetch = world
    dynset, _ = run_dynamic(sim, fetch, MIXED_SET)

    sim2_world = Simulator()
    # Rebuild the same world on a fresh simulator for the baseline.
    network = Network(sim2_world, constant(LOW_BANDWIDTH, duration=3600))
    server = network.add_host("repository")
    service = RpcService(sim2_world, server, "objects")
    service.register(
        "get",
        lambda body: ServerReply(
            body=body["name"], bulk=service.make_bulk(body["nbytes"])
        ),
    )
    connection = RpcConnection(sim2_world, network, "repository", "objects", "s")

    def fetch2(spec):
        name, nbytes = spec
        yield from connection.fetch("get", body={"name": name, "nbytes": nbytes})
        return name

    process = sim2_world.process(iterate_in_order(sim2_world, MIXED_SET, fetch2))
    sim2_world.run()
    _, serial_stats = process.value

    # The headline claim: aggregate latency drops substantially (the huge
    # first member no longer blocks every small one).
    assert dynset.stats.aggregate_latency < serial_stats.aggregate_latency * 0.6
    assert dynset.stats.first_result_latency < serial_stats.first_result_latency


def test_failures_are_skipped_and_reported(world):
    sim, fetch = world

    def flaky_fetch(spec):
        if spec[0] == "bad":
            raise KeyError("no such object")
            yield  # pragma: no cover
        result = yield from fetch(spec)
        return result

    specs = [("a", 4000), ("bad", 1), ("b", 4000)]
    dynset = DynamicSet(sim, specs, flaky_fetch)
    process = sim.process(dynset.iterate())
    sim.run()
    results = process.value
    assert {spec[0] for spec, _ in results} == {"a", "b"}
    assert len(dynset.failures) == 1
    assert dynset.failures[0][0][0] == "bad"


def test_parallelism_validation(world):
    sim, fetch = world
    with pytest.raises(ReproError):
        DynamicSet(sim, [("a", 1)], fetch, parallelism=0)
    with pytest.raises(ReproError):
        DynamicSet(sim, [], fetch)


def test_parallelism_one_is_still_complete(world):
    sim, fetch = world
    dynset, results = run_dynamic(sim, fetch, MIXED_SET, parallelism=1)
    assert len(results) == len(MIXED_SET)


def test_stats_empty_set_behavior():
    stats = SetStats(opened_at=5.0)
    assert stats.first_result_latency is None
    assert stats.makespan is None
    assert stats.aggregate_latency == 0.0
