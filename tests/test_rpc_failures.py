"""Failure injection: server outages and client timeouts."""

import pytest

from repro.errors import RpcTimeout, RpcError
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=3600))
    server = network.add_host("server")
    service = RpcService(sim, server, "svc")
    service.register("ping", lambda body: ServerReply(body="pong"))
    service.register(
        "get", lambda body: ServerReply(bulk=service.make_bulk(64 * 1024))
    )
    connection = RpcConnection(sim, network, "server", "svc", "c")
    return sim, service, connection


def test_outage_validation(world):
    _, service, _ = world
    with pytest.raises(RpcError):
        service.set_outage(0)


def test_call_times_out_during_outage(world):
    sim, service, connection = world
    service.set_outage(10.0)

    def client():
        try:
            yield from connection.call("ping", timeout=1.0)
        except RpcTimeout:
            return ("timed out", sim.now)

    process = sim.process(client())
    sim.run(until=20.0)
    outcome, when = process.value
    assert outcome == "timed out"
    assert when == pytest.approx(1.0, abs=0.1)
    assert service.dropped_during_outage >= 1


def test_call_without_timeout_hangs_through_outage(world):
    sim, service, connection = world
    service.set_outage(5.0)
    state = {}

    def client():
        yield from connection.call("ping")
        state["done"] = sim.now

    sim.process(client())
    sim.run(until=20.0)
    # The request was dropped and never retried: the call never completes.
    assert "done" not in state


def test_service_recovers_after_outage(world):
    sim, service, connection = world
    service.set_outage(2.0)
    results = []

    def client():
        for _ in range(5):
            try:
                reply, _ = yield from connection.call("ping", timeout=1.0)
                results.append((sim.now, reply))
            except RpcTimeout:
                results.append((sim.now, "timeout"))
    process = sim.process(client())
    sim.run(until=20.0)
    outcomes = [r for _, r in results]
    assert outcomes[0] == "timeout"
    assert outcomes[-1] == "pong"  # recovered
    assert "pong" in outcomes[2:]


def test_fetch_window_times_out(world):
    sim, service, connection = world

    def client():
        # Outage begins mid-transfer: the first window may land, later ones
        # time out.
        try:
            yield from connection.fetch("get", timeout=0.5)
        except RpcTimeout as exc:
            return str(exc)

    def saboteur():
        yield sim.timeout(0.05)
        service.set_outage(30.0)

    process = sim.process(client())
    sim.process(saboteur())
    sim.run(until=40.0)
    assert "timed out" in process.value


def test_late_reply_after_timeout_is_dropped_not_fatal(world):
    """A reply that arrives after its timeout must not crash dispatch."""
    sim, service, connection = world
    service.register("slow", lambda body: ServerReply(body="late",
                                                      compute_seconds=2.0))
    outcomes = []

    def client():
        try:
            yield from connection.call("slow", timeout=0.5)
        except RpcTimeout:
            outcomes.append("timeout")
        # Keep the connection busy afterward; the late reply arrives now.
        reply, _ = yield from connection.call("ping")
        outcomes.append(reply)

    sim.process(client())
    sim.run(until=10.0)
    assert outcomes == ["timeout", "pong"]
    assert connection.late_replies == 1


def test_retry_deadline_validated():
    from repro.rpc.connection import RetryPolicy

    with pytest.raises(RpcError):
        RetryPolicy(deadline=0)
    with pytest.raises(RpcError):
        RetryPolicy(deadline=-1.0)
    assert RetryPolicy(deadline=None).deadline is None


def test_retry_deadline_caps_total_time(world):
    """A generous retry budget still gives up at the wall-clock deadline."""
    from repro.rpc.connection import RetryPolicy

    sim, service, connection = world
    service.set_outage(60.0)
    # Without the deadline this schedule would run ~20 s (5 x 2 s timeouts
    # plus backoff); the deadline must cut it at ~3 s.
    policy = RetryPolicy(timeout=2.0, retries=4, backoff=0.5,
                         multiplier=2.0, cap=4.0, deadline=3.0)

    def client():
        try:
            yield from connection.call_with_retry("ping", retry=policy)
        except RpcTimeout:
            return sim.now

    process = sim.process(client())
    sim.run(until=30.0)
    assert process.value == pytest.approx(3.0, abs=0.3)


def test_retry_deadline_clips_the_last_attempt(world):
    """A deadline shorter than one attempt bounds that attempt's timeout."""
    from repro.rpc.connection import RetryPolicy

    sim, service, connection = world
    service.set_outage(60.0)
    policy = RetryPolicy(timeout=10.0, retries=3, deadline=1.5)

    def client():
        try:
            yield from connection.call_with_retry("ping", retry=policy)
        except RpcTimeout:
            return sim.now

    process = sim.process(client())
    sim.run(until=30.0)
    assert process.value == pytest.approx(1.5, abs=0.1)


def test_retry_deadline_irrelevant_on_success(world):
    from repro.rpc.connection import RetryPolicy

    sim, service, connection = world
    policy = RetryPolicy(timeout=2.0, retries=2, deadline=30.0)

    def client():
        reply, _ = yield from connection.call_with_retry("ping", retry=policy)
        return reply

    process = sim.process(client())
    sim.run(until=10.0)
    assert process.value == "pong"
    assert connection.retries == 0


def test_builtin_ping_op(world):
    """Every service answers the heartbeat op without registration."""
    sim, service, connection = world

    def client():
        reply, _ = yield from connection.call("__ping__", timeout=2.0)
        return reply

    process = sim.process(client())
    sim.run(until=10.0)
    assert process.value == {"pong": True}


def test_timeout_does_not_fire_on_fast_replies(world):
    sim, service, connection = world

    def client():
        for _ in range(10):
            reply, _ = yield from connection.call("ping", timeout=5.0)
            assert reply == "pong"
        return "all good"

    process = sim.process(client())
    sim.run(until=20.0)
    assert process.value == "all good"
    assert connection.late_replies == 0
