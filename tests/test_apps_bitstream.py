"""The bitstream synthetic application."""

import pytest

from repro.apps.bitstream import build_bitstream
from repro.core.viceroy import Viceroy
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.trace.waveforms import HIGH_BANDWIDTH, constant


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=600))
    viceroy = Viceroy(sim, network)
    return sim, network, viceroy


def test_unpaced_stream_saturates_the_link(world):
    sim, network, viceroy = world
    app, warden, server = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=20.0)
    rate = app.bytes_consumed / 20.0
    assert rate > 0.85 * HIGH_BANDWIDTH


def test_paced_stream_matches_target(world):
    sim, network, viceroy = world
    target = 0.10 * HIGH_BANDWIDTH
    app, warden, server = build_bitstream(
        sim, viceroy, network, target_rate=target, chunk_bytes=16 * 1024
    )
    app.start()
    sim.run(until=60.0)
    assert app.mean_rate(10.0, 60.0) == pytest.approx(target, rel=0.15)


def test_two_streams_share_fairly(world):
    sim, network, viceroy = world
    app_a, _, _ = build_bitstream(sim, viceroy, network, index=0)
    app_b, _, _ = build_bitstream(sim, viceroy, network, index=1)
    app_a.start()
    app_b.start()
    sim.run(until=30.0)
    rate_a = app_a.bytes_consumed / 30.0
    rate_b = app_b.bytes_consumed / 30.0
    assert rate_a + rate_b > 0.85 * HIGH_BANDWIDTH
    assert rate_a == pytest.approx(rate_b, rel=0.2)


def test_stop_interrupts_cleanly(world):
    sim, network, viceroy = world
    app, _, _ = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=5.0)
    app.stop()
    sim.run(until=6.0)
    assert not app.process.alive
    consumed_at_stop = app.bytes_consumed
    sim.run(until=10.0)
    assert app.bytes_consumed == consumed_at_stop


def test_viceroy_estimates_from_stream(world):
    sim, network, viceroy = world
    app, warden, _ = build_bitstream(sim, viceroy, network)
    app.start()
    sim.run(until=10.0)
    total = viceroy.total_bandwidth()
    assert total == pytest.approx(HIGH_BANDWIDTH, rel=0.10)


def test_chunk_times_recorded(world):
    sim, network, viceroy = world
    app, _, _ = build_bitstream(sim, viceroy, network, chunk_bytes=32 * 1024)
    app.start()
    sim.run(until=5.0)
    assert len(app.chunk_times) > 5
    for at, seconds in app.chunk_times:
        assert seconds > 0
