"""Endpoint observation logs."""

import pytest

from repro.rpc.logs import DELIVERY_HISTORY_SECONDS, RpcLog


@pytest.fixture
def log(sim):
    return RpcLog(sim, "conn")


class Recorder:
    def __init__(self):
        self.round_trips = []
        self.throughputs = []

    def on_round_trip(self, log, entry):
        self.round_trips.append(entry)

    def on_throughput(self, log, entry):
        self.throughputs.append(entry)


def test_observers_notified(sim, log):
    recorder = Recorder()
    log.subscribe(recorder)
    log.add_round_trip(0.02, 100, 200)
    log.add_throughput(started=0.0, nbytes=1000)
    assert len(recorder.round_trips) == 1
    assert len(recorder.throughputs) == 1
    log.unsubscribe(recorder)
    log.add_round_trip(0.02, 100, 200)
    assert len(recorder.round_trips) == 1


def test_throughput_entry_fields(sim, log):
    sim.run(until=2.0)
    entry = log.add_throughput(started=1.5, nbytes=4096)
    assert entry.at == 2.0
    assert entry.seconds == pytest.approx(0.5)
    assert entry.raw_rate == pytest.approx(8192)


def test_deliveries_window_query(sim, log):
    log.add_delivery(100)
    sim.run(until=5.0)
    log.add_delivery(200)
    sim.run(until=10.0)
    log.add_delivery(400)
    assert log.bytes_delivered_between(-1.0, 10.0) == 700
    assert log.bytes_delivered_between(0, 10.0) == 600  # start is exclusive
    assert log.bytes_delivered_between(2.0, 7.0) == 200
    assert log.bytes_delivered_between(4.9, 10.0) == 600
    assert log.delivered_total == 700


def test_delivery_interval_is_half_open(sim, log):
    sim.run(until=5.0)
    log.add_delivery(100)
    assert log.bytes_delivered_between(5.0, 6.0) == 0  # start exclusive
    assert log.bytes_delivered_between(4.0, 5.0) == 100  # end inclusive


def test_old_deliveries_pruned(sim, log):
    log.add_delivery(100)
    sim.run(until=DELIVERY_HISTORY_SECONDS + 10)
    log.add_delivery(50)
    # The first delivery fell off the retained window.
    assert log.bytes_delivered_between(0, sim.now) == 50
    assert log.delivered_total == 150  # the total counter never forgets


def test_recent_rate(sim, log):
    sim.run(until=10.0)
    log.add_delivery(5000)
    assert log.recent_rate(5.0) == pytest.approx(1000)
    assert log.recent_rate(0) == 0.0


def test_last_activity(sim, log):
    assert log.last_activity() is None
    sim.run(until=3.0)
    log.add_round_trip(0.02, 10, 10)
    assert log.last_activity() == 3.0
    sim.run(until=7.0)
    log.add_delivery(10)
    assert log.last_activity() == 7.0
