"""Hosts, ports, and the star topology's routing."""

import pytest

from repro.errors import NetworkError
from repro.net.network import WIRED_LATENCY, Network
from repro.net.packet import Packet
from repro.sim.kernel import Simulator
from repro.trace.waveforms import LOW_BANDWIDTH, constant


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, constant(LOW_BANDWIDTH, duration=1000))
    return sim, network


def test_duplicate_host_rejected(world):
    _, network = world
    network.add_host("server")
    with pytest.raises(NetworkError):
        network.add_host("server")


def test_unknown_host_lookup(world):
    _, network = world
    with pytest.raises(NetworkError):
        network.host("nope")


def test_port_dispatch(world):
    sim, network = world
    server = network.add_host("server")
    got = []
    server.bind("svc", got.append)
    network.client.bind("reply", lambda p: None)
    network.client.send(Packet(src="client", dst="server", port="svc",
                               size=100, payload="hello"))
    sim.run()
    assert [p.payload for p in got] == ["hello"]


def test_rebind_port_rejected(world):
    _, network = world
    server = network.add_host("server")
    server.bind("svc", lambda p: None)
    with pytest.raises(NetworkError):
        server.bind("svc", lambda p: None)
    server.unbind("svc")
    server.bind("svc", lambda p: None)  # rebinding after unbind is fine


def test_unbound_port_raises(world):
    sim, network = world
    network.add_host("server")
    network.client.send(Packet(src="client", dst="server", port="nothing",
                               size=100))
    with pytest.raises(NetworkError, match="no handler"):
        sim.run()


def test_spoofed_source_rejected(world):
    _, network = world
    network.add_host("server")
    with pytest.raises(NetworkError, match="src"):
        network.client.send(Packet(src="server", dst="server", port="p", size=100))


def test_client_traffic_modulated_but_wired_is_fast(world):
    sim, network = world
    server_a = network.add_host("a")
    server_b = network.add_host("b")
    times = {}
    server_a.bind("svc", lambda p: times.setdefault("via-client", sim.now))
    server_b.bind("svc", lambda p: times.setdefault("wired", sim.now))

    size = 40 * 1024  # 1 s at the modulated LOW_BANDWIDTH
    network.client.send(Packet(src="client", dst="a", port="svc", size=size))
    server_a.send(Packet(src="a", dst="b", port="svc", size=size))
    sim.run()
    assert times["via-client"] > 0.9  # modulated: ~1 s
    assert times["wired"] < 0.1  # fast LAN
    assert times["wired"] >= WIRED_LATENCY


def test_concurrent_client_flows_share_the_link(world):
    """Two flows through the modulated link serialize; aggregate rate is
    the link rate, so each sees roughly half."""
    sim, network = world
    server = network.add_host("server")
    arrivals = []
    network.client.bind("sink", lambda p: arrivals.append((sim.now, p.payload)))

    chunk = 20 * 1024  # 0.5 s each at LOW_BANDWIDTH
    for flow in ("a", "b"):
        for _ in range(4):
            server.send(Packet(src="server", dst="client", port="sink",
                               size=chunk, payload=flow))
    sim.run()
    # 8 chunks x 0.5 s = 4 s of serialization in total.
    assert arrivals[-1][0] == pytest.approx(4.0, rel=0.05)
