"""Unit and property tests for Store and Semaphore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.queues import Semaphore, Store


def test_store_put_then_get(sim, run_process):
    store = Store(sim)
    store.put("x")

    def consumer():
        item = yield store.get()
        return item

    assert run_process(consumer()) == "x"


def test_store_get_blocks_until_put(sim, run_process):
    store = Store(sim)

    def producer():
        yield sim.timeout(2.0)
        store.put("late")

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    sim.process(producer())
    assert run_process(consumer()) == ("late", 2.0)


def test_store_fifo_order(sim, run_process):
    store = Store(sim)
    for i in range(5):
        store.put(i)

    def consumer():
        items = []
        for _ in range(5):
            items.append((yield store.get()))
        return items

    assert run_process(consumer()) == [0, 1, 2, 3, 4]


def test_store_waiters_served_fifo(sim):
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.call_in(1.0, store.put, "a")
    sim.call_in(2.0, store.put, "b")
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_store_capacity_rejects_overflow(sim):
    store = Store(sim, capacity=2)
    assert store.put(1)
    assert store.put(2)
    assert not store.put(3)
    assert len(store) == 2


def test_store_capacity_must_be_positive(sim):
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_clear_returns_items(sim):
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert store.clear() == ["a", "b"]
    assert len(store) == 0


def test_store_peek_items(sim):
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.peek_items() == (1, 2)
    assert len(store) == 2  # peek does not consume


def test_semaphore_mutual_exclusion(sim):
    sem = Semaphore(sim, capacity=1)
    inside = []
    overlap = []

    def worker(name):
        yield sem.acquire()
        if inside:
            overlap.append(name)
        inside.append(name)
        yield sim.timeout(1.0)
        inside.remove(name)
        sem.release()

    for name in ("a", "b", "c"):
        sim.process(worker(name))
    sim.run()
    assert overlap == []
    assert sim.now == 3.0  # fully serialized


def test_semaphore_capacity_two_overlaps(sim):
    sem = Semaphore(sim, capacity=2)

    def worker():
        yield sem.acquire()
        yield sim.timeout(1.0)
        sem.release()

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert sim.now == 2.0  # two waves of two


def test_semaphore_release_without_acquire(sim):
    sem = Semaphore(sim)
    with pytest.raises(SimulationError):
        sem.release()


def test_semaphore_counters(sim, run_process):
    sem = Semaphore(sim, capacity=2)

    def worker():
        yield sem.acquire()
        held = sem.available
        sem.release()
        return held

    assert run_process(worker()) == 1


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(), min_size=1, max_size=40))
def test_store_preserves_all_items_in_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in items:
            store.put(item)
            yield sim.timeout(0.1)

    def consumer():
        for _ in items:
            received.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    workers=st.integers(min_value=1, max_value=12),
)
def test_semaphore_never_over_admits(capacity, workers):
    sim = Simulator()
    sem = Semaphore(sim, capacity=capacity)
    concurrency = {"now": 0, "max": 0}

    def worker():
        yield sem.acquire()
        concurrency["now"] += 1
        concurrency["max"] = max(concurrency["max"], concurrency["now"])
        yield sim.timeout(1.0)
        concurrency["now"] -= 1
        sem.release()

    for _ in range(workers):
        sim.process(worker())
    sim.run()
    assert concurrency["max"] <= capacity
    assert concurrency["now"] == 0
