"""The chaos harness: storms, the auditor (including its teeth), the drill."""

import pytest

from repro.chaos import (
    ChaosProfile,
    ClientChurn,
    FlappingLink,
    InvariantAuditor,
    PROFILE_NAMES,
    RegionalBlackout,
    ServerPoolOutage,
    resolve_profile,
    run_chaos_fleet,
    standard_profile,
)
from repro.connectivity.deferred import DeferredOp, DeferredOpLog, ReplayReport
from repro.connectivity.state import ConnState, Transition
from repro.errors import FaultError
from repro.fleet.shard import run_fleet_shard

DURATION = 30.0


# -- storm primitives ---------------------------------------------------------


def test_storm_windows_validated():
    with pytest.raises(FaultError):
        RegionalBlackout(start=-1.0, duration=5.0)
    with pytest.raises(FaultError):
        RegionalBlackout(start=0.0, duration=0.0)
    with pytest.raises(FaultError):
        FlappingLink(start=0.0, flaps=0, down_seconds=1.0, up_seconds=1.0)
    with pytest.raises(FaultError):
        ServerPoolOutage(start=0.0, duration=5.0, fraction=0.0)
    with pytest.raises(FaultError):
        ClientChurn(start=0.0, fraction=1.5)
    with pytest.raises(FaultError):
        ChaosProfile(name="x", storms=("not a storm",))


def test_flapping_expands_to_windows():
    flap = FlappingLink(start=10.0, flaps=3, down_seconds=2.0, up_seconds=3.0)
    assert flap.windows() == ((10.0, 2.0), (15.0, 2.0), (20.0, 2.0))


def test_profile_names_resolve():
    for name in PROFILE_NAMES:
        profile = resolve_profile(name, DURATION)
        assert profile.name == name
    with pytest.raises(FaultError):
        standard_profile("no-such-profile", DURATION)
    ready = standard_profile("churn", DURATION)
    assert resolve_profile(ready, DURATION) is ready


# -- compilation (for_shard) --------------------------------------------------


PORTS = ("srv-0", "srv-1", "srv-2", "srv-3")


def test_for_shard_is_deterministic():
    profile = standard_profile("full-storm", DURATION)
    a = profile.for_shard(0, 16, PORTS, DURATION, seed=42, offset=5.0)
    b = profile.for_shard(0, 16, PORTS, DURATION, seed=42, offset=5.0)
    assert a == b
    other = profile.for_shard(0, 16, PORTS, DURATION, seed=43, offset=5.0)
    assert other.churn != a.churn or other.server_stalls != a.server_stalls


def test_for_shard_respects_storm_scoping():
    profile = ChaosProfile(
        name="scoped",
        storms=(RegionalBlackout(start=5.0, duration=5.0, shards=(0,)),),
    )
    hit = profile.for_shard(0, 8, PORTS, DURATION, seed=0)
    missed = profile.for_shard(1, 8, PORTS, DURATION, seed=0)
    assert hit.blackouts == ((5.0, 5.0),)
    assert missed.blackouts == ()


def test_for_shard_rejects_blackout_to_end_of_run():
    profile = ChaosProfile(
        name="dark-forever",
        storms=(RegionalBlackout(start=20.0, duration=10.0),),
    )
    with pytest.raises(FaultError, match="dark forever"):
        profile.for_shard(0, 8, PORTS, DURATION, seed=0)


def test_for_shard_rejects_out_of_run_drill():
    profile = ChaosProfile(name="late-drill", storms=(), drill_at=DURATION)
    with pytest.raises(FaultError, match="drill_at"):
        profile.for_shard(0, 8, PORTS, DURATION, seed=0)


def test_shard_chaos_absolute_times():
    profile = standard_profile("regional-blackout", DURATION)
    compiled = profile.for_shard(0, 8, PORTS, DURATION, seed=0, offset=30.0)
    (start, end), = compiled.storm_windows()
    assert start == 30.0 + 0.25 * DURATION
    assert end == start + 0.40 * DURATION


# -- the auditor's teeth (injected-violation negatives) -----------------------


class FakeTracker:
    """A hand-rolled tracker the auditor must police from the outside."""

    def __init__(self, state=ConnState.CONNECTED):
        self.state = state
        self._subscribers = []

    def subscribe(self, fn):
        self._subscribers.append(fn)

    def move(self, time, source, target, reason="test"):
        for fn in self._subscribers:
            fn(Transition(time, source, target, reason))
        self.state = target


class Clock:
    """A settable sim clock stub."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_auditor(now=0.0, **kwargs):
    return InvariantAuditor(Clock(now), **kwargs)


def test_auditor_accepts_legal_transitions():
    auditor = make_auditor()
    tracker = FakeTracker()
    auditor.watch_tracker("conn-0", tracker)
    tracker.move(1.0, ConnState.CONNECTED, ConnState.DEGRADED)
    tracker.move(2.0, ConnState.DEGRADED, ConnState.DISCONNECTED)
    tracker.move(3.0, ConnState.DISCONNECTED, ConnState.RECONNECTING)
    tracker.move(4.0, ConnState.RECONNECTING, ConnState.CONNECTED)
    assert auditor.violations == []


def test_auditor_flags_illegal_edge():
    auditor = make_auditor()
    tracker = FakeTracker()
    auditor.watch_tracker("conn-0", tracker)
    tracker.move(1.0, ConnState.CONNECTED, ConnState.RECONNECTING)
    assert [v.invariant for v in auditor.violations] == ["connectivity"]
    assert "illegal edge" in auditor.violations[0].detail


def test_auditor_flags_source_discontinuity_and_time_regression():
    auditor = make_auditor()
    tracker = FakeTracker()
    auditor.watch_tracker("conn-0", tracker)
    tracker.move(5.0, ConnState.CONNECTED, ConnState.DEGRADED)
    # Claims to come from CONNECTED although we observed DEGRADED, and
    # runs the clock backwards — two distinct breaches.
    tracker.move(4.0, ConnState.CONNECTED, ConnState.DEGRADED)
    details = [v.detail for v in auditor.violations]
    assert any("does not match observed state" in d for d in details)
    assert any("precedes previous" in d for d in details)


class FakeWarden:
    """Just enough warden for the conservation check: a log and reports."""

    def __init__(self, name="fake-warden"):
        self.name = name
        self.deferred = DeferredOpLog()
        self.reintegration_reports = []


def _op(log, opcode="save-mark", coalesce=None, at=1.0):
    return log.append(DeferredOp(app="app", rest="/p", opcode=opcode,
                                 inbuf={}, queued_at=at, coalesce=coalesce))


def test_auditor_conserves_deferred_ops():
    auditor = make_auditor()
    warden = FakeWarden()
    auditor.watch_warden(warden)
    applied = _op(warden.deferred)
    replaced = _op(warden.deferred, coalesce="k")
    _op(warden.deferred, coalesce="k")  # coalesces `replaced` away
    queued = _op(warden.deferred)  # still queued at the end
    drained = warden.deferred.drain()
    warden.deferred.requeue([op for op in drained if op.seq != applied.seq])
    warden.reintegration_reports.append(
        ReplayReport(op=applied, status="applied", replayed_at=50.0))
    assert {op.seq for op in warden.deferred} > {queued.seq}
    assert replaced.seq not in {op.seq for op in warden.deferred}
    assert auditor.finish(100.0) == []


def test_auditor_flags_lost_op():
    auditor = make_auditor()
    warden = FakeWarden()
    auditor.watch_warden(warden)
    _op(warden.deferred)
    warden.deferred.drain()  # vanished: no report, no coalesce
    violations = auditor.finish(100.0)
    assert [v.invariant for v in violations] == ["deferred-ops"]
    assert "vanished" in violations[0].detail


def test_auditor_flags_double_apply_and_failed_replay():
    auditor = make_auditor()
    warden = FakeWarden()
    auditor.watch_warden(warden)
    op = _op(warden.deferred)
    dropped = _op(warden.deferred)
    warden.deferred.drain()
    warden.reintegration_reports += [
        ReplayReport(op=op, status="applied", replayed_at=50.0),
        ReplayReport(op=op, status="applied", replayed_at=60.0),
        ReplayReport(op=dropped, status="failed", replayed_at=70.0),
    ]
    details = [v.detail for v in auditor.finish(100.0)]
    assert any("double apply" in d for d in details)
    assert any("failed replay" in d for d in details)


def test_auditor_flags_unanswered_upcall():
    auditor = make_auditor(now=50.0, upcall_grace=10.0)
    auditor._on_viceroy_event("upcall", kind="violation", app="player",
                              request_id=7, time=5.0)
    violations = auditor.finish(50.0)
    assert [v.invariant for v in violations] == ["upcall"]


def test_auditor_upcall_answered_by_reregistration_or_departure():
    auditor = make_auditor(now=50.0, upcall_grace=10.0)
    auditor._on_viceroy_event("upcall", kind="violation", app="player",
                              request_id=7, time=5.0)
    auditor._on_viceroy_event("request", app="player", request_id=8)
    auditor._on_viceroy_event("upcall", kind="violation", app="walker",
                              request_id=9, time=5.0)
    auditor.note_departure("walker")
    assert auditor.finish(50.0) == []


def test_auditor_recovery_slo():
    auditor = make_auditor(recovery_slo=10.0)
    slow, fast = FakeTracker(), FakeTracker()
    auditor.watch_tracker("slow", slow)
    auditor.watch_tracker("fast", fast)
    for tracker in (slow, fast):
        tracker.move(1.0, ConnState.CONNECTED, ConnState.DEGRADED)
        tracker.move(2.0, ConnState.DEGRADED, ConnState.DISCONNECTED)
    auditor.note_storm(0.0, 20.0)
    fast.move(24.0, ConnState.DISCONNECTED, ConnState.RECONNECTING)
    fast.move(25.0, ConnState.RECONNECTING, ConnState.CONNECTED)
    violations = auditor.finish(100.0)
    assert [(v.invariant, v.subject) for v in violations] \
        == [("recovery", "slow")]
    assert auditor.recovery_seconds == [5.0]
    assert auditor.max_recovery_seconds == 5.0


def test_auditor_recovery_defers_to_overlapping_later_storm():
    auditor = make_auditor(recovery_slo=10.0)
    tracker = FakeTracker()
    auditor.watch_tracker("conn-0", tracker)
    tracker.move(1.0, ConnState.CONNECTED, ConnState.DEGRADED)
    tracker.move(2.0, ConnState.DEGRADED, ConnState.DISCONNECTED)
    auditor.note_storm(0.0, 20.0)
    auditor.note_storm(25.0, 90.0)  # re-covers the link before the SLO runs out
    # Never recovers from the first storm, but the second owns the deadline
    # — and the run ends before *its* SLO horizon can be judged... except
    # it can: end=90, slo=10, now=100 is exactly the horizon boundary.
    tracker.move(95.0, ConnState.DISCONNECTED, ConnState.RECONNECTING)
    tracker.move(96.0, ConnState.RECONNECTING, ConnState.CONNECTED)
    assert auditor.finish(100.0) == []


# -- one stormed shard, end to end --------------------------------------------


def run_small_shard(profile_name="regional-blackout", clients=8, seed=7,
                    **kwargs):
    profile = standard_profile(profile_name, DURATION)
    return run_fleet_shard(clients, DURATION, shard=0, seed=seed,
                           chaos=profile, **kwargs)


def test_stormed_shard_stays_clean():
    result = run_small_shard()
    stats = result.chaos
    assert stats.violations == ()
    assert stats.ops_lost == 0
    assert stats.marks_deferred > 0  # the blackout forced deferrals
    assert 0.0 < stats.fidelity_floor < 1.0
    assert stats.drill is not None
    assert stats.drill.deferred_restored > 0
    assert stats.drill.registrations_restored \
        == stats.drill.registrations_before
    assert not stats.drill.registrations_dropped


def test_churned_shard_accounts_for_departures():
    result = run_small_shard("churn")
    stats = result.chaos
    assert stats.violations == ()
    assert stats.churn_left > 0
    assert stats.churn_rejoined == stats.churn_left


def test_plain_shard_carries_no_chaos():
    result = run_fleet_shard(4, DURATION, shard=0, seed=7)
    assert result.chaos is None


# -- fleet determinism and the CLI --------------------------------------------


def test_chaos_fleet_fingerprint_is_jobs_invariant():
    serial = run_chaos_fleet(16, shards=2, duration=DURATION,
                             jobs=1, cache=None)
    parallel = run_chaos_fleet(16, shards=2, duration=DURATION,
                               jobs=2, cache=None)
    assert serial.total_violations == 0
    assert serial.fingerprint() == parallel.fingerprint()
    undrilled = run_chaos_fleet(16, shards=2, duration=DURATION,
                                drill=False, jobs=1, cache=None)
    assert undrilled.drills == []
    assert undrilled.fingerprint() != serial.fingerprint()


def test_chaos_cli_smoke(capsys):
    from repro.cli import main

    status = main(["--no-cache", "chaos", "--clients", "8", "--shards", "2",
                   "--duration", "30", "--profile", "regional-blackout",
                   "--timeout", "300"])
    out = capsys.readouterr().out
    assert status == 0
    assert "chaos profile 'regional-blackout'" in out
    assert "0 violations" in out
    assert "fingerprint" in out
