"""Property tests: conservation and ordering invariants of the RPC stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.network import Network
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply
from repro.sim.kernel import Simulator
from repro.trace.replay import ReplayTrace, Segment
from repro.trace.waveforms import HIGH_BANDWIDTH


def build_world(trace=None):
    sim = Simulator()
    trace = trace or ReplayTrace([Segment(10_000, HIGH_BANDWIDTH, 0.0105)])
    network = Network(sim, trace)
    server = network.add_host("server")
    service = RpcService(sim, server, "svc")
    service.register(
        "get",
        lambda body: ServerReply(bulk=service.make_bulk(body["nbytes"])),
    )
    service.register("sink", lambda body: ServerReply(body="ok"))
    return sim, network, service


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=300_000),
                      min_size=1, max_size=8))
def test_fetch_conserves_bytes(sizes):
    """Every fetch delivers exactly the requested bytes, whatever the mix
    of window and fragment boundaries the sizes hit."""
    sim, network, service = build_world()
    connection = RpcConnection(sim, network, "server", "svc", "c")
    got = []

    def client():
        for nbytes in sizes:
            _, _, delivered = yield from connection.fetch(
                "get", body={"nbytes": nbytes}
            )
            got.append(delivered)

    sim.process(client())
    sim.run()
    assert got == sizes
    window_bytes = sum(e.nbytes for e in connection.log.throughputs)
    assert window_bytes == sum(sizes)


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=200_000),
                      min_size=1, max_size=6))
def test_push_conserves_bytes(sizes):
    sim, network, service = build_world()
    connection = RpcConnection(sim, network, "server", "svc", "c")
    replies = []

    def client():
        for nbytes in sizes:
            reply = yield from connection.push("sink", nbytes)
            replies.append(reply)

    sim.process(client())
    sim.run()
    assert replies == ["ok"] * len(sizes)
    assert sum(e.nbytes for e in connection.log.throughputs) == sum(sizes)


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=120_000),
                   min_size=2, max_size=5),
    step_at=st.floats(min_value=0.1, max_value=5.0),
)
def test_fetch_conserves_bytes_across_bandwidth_steps(sizes, step_at):
    """Conservation holds even when the bandwidth steps mid-transfer."""
    trace = ReplayTrace([
        Segment(step_at, HIGH_BANDWIDTH, 0.0105),
        Segment(10_000, HIGH_BANDWIDTH // 3, 0.0105),
    ])
    sim, network, service = build_world(trace)
    connection = RpcConnection(sim, network, "server", "svc", "c")
    got = []

    def client():
        for nbytes in sizes:
            _, _, delivered = yield from connection.fetch(
                "get", body={"nbytes": nbytes}
            )
            got.append(delivered)

    sim.process(client())
    sim.run()
    assert got == sizes


@settings(max_examples=15, deadline=None)
@given(concurrency=st.integers(min_value=2, max_value=6))
def test_concurrent_connections_each_conserve(concurrency):
    """N clients fetching simultaneously never cross wires."""
    sim, network, service = build_world()
    connections = [
        RpcConnection(sim, network, "server", "svc", f"c{i}")
        for i in range(concurrency)
    ]
    delivered = {}

    def client(i, connection):
        nbytes = 10_000 + i * 7_333
        _, _, got = yield from connection.fetch("get", body={"nbytes": nbytes})
        delivered[i] = (nbytes, got)

    for i, connection in enumerate(connections):
        sim.process(client(i, connection))
    sim.run()
    assert len(delivered) == concurrency
    for nbytes, got in delivered.values():
        assert got == nbytes


def test_throughput_entries_are_time_ordered():
    sim, network, service = build_world()
    connection = RpcConnection(sim, network, "server", "svc", "c")

    def client():
        for _ in range(5):
            yield from connection.fetch("get", body={"nbytes": 50_000})

    sim.process(client())
    sim.run()
    times = [entry.at for entry in connection.log.throughputs]
    assert times == sorted(times)
    for entry in connection.log.throughputs:
        assert entry.at > entry.started


def test_link_stats_account_for_all_traffic():
    """Bytes counted by the links bound the payload delivered."""
    sim, network, service = build_world()
    connection = RpcConnection(sim, network, "server", "svc", "c")

    def client():
        yield from connection.fetch("get", body={"nbytes": 100_000})

    sim.process(client())
    sim.run()
    down = network.downlink.stats.bytes_sent
    assert down >= 100_000  # payload plus headers
    assert down <= 100_000 * 1.1  # headers are a bounded overhead