"""Unit tests for generator-coroutine processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.events import AllOf, AnyOf


def test_process_returns_value(sim, run_process):
    def worker():
        yield sim.timeout(1.0)
        return "done"

    assert run_process(worker()) == "done"
    assert sim.now == 1.0


def test_process_waits_on_process(sim, run_process):
    def child():
        yield sim.timeout(2.0)
        return 7

    def parent():
        value = yield sim.process(child())
        return value * 6

    assert run_process(parent()) == 42


def test_yield_none_resumes_immediately(sim, run_process):
    def worker():
        yield
        return sim.now

    assert run_process(worker()) == 0.0


def test_yield_non_event_fails_the_process(sim):
    def worker():
        yield "garbage"

    process = sim.process(worker())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()
    assert process.triggered and not process.ok


def test_exception_in_process_propagates_to_waiter(sim, run_process):
    def child():
        yield sim.timeout(1.0)
        raise ValueError("child broke")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught: {exc}"

    assert run_process(parent()) == "caught: child broke"


def test_uncaught_process_exception_surfaces(sim):
    def worker():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled in process")

    sim.process(worker())
    with pytest.raises(RuntimeError, match="unhandled in process"):
        sim.run()


def test_interrupt_delivers_cause(sim, run_process):
    def victim():
        try:
            yield sim.timeout(100.0)
        except ProcessInterrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)
        return "finished"

    victim_process = sim.process(victim())

    def interrupter():
        yield sim.timeout(3.0)
        victim_process.interrupt("reason")

    sim.process(interrupter())
    sim.run()
    assert victim_process.value == ("interrupted", "reason", 3.0)


def test_interrupt_finished_process_rejected(sim):
    def quick():
        yield sim.timeout(1.0)

    process = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_abandoned_event_after_interrupt_is_harmless(sim):
    """The timeout abandoned by an interrupt must not resume the process."""
    log = []

    def victim():
        try:
            yield sim.timeout(10.0)
        except ProcessInterrupt:
            log.append(("interrupted", sim.now))
        yield sim.timeout(20.0)
        log.append(("resumed", sim.now))

    victim_process = sim.process(victim())
    sim.call_in(1.0, victim_process.interrupt)
    sim.run()
    # Resumed exactly once, 20 s after the interrupt at t=1.
    assert log == [("interrupted", 1.0), ("resumed", 21.0)]


def test_process_alive_flag(sim):
    def worker():
        yield sim.timeout(5.0)

    process = sim.process(worker())
    assert process.alive
    sim.run()
    assert not process.alive


def test_anyof_returns_first(sim, run_process):
    def racer():
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        results = yield AnyOf(sim, [slow, fast])
        return list(results.values())

    assert run_process(racer()) == ["fast"]
    assert sim.now == 10.0  # the slow timeout still drains


def test_allof_waits_for_all(sim, run_process):
    def gatherer():
        timeouts = [sim.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        results = yield AllOf(sim, timeouts)
        return sorted(results.values())

    assert run_process(gatherer()) == [1.0, 2.0, 3.0]


def test_empty_allof_fires_immediately(sim, run_process):
    def worker():
        result = yield AllOf(sim, [])
        return result

    assert run_process(worker()) == {}


def test_condition_failure_propagates(sim, run_process):
    def worker():
        bad = sim.event()
        bad.fail(ValueError("child failed"), delay=1.0)
        try:
            yield AllOf(sim, [bad, sim.timeout(5.0)])
        except ValueError:
            return "caught"

    assert run_process(worker()) == "caught"


def test_two_processes_interleave(sim):
    trace = []

    def ticker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            trace.append((sim.now, name))

    sim.process(ticker("a", 1.0))
    sim.process(ticker("b", 1.5))
    sim.run()
    # At t=3.0 both fire; b's timeout was scheduled first (at t=1.5, before
    # a's at t=2.0), so the deterministic tiebreak runs b first.
    assert trace == [
        (1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a"), (4.5, "b"),
    ]
