#!/usr/bin/env python3
"""Fig. 10 in miniature: adaptive video against every static strategy.

Plays the same movie under each strategy over a chosen waveform and prints
the drop/fidelity tradeoff — the paper's point that "focusing solely on
performance can result in a misleading evaluation".

Run:  python examples/adaptive_video.py [--waveform step-up]
"""

import argparse

from repro.experiments.supply import REFERENCE_WAVEFORMS
from repro.experiments.video import PAPER_FIG10, VIDEO_STRATEGIES, run_video_trial


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--waveform", choices=REFERENCE_WAVEFORMS,
                        default="step-up")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Playing 600 measured frames over the {args.waveform} waveform\n")
    print(f"{'strategy':10s} {'drops':>6s} {'fidelity':>9s}   "
          f"{'paper drops':>11s} {'paper fid':>9s}")
    rows = {}
    for strategy in VIDEO_STRATEGIES:
        player = run_video_trial(args.waveform, strategy, seed=args.seed)
        rows[strategy] = player
        paper_drops, paper_fid = PAPER_FIG10[args.waveform][strategy]
        print(f"{strategy:10s} {player.stats.drops:6d} "
              f"{player.fidelity:9.2f}   {paper_drops:11d} {paper_fid:9.2f}")

    adaptive = rows["adaptive"]
    print("\nAdaptive track switches:")
    if not adaptive.stats.switches:
        print("  (none — the whole run fit one track)")
    for at, old, new in adaptive.stats.switches:
        print(f"  t={at:6.1f}s  {old} -> {new}")
    print("\nThe adaptive player matches JPEG(50)'s fidelity or better while"
          "\ndropping a small fraction of JPEG(99)'s frames — Fig. 10's point.")


if __name__ == "__main__":
    main()
