#!/usr/bin/env python3
"""Reproduce Fig. 8 as ASCII art: estimation agility under the waveforms.

Runs the bitstream application over each reference waveform and plots the
bandwidth estimate (dots) against the theoretical bandwidth (dashes), the
way the paper's Fig. 8 panels do.

Run:  python examples/agility_waveforms.py
"""

from repro.experiments.supply import (
    REFERENCE_WAVEFORMS,
    run_supply_trial,
)
from repro.trace.waveforms import HIGH_BANDWIDTH, waveform

KB = 1024
PLOT_WIDTH = 78
PLOT_HEIGHT = 14


def ascii_plot(series, trace, title):
    """Dots for estimates, dashes for the theoretical level."""
    top = HIGH_BANDWIDTH * 1.15
    grid = [[" "] * PLOT_WIDTH for _ in range(PLOT_HEIGHT)]

    def cell(t, value):
        x = int(t / 60.0 * (PLOT_WIDTH - 1))
        y = PLOT_HEIGHT - 1 - int(min(value, top - 1) / top * PLOT_HEIGHT)
        return max(0, min(PLOT_HEIGHT - 1, y)), max(0, min(PLOT_WIDTH - 1, x))

    for x in range(PLOT_WIDTH):
        t = x / (PLOT_WIDTH - 1) * 60.0
        y, _ = cell(t, trace.bandwidth_at(t))
        grid[y][x] = "-"
    for t, value in series:
        if 0 <= t <= 60:
            y, x = cell(t, value)
            grid[y][x] = "*"

    print(f"\n{title}")
    print(f"{top / KB:6.0f} KB/s +" + "-" * PLOT_WIDTH + "+")
    for row in grid:
        print("            |" + "".join(row) + "|")
    print("          0 +" + "-" * PLOT_WIDTH + "+")
    print("            0s" + " " * (PLOT_WIDTH - 10) + "60s")
    print("            (- theoretical bandwidth, * Odyssey's estimate)")


def main():
    for name in REFERENCE_WAVEFORMS:
        trial = run_supply_trial(name, seed=0)
        ascii_plot(trial.series, waveform(name), f"Fig. 8 — {name}")
        if trial.settling is not None:
            print(f"            settling time: {trial.settling:.2f} s, "
                  f"50% detection delay: {trial.detection:.2f} s")


if __name__ == "__main__":
    main()
