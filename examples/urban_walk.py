#!/usr/bin/env python3
"""The paper's motivating scenario: a walk through the city (Figs. 13-14).

Video, web, and speech run concurrently on one mobile client while the
15-minute urban trace varies bandwidth — three minutes well connected, an
intermittent stretch, the radio shadow of a large building, and recovery.
Compare Odyssey's centralized resource management against laissez-faire and
blind optimism.

Run:  python examples/urban_walk.py [--policy odyssey|laissez-faire|blind-optimism]
"""

import argparse

from repro.experiments.concurrent import PAPER_FIG14, run_concurrent_trial
from repro.experiments.harness import POLICIES


def describe(policy, result):
    video, web, speech = result.video, result.web, result.speech
    paper = PAPER_FIG14[policy]
    print(f"\n=== {policy} ===")
    print(f"  video : {video.stats.drops} frames dropped "
          f"(paper: {paper[0]}), fidelity {video.fidelity:.2f} "
          f"(paper: {paper[1]:.2f})")
    print(f"  web   : {web.stats.mean_seconds:.2f} s/page "
          f"(paper: {paper[2]:.2f}), fidelity {web.stats.mean_fidelity:.2f} "
          f"(paper: {paper[3]:.2f})")
    print(f"  speech: {speech.stats.mean_seconds:.2f} s/recognition "
          f"(paper: {paper[4]:.2f})")
    print(f"  track switches: {len(video.stats.switches)}, "
          f"web fetches: {web.stats.count}, "
          f"recognitions: {speech.stats.count}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", choices=list(POLICIES) + ["all"],
                        default="all")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    policies = POLICIES if args.policy == "all" else [args.policy]
    print("Walking through the city for 15 minutes "
          "(video + web + speech, one modulated link)...")
    results = {}
    for policy in policies:
        results[policy] = run_concurrent_trial(policy, seed=args.seed)
        describe(policy, results[policy])

    if len(results) == 3:
        odyssey = results["odyssey"].video.stats.drops
        blind = results["blind-optimism"].video.stats.drops
        print(f"\nOdyssey dropped {blind / max(odyssey, 1):.1f}x fewer frames "
              "than blind optimism (paper: a factor of 2 to 5).")


if __name__ == "__main__":
    main()
