#!/usr/bin/env python3
"""Multi-resource adaptation: bandwidth *and* battery (paper §8).

The paper's prototype managed only network bandwidth, listing the rest of
Fig. 3(c) as medium-term work.  This example exercises that extension: a
video player that registers windows of tolerance on *two* resources.  When
the battery falls below a threshold, the player caps its track at JPEG(50)
— halving radio traffic — even though bandwidth alone would permit
JPEG(99).

Run:  python examples/battery_aware.py
"""

from repro.apps.video import Movie, MovieStore, VideoPlayer, build_video
from repro.core import OdysseyAPI, Resource, Viceroy
from repro.core.monitors import BatteryMonitor
from repro.net import Network
from repro.sim import Simulator
from repro.trace import HIGH_BANDWIDTH, constant

#: Below this many minutes of battery, cap fidelity to save the radio.
LOW_BATTERY_MINUTES = 2.0


class BatteryAwareVideoPlayer(VideoPlayer):
    """Adds a battery ceiling on top of the bandwidth-adaptive player."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.battery_capped = False

    def best_track_for(self, level):
        track = super().best_track_for(level)
        if self.battery_capped and track == "jpeg99":
            return "jpeg50"
        return track

    def watch_battery(self):
        self.api.on_upcall("battery-low", self._on_battery)
        self.api.viceroy.request(
            self.api.app, self.path,
            _battery_descriptor(LOW_BATTERY_MINUTES),
        )

    def _on_battery(self, upcall):
        print(f"  t={self.sim.now:5.1f}s  battery upcall: "
              f"{upcall.level:.2f} minutes left -> capping fidelity")
        self.battery_capped = True
        if self.current_track == "jpeg99":
            self.stats.switches.append((self.sim.now, "jpeg99", "jpeg50"))
            self.current_track = "jpeg50"
            self._rebuffer_pending = True


def _battery_descriptor(threshold):
    from repro.core.resources import ResourceDescriptor, Window

    return ResourceDescriptor(
        Resource.BATTERY_POWER, Window(threshold, 1e9), "battery-low"
    )


def main():
    sim = Simulator()
    network = Network(sim, constant(HIGH_BANDWIDTH, duration=600))
    viceroy = Viceroy(sim, network)
    battery = BatteryMonitor(sim, capacity_minutes=2.5, tick=1.0)
    viceroy.attach_monitor(battery)

    store = MovieStore()
    store.add(Movie("documentary", n_frames=700))
    build_video(sim, viceroy, network, store)
    api = OdysseyAPI(viceroy, "xanim")
    player = BatteryAwareVideoPlayer(
        sim, api, "xanim", "/odyssey/video", "documentary", policy="adaptive"
    )
    player.watch_battery()
    player.start()

    def narrator():
        while True:
            yield sim.timeout(10.0)
            print(f"  t={sim.now:5.1f}s  battery={battery.current():.2f} min"
                  f"  track={player.current_track}")

    sim.process(narrator())
    sim.run(until=70.0)
    print(f"\ndisplayed per track: {player.stats.displayed}")
    print("Bandwidth never changed — the downgrade was driven entirely by")
    print("the battery monitor, through the same request/upcall machinery.")


if __name__ == "__main__":
    main()
