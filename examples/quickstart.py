#!/usr/bin/env python3
"""Quickstart: an adaptive application on Odyssey in ~60 lines.

Builds the whole stack — simulator, trace-modulated network, viceroy — and
runs one adaptive video player over the Step-Down reference waveform.
Watch the player negotiate a window of tolerance, receive an upcall when
bandwidth collapses, and switch tracks.

Run:  python examples/quickstart.py
"""

from repro.apps.video import Movie, MovieStore, VideoPlayer, build_video
from repro.core import OdysseyAPI, Viceroy
from repro.net import Network
from repro.sim import Simulator
from repro.trace import step_down

KB = 1024


def main():
    sim = Simulator()
    trace = step_down().shifted(10.0)  # 10 s priming, then the waveform
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)

    # A movie server with one three-track movie, plus its warden.
    store = MovieStore()
    store.add(Movie("tour-of-the-city", n_frames=700))
    build_video(sim, viceroy, network, store)

    # The application: xanim with the adaptive policy.
    api = OdysseyAPI(viceroy, "xanim")
    player = VideoPlayer(sim, api, "xanim", "/odyssey/video",
                         "tour-of-the-city", policy="adaptive")
    player.start()

    # Narrate what the system does while it runs.
    def narrator():
        last_track = None
        while True:
            yield sim.timeout(5.0)
            total = viceroy.total_bandwidth()
            track = player.current_track
            marker = ""
            if track != last_track:
                marker = "  <-- fidelity change"
                last_track = track
            estimate = f"{total / KB:6.1f} KB/s" if total else "   (none)"
            print(f"t={sim.now:5.1f}s  estimate={estimate}  "
                  f"track={track}{marker}")

    sim.process(narrator())
    sim.run(until=75.0)

    print()
    print(f"frames displayed: {player.stats.frames_displayed}, "
          f"dropped: {player.stats.drops}")
    print(f"mean fidelity of displayed frames: {player.fidelity:.2f}")
    print("track switches:")
    for at, old, new in player.stats.switches:
        print(f"  t={at:5.1f}s  {old} -> {new}")
    for at, handler, upcall in viceroy.upcalls.delivered_to("xanim"):
        print(f"upcall at t={at:5.1f}s: {upcall.resource} now "
              f"{upcall.level / KB:.1f} KB/s (request {upcall.request_id})")


if __name__ == "__main__":
    main()
