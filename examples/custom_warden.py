#!/usr/bin/env python3
"""Extending Odyssey with a new data type: a telemetry warden.

The paper's framework claim is that "diverse notions of fidelity can easily
be incorporated": write a warden, define the type's fidelity dimensions,
mount it.  This example builds one from scratch for telemetry data, whose
natural fidelity dimension is *sampling rate* (paper §2.2) — and an
adaptive monitoring application that raises or lowers the rate with
bandwidth.

Run:  python examples/custom_warden.py
"""

from repro.apps.base import Application, negotiate
from repro.core import OdysseyAPI, Resource, Viceroy, Warden
from repro.errors import ProcessInterrupt
from repro.net import Network
from repro.rpc import RpcService, ServerReply
from repro.sim import Simulator
from repro.trace import step_down

KB = 1024
#: Fidelity levels: samples per second -> fidelity value (strictly
#: increasing with quality, as §6.1.2 requires).
SAMPLING_RATES = {100: 1.0, 20: 0.4, 2: 0.05}
BYTES_PER_SAMPLE = 640


class TelemetryServer:
    """A field sensor array streaming samples on request."""

    def __init__(self, sim, host):
        self.service = RpcService(sim, host, "telemetry")
        self.service.register("read-window", self._read_window)

    def _read_window(self, body):
        nbytes = body["samples"] * BYTES_PER_SAMPLE
        return ServerReply(
            body={"samples": body["samples"]},
            body_bytes=48,
            compute_seconds=0.001,
            bulk=self.service.make_bulk(nbytes),
        )


class TelemetryWarden(Warden):
    """Type-specific support for telemetry: sampling-rate fidelity."""

    TSOPS = {
        "set-rate": "tsop_set_rate",
        "read-window": "tsop_read_window",
    }
    FIDELITIES = {f"{rate}Hz": fid for rate, fid in SAMPLING_RATES.items()}

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rate_hz = max(SAMPLING_RATES)

    def tsop_set_rate(self, app, rest, inbuf):
        rate = inbuf["rate_hz"]
        if rate not in SAMPLING_RATES:
            raise ValueError(f"offered rates: {sorted(SAMPLING_RATES)}")
        self.rate_hz = rate
        return rate
        yield  # pragma: no cover

    def tsop_read_window(self, app, rest, inbuf):
        """Fetch one second's worth of samples at the current rate."""
        conn = self.primary_connection(rest)
        _, _, nbytes = yield from conn.fetch(
            "read-window", body={"samples": self.rate_hz}, body_bytes=64
        )
        return {"samples": self.rate_hz, "nbytes": nbytes}


class MonitoringApp(Application):
    """Background monitoring (the paper's §2.3 information filter)."""

    def __init__(self, sim, api, path):
        super().__init__(sim, api, "monitor")
        self.path = path
        self.windows = []

    def demand(self, rate_hz):
        return rate_hz * BYTES_PER_SAMPLE * 1.3  # protocol headroom

    def best_rate(self, level):
        if level is None:
            return max(SAMPLING_RATES)
        affordable = [r for r in SAMPLING_RATES if self.demand(r) <= level]
        return max(affordable) if affordable else min(SAMPLING_RATES)

    def _register(self, level_hint=None):
        def on_level(level):
            rate = self.best_rate(level)
            self.sim.process(self._apply_rate(rate))

        def window_for(level):
            rate = self.best_rate(level)
            better = [r for r in SAMPLING_RATES if r > rate]
            lower = 0.0 if rate == min(SAMPLING_RATES) else self.demand(rate)
            upper = self.demand(min(better)) * 1.1 if better else 1e12
            return lower, upper

        negotiate(self.api, self.path, Resource.NETWORK_BANDWIDTH,
                  window_for, on_level, level_hint=level_hint,
                  handler="telemetry-bw")

    def _apply_rate(self, rate):
        current = yield from self.api.tsop(self.path, "set-rate",
                                           {"rate_hz": rate})
        print(f"  t={self.sim.now:5.1f}s  sampling rate -> {current} Hz")

    def run(self):
        self.api.on_upcall("telemetry-bw",
                           lambda up: self._register(level_hint=up.level))
        self._register()
        try:
            while True:
                window = yield from self.api.tsop(self.path, "read-window", {})
                self.windows.append((self.sim.now, window))
                yield self.sim.timeout(1.0)
        except ProcessInterrupt:
            return self.windows


def main():
    sim = Simulator()
    network = Network(sim, step_down().shifted(5.0))
    viceroy = Viceroy(sim, network)
    sensors = network.add_host("sensor-array")
    TelemetryServer(sim, sensors)

    warden = TelemetryWarden(sim, viceroy, "telemetry")
    warden.open_connection("sensor-array", "telemetry")
    viceroy.mount("/odyssey/telemetry", warden)

    api = OdysseyAPI(viceroy, "monitor")
    app = MonitoringApp(sim, api, "/odyssey/telemetry/field-7")
    print("Monitoring telemetry while bandwidth steps 120 -> 40 KB/s at t=35:")
    app.start()
    sim.run(until=65.0)

    rates = {}
    for _, window in app.windows:
        rates[window["samples"]] = rates.get(window["samples"], 0) + 1
    print(f"\nwindows read per sampling rate: {rates}")
    print("The new data type adapted with ~30 lines of warden code —")
    print("the paper's framework claim, demonstrated.")


if __name__ == "__main__":
    main()
