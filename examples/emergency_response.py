#!/usr/bin/env python3
"""The paper's §2.3 vision, assembled: concurrent background applications.

An emergency-response worker sweeps a damage-assessment grid.  Three things
run at once on the wearable:

- the **map prefetcher** fetches tiles ahead along the planned route, at a
  resolution adapted to bandwidth;
- a background **information filter** polls the incident feed, pacing its
  detail and period to a metered communication budget;
- the **battery monitor** watches power through the same request/upcall
  machinery.

Coverage follows a generated urban mobility scenario.  This is the
"centralized monitoring and coordinated resource management" argument of
§2.3 in one program.

Run:  python examples/emergency_response.py
"""

from repro.apps.infofilter import build_filter
from repro.apps.prefetch import FieldWorker, build_maps, walk_path
from repro.core import OdysseyAPI, Viceroy
from repro.core.monitors import BatteryMonitor, MoneyMonitor
from repro.net import Network
from repro.sim import Simulator
from repro.trace.scenarios import generate_scenario

KB = 1024
WALK_STEPS = 120
DWELL_SECONDS = 2.0


def main():
    sim = Simulator()
    trace = generate_scenario("urban", duration_seconds=400, seed=11)
    network = Network(sim, trace)
    viceroy = Viceroy(sim, network)

    battery = BatteryMonitor(sim, capacity_minutes=45)
    money = MoneyMonitor(sim, budget_cents=40, cents_per_megabyte=8)
    viceroy.attach_monitor(battery)
    viceroy.attach_monitor(money)

    maps_warden, _ = build_maps(sim, viceroy, network)
    worker_api = OdysseyAPI(viceroy, "field-worker")
    worker = FieldWorker(
        sim, worker_api, "field-worker", "/odyssey/maps",
        walk_path(WALK_STEPS), dwell_seconds=DWELL_SECONDS,
    )
    info_filter, _, feed_server = build_filter(sim, viceroy, network,
                                               money=money)
    worker.start()
    info_filter.start()

    def narrator():
        while True:
            yield sim.timeout(40.0)
            bandwidth = viceroy.total_bandwidth()
            print(f"t={sim.now:5.0f}s  bandwidth~{(bandwidth or 0) / KB:6.1f} KB/s"
                  f"  map fidelity={worker.fidelity:<4}"
                  f"  feed detail={info_filter.detail:<4}"
                  f"  budget={money.current():5.1f}c"
                  f"  battery={battery.current():5.1f}min")

    sim.process(narrator())
    sim.run(until=WALK_STEPS * DWELL_SECONDS + 20)

    print("\n--- after the sweep ---")
    print(f"tiles viewed: {worker.stats.count}, "
          f"prefetch hit rate: {worker.stats.hit_rate:.0%}, "
          f"mean view latency: {worker.stats.mean_view_seconds * 1000:.0f} ms")
    print(f"mean map fidelity: {worker.stats.mean_fidelity:.2f}")
    print(f"feed polls: {info_filter.stats.count}, "
          f"alerts raised: {info_filter.stats.alerts}, "
          f"feed staleness at end: "
          f"{info_filter.stats.staleness(feed_server.version, sim.now)} versions")
    print(f"communication budget left: {money.current():.1f} of 40.0 cents")
    print("\nBoth applications shared one modulated link; the viceroy's")
    print("estimates kept the foreground fast and the background cheap.")


if __name__ == "__main__":
    main()
