"""The live warden: an app's adaptive loop speaking ``BrokerClient``.

The sim wardens (video, web, ...) talk to the viceroy through an
in-process :class:`~repro.rpc.connection.RpcConnection`.
:class:`LiveWarden` is the adapter that puts the same adaptation
contract on a real socket:

- **fidelity ladder** — a :class:`FidelityProfile` built from the app
  wardens' own tables (:data:`~repro.apps.video.warden.VideoWarden.FIDELITIES`,
  the web cellophane's distillation levels), with the fleet client's
  guard-banded tolerance windows around each rung;
- **negotiation** — ``__request__`` windows against the live broker;
  a structured rejection carries the available level, so the warden
  re-requests around a fitting rung without string-matching error text;
- **violation upcalls** — fidelity follows the upcall's level
  immediately, the re-registration RPC waits for the next chunk boundary
  (the fleet client's anti-storm discipline);
- **data plane** — paced chunk fetches through
  :class:`~repro.live.bulk.BulkReceiver`, whose per-fragment and
  per-window ``__report__`` samples are what feed the broker's estimate;
- **disconnected handoff** — an
  :class:`~repro.connectivity.AsyncHeartbeatProber` keeps probe evidence
  flowing into the client's
  :class:`~repro.connectivity.ConnectivityTracker`; when the tracker
  declares the link offline the warden stops touching the network and
  serves stale chunks from its :class:`~repro.core.warden.WardenCache`,
  and the RECONNECTING -> CONNECTED recovery triggers re-registration
  (reintegration) before fetching resumes.
"""

from repro import telemetry
from repro.apps.video.warden import VideoWarden
from repro.apps.web.images import FIDELITY_LEVELS as WEB_IMAGE_LEVELS
from repro.broker.client import BrokerClient
from repro.broker.server import REPORT_OP, REQUEST_OP
from repro.connectivity import AsyncHeartbeatProber
from repro.connectivity.state import ConnState
from repro.core.warden import WardenCache
from repro.errors import (
    BrokerError,
    RemoteCallError,
    RpcTimeout,
    TransportError,
)
from repro.live.bulk import BulkReceiver

#: Fleet-client hysteresis guards, reused verbatim: a level's window digs
#: a little below its own demand and reaches a little past the next
#: level's, so a wobbling estimate does not upcall per wobble.
LOWER_GUARD = 0.8
UPPER_GUARD = 1.3

#: Defaults sized for a demo that must adapt within seconds: small chunks
#: on a short period keep per-window throughput samples frequent.
DEFAULT_CHUNK_BYTES = 16 * 1024
DEFAULT_PERIOD = 0.25
#: Bulk shape of one chunk fetch (smaller than the transfer-layer
#: defaults): small windows mean one estimation sample every few KB, so
#: the EWMA tracks a square-wave link within a phase.
CHUNK_WINDOW_BYTES = 4 * 1024
CHUNK_FRAGMENT_BYTES = 2 * 1024

#: Smallest fetch the warden will issue, regardless of fidelity.  At the
#: bottom rung a fidelity-scaled chunk is a couple hundred bytes — pure
#: latency, no bandwidth signal — and the estimate would anchor at current
#: usage instead of probing capacity (the fleet client documents the same
#: hazard).  Keeping every fetch at least a window keeps samples honest,
#: so recovery upcalls actually fire when the link comes back.
MIN_PROBE_BYTES = CHUNK_WINDOW_BYTES

#: Disconnected-mode cache capacity (enough for the recent chunk per rung).
CACHE_CAPACITY_BYTES = 256 * 1024


class FidelityProfile:
    """An app's fidelity ladder: named rungs mapping to demand fractions."""

    def __init__(self, app, fidelities):
        if not fidelities:
            raise BrokerError(f"profile {app!r} has no fidelity levels")
        self.app = app
        #: fraction -> name, ascending by fraction.
        self.names = {float(level): name
                      for name, level in fidelities.items()}
        self.levels = tuple(sorted(self.names))

    def name_of(self, level):
        return self.names[level]

    def __repr__(self):
        return f"<FidelityProfile {self.app} levels={self.levels}>"


def video_profile():
    """The video player's ladder (paper §5.1): bw / jpeg50 / jpeg99."""
    return FidelityProfile("video", VideoWarden.FIDELITIES)


def web_profile():
    """The web cellophane's ladder (paper §5.2): JPEG distillation rungs."""
    return FidelityProfile(
        "web", {name: level for level, (name, _) in WEB_IMAGE_LEVELS.items()})


PROFILES = {"video": video_profile, "web": web_profile}


class LiveWarden:
    """One adaptive application loop over a live broker connection."""

    def __init__(self, host, port, name, profile=None,
                 chunk_bytes=DEFAULT_CHUNK_BYTES, period=DEFAULT_PERIOD,
                 window_bytes=CHUNK_WINDOW_BYTES,
                 fragment_bytes=CHUNK_FRAGMENT_BYTES,
                 probe_interval=None, clock=None):
        self.profile = profile or video_profile()
        self.name = name
        self.chunk_bytes = chunk_bytes
        self.period = period
        self.window_bytes = window_bytes
        self.fragment_bytes = fragment_bytes
        self.probe_interval = probe_interval
        self.client = BrokerClient(host, port, name, clock=clock)
        self.clock = self.client.clock
        self.receiver = BulkReceiver(self.client)
        self.cache = WardenCache(CACHE_CAPACITY_BYTES,
                                 clock=self.clock.now, name=name)
        self.prober = None
        self.transfer_id = None
        self.request_id = None
        self.fidelity = self.profile.levels[-1]  # optimistic, like the paper
        self.fidelity_log = []  # (time, fraction, name)
        self.connectivity_log = []  # Transition records
        self.upcalls_received = 0
        self.renegotiations = 0
        self.rejections = 0
        self.chunks = 0
        self.bytes_fetched = 0
        self.stalls = 0
        self.failures = 0
        self.cache_chunks = 0  # chunks served stale while offline
        self.reintegrations = 0
        self._needs_register = False
        self._pending_level = None
        self._log_fidelity(self.fidelity)

    # -- ladder arithmetic (the fleet client's, on profile fractions) --------

    def demand(self, fidelity):
        """Bandwidth (bytes/s) one chunk cadence consumes at ``fidelity``."""
        return fidelity * self.chunk_bytes / self.period

    def best_level_for(self, bandwidth):
        """Highest sustainable rung (optimistic when no estimate yet)."""
        levels = self.profile.levels
        if bandwidth is None:
            return levels[-1]
        for level in reversed(levels):
            if self.demand(level) <= bandwidth:
                return level
        return levels[0]

    def window_for_level(self, level):
        levels = self.profile.levels
        index = levels.index(level)
        lower = 0.0 if index == 0 else self.demand(level) * LOWER_GUARD
        upper = 1e12 if level == levels[-1] \
            else self.demand(levels[index + 1]) * UPPER_GUARD
        return lower, upper

    def _log_fidelity(self, level):
        self.fidelity = level
        self.fidelity_log.append(
            (self.clock.now(), level, self.profile.name_of(level)))

    def _set_fidelity(self, level):
        if level != self.fidelity:
            self._log_fidelity(level)
            rec = telemetry.RECORDER
            if rec.enabled:
                rec.count("live.fidelity_changes", client=self.name,
                          level=self.profile.name_of(level))

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Connect, open the content stream, start probing, register."""
        await self.client.connect()
        self.client.on_upcall(self._on_upcall)
        self.client.tracker.subscribe(self._on_connectivity)
        interval = self.probe_interval
        if interval is None:
            # Keepalive duty: stay well inside the broker's reaper budget.
            interval = max(self.client.heartbeat_seconds / 4.0, 0.05)
        self.prober = AsyncHeartbeatProber(self.client,
                                           interval=interval).start()
        # One endless source blob; chunks are windows into it.
        self.transfer_id = await self.receiver.open(
            f"{self.profile.app}/{self.name}", 1 << 40)
        await self._register(level_hint=None)
        return self

    async def stop(self):
        if self.prober is not None:
            await self.prober.stop()
        await self.client.close()

    # -- negotiation ---------------------------------------------------------

    async def _register(self, level_hint):
        """Register a window around the best rung for ``level_hint``.

        A structured rejection (the live broker's ToleranceError twin)
        re-anchors on the broker's reported availability; each retry can
        only move down a finite ladder, so the loop terminates.
        """
        level = self.best_level_for(level_hint)
        for _ in range(len(self.profile.levels) + 1):
            lower, upper = self.window_for_level(level)
            reply = await self.client.call(REQUEST_OP, {
                "resource": "bandwidth", "lower": lower, "upper": upper,
            })
            if not reply.get("rejected"):
                self.request_id = reply["request_id"]
                self._set_fidelity(level)
                return
            self.rejections += 1
            level = self.best_level_for(reply["available"])
        raise BrokerError(f"{self.name}: could not place a window on the "
                          f"ladder {self.profile.levels}")

    def _on_upcall(self, body):
        """Window violated: adapt now, re-register at the chunk boundary."""
        self.upcalls_received += 1
        level = body.get("level")
        self._pending_level = level
        self._needs_register = True
        self.request_id = None  # one-shot: the broker already dropped it
        if level is not None:
            self._set_fidelity(self.best_level_for(level))

    def _on_connectivity(self, transition):
        self.connectivity_log.append(transition)
        if (transition.source is ConnState.RECONNECTING
                and transition.target is ConnState.CONNECTED):
            # Reintegration: the window registered before the outage may
            # be gone (or stale); negotiate afresh before fetching.
            self.reintegrations += 1
            self._needs_register = True
            self._pending_level = None

    # -- the adaptive loop ----------------------------------------------------

    async def run(self, seconds):
        """Fetch on cadence for ``seconds``, adapting as upcalls arrive."""
        deadline = self.clock.now() + seconds
        next_due = self.clock.now()
        while self.clock.now() < deadline:
            await self._cycle()
            next_due += self.period
            now = self.clock.now()
            if next_due > now:
                await self.clock.sleep(min(next_due - now, deadline - now))
            else:
                next_due = now

    async def _cycle(self):
        """One chunk period: fetch (or serve stale), note the outcome."""
        if self.client.tracker.offline:
            # Disconnected mode: degraded service from the cache, no
            # network traffic (the prober alone re-establishes trust).
            self.cache_chunks += 1
            self.cache.get(("chunk", self.fidelity))
            return
        if self.client.closed:
            self.failures += 1
            return
        try:
            if self._needs_register:
                self._needs_register = False
                self.renegotiations += 1
                await self._register(level_hint=self._pending_level)
            started = self.clock.now()
            # A small control exchange per cycle: its latency is the R
            # sample of Eq. 2 (the sim protocol logs it passively; the
            # live client reports it explicitly).
            latency = await self.client.ping()
            await self.client.call(REPORT_OP, {
                "kind": "round_trip", "seconds": max(latency, 1e-6),
            })
            nbytes = max(int(self.chunk_bytes * self.fidelity),
                         min(MIN_PROBE_BYTES, self.chunk_bytes), 1)
            result = await self.receiver.fetch(
                self.transfer_id, nbytes,
                window_bytes=self.window_bytes,
                fragment_bytes=self.fragment_bytes,
            )
            elapsed = self.clock.now() - started
            self.chunks += 1
            self.bytes_fetched += result.nbytes
            if elapsed > self.period:
                self.stalls += 1
            self.cache.put(("chunk", self.fidelity), self.clock.now(),
                           max(1, result.nbytes))
        except (RpcTimeout, TransportError, RemoteCallError, BrokerError):
            # A dead spot ate the exchange; the tracker (fed by the call
            # machinery and the prober) owns the connectivity judgement —
            # the warden records the miss and keeps its cadence.
            self.failures += 1

    # -- reductions -----------------------------------------------------------

    @property
    def fidelity_changes(self):
        """Number of rung changes after the initial optimistic choice."""
        return max(0, len(self.fidelity_log) - 1)

    def describe(self):
        return {
            "client": self.name,
            "app": self.profile.app,
            "fidelity": self.profile.name_of(self.fidelity),
            "fidelity_changes": self.fidelity_changes,
            "upcalls_received": self.upcalls_received,
            "renegotiations": self.renegotiations,
            "rejections": self.rejections,
            "chunks": self.chunks,
            "bytes_fetched": self.bytes_fetched,
            "stalls": self.stalls,
            "failures": self.failures,
            "cache_chunks": self.cache_chunks,
            "reintegrations": self.reintegrations,
            "connectivity": str(self.client.tracker.state),
        }
