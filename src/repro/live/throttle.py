"""Synthetic link shaping inside the live broker (no ``tc`` required).

The live demo needs the one thing a loopback socket cannot give it: a
link whose capacity *changes*.  Rather than reach for kernel traffic
control, the broker paces its own bulk stream through a :class:`Throttle`
— a model of one serial downlink shared by every transfer, whose rate at
any instant comes from a :class:`~repro.trace.replay.ReplayTrace` (the
same waveform objects the simulator modulates its links with) or a
constant.

The model is the simulator's :class:`~repro.net.link.SimplexLink`
translated to wall time: the link is busy transmitting one fragment at a
time, a fragment of ``n`` bytes holds it for ``n / rate`` seconds, and
concurrent transfers queue — so N clients fetching at once each observe
roughly ``rate / N``, which is exactly the contention the viceroy's
:class:`~repro.estimation.share.ClientShares` arbitration exists to split
fairly.  A zero-rate segment (a blackout) parks the virtual link until
the trace comes back, stalling every transfer through it.
"""

from repro.errors import BrokerError
from repro.rpc.clock import MonotonicClock

#: How far ``acquire`` steps through a zero-rate (blackout) stretch while
#: looking for the next transmitting instant, seconds.
DEAD_ZONE_STEP = 0.05


class Throttle:
    """A wall-clock serial link: fragments acquire it one at a time."""

    def __init__(self, bandwidth=None, trace=None, clock=None, loop=True):
        if (bandwidth is None) == (trace is None):
            raise BrokerError("Throttle needs exactly one of "
                              "bandwidth= or trace=")
        if bandwidth is not None and bandwidth <= 0:
            raise BrokerError(f"throttle bandwidth must be positive, "
                              f"got {bandwidth!r}")
        self.bandwidth = bandwidth
        self.trace = trace
        #: Replay the trace cyclically (a finite waveform drives an
        #: arbitrarily long demo); ``False`` holds the last segment's rate.
        self.loop = loop
        self.clock = clock or MonotonicClock()
        self.started = self.clock.now()
        self._free_at = self.started
        self.bytes_shaped = 0
        self.fragments_shaped = 0

    def rate_at(self, elapsed):
        """Link capacity ``elapsed`` seconds into the run, bytes/s."""
        if self.trace is None:
            return self.bandwidth
        duration = self.trace.duration
        if self.loop and elapsed >= duration:
            elapsed = elapsed % duration
        return self.trace.bandwidth_at(min(elapsed, duration))

    def rate_now(self):
        """Current link capacity, bytes/s."""
        return self.rate_at(self.clock.now() - self.started)

    async def acquire(self, nbytes):
        """Hold the link for ``nbytes`` worth of transmission time.

        Returns once the virtual link has finished "transmitting" the
        fragment; concurrent acquirers serialize through ``_free_at``
        exactly like packets queueing on a modem.
        """
        now = self.clock.now()
        start = max(now, self._free_at)
        rate = self.rate_at(start - self.started)
        while rate <= 0:
            # A blackout segment: walk forward to the next instant the
            # trace transmits at all.
            start += DEAD_ZONE_STEP
            rate = self.rate_at(start - self.started)
        self._free_at = start + nbytes / rate
        self.bytes_shaped += nbytes
        self.fragments_shaped += 1
        delay = self._free_at - now
        if delay > 0:
            await self.clock.sleep(delay)


def square_wave(high, low, phase_seconds, latency=0.002):
    """A cycling high/low bandwidth trace for the live demo.

    One period is ``high`` for ``phase_seconds`` then ``low`` for
    ``phase_seconds``; the :class:`Throttle` loops it, so a demo of any
    duration sees repeated step-down *and* step-up transitions — each one
    a forced adaptation in some direction for every connected client.
    """
    from repro.trace.replay import ReplayTrace, Segment

    if high <= 0 or low <= 0:
        raise BrokerError(f"square wave rates must be positive, "
                          f"got high={high!r} low={low!r}")
    if phase_seconds <= 0:
        raise BrokerError(f"square wave phase must be positive, "
                          f"got {phase_seconds!r}")
    return ReplayTrace(
        [Segment(phase_seconds, high, latency),
         Segment(phase_seconds, low, latency)],
        name=f"live-square-{high:g}-{low:g}",
    )
