"""Receiver-driven bulk transfer over the live broker (paper §6.3).

The sim's RPC protocol models windowed bulk transfer; this module runs
the same shape over real sockets:

- the client *opens* a named blob (``__open__``, an ordinary call) and
  learns its transfer id and size;
- it then pulls the payload one **window** at a time: a
  :class:`~repro.rpc.messages.WindowRequest` frame asks for
  ``window_bytes`` starting at an offset, and the broker answers with a
  train of :class:`~repro.rpc.messages.Fragment` frames, the last one
  flagged ``last_in_window`` (and ``last_in_transfer`` at the end);
- every fragment the broker sends passes through the shared
  :class:`~repro.live.throttle.Throttle` (the synthetic link) and then
  ``await drain()`` — real TCP backpressure, so a slow or stalled
  receiver stops the sender instead of ballooning the send buffer;
- the receiver reports each fragment's bytes (``delivery``) and each
  completed window's elapsed time (``throughput``) via ``__report__`` —
  the same passive samples the sim protocol logs as a side effect of
  traffic — which is what keeps the live viceroy's estimate honest.

Fragments are *sized, not serialized*: like the sim's messages they
carry byte counts rather than payloads, so the wire cost is a frame
header and the transfer's timing comes from the throttle.  (The paper's
measurements care about when bytes arrive, not what they spell.)
"""

import asyncio
import itertools

from repro import telemetry
from repro.broker.server import REPORT_OP
from repro.errors import BrokerError, RpcTimeout
from repro.rpc.messages import Fragment, WindowRequest

#: Ordinary call that registers a blob for pulling: body
#: ``{"name": str, "nbytes": int}`` -> ``{"transfer_id": int, "nbytes": int}``.
OPEN_OP = "__open__"

#: Default shape of a pull: how much one WindowRequest asks for, and how
#: the broker fragments it on the way back.
DEFAULT_WINDOW_BYTES = 64 * 1024
DEFAULT_FRAGMENT_BYTES = 8 * 1024

#: Receiver-side patience for the next fragment, seconds.  Spans a
#: blackout phase of the demo throttle with room to spare.
FRAGMENT_TIMEOUT = 30.0


class BulkServerMixin:
    """Bulk-transfer plane for a broker: ``__open__`` plus window streaming.

    Mixed in ahead of :class:`~repro.broker.Broker`; the host class calls
    :meth:`_init_bulk` from ``__init__`` and provides ``self.throttle``
    (a :class:`~repro.live.throttle.Throttle` or ``None`` for unshaped).
    """

    def _init_bulk(self):
        self._contents = {}  # transfer_id -> (name, nbytes)
        self._transfer_ids = itertools.count(1)
        self._bulk_seq = itertools.count(1)
        self._stream_tasks = {}  # session -> set of streaming tasks
        self.transfers_opened = 0
        self.windows_streamed = 0
        self.fragments_streamed = 0
        self.bulk_bytes_streamed = 0
        self.streams_aborted = 0
        self.register(OPEN_OP, self._open_content)

    def _open_content(self, body):
        body = body or {}
        try:
            nbytes = int(body["nbytes"])
        except (TypeError, KeyError, ValueError) as exc:
            raise BrokerError(f"{OPEN_OP} requires integer 'nbytes'") from exc
        if nbytes < 0:
            raise BrokerError(f"content size must be >= 0, got {nbytes}")
        transfer_id = next(self._transfer_ids)
        self._contents[transfer_id] = (body.get("name", ""), nbytes)
        self.transfers_opened += 1
        return {"transfer_id": transfer_id, "nbytes": nbytes}

    # -- inbound stream frames ------------------------------------------------

    def _on_stream(self, session, message):
        if isinstance(message, WindowRequest):
            if message.transfer_id not in self._contents:
                # A window against nothing we opened is a protocol
                # violation, same as any other unexpected frame.
                return super()._on_stream(session, message)
            task = asyncio.ensure_future(
                self._stream_window(session, message))
            tasks = self._stream_tasks.setdefault(session, set())
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            return
        super()._on_stream(session, message)

    async def _stream_window(self, session, request):
        """Send one window of fragments, throttle-paced and drain-gated."""
        _, total = self._contents[request.transfer_id]
        # An offset at (or past) the end is a legitimate race, not a
        # violation: the reply is one empty terminal fragment.
        offset = min(max(0, request.offset), total)
        end = min(total, offset + max(0, request.window_bytes))
        fragment_bytes = max(1, request.fragment_bytes)
        rec = telemetry.RECORDER
        try:
            while True:
                size = min(fragment_bytes, end - offset)
                last_in_window = offset + size >= end
                last_in_transfer = offset + size >= total
                if self.throttle is not None and size > 0:
                    await self.throttle.acquire(size)
                if session.closed:
                    return
                session.channel.send(Fragment(
                    connection_id="broker", seq=next(self._bulk_seq),
                    transfer_id=request.transfer_id, offset=offset,
                    nbytes=size, last_in_window=last_in_window,
                    last_in_transfer=last_in_transfer,
                ))
                # The backpressure point: a receiver that stops reading
                # parks the stream here until its socket drains.
                await session.channel.drain()
                self.fragments_streamed += 1
                self.bulk_bytes_streamed += size
                if rec.enabled:
                    rec.count("live.fragments", client=session.name)
                offset += size
                if last_in_window:
                    break
            self.windows_streamed += 1
        except asyncio.CancelledError:
            self.streams_aborted += 1
            raise
        except Exception:  # noqa: BLE001 - a dead receiver ends its own stream
            self.streams_aborted += 1
            if rec.enabled:
                rec.count("live.streams_aborted", client=session.name)

    # -- teardown -------------------------------------------------------------

    def _abort_session_transfers(self, session):
        for task in self._stream_tasks.pop(session, ()):
            task.cancel()

    async def _close_bulk(self):
        tasks = [t for tasks in self._stream_tasks.values() for t in tasks]
        self._stream_tasks.clear()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def describe_bulk(self):
        return {
            "transfers_opened": self.transfers_opened,
            "windows_streamed": self.windows_streamed,
            "fragments_streamed": self.fragments_streamed,
            "bytes_streamed": self.bulk_bytes_streamed,
            "streams_aborted": self.streams_aborted,
        }


class TransferResult:
    """What one :meth:`BulkReceiver.fetch` observed."""

    __slots__ = ("transfer_id", "nbytes", "windows", "fragments",
                 "seconds", "levels")

    def __init__(self, transfer_id):
        self.transfer_id = transfer_id
        self.nbytes = 0
        self.windows = 0
        self.fragments = 0
        self.seconds = 0.0
        #: Availability estimate returned after each window's throughput
        #: report (None entries predate the first sample).
        self.levels = []

    @property
    def rate(self):
        """Observed end-to-end rate, bytes/s."""
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0

    @property
    def level(self):
        """The viceroy's latest availability estimate for this client."""
        return self.levels[-1] if self.levels else None

    def __repr__(self):
        return (f"<TransferResult id={self.transfer_id} "
                f"bytes={self.nbytes} windows={self.windows} "
                f"rate={self.rate:.0f}B/s>")


class BulkReceiver:
    """Receiver-driven pulls over one :class:`~repro.broker.BrokerClient`.

    Installs itself as the client's stream handler; fragments route to
    per-transfer queues, so concurrent fetches of different transfers
    interleave safely on one connection.
    """

    def __init__(self, client):
        self.client = client
        self._queues = {}  # transfer_id -> asyncio.Queue of Fragment
        self._seq = itertools.count(1)
        client.on_stream(self._on_frame)

    def _on_frame(self, message):
        if isinstance(message, Fragment):
            queue = self._queues.get(message.transfer_id)
            if queue is not None:
                queue.put_nowait(message)
        # Anything else: not ours; the request/response plane already
        # handled CallRequest/CallResponse before we were consulted.

    async def open(self, name, nbytes):
        """Register a blob with the broker; returns its transfer id."""
        reply = await self.client.call(OPEN_OP,
                                       {"name": name, "nbytes": nbytes})
        return reply["transfer_id"]

    async def fetch(self, transfer_id, nbytes,
                    window_bytes=DEFAULT_WINDOW_BYTES,
                    fragment_bytes=DEFAULT_FRAGMENT_BYTES,
                    report=True, timeout=FRAGMENT_TIMEOUT):
        """Pull ``nbytes`` of an opened transfer, window by window.

        With ``report=True`` (the default) every fragment's arrival and
        every window's elapsed time go back as ``__report__`` estimation
        samples — the passive feed the live viceroy shares out.
        """
        if transfer_id in self._queues:
            raise BrokerError(f"transfer {transfer_id} already being fetched")
        queue = asyncio.Queue()
        self._queues[transfer_id] = queue
        result = TransferResult(transfer_id)
        clock = self.client.clock
        started = clock.now()
        try:
            offset = 0
            done = False
            while not done and offset < nbytes:
                window_started = clock.now()
                window_got = 0
                self.client.channel.send(WindowRequest(
                    connection_id=self.client.name, seq=next(self._seq),
                    transfer_id=transfer_id, offset=offset,
                    window_bytes=min(window_bytes, nbytes - offset),
                    fragment_bytes=fragment_bytes, reply_port="",
                ))
                while True:
                    try:
                        fragment = await asyncio.wait_for(
                            queue.get(), timeout)
                    except asyncio.TimeoutError:
                        raise RpcTimeout(
                            f"{self.client.name}: no fragment for transfer "
                            f"{transfer_id} within {timeout} s"
                        ) from None
                    window_got += fragment.nbytes
                    result.fragments += 1
                    if report and fragment.nbytes > 0:
                        await self.client.call(REPORT_OP, {
                            "kind": "delivery", "nbytes": fragment.nbytes,
                        })
                    if fragment.last_in_transfer:
                        done = True
                    if fragment.last_in_window:
                        break
                offset += window_got
                result.nbytes += window_got
                result.windows += 1
                elapsed = clock.now() - window_started
                if report and window_got > 0 and elapsed > 0:
                    reply = await self.client.call(REPORT_OP, {
                        "kind": "throughput", "seconds": elapsed,
                        "nbytes": window_got,
                    })
                    result.levels.append(reply.get("level"))
                if window_got == 0:
                    break  # empty terminal window (offset past the end)
            result.seconds = clock.now() - started
            return result
        finally:
            self._queues.pop(transfer_id, None)
