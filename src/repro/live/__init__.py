"""The live adaptation stack: viceroy and wardens on real sockets.

Everything the simulator validates — Eq. 1/2 estimation,
:class:`~repro.estimation.share.ClientShares` arbitration, windows of
tolerance, one-shot violation upcalls, the connectivity state machine —
runs here unmodified over the asyncio TCP transport and broker from
:mod:`repro.transport` / :mod:`repro.broker`.  The seam is deliberately
tiny: the estimation code reads time through
:class:`~repro.live.viceroy.WallSim` (a ``.now`` shim over a monotonic
clock) and the app loop speaks :class:`~repro.broker.BrokerClient`
instead of ``RpcConnection``; see docs/architecture.md §16.
"""

from repro.live.bulk import (
    BulkReceiver,
    BulkServerMixin,
    DEFAULT_FRAGMENT_BYTES,
    DEFAULT_WINDOW_BYTES,
    OPEN_OP,
    TransferResult,
)
from repro.live.demo import (
    LiveReport,
    format_live_report,
    run_live_demo,
)
from repro.live.throttle import Throttle, square_wave
from repro.live.viceroy import (
    BANDWIDTH_RESOURCE,
    LiveBroker,
    LiveViceroy,
    WallSim,
)
from repro.live.warden import (
    FidelityProfile,
    LiveWarden,
    PROFILES,
    video_profile,
    web_profile,
)

__all__ = [
    "BANDWIDTH_RESOURCE",
    "DEFAULT_FRAGMENT_BYTES",
    "DEFAULT_WINDOW_BYTES",
    "OPEN_OP",
    "PROFILES",
    "BulkReceiver",
    "BulkServerMixin",
    "FidelityProfile",
    "LiveBroker",
    "LiveReport",
    "LiveViceroy",
    "LiveWarden",
    "Throttle",
    "TransferResult",
    "WallSim",
    "format_live_report",
    "run_live_demo",
    "square_wave",
    "video_profile",
    "web_profile",
]
