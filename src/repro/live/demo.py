"""The live demo: one broker, N adapting clients, a square-wave link.

``repro live`` runs the whole stack in one process on real sockets: a
:class:`~repro.live.viceroy.LiveBroker` whose bulk plane is paced by a
:class:`~repro.live.throttle.Throttle` replaying a high/low square wave,
and N :class:`~repro.live.warden.LiveWarden` loops (alternating video
and web fidelity profiles) fetching on cadence.  Every phase flip of the
wave forces an adaptation in some direction — estimate moves, window
violated, upcall pushed, fidelity changed, window re-registered — which
is the paper's agility loop end to end over TCP.

The run is *checked*, not just shown: :class:`LiveReport.ok` fails on

- **lost upcalls** — the broker pushed a violation some client never
  received, or a pushed upcall was never acknowledged;
- **stuck adaptation** — a client that saw no upcall, never changed
  fidelity, or never re-registered (no full adaptation cycle);
- **failed exchanges** — any client cycle lost to timeout or transport
  death on a healthy loopback link;
- **dirty shutdown** — sessions still registered with the broker after
  every client has politely closed.

The live-smoke CI job runs exactly this and hard-fails on a non-zero
exit, so the adaptation loop staying alive end to end is a gate, not a
demo-only claim.
"""

import asyncio

from repro.live.throttle import Throttle, square_wave
from repro.live.viceroy import LiveBroker
from repro.live.warden import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_PERIOD,
    LiveWarden,
    video_profile,
    web_profile,
)

#: Per-client link budget of the square wave's two phases, bytes/s.  High
#: comfortably sustains the top rung (demand = chunk/period = 64 KB/s);
#: low sits between the bottom two rungs, forcing a downshift.
HIGH_PER_CLIENT = 80_000
LOW_PER_CLIENT = 8_000

#: Phases per run: high -> low -> high, so every client sees at least one
#: forced downshift and one forced upshift opportunity.
PHASES = 3

#: Settle time after the fetch loops stop, before counters are read:
#: in-flight upcalls and their acks get to land.
GRACE_SECONDS = 0.3


class LiveReport:
    """Everything one demo run observed, plus the pass/fail judgement."""

    def __init__(self, clients, seconds, high, low):
        self.clients = clients
        self.seconds = seconds
        self.high = high
        self.low = low
        self.wardens = []  # per-client describe() dicts
        self.broker = {}  # broker describe() snapshot
        self.sessions_left = 0
        self.problems = []

    @property
    def upcalls_received(self):
        return sum(w["upcalls_received"] for w in self.wardens)

    @property
    def ok(self):
        return not self.problems

    def check(self):
        """Populate :attr:`problems` from the collected snapshots."""
        sent = self.broker.get("upcalls_sent", 0)
        acked = self.broker.get("upcalls_acked", 0)
        if self.upcalls_received != sent:
            self.problems.append(
                f"lost upcalls: broker sent {sent}, clients received "
                f"{self.upcalls_received}")
        if acked != sent:
            self.problems.append(
                f"unacked upcalls: {sent} sent, {acked} acknowledged")
        if sent == 0:
            self.problems.append("stuck adaptation: no upcalls at all")
        for warden in self.wardens:
            name = warden["client"]
            if warden["upcalls_received"] == 0:
                self.problems.append(f"{name}: no upcall received")
            if warden["fidelity_changes"] == 0:
                self.problems.append(f"{name}: fidelity never changed")
            if warden["renegotiations"] == 0:
                self.problems.append(f"{name}: never re-registered")
            if warden["failures"]:
                self.problems.append(
                    f"{name}: {warden['failures']} failed exchanges")
        if self.sessions_left:
            self.problems.append(
                f"dirty shutdown: {self.sessions_left} sessions still "
                f"registered after close")
        return self

    def to_dict(self):
        return {
            "clients": self.clients,
            "seconds": self.seconds,
            "high_per_client": self.high,
            "low_per_client": self.low,
            "ok": self.ok,
            "problems": list(self.problems),
            "wardens": list(self.wardens),
            "broker": dict(self.broker),
        }


async def run_live_demo(clients=4, seconds=3.0,
                        chunk_bytes=DEFAULT_CHUNK_BYTES,
                        period=DEFAULT_PERIOD,
                        high_per_client=HIGH_PER_CLIENT,
                        low_per_client=LOW_PER_CLIENT,
                        on_transition=None):
    """Run the demo; returns a checked :class:`LiveReport`.

    ``on_transition(name, when, level, rung)`` is called for each
    fidelity change as it happens (the CLI logs these live).
    """
    phase = max(seconds / PHASES, 0.1)
    throttle = Throttle(trace=square_wave(high=clients * high_per_client,
                                          low=clients * low_per_client,
                                          phase_seconds=phase))
    broker = await LiveBroker(throttle=throttle).start()
    host, port = broker.address
    report = LiveReport(clients, seconds,
                        high_per_client, low_per_client)
    wardens = []
    try:
        for index in range(clients):
            profile = video_profile() if index % 2 == 0 else web_profile()
            warden = LiveWarden(host, port, f"live-{index}",
                                profile=profile, chunk_bytes=chunk_bytes,
                                period=period)
            if on_transition is not None:
                _tail_fidelity(warden, on_transition)
            wardens.append(warden)
            await warden.start()
        await asyncio.gather(*(w.run(seconds) for w in wardens))
        await asyncio.sleep(GRACE_SECONDS)
        report.wardens = [w.describe() for w in wardens]
        report.broker = broker.describe()
    finally:
        for warden in wardens:
            await warden.stop()
        report.sessions_left = broker.describe()["clients"]
        await broker.close()
    return report.check()


def _tail_fidelity(warden, on_transition):
    """Wrap the warden's fidelity logger to narrate changes live."""
    inner = warden._set_fidelity

    def narrate(level):
        before = warden.fidelity
        inner(level)
        if warden.fidelity != before:
            at, fraction, rung = warden.fidelity_log[-1]
            on_transition(warden.name, at, fraction, rung)

    warden._set_fidelity = narrate


def format_live_report(report):
    """Human-readable summary for the CLI."""
    lines = [
        f"live demo: {report.clients} clients, {report.seconds:g} s, "
        f"link {report.high}/{report.low} B/s per client "
        f"({PHASES} phases)",
        "",
        f"  {'client':<10} {'app':<6} {'fidelity':<10} {'chg':>3} "
        f"{'upcalls':>7} {'reneg':>5} {'chunks':>6} {'kB':>7} "
        f"{'stalls':>6} {'fail':>4}",
    ]
    for w in report.wardens:
        lines.append(
            f"  {w['client']:<10} {w['app']:<6} {w['fidelity']:<10} "
            f"{w['fidelity_changes']:>3} {w['upcalls_received']:>7} "
            f"{w['renegotiations']:>5} {w['chunks']:>6} "
            f"{w['bytes_fetched'] / 1024:>7.1f} {w['stalls']:>6} "
            f"{w['failures']:>4}")
    broker = report.broker
    lines.append("")
    lines.append(
        f"  broker: {broker.get('calls_served', 0)} calls, "
        f"{broker.get('upcalls_sent', 0)} upcalls sent / "
        f"{broker.get('upcalls_acked', 0)} acked, "
        f"bulk {broker.get('bulk', {}).get('bytes_streamed', 0) / 1024:.0f} kB "
        f"in {broker.get('bulk', {}).get('fragments_streamed', 0)} fragments")
    estimation = broker.get("estimation", {})
    total = estimation.get("total")
    if total:
        lines.append(f"  final total estimate: {total / 1024:.1f} kB/s "
                     f"({estimation.get('reports_absorbed', 0)} reports)")
    lines.append("")
    if report.ok:
        lines.append("OK: every client completed at least one full "
                     "adaptation cycle; no upcalls lost")
    else:
        lines.append("FAILED:")
        lines.extend(f"  - {problem}" for problem in report.problems)
    return "\n".join(lines)
