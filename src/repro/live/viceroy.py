"""The live viceroy: the paper's resource arbiter on wall-clock time.

Two pieces:

- :class:`LiveViceroy` — the estimation and window-of-tolerance engine.
  It is deliberately thin: per-client :class:`~repro.rpc.logs.RpcLog`
  observation logs feed the *unmodified*
  :class:`~repro.estimation.share.ClientShares` — the same Eq. 1/2
  smoothing, the same fair-share + competed split, the same rise-capped
  round trip — with one substitution: ``sim.now`` is a
  :class:`~repro.rpc.clock.MonotonicClock` behind a :class:`WallSim`
  shim.  Every estimation constant and code path that the seeded
  experiments validated runs verbatim here.

- :class:`LiveBroker` — a :class:`~repro.broker.Broker` subclass that
  serves the viceroy RPC surface over TCP.  ``__report__`` grows
  estimation kinds (``round_trip`` / ``delivery`` / ``throughput``
  samples, exactly the entries the sim RPC protocol appends as a side
  effect of traffic); ``__request__`` windows on the ``bandwidth``
  resource are checked against the *owning client's* estimated
  availability instead of a globally reported level; violations ride the
  broker's existing one-shot ``__upcall__`` push.  Plain ``level``
  reports and non-bandwidth resources keep the base broker's semantics,
  so every existing client (the loadtest included) runs unchanged
  against a live broker.

The bulk-transfer half of the live stack (``__open__`` +
``WindowRequest``/``Fragment`` streaming through the synthetic
:class:`~repro.live.throttle.Throttle`) lives in
:mod:`repro.live.bulk` and is mixed into :class:`LiveBroker` here.
"""

from repro import telemetry
from repro.broker.server import Broker, _Registration
from repro.errors import BrokerError
from repro.estimation.share import ClientShares
from repro.live.bulk import BulkServerMixin
from repro.rpc.clock import MonotonicClock
from repro.rpc.logs import RpcLog

#: The one resource the live viceroy estimates (per client).  Windows on
#: other resources fall back to the broker's reported-level semantics.
BANDWIDTH_RESOURCE = "bandwidth"

#: Modeled wire sizes for reported round trips (the live client reports
#: elapsed seconds; the log entry's byte fields only feed diagnostics).
REPORTED_CALL_BYTES = 256


class WallSim:
    """The narrowest possible ``sim`` stand-in: a ``now`` attribute.

    :class:`~repro.rpc.logs.RpcLog` and the estimators read exactly one
    thing from the simulator — the current time.  Backing that read with
    a monotonic clock is the entire sim-vs-live seam on the estimation
    path; everything downstream of ``.now`` is shared code.
    """

    __slots__ = ("clock",)

    def __init__(self, clock):
        self.clock = clock

    @property
    def now(self):
        return self.clock.now()


class LiveViceroy:
    """Per-client bandwidth estimation and availability on wall time."""

    def __init__(self, clock=None):
        self.clock = clock or MonotonicClock()
        self.wall_sim = WallSim(self.clock)
        self.shares = ClientShares(self.wall_sim)
        self._logs = {}  # client name -> RpcLog
        self.reports_absorbed = 0

    @property
    def clients(self):
        """Names of adopted clients."""
        return list(self._logs)

    def adopt(self, name):
        """Begin estimating for a connected client."""
        if name in self._logs:
            raise BrokerError(f"client {name!r} already adopted")
        log = RpcLog(self.wall_sim, name)
        self._logs[name] = log
        self.shares.register(log)
        # ClientShares *is* a log observer (on_round_trip/on_throughput);
        # the sim viceroy subscribes it per connection, and so do we.
        log.subscribe(self.shares)

    def abandon(self, name):
        """Forget a departed client's log and estimator state."""
        log = self._logs.pop(name, None)
        if log is not None:
            log.unsubscribe(self.shares)
            self.shares.unregister(name)

    # -- the __report__ estimation feed --------------------------------------

    def absorb(self, name, body):
        """One estimation sample from ``name``; returns its availability.

        Sample kinds mirror the entries the sim RPC protocol logs:

        - ``{"kind": "round_trip", "seconds": r}`` — one small exchange's
          elapsed time (request out to first byte back), the R of Eq. 2;
        - ``{"kind": "delivery", "nbytes": n}`` — payload bytes that just
          arrived (one bulk fragment), the aggregate-capacity raw signal;
        - ``{"kind": "throughput", "seconds": t, "nbytes": n}`` — one
          completed bulk window: n bytes over t seconds, the W/T of Eq. 2.
        """
        log = self._logs.get(name)
        if log is None:
            raise BrokerError(f"no adopted client {name!r}")
        kind = body.get("kind")
        try:
            if kind == "round_trip":
                log.add_round_trip(float(body["seconds"]),
                                   REPORTED_CALL_BYTES, REPORTED_CALL_BYTES)
            elif kind == "delivery":
                log.add_delivery(int(body["nbytes"]))
            elif kind == "throughput":
                seconds = float(body["seconds"])
                if seconds <= 0:
                    raise BrokerError(
                        f"throughput sample needs positive seconds, "
                        f"got {seconds!r}")
                # The log computes T as now - started; the client measured
                # T directly, so anchor the window back from its arrival.
                log.add_throughput(self.wall_sim.now - seconds,
                                   int(body["nbytes"]))
            else:
                raise BrokerError(f"unknown report kind {kind!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise BrokerError(f"malformed {kind!r} report: {exc}") from exc
        self.reports_absorbed += 1
        return self.availability(name)

    # -- queries --------------------------------------------------------------

    def availability(self, name):
        """Bandwidth likely available to ``name`` (bytes/s, None before
        any throughput sample) — the ClientShares split, unmodified."""
        if name not in self._logs:
            return None
        return self.shares.availability(name)

    def total(self):
        """The smoothed total-capacity estimate (None before data)."""
        return self.shares.total

    def describe(self):
        """Availability snapshot keyed by client (diagnostics)."""
        return {
            "total": self.total(),
            "clients": {name: self.availability(name)
                        for name in self._logs},
            "reports_absorbed": self.reports_absorbed,
        }


class LiveBroker(BulkServerMixin, Broker):
    """A broker whose viceroy surface runs on estimated availability.

    Everything the base :class:`~repro.broker.Broker` does — handshake,
    namespaces, relays, heartbeat reaping, socket-death teardown — is
    inherited untouched.  This subclass adds:

    - a :class:`LiveViceroy` fed by ``__report__`` estimation samples;
    - ``bandwidth`` windows checked per owning client against estimated
      availability (registration-time rejection carries the available
      level, and every estimation report rechecks all bandwidth windows);
    - the bulk-transfer plane (``__open__`` plus ``WindowRequest`` →
      ``Fragment`` streaming with ``drain`` backpressure, shaped by a
      :class:`~repro.live.throttle.Throttle`).
    """

    def __init__(self, host="127.0.0.1", port=0, throttle=None, **kwargs):
        super().__init__(host=host, port=port, **kwargs)
        self.viceroy = LiveViceroy(clock=self.clock)
        self.throttle = throttle
        self._init_bulk()

    # -- session lifecycle hooks ----------------------------------------------

    def _adopt(self, session):
        self.viceroy.adopt(session.name)

    def _abandon(self, session):
        self._abort_session_transfers(session)
        if session.name is not None:
            self.viceroy.abandon(session.name)

    async def close(self):
        await self._close_bulk()
        await super().close()

    # -- the viceroy RPC surface ----------------------------------------------

    def _request(self, session, request):
        body = request.body or {}
        resource = (body.get("resource", BANDWIDTH_RESOURCE)
                    if isinstance(body, dict) else BANDWIDTH_RESOURCE)
        if resource != BANDWIDTH_RESOURCE:
            return super()._request(session, request)
        try:
            lower = float(body["lower"])
            upper = float(body["upper"])
        except (TypeError, KeyError, ValueError) as exc:
            raise BrokerError("__request__ requires numeric "
                              "lower/upper bounds") from exc
        if lower > upper:
            raise BrokerError(f"window [{lower}, {upper}] is inverted")
        level = self.viceroy.availability(session.name)
        if level is not None and not (lower <= level <= upper):
            # The live twin of ToleranceError: no registration, and the
            # caller learns the available level to re-request around.  A
            # structured reply (not an error) so adaptive clients can
            # renegotiate without string-matching error text.
            rec = telemetry.RECORDER
            if rec.enabled:
                rec.count("live.tolerance_rejections")
            self._respond(session, request,
                          body={"request_id": None, "rejected": True,
                                "available": level})
            return
        request_id = next(self._request_ids)
        registration = _Registration(request_id, session, resource,
                                     lower, upper)
        self._registrations[request_id] = registration
        session.registrations.add(request_id)
        self._respond(session, request,
                      body={"request_id": request_id, "available": level})

    def _report(self, session, request):
        body = request.body or {}
        if not (isinstance(body, dict) and "kind" in body):
            # A plain level report: the base broker's global semantics
            # (the loadtest and `repro connect` keep working unchanged).
            return super()._report(session, request)
        level = self.viceroy.absorb(session.name, body)
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("live.reports", kind=body.get("kind"),
                      client=session.name)
        upcalls = self._recheck_bandwidth()
        self._respond(session, request,
                      body={"resource": BANDWIDTH_RESOURCE, "level": level,
                            "upcalls": upcalls})

    def _recheck_bandwidth(self):
        """Re-check every bandwidth window against its owner's availability.

        One client's sample moves the shared total, and with it *every*
        client's split — exactly why the sim viceroy's
        ``recheck_bandwidth`` scans all bandwidth registrations.  Violated
        windows are dropped (one-shot) and upcalled with the level that
        broke them; the count of upcalls pushed is returned.
        """
        violated = []
        for registration in self._registrations.values():
            if registration.resource != BANDWIDTH_RESOURCE:
                continue
            level = self.viceroy.availability(registration.session.name)
            if level is None:
                continue
            if not registration.contains(level):
                violated.append((registration, level))
        for registration, level in violated:
            del self._registrations[registration.request_id]
            registration.session.registrations.discard(
                registration.request_id)
            self._push_upcall(registration, level)
        return len(violated)

    def describe(self):
        snapshot = super().describe()
        snapshot["estimation"] = self.viceroy.describe()
        snapshot["bulk"] = self.describe_bulk()
        return snapshot
