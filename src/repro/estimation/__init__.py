"""Bandwidth estimation and agility metrics (paper §6.1.1, §6.2.1).

Implements the viceroy's estimation machinery:

- :class:`EwmaFilter` — the paper's Eq. 1 smoothing, with the optional cap
  on per-estimate percentage rise used to discount round-trip anomalies.
- :class:`ConnectionEstimator` — per-endpoint estimate: smoothed round-trip
  time plus smoothed bandwidth derived via Eq. 2,
  ``B = W / (T - R/2)``.
- :class:`ClientShares` — the centralized model: total client bandwidth
  estimated from *all* logs (aggregate bytes moved during each observed
  window), split per connection into a competed-for part proportional to
  recent use plus a fair-share lower bound.
- :class:`BatchedEstimator` — the fleet-scale twin of :class:`EwmaFilter`:
  one vectorized Eq. 1 step across every connection in a shard,
  bit-identical to the scalar filter (numpy is scoped to this one module
  and optional — without it the lanes fall back to scalar filters).
- :mod:`repro.estimation.agility` — settling time, detection delay and
  tracking error: the metrics behind Figs. 8 and 9.

A note on Eq. 1's form: the paper prints ``new ← α·measured ⊕ old`` with
α = 0.75 (round trip) and 0.875 (throughput).  We weight the *measurement*
by α — the only reading consistent with the measured agility (a 2.0 s
Step-Down settling time is unreachable if 87.5 % of the old estimate is
retained per window).  EXPERIMENTS.md discusses the ambiguity.
"""

from repro.estimation.agility import (
    detection_delay,
    series_bounds,
    settling_time,
    time_in_band,
    tracking_error,
)
from repro.estimation.bandwidth import ConnectionEstimator
from repro.estimation.batch import BatchedEstimator
from repro.estimation.ewma import EwmaFilter
from repro.estimation.share import ClientShares

__all__ = [
    "BatchedEstimator",
    "ClientShares",
    "ConnectionEstimator",
    "EwmaFilter",
    "detection_delay",
    "series_bounds",
    "settling_time",
    "time_in_band",
    "tracking_error",
]
