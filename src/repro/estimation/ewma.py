"""Exponentially weighted smoothing with an optional rise cap (paper Eq. 1)."""

from repro.errors import ReproError


class EwmaFilter:
    """``new = gain * measured + (1 - gain) * old``.

    Parameters
    ----------
    gain:
        Weight on the new measurement, in (0, 1].  The paper uses 0.75 for
        round-trip times and 0.875 for throughput.
    rise_cap:
        If given, the filtered value may rise by at most this fraction per
        update ("we cap the percentage rise possible at each estimate").
        Falls are never capped — erring toward underestimation is the safe
        direction for bandwidth.
    rise_floor:
        Additive floor for the rise-cap base when the current value is at
        (or below) zero.  A multiplicative cap on a zero base is no cap at
        all — an estimate that hit 0 during a blackout would jump straight
        to the first post-recovery sample — so recovery is capped at
        ``max(value, rise_floor) * (1 + rise_cap)`` instead.  Only
        consulted when ``rise_cap`` is set and the value is <= 0; positive
        values cap exactly as before.
    initial:
        Starting value; if None, the first sample initializes the filter
        directly (uncapped).
    """

    def __init__(self, gain, rise_cap=None, rise_floor=1.0, initial=None):
        if not 0 < gain <= 1:
            raise ReproError(f"gain must be in (0, 1], got {gain!r}")
        if rise_cap is not None and rise_cap <= 0:
            raise ReproError(f"rise_cap must be positive, got {rise_cap!r}")
        if rise_floor <= 0:
            raise ReproError(f"rise_floor must be positive, got {rise_floor!r}")
        self.gain = gain
        self.rise_cap = rise_cap
        self.rise_floor = rise_floor
        self._value = initial
        self.updates = 0
        #: Updates where the rise cap clamped the candidate value.
        self.capped_rises = 0

    @property
    def value(self):
        """Current filtered value, or None before any sample."""
        return self._value

    @property
    def primed(self):
        """True once at least one sample has been absorbed."""
        return self._value is not None

    def update(self, sample):
        """Absorb ``sample``; returns the new filtered value."""
        if sample < 0:
            raise ReproError(f"negative sample {sample!r}")
        self.updates += 1
        if self._value is None:
            self._value = float(sample)
            return self._value
        candidate = self.gain * sample + (1.0 - self.gain) * self._value
        if self.rise_cap is not None:
            base = self._value if self._value > 0 \
                else max(self._value, self.rise_floor)
            ceiling = base * (1.0 + self.rise_cap)
            if candidate > ceiling:
                candidate = ceiling
                self.capped_rises += 1
        self._value = candidate
        return self._value

    def reset(self, value=None):
        """Forget history; optionally seed with ``value``."""
        self._value = value
        self.updates = 0
        self.capped_rises = 0
