"""Agility metrics (paper §6.1.1).

The paper characterizes agility the way control systems do: subject the
system to reference waveforms and measure properties of its response.  The
headline number is the **settling time** — "the time required to reach and
stay within the nominal bandwidth range" after a transition.

All functions take a *series*: an iterable of ``(time, value)`` pairs in
nondecreasing time order.
"""

import math

from repro.errors import ReproError


def _validate_series(series):
    series = list(series)
    for i in range(1, len(series)):
        if series[i][0] < series[i - 1][0]:
            raise ReproError("series times must be nondecreasing")
    return series


def series_bounds(target, tolerance=0.10):
    """The nominal band around ``target``: ``(lo, hi)``."""
    return target * (1.0 - tolerance), target * (1.0 + tolerance)


def settling_time(series, transition, target, tolerance=0.10, horizon=None):
    """Seconds after ``transition`` until the series enters — and stays in —
    the nominal band around ``target``.

    Only samples in ``[transition, horizon]`` are considered (``horizon``
    defaults to the last sample).  Returns ``math.inf`` if the series never
    settles; ``0.0`` if every post-transition sample is already in band.
    Raises if there are no samples after the transition.
    """
    series = _validate_series(series)
    lo, hi = series_bounds(target, tolerance)
    window = [(t, v) for (t, v) in series
              if t >= transition and (horizon is None or t <= horizon)]
    if not window:
        raise ReproError(f"no samples after transition t={transition!r}")
    settled_from = None
    for t, v in window:
        if lo <= v <= hi:
            if settled_from is None:
                settled_from = t
        else:
            settled_from = None
    if settled_from is None:
        return math.inf
    return settled_from - transition


def detection_delay(series, transition, old_level, new_level, fraction=0.5):
    """Seconds after ``transition`` until the estimate has moved ``fraction``
    of the way from ``old_level`` to ``new_level``.

    Measures the *leading edge* of the response (how fast a change is
    noticed), as distinct from full settling.  Returns ``math.inf`` if the
    threshold is never crossed.
    """
    if not 0 < fraction <= 1:
        raise ReproError(f"fraction must be in (0, 1], got {fraction!r}")
    series = _validate_series(series)
    threshold = old_level + fraction * (new_level - old_level)
    rising = new_level > old_level
    for t, v in series:
        if t < transition:
            continue
        if (rising and v >= threshold) or (not rising and v <= threshold):
            return t - transition
    return math.inf


def tracking_error(series, trace, start=None, end=None):
    """Mean absolute error between the series and the trace's true bandwidth.

    Each sample is compared against ``trace.bandwidth_at(t)``; the result is
    normalized by the trace's mean bandwidth over the interval, giving a
    unitless figure (0 = perfect tracking).
    """
    series = _validate_series(series)
    samples = [(t, v) for (t, v) in series
               if (start is None or t >= start) and (end is None or t <= end)]
    if not samples:
        raise ReproError("tracking_error: no samples in interval")
    abs_error = sum(abs(v - trace.bandwidth_at(t)) for t, v in samples)
    lo = start if start is not None else samples[0][0]
    hi = end if end is not None else samples[-1][0]
    scale = trace.mean_bandwidth(lo, max(hi, lo + 1e-9))
    if scale <= 0:
        raise ReproError("tracking_error: trace mean bandwidth is zero")
    return abs_error / len(samples) / scale


def time_in_band(series, target, tolerance=0.10, start=None, end=None):
    """Fraction of samples within the nominal band (coarse agility score)."""
    series = _validate_series(series)
    lo, hi = series_bounds(target, tolerance)
    samples = [v for (t, v) in series
               if (start is None or t >= start) and (end is None or t <= end)]
    if not samples:
        raise ReproError("time_in_band: no samples in interval")
    return sum(1 for v in samples if lo <= v <= hi) / len(samples)
