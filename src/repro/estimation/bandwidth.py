"""Per-connection bandwidth estimation (paper Eq. 2).

Each RPC endpoint gets a :class:`ConnectionEstimator` that consumes the
endpoint's log entries:

- round-trip entries update the smoothed round trip ``R`` (gain 0.75, with
  the anomaly rise cap);
- throughput entries yield a bandwidth sample ``W / (T - R/2)`` — the
  window time less the request/acknowledgement half-trip — smoothed with
  gain 0.875.

A record of every (time, estimate) pair is kept so experiments can plot the
estimate series exactly as the paper's Fig. 8 does.
"""

from collections import deque

from repro import telemetry
from repro.estimation.ewma import EwmaFilter

#: Measurement weight for round-trip smoothing (paper §6.2.1).
RTT_GAIN = 0.75
#: Measurement weight for throughput smoothing (paper §6.2.1).
THROUGHPUT_GAIN = 0.875
#: Maximum fractional rise of the round-trip estimate per update ("we cap
#: the percentage rise possible at each estimate", §6.2.1) — round trips
#: observed during self-congestion include queueing delay and would
#: otherwise blow up Eq. 2's denominator.
RTT_RISE_CAP = 0.10
#: Smallest effective transfer time, guards Eq. 2's denominator.
MIN_EFFECTIVE_SECONDS = 1e-4
#: A bandwidth sample may exceed the window's raw rate (W/T) by at most
#: this factor.  The Eq. 2 correction legitimately recovers up to ~2x on
#: latency-dominated small windows; anything above that means R has been
#: polluted by queueing and the sample is an anomaly.
MAX_CORRECTION_FACTOR = 2.0
#: Horizon for the windowed-minimum round trip used in Eq. 2, seconds.
BASE_RTT_HORIZON = 30.0


class ConnectionEstimator:
    """Smoothed round trip and bandwidth for a single endpoint."""

    def __init__(self, sim, connection_id=None,
                 rtt_gain=RTT_GAIN, throughput_gain=THROUGHPUT_GAIN,
                 rtt_rise_cap=RTT_RISE_CAP, eq2_rtt="base",
                 aggregate_own_log=True, batch=None):
        if eq2_rtt not in ("base", "smoothed"):
            raise ValueError(f"eq2_rtt must be 'base' or 'smoothed', got {eq2_rtt!r}")
        self.sim = sim
        self.connection_id = connection_id
        #: Which round trip Eq. 2 subtracts.  "base" (windowed minimum)
        #: resists queueing pollution and is what the centralized viceroy
        #: uses; "smoothed" is the naive per-log estimate — exactly the
        #: less-accurate isolation the laissez-faire baseline embodies.
        self.eq2_rtt = eq2_rtt
        #: Whether concurrent windows on the same endpoint are combined
        #: into one sample.  The naive estimator (laissez-faire) treats
        #: each window in isolation, so a pipelined endpoint undercounts.
        self.aggregate_own_log = aggregate_own_log
        self.rtt_filter = EwmaFilter(rtt_gain, rise_cap=rtt_rise_cap)
        self._history = []  # (time, bandwidth estimate)
        self._rtt_window = deque()  # (time, raw sample)
        # ``batch`` (a repro.estimation.batch.BatchedEstimator sharing this
        # estimator's throughput gain) moves the Eq. 1 throughput filter
        # into a vectorized lane: updates are deferred and folded across
        # the whole shard in array ops, bit-identical to the scalar filter.
        # The RTT side stays scalar — its windowed minimum is read on
        # every Eq. 2 sample, so there is nothing to defer.
        if batch is None:
            self.bandwidth_filter = EwmaFilter(throughput_gain)
            self._lane = None
        else:
            self.bandwidth_filter = batch.add_lane(history=self._history)
            self._lane = self.bandwidth_filter

    @property
    def round_trip(self):
        """Smoothed round-trip time in seconds (0.0 until primed)."""
        return self.rtt_filter.value or 0.0

    @property
    def base_round_trip(self):
        """Minimum round trip over the recent window (0.0 until primed).

        Round trips observed while the link is busy include queueing delay
        behind other transfers; using them in Eq. 2 would inflate bandwidth
        estimates without bound under sustained load.  The windowed minimum
        tracks the uncontended path latency instead — idle moments (between
        web fetches, speech pauses) refresh it with clean samples.
        """
        if not self._rtt_window:
            return self.round_trip
        return min(sample for _, sample in self._rtt_window)

    @property
    def bandwidth(self):
        """Smoothed bandwidth estimate in bytes/s, or None before any sample."""
        return self.bandwidth_filter.value

    @property
    def history(self):
        """(time, bandwidth estimate) pairs, one per throughput window.

        Under a batched lane the pairs materialize at flush time, so the
        lane is flushed before the list is handed out.
        """
        if self._lane is not None:
            self._lane.flush()
        return self._history

    def on_round_trip(self, log, entry):
        """Absorb a round-trip log entry."""
        capped_before = self.rtt_filter.capped_rises
        self.rtt_filter.update(entry.seconds)
        self._rtt_window.append((self.sim.now, entry.seconds))
        horizon = self.sim.now - BASE_RTT_HORIZON
        while self._rtt_window and self._rtt_window[0][0] < horizon:
            self._rtt_window.popleft()
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("estimation.rtt_updates", connection=self.connection_id)
            if self.rtt_filter.capped_rises > capped_before:
                # An anomalously long round trip (self-congestion queueing)
                # hit the §6.2.1 rise cap — the clamp is load-bearing for
                # Eq. 2, so each engagement is worth a trace line.
                rec.count("estimation.rtt_rise_capped",
                          connection=self.connection_id)
                rec.event("estimation.rise_cap",
                          connection=self.connection_id,
                          sample=entry.seconds, estimate=self.round_trip)

    def on_throughput(self, log, entry):
        """Absorb a throughput log entry; returns the new estimate.

        Under a batched lane the estimate is deferred and ``None`` is
        returned — unless telemetry is live, which forces the fold so the
        gauge carries the post-sample value.
        """
        estimate, sample = self._absorb_throughput(log, entry)
        rec = telemetry.RECORDER
        if rec.enabled:
            if estimate is None:
                estimate = self.bandwidth_filter.value  # flushes the lane
            span = rec.begin("estimator.update", connection=self.connection_id)
            rec.gauge("estimation.bandwidth_bytes_per_s", estimate,
                      connection=self.connection_id)
            rec.end(span, sample=sample, estimate=estimate,
                    window_bytes=entry.nbytes)
        return estimate

    def _absorb_throughput(self, log, entry):
        """The uninstrumented Eq. 1/2 update; returns (estimate, sample).

        Kept separate from :meth:`on_throughput` so the telemetry overhead
        benchmark can time the pure computation as its baseline.  With a
        batched lane the Eq. 1 fold (and the history append) is deferred
        to the next vectorized flush and the estimate slot is ``None``.
        """
        sample = self.bandwidth_sample(entry, log)
        lane = self._lane
        if lane is not None:
            lane.defer(self.sim.now, sample)
            return None, sample
        estimate = self.bandwidth_filter.update(sample)
        self._history.append((self.sim.now, estimate))
        return estimate, sample

    def bandwidth_sample(self, entry, log=None):
        """Eq. 2: instantaneous bandwidth from one window observation.

        The paper subtracts R/2 for the acknowledgement; our windows are
        receiver-driven, so the dead (non-transferring) time in T is a full
        round trip — request propagation up plus first-byte propagation
        down.  Subtracting only R/2 systematically underestimates small
        windows (a 3 KB video frame at 120 KB/s by ~30 %), badly enough
        that track upgrades never fire; subtracting R reproduces the
        paper's adaptation behaviour.  See EXPERIMENTS.md.

        When the endpoint's log is available, all of the endpoint's bytes
        delivered during the window interval are counted, not just the
        window's own — a connection that pipelines two windows (the video
        warden's read-ahead does) would otherwise see each at half rate.
        """
        round_trip = (self.base_round_trip if self.eq2_rtt == "base"
                      else self.round_trip)
        effective = max(entry.seconds - round_trip, MIN_EFFECTIVE_SECONDS)
        nbytes = entry.nbytes
        if log is not None and self.aggregate_own_log:
            nbytes = max(nbytes, log.bytes_delivered_between(entry.started, entry.at))
        raw_rate = nbytes / max(entry.seconds, MIN_EFFECTIVE_SECONDS)
        return min(nbytes / effective, MAX_CORRECTION_FACTOR * raw_rate)
