"""Vectorized EWMA estimation for fleet-scale shards.

:mod:`repro.estimation.ewma` is the scalar reference — one filter, one
Python float, no dependencies — and stays the arithmetic ground truth.
At fleet scale a shard runs one Eq. 1 throughput filter per connection,
and the per-connection estimates are write-only while the shard runs (the
odyssey policy reads only the shared total and the RTT side), so this
module batches them: a :class:`BatchedEstimator` keeps every lane's state
in flat arrays and applies one update step **across all lanes in a single
vectorized operation**, and a :class:`LaneFilter` defers a lane's samples
(telemetry-style) until someone reads a value.

Element-wise the arrays compute exactly the scalar expressions —
``gain * sample + (1 - gain) * value`` and the rise cap's
``base * (1 + rise_cap)`` with its additive floor — as single IEEE-754
double operations in the same order, so a batched lane is **bit-identical**
to a scalar :class:`~repro.estimation.ewma.EwmaFilter` fed the same
samples (the property suite in ``tests/test_estimation_batch.py`` holds
this to exact equality, not approximation).

numpy's scope ends at this file: it is imported here only, and when it is
unavailable every lane falls back to a scalar ``EwmaFilter`` — same
results, no vectorization — so the rest of the package stays
dependency-free.
"""

from repro.errors import ReproError
from repro.estimation.ewma import EwmaFilter

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

#: True when the vectorized backend is in use (numpy importable).
HAVE_NUMPY = _np is not None

#: Deferred samples across all lanes that trigger an automatic flush, so
#: an unread estimator cannot grow its pending queues without bound.
_FLUSH_THRESHOLD = 4096


class LaneFilter:
    """One lane's view of a :class:`BatchedEstimator`.

    Quacks like the slice of :class:`~repro.estimation.ewma.EwmaFilter`
    the estimation stack uses (``update``/``defer``, ``value``,
    ``primed``, ``updates``, ``capped_rises``), but the state lives in the
    batch's arrays.  Reading any of them flushes the batch first, so a
    lane is always observed fully folded.
    """

    __slots__ = ("_batch", "_lane")

    def __init__(self, batch, lane):
        self._batch = batch
        self._lane = lane

    def defer(self, t, sample):
        """Queue ``sample`` (observed at time ``t``) for the next flush."""
        self._batch.defer(self._lane, t, sample)

    def flush(self):
        """Fold every queued sample (whole batch, not just this lane)."""
        self._batch.flush()

    def update(self, sample):
        """Scalar-compatible eager update: defer, flush, return the value."""
        self._batch.defer(self._lane, None, sample)
        self._batch.flush()
        return self._batch.value(self._lane)

    @property
    def value(self):
        return self._batch.value(self._lane)

    @property
    def primed(self):
        return self._batch.value(self._lane) is not None

    @property
    def updates(self):
        return self._batch.lane_updates(self._lane)

    @property
    def capped_rises(self):
        return self._batch.lane_capped_rises(self._lane)


class BatchedEstimator:
    """Eq. 1 smoothing for many lanes, one array op per update round.

    Parameters match :class:`~repro.estimation.ewma.EwmaFilter` and apply
    to every lane: ``gain`` in (0, 1], an optional fractional ``rise_cap``,
    and the cap's additive ``rise_floor`` for recovery from a value at or
    below zero.  Lanes are created with :meth:`add_lane` (optionally
    seeded) and updated either all at once via :meth:`update` — ``None``
    (or NaN) skips a lane — or lazily via :meth:`defer`/:meth:`flush`,
    which folds each lane's queued samples in order, one vectorized round
    per queue depth.
    """

    def __init__(self, gain, rise_cap=None, rise_floor=1.0):
        if not 0 < gain <= 1:
            raise ReproError(f"gain must be in (0, 1], got {gain!r}")
        if rise_cap is not None and rise_cap <= 0:
            raise ReproError(f"rise_cap must be positive, got {rise_cap!r}")
        if rise_floor <= 0:
            raise ReproError(f"rise_floor must be positive, got {rise_floor!r}")
        self.gain = gain
        self.rise_cap = rise_cap
        self.rise_floor = rise_floor
        self._n = 0
        if HAVE_NUMPY:
            self._values = _np.full(16, _np.nan)
            self._updates = _np.zeros(16, dtype=_np.int64)
            self._capped = _np.zeros(16, dtype=_np.int64)
        else:
            self._filters = []
        self._pending = []   # per lane: list of queued samples, in order
        self._times = []     # per lane: matching observation times
        self._histories = []  # per lane: output list for (t, estimate), or None
        self._npending = 0

    def __len__(self):
        return self._n

    # -- lanes ---------------------------------------------------------------

    def add_lane(self, initial=None, history=None):
        """Open a new lane; returns a :class:`LaneFilter` view of it.

        ``initial`` seeds the lane like ``EwmaFilter(initial=...)``;
        ``history``, if given, is a list that flushes append ``(t,
        estimate)`` pairs to — the deferred twin of the eager history kept
        by :class:`~repro.estimation.bandwidth.ConnectionEstimator`.
        """
        lane = self._n
        self._n = lane + 1
        if HAVE_NUMPY:
            if lane == len(self._values):
                grown = _np.full(2 * lane, _np.nan)
                grown[:lane] = self._values
                self._values = grown
                self._updates = _np.concatenate(
                    [self._updates, _np.zeros(lane, dtype=_np.int64)])
                self._capped = _np.concatenate(
                    [self._capped, _np.zeros(lane, dtype=_np.int64)])
            if initial is not None:
                self._values[lane] = initial
        else:
            self._filters.append(EwmaFilter(
                self.gain, rise_cap=self.rise_cap,
                rise_floor=self.rise_floor, initial=initial,
            ))
        self._pending.append([])
        self._times.append([])
        self._histories.append(history)
        return LaneFilter(self, lane)

    # -- updating ------------------------------------------------------------

    def defer(self, lane, t, sample):
        """Queue one sample for ``lane``; folded on the next flush.

        Validation happens here, not at flush, so a bad sample raises at
        the same moment the scalar filter would have raised.
        """
        if sample < 0:
            raise ReproError(f"negative sample {sample!r}")
        self._pending[lane].append(sample)
        self._times[lane].append(t)
        self._npending += 1
        if self._npending >= _FLUSH_THRESHOLD:
            self.flush()

    def flush(self):
        """Fold every queued sample, oldest first, one round per depth."""
        while self._npending:
            row = [queue.pop(0) if queue else None for queue in self._pending]
            values = self.update(row)
            for lane, sample in enumerate(row):
                if sample is None:
                    continue
                self._npending -= 1
                t = self._times[lane].pop(0)
                history = self._histories[lane]
                if history is not None:
                    history.append((t, values[lane]))

    def update(self, samples):
        """One smoothing step for every lane, as a single array op.

        ``samples`` is a sequence of length :meth:`__len__`; ``None`` (or
        NaN) leaves that lane untouched.  Returns the per-lane values
        after the step (``None`` for still-unprimed lanes).
        """
        if len(samples) != self._n:
            raise ReproError(
                f"expected {self._n} samples, got {len(samples)}")
        if not HAVE_NUMPY:
            out = []
            for filt, sample in zip(self._filters, samples):
                if sample is not None and sample == sample:  # not NaN
                    filt.update(sample)
                out.append(filt.value)
            return out
        s = _np.array([_np.nan if x is None else x for x in samples],
                      dtype=_np.float64)
        if bool((s < 0).any()):
            raise ReproError("negative sample in batch")
        v = self._values[:self._n]
        live = ~_np.isnan(s)
        primed = live & ~_np.isnan(v)
        # Element-for-element the scalar Eq. 1 expression, one IEEE double
        # op per term in the same order, so lanes match EwmaFilter bitwise.
        candidate = self.gain * s + (1.0 - self.gain) * v
        if self.rise_cap is not None:
            base = _np.where(v > 0.0, v, _np.maximum(v, self.rise_floor))
            ceiling = base * (1.0 + self.rise_cap)
            over = primed & (candidate > ceiling)
            candidate = _np.where(over, ceiling, candidate)
            self._capped[:self._n][over] += 1
        fresh = live & _np.isnan(v)
        v[primed] = candidate[primed]
        v[fresh] = s[fresh]
        self._updates[:self._n] += live
        return [None if _np.isnan(x) else float(x) for x in v]

    # -- reading -------------------------------------------------------------

    def value(self, lane):
        """Lane's current value (``None`` before any sample); flushes."""
        if self._npending:
            self.flush()
        if not HAVE_NUMPY:
            return self._filters[lane].value
        x = self._values[lane]
        return None if _np.isnan(x) else float(x)

    def lane_updates(self, lane):
        """Samples absorbed by ``lane``; flushes."""
        if self._npending:
            self.flush()
        if not HAVE_NUMPY:
            return self._filters[lane].updates
        return int(self._updates[lane])

    def lane_capped_rises(self, lane):
        """Updates where the rise cap clamped ``lane``; flushes."""
        if self._npending:
            self.flush()
        if not HAVE_NUMPY:
            return self._filters[lane].capped_rises
        return int(self._capped[lane])

    def values(self):
        """Every lane's value, in lane order (``None`` = unprimed); flushes."""
        if self._npending:
            self.flush()
        if not HAVE_NUMPY:
            return [filt.value for filt in self._filters]
        return [None if _np.isnan(x) else float(x)
                for x in self._values[:self._n]]
