"""Centralized estimation: total client bandwidth and per-connection shares.

"The viceroy collects information from all logs to estimate the total
bandwidth available to the client.  It then estimates the fraction of this
bandwidth likely to be available to each connection.  A connection estimate
is composed of two parts: a competed-for part proportional to recent use,
and a fair-share part reflecting an expected lower bound."  (paper §6.2.1)

Mechanism for the total: each throughput entry observed on any connection
covers an interval during which the client's link was (at least partly)
busy.  Summing the bytes *all* connections received during that interval and
dividing by the window's effective time yields a sample of the link's
capacity regardless of how many connections shared it:

- one connection bursting alone: its own bytes over its own window — the
  full link rate;
- two saturating connections: each window interval includes the other
  connection's concurrent bytes, so the sample again reflects the full link.

The sample feeds the same Eq. 1 smoothing as per-connection estimates.
"""

from repro import telemetry
from repro.errors import ReproError
from repro.estimation.bandwidth import (
    MAX_CORRECTION_FACTOR,
    MIN_EFFECTIVE_SECONDS,
    ConnectionEstimator,
    THROUGHPUT_GAIN,
)
from repro.estimation.ewma import EwmaFilter

#: Sliding window over which "recent use" is measured, seconds.  Long
#: enough to average over several transfer bursts of a lightly-loaded
#: connection (a 10 %-utilization bitstream bursts every ~2.7 s).
USAGE_HORIZON = 8.0
#: Fraction of the total reserved as equal fair shares (the lower bound).
FAIR_FRACTION = 0.25
#: Horizon over which a peer connection's recent delivery rate marks it as
#: actively competing, seconds.  Short: competition matters only if the peer
#: moved traffic during (roughly) the observed window.
COMPETING_HORIZON = 3.0
#: Recent-rate floor (bytes/s) above which a peer counts as competing.
#: Below this, traffic is keepalive-scale noise that neither kept the link
#: busy nor polluted the round-trip log.
COMPETING_RATE_FLOOR = 1024.0


class ClientShares:
    """Total-bandwidth estimate plus per-connection availability split."""

    def __init__(self, sim, gain=THROUGHPUT_GAIN, usage_horizon=USAGE_HORIZON,
                 fair_fraction=FAIR_FRACTION, competing_horizon=COMPETING_HORIZON,
                 competing_rate_floor=COMPETING_RATE_FLOOR, estimator_kwargs=None,
                 batched=False):
        if not 0 < fair_fraction <= 1:
            raise ReproError(f"fair_fraction must be in (0, 1], got {fair_fraction!r}")
        if competing_horizon <= 0:
            raise ReproError(
                f"competing_horizon must be positive, got {competing_horizon!r}"
            )
        if competing_rate_floor < 0:
            raise ReproError(
                f"competing_rate_floor must be >= 0, got {competing_rate_floor!r}"
            )
        self.sim = sim
        self.usage_horizon = usage_horizon
        self.fair_fraction = fair_fraction
        self.competing_horizon = competing_horizon
        self.competing_rate_floor = competing_rate_floor
        self.total_filter = EwmaFilter(gain)
        self.total_history = []  # (time, total estimate)
        self._logs = {}  # connection_id -> RpcLog
        self._estimators = {}  # connection_id -> ConnectionEstimator
        #: Usage-split memo for :meth:`availability`.  Re-checking every
        #: bandwidth registration after a throughput entry calls
        #: ``availability`` once per registration, and each call recomputed
        #: every connection's recent rate — O(n²) per entry at fleet scale.
        #: The usages only change when sim time advances, a delivery lands,
        #: or the membership changes, so the split is computed once per
        #: such version and the values stay bit-identical.
        self._usage_version = 0
        self._usage_memo = None  # (now, version) -> (usages, denominator)
        self._usage_memo_key = None
        #: Forwarded to each ConnectionEstimator (ablation studies vary
        #: gains and the rise cap here).
        self.estimator_kwargs = estimator_kwargs or {}
        #: With ``batched=True`` every connection's Eq. 1 throughput filter
        #: becomes a lane of one shared vectorized estimator (numpy-backed
        #: where available, bit-identical either way) — the fleet shards
        #: enable this; the figure experiments keep the scalar reference.
        self._batch = None
        if batched:
            from repro.estimation.batch import BatchedEstimator

            self._batch = BatchedEstimator(
                self.estimator_kwargs.get("throughput_gain", THROUGHPUT_GAIN))

    # -- registration ---------------------------------------------------------

    def register(self, log):
        """Track ``log`` (an :class:`~repro.rpc.logs.RpcLog`)."""
        if log.connection_id in self._logs:
            raise ReproError(f"connection {log.connection_id!r} already registered")
        self._logs[log.connection_id] = log
        self._estimators[log.connection_id] = ConnectionEstimator(
            self.sim, log.connection_id, batch=self._batch,
            **self.estimator_kwargs
        )
        log.delivery_listener = self._note_delivery
        self._usage_version += 1

    def unregister(self, connection_id):
        """Stop tracking a connection."""
        if self._batch is not None:
            # Fold the departing connection's deferred samples while its
            # lane is still the estimator's; the lane itself is retired
            # (lanes are append-only) and simply never updated again.
            self._batch.flush()
        log = self._logs.pop(connection_id, None)
        if log is not None and log.delivery_listener == self._note_delivery:
            log.delivery_listener = None
        self._estimators.pop(connection_id, None)
        self._usage_version += 1

    def _note_delivery(self):
        """Hot-path delivery signal from a tracked log (invalidates memos)."""
        self._usage_version += 1

    @property
    def connection_count(self):
        return len(self._logs)

    def estimator(self, connection_id):
        """The per-connection estimator (used for R in Eq. 2)."""
        return self._estimators[connection_id]

    # -- log-entry absorption ---------------------------------------------------

    def on_round_trip(self, log, entry):
        self._estimators[log.connection_id].on_round_trip(log, entry)

    def on_throughput(self, log, entry):
        """Absorb a window observation; returns the new total estimate.

        The capacity sample combines two estimators, each exact in its own
        regime:

        - the connection's own Eq. 2 estimate (bytes over T minus the dead
          round trip) — correct when the window ran alone, where the dead
          time really was idle link;
        - the aggregate raw rate (all connections' bytes during the window
          over the full window time) — correct when concurrent traffic kept
          the link busy through the observer's dead time (subtracting R
          there would double-count and overestimate without bound).

        ``max`` selects the applicable one: competition can only raise the
        aggregate, and solo operation can only make the correction valid.
        """
        total, sample, competing = self._absorb_throughput(log, entry)
        rec = telemetry.RECORDER
        if rec.enabled:
            span = rec.begin("shares.update", connection=log.connection_id)
            rec.gauge("estimation.total_bytes_per_s", total)
            if competing:
                rec.count("estimation.competing_updates")
            rec.end(span, sample=sample, total=total, competing=competing)
        return total

    def _absorb_throughput(self, log, entry):
        """The uninstrumented total-capacity update (see :meth:`on_throughput`).

        Returns ``(total, sample, competing)``.  Separate so the telemetry
        overhead benchmark can time the pure computation as its baseline.
        """
        estimator = self._estimators[log.connection_id]
        estimator.on_throughput(log, entry)  # keep the per-connection view fresh
        aggregate = 0
        competing = False
        for other in self._logs.values():
            aggregate += other.bytes_delivered_between(entry.started, entry.at)
            # One competing peer settles the boolean; skipping further rate
            # queries cannot change it (any-of is order-independent).
            if (not competing and other is not log
                    and other.recent_rate(self.competing_horizon)
                    > self.competing_rate_floor):
                competing = True
        aggregate = max(aggregate, entry.nbytes)
        aggregate_raw = aggregate / max(entry.seconds, MIN_EFFECTIVE_SECONDS)
        if competing:
            # Another connection has been moving real traffic: concurrent
            # transfers keep the link busy through this window's dead time
            # (so the raw aggregate is the capacity), and they pollute the
            # round-trip log (so Eq. 2's correction cannot be trusted).
            sample = aggregate_raw
        else:
            sample = max(estimator.bandwidth_sample(entry, log), aggregate_raw)
        total = self.total_filter.update(sample)
        self.total_history.append((self.sim.now, total))
        return total, sample, competing

    # -- queries -----------------------------------------------------------------

    @property
    def total(self):
        """Smoothed total client bandwidth (bytes/s), or None before data."""
        return self.total_filter.value

    def usage(self, connection_id):
        """Recent consumption rate of one connection (bytes/s)."""
        return self._logs[connection_id].recent_rate(self.usage_horizon)

    def _usage_split(self):
        """``(usages, denominator)``, memoized per (sim time, log version)."""
        key = (self.sim.now, self._usage_version)
        if key != self._usage_memo_key:
            usages = {cid: self.usage(cid) for cid in self._logs}
            self._usage_memo = (usages, sum(usages.values()))
            self._usage_memo_key = key
        return self._usage_memo

    def availability(self, connection_id):
        """Bandwidth likely available to ``connection_id`` (bytes/s).

        ``fair_fraction`` of the total is divided equally (the expected
        lower bound); the rest is split in proportion to recent use.  With a
        single connection this degenerates to the total.  Returns None
        before any throughput observation.
        """
        if connection_id not in self._logs:
            raise ReproError(f"unknown connection {connection_id!r}")
        total = self.total
        if total is None:
            return None
        n = len(self._logs)
        fair = self.fair_fraction * total / n
        usages, denominator = self._usage_split()
        if denominator <= 0:
            weight = 1.0 / n
        else:
            weight = usages[connection_id] / denominator
        competed = (1.0 - self.fair_fraction) * total * weight
        return fair + competed

    def snapshot(self):
        """A dict of availability per connection (diagnostics and tests)."""
        return {cid: self.availability(cid) for cid in self._logs}
