"""Turbulence characterization: how sharp a change can Odyssey see?

"Agility is thus the property of a mobile system that determines the most
turbulent environment in which it can function acceptably" (§2.4).  The
paper chose a 2-second impulse because it is "large enough to be detectable
by a sensitive system, yet small enough to be missed by an insensitive one"
(Fig. 7 caption) — but never measured where the detection boundary lies.
This module does: sweep the impulse width and record how much of each
impulse the estimator registers.

The *visibility* of an impulse is the fraction of the bandwidth excursion
the estimate actually traverses: 1.0 means fully tracked, 0.0 means
entirely missed.  The *minimum detectable width* is where visibility
crosses one half.
"""

from dataclasses import dataclass, field

from repro.apps.bitstream import build_bitstream
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld
from repro.experiments.stats import Cell
from repro.parallel.runner import TrialUnit, chunked, run_units, trial_seeds
from repro.trace.waveforms import (
    HIGH_BANDWIDTH,
    LOW_BANDWIDTH,
    WAVEFORM_DURATION,
    impulse_up,
)

#: Impulse widths swept, seconds.  The paper's reference width is 2.0.
DEFAULT_WIDTHS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass
class TurbulenceResult:
    """Visibility per impulse width, over trials."""

    widths: tuple
    visibility: dict = field(default_factory=dict)  # width -> Cell

    def minimum_detectable_width(self, threshold=0.5):
        """Smallest swept width whose mean visibility crosses ``threshold``.

        Returns None if even the widest impulse stays below threshold.
        """
        for width in sorted(self.widths):
            if self.visibility[width].mean >= threshold:
                return width
        return None


def impulse_visibility(width, seed=0, low=LOW_BANDWIDTH, high=HIGH_BANDWIDTH):
    """One trial: how much of a ``width``-second impulse the estimate sees."""
    trace = impulse_up(low=low, high=high, width=width)
    world = ExperimentWorld(trace, seed=seed)
    app, warden, server = build_bitstream(world.sim, world.viceroy,
                                          world.network)
    world.jitter_service(server.service)
    app.start()
    world.run_for(WAVEFORM_DURATION)
    series = world.relative(world.viceroy.policy.shares.total_history)
    start = (WAVEFORM_DURATION - width) / 2
    # Allow the estimate one extra second to register the trailing samples
    # of a short burst (window completions land after the impulse ends).
    samples = [v for t, v in series if start <= t <= start + width + 1.0]
    if not samples:
        return 0.0
    peak = max(samples)
    visibility = (peak - low) / (high - low)
    return min(max(visibility, 0.0), 1.0)


def run_turbulence_sweep(widths=DEFAULT_WIDTHS, trials=DEFAULT_TRIALS,
                         master_seed=0):
    """Visibility across impulse widths; returns a TurbulenceResult."""
    widths = tuple(widths)
    seeds = trial_seeds(trials, master_seed)
    units = [TrialUnit("turbulence", {"width": width}, seed)
             for width in widths for seed in seeds]
    values = run_units(units)
    result = TurbulenceResult(widths)
    for width, chunk in zip(widths, chunked(values, trials)):
        result.visibility[width] = Cell(chunk)
    return result


def format_turbulence(result):
    lines = ["Turbulence sweep — impulse visibility vs width "
             "(1.0 = fully tracked)"]
    for width in sorted(result.widths):
        cell = result.visibility[width]
        marker = "  <- paper's reference width" if width == 2.0 else ""
        lines.append(f"  {width:5.2f} s impulse: visibility {cell}{marker}")
    minimum = result.minimum_detectable_width()
    if minimum is None:
        lines.append("  no swept width reaches 50% visibility")
    else:
        lines.append(f"  minimum detectable width (50% visibility): "
                     f"~{minimum:.2f} s")
    return "\n".join(lines)
