"""Fig. 12 — speech recognizer performance.

Three strategies (always-hybrid, always-remote, adaptive) over the four
reference waveforms.  Only speed matters: recognition quality is fixed.
"""

from dataclasses import dataclass, field

from repro.apps.speech.recognizer import SpeechFrontEnd
from repro.apps.speech.warden import build_speech
from repro.core.api import OdysseyAPI
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld
from repro.experiments.stats import Cell
from repro.experiments.supply import REFERENCE_WAVEFORMS
from repro.parallel.runner import TrialUnit, chunked, run_trials, run_units, trial_seeds
from repro.trace.waveforms import WAVEFORM_DURATION

#: The strategies of Fig. 12, in column order.
SPEECH_STRATEGIES = ("hybrid", "remote", "adaptive")

#: Fig. 12's published recognition times (seconds).
PAPER_FIG12 = {
    "step-up": {"hybrid": 0.80, "remote": 0.91, "adaptive": 0.80},
    "step-down": {"hybrid": 0.80, "remote": 0.90, "adaptive": 0.80},
    "impulse-up": {"hybrid": 0.85, "remote": 1.11, "adaptive": 0.85},
    "impulse-down": {"hybrid": 0.76, "remote": 0.77, "adaptive": 0.76},
}


@dataclass
class SpeechTable:
    cells: dict = field(default_factory=dict)  # (waveform, strategy) -> Cell

    def cell(self, waveform, strategy):
        return self.cells[(waveform, strategy)]


def run_speech_trial(waveform_name, strategy, seed=0):
    """One recognition run; returns the front-end (stats attached)."""
    world = ExperimentWorld(waveform_name, seed=seed)
    warden, server = build_speech(world.sim, world.viceroy, world.network)
    world.jitter_service(server.service)
    api = OdysseyAPI(world.viceroy, "speech-fe")
    front_end = SpeechFrontEnd(
        world.sim, api, "speech-fe", "/odyssey/speech",
        strategy=strategy, measure_from=world.prime,
    )
    world.sim.call_in(world.start_offset(), front_end.start)
    world.run_for(WAVEFORM_DURATION)
    return front_end


def speech_trial_outcome(waveform_name, strategy, seed=0):
    """One recognition run reduced to its mean recognition time (picklable)."""
    front_end = run_speech_trial(waveform_name, strategy, seed=seed)
    return front_end.stats.mean_seconds


def run_speech_experiment(waveform_name, strategy, trials=DEFAULT_TRIALS,
                          master_seed=0):
    """One cell of Fig. 12: mean (σ) recognition time."""
    times = run_trials(
        "speech", {"waveform_name": waveform_name, "strategy": strategy},
        trials, master_seed,
    )
    return Cell(times)


def run_speech_table(trials=DEFAULT_TRIALS, master_seed=0,
                     waveforms=REFERENCE_WAVEFORMS,
                     strategies=SPEECH_STRATEGIES):
    """The full Fig. 12 table, fanned out cell x trial."""
    seeds = trial_seeds(trials, master_seed)
    cells = [(waveform_name, strategy)
             for waveform_name in waveforms for strategy in strategies]
    units = [
        TrialUnit("speech", {"waveform_name": waveform_name,
                             "strategy": strategy}, seed)
        for waveform_name, strategy in cells for seed in seeds
    ]
    times = run_units(units)
    table = SpeechTable()
    for cell, chunk in zip(cells, chunked(times, trials)):
        table.cells[cell] = Cell(chunk)
    return table
