"""Figs. 13-14 — concurrent applications and centralized management.

All three applications run simultaneously over the 15-minute urban-walk
trace (Fig. 13), under each of the three resource-management strategies:
Odyssey's centralized estimation, laissez-faire (per-connection logs in
isolation), and blind-optimism (theoretical bandwidth pushed instantly at
transitions, blind to competition).  Fig. 14 reports video drops and
fidelity, web fetch time and fidelity, and speech recognition time.
"""

from dataclasses import dataclass, field

from repro.apps.speech.recognizer import SpeechFrontEnd
from repro.apps.speech.warden import build_speech
from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.apps.web.browser import CellophaneBrowser
from repro.apps.web.images import ImageStore
from repro.apps.web.warden import build_web
from repro.core.api import OdysseyAPI
from repro.experiments.harness import (
    DEFAULT_TRIALS,
    POLICIES,
    ExperimentWorld,
)
from repro.experiments.stats import Cell
from repro.parallel.runner import TrialUnit, chunked, run_units, trial_seeds
from repro.trace.waveforms import urban_walk

#: Fig. 14's published values: policy -> (video drops, video fidelity,
#: web seconds, web fidelity, speech seconds).
PAPER_FIG14 = {
    "odyssey": (1018, 0.25, 0.54, 0.47, 1.00),
    "laissez-faire": (2249, 0.39, 0.95, 0.93, 1.21),
    "blind-optimism": (5320, 0.80, 1.20, 1.00, 1.26),
}


@dataclass
class ConcurrentRow:
    """One policy's row of Fig. 14 (cells over trials)."""

    policy: str
    video_drops: Cell
    video_fidelity: Cell
    web_seconds: Cell
    web_fidelity: Cell
    speech_seconds: Cell


@dataclass
class ConcurrentTable:
    rows: dict = field(default_factory=dict)  # policy -> ConcurrentRow

    def row(self, policy):
        return self.rows[policy]


@dataclass
class ConcurrentTrialResult:
    video: object
    web: object
    speech: object


def run_concurrent_trial(policy, seed=0, trace=None):
    """One 15-minute three-application run under ``policy``."""
    trace = trace or urban_walk()
    world = ExperimentWorld(trace, policy=policy, seed=seed)
    measure_until = world.prime + trace.duration

    store = MovieStore()
    n_frames = int((world.prime + trace.duration + 10) * 10)
    store.add(Movie("urban", n_frames=n_frames))
    video_warden, video_server = build_video(
        world.sim, world.viceroy, world.network, store
    )
    world.jitter_service(video_server.service)
    video_api = OdysseyAPI(world.viceroy, "xanim")
    player = VideoPlayer(
        world.sim, video_api, "xanim", "/odyssey/video", "urban",
        policy="adaptive", measure_from=world.prime,
    )

    image_store = ImageStore()
    image = image_store.add_benchmark_image()
    web_warden, distiller, web_server = build_web(
        world.sim, world.viceroy, world.network, image_store
    )
    world.jitter_service(web_server.service)
    world.jitter_service(distiller.service)
    web_api = OdysseyAPI(world.viceroy, "netscape")
    browser = CellophaneBrowser(
        world.sim, web_api, "netscape", "/odyssey/web", image.name,
        image.nbytes, policy="adaptive", measure_from=world.prime,
    )

    speech_warden, speech_server = build_speech(
        world.sim, world.viceroy, world.network
    )
    world.jitter_service(speech_server.service)
    speech_api = OdysseyAPI(world.viceroy, "speech-fe")
    front_end = SpeechFrontEnd(
        world.sim, speech_api, "speech-fe", "/odyssey/speech",
        strategy="adaptive", measure_from=world.prime,
    )

    for app in (player, browser, front_end):
        world.sim.call_in(world.start_offset(), app.start)
    world.sim.run(until=measure_until)
    return ConcurrentTrialResult(video=player, web=browser, speech=front_end)


@dataclass
class ConcurrentTrialOutcome:
    """One trial's Fig. 14 numbers, detached from the live apps (picklable)."""

    video_drops: float
    video_fidelity: float
    web_seconds: float
    web_fidelity: float
    speech_seconds: float


def concurrent_trial_outcome(policy, seed=0, trace=None):
    """One 15-minute run reduced to its reported row values."""
    result = run_concurrent_trial(policy, seed=seed, trace=trace)
    return ConcurrentTrialOutcome(
        video_drops=result.video.stats.drops,
        video_fidelity=result.video.fidelity,
        web_seconds=result.web.stats.mean_seconds,
        web_fidelity=result.web.stats.mean_fidelity,
        speech_seconds=result.speech.stats.mean_seconds,
    )


def _concurrent_row(policy, outcomes):
    return ConcurrentRow(
        policy=policy,
        video_drops=Cell([o.video_drops for o in outcomes], precision=0),
        video_fidelity=Cell([o.video_fidelity for o in outcomes]),
        web_seconds=Cell([o.web_seconds for o in outcomes]),
        web_fidelity=Cell([o.web_fidelity for o in outcomes]),
        speech_seconds=Cell([o.speech_seconds for o in outcomes]),
    )


def run_concurrent_experiment(policy, trials=DEFAULT_TRIALS, master_seed=0,
                              trace=None):
    """One row of Fig. 14."""
    seeds = trial_seeds(trials, master_seed)
    params = {"policy": policy}
    if trace is not None:
        params["trace"] = trace
    units = [TrialUnit("concurrent", params, seed) for seed in seeds]
    return _concurrent_row(policy, run_units(units))


def run_concurrent_table(trials=DEFAULT_TRIALS, master_seed=0, trace=None,
                         policies=POLICIES):
    """The full Fig. 14 table, fanned out policy x trial."""
    seeds = trial_seeds(trials, master_seed)
    base = {} if trace is None else {"trace": trace}
    units = [TrialUnit("concurrent", {"policy": policy, **base}, seed)
             for policy in policies for seed in seeds]
    outcomes = run_units(units)
    table = ConcurrentTable()
    for policy, chunk in zip(policies, chunked(outcomes, trials)):
        table.rows[policy] = _concurrent_row(policy, chunk)
    return table
