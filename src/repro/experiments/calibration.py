"""Every calibration constant in one place, with its provenance.

The paper publishes its testbed parameters (§6.1.3) but not application
constants like frame sizes or server compute times; those are calibrated
against the published tables.  Benchmarks print this table so results are
interpretable.
"""

from repro.apps.speech.model import DEFAULT_COSTS, Utterance
from repro.apps.video.codec import TRACKS
from repro.apps.web.browser import (
    FIXED_OVERHEAD_SECONDS,
    LATENCY_GOAL_SECONDS,
    RENDER_SECONDS,
)
from repro.apps.web.distill import DISTILL_COMPUTE
from repro.apps.web.images import BENCHMARK_IMAGE_BYTES, FIDELITY_LEVELS
from repro.apps.web.server import WEB_SERVER_COMPUTE
from repro.estimation.bandwidth import RTT_GAIN, RTT_RISE_CAP, THROUGHPUT_GAIN
from repro.estimation.share import FAIR_FRACTION, USAGE_HORIZON
from repro.trace.waveforms import HIGH_BANDWIDTH, LOW_BANDWIDTH, ONE_WAY_LATENCY


def calibration_lines():
    """Human-readable list of constants and where they come from."""
    utterance = Utterance("reference")
    lines = [
        "Calibration constants (paper-published unless noted):",
        f"  modulated bandwidths: {LOW_BANDWIDTH} / {HIGH_BANDWIDTH} B/s "
        "(paper: 40 / 120 KB/s)",
        f"  one-way latency: {ONE_WAY_LATENCY * 1000:.1f} ms "
        "(paper: 21 ms round trip)",
        f"  EWMA gains: rtt {RTT_GAIN}, throughput {THROUGHPUT_GAIN} "
        "(paper Eq. 1)",
        f"  rtt rise cap: {RTT_RISE_CAP} per estimate (paper: capped, "
        "value unpublished)",
        f"  share model: fair fraction {FAIR_FRACTION}, usage horizon "
        f"{USAGE_HORIZON} s (calibrated)",
        "  video tracks (calibrated to straddle the modulated levels):",
    ]
    for spec in TRACKS:
        lines.append(
            f"    {spec.name}: ~{spec.mean_frame_bytes} B/frame, "
            f"fidelity {spec.fidelity}"
        )
    lines.extend([
        f"  web image: {BENCHMARK_IMAGE_BYTES} B (paper: 22 KB); distilled "
        f"fractions {sorted((k, v[1]) for k, v in FIDELITY_LEVELS.items())}",
        f"  web costs: server {WEB_SERVER_COMPUTE} s, distill "
        f"{DISTILL_COMPUTE} s, render {RENDER_SECONDS} s (calibrated); "
        f"cellophane fixed-overhead model {FIXED_OVERHEAD_SECONDS:.3f} s",
        f"  web latency goal: {LATENCY_GOAL_SECONDS} s (paper: 2x Ethernet)",
        f"  speech: raw {utterance.raw_bytes} B, {utterance.compression_ratio}:1 "
        f"compression (paper); client first pass {DEFAULT_COSTS.client_first_pass} s, "
        f"server first pass {DEFAULT_COSTS.server_first_pass} s, later phases "
        f"{DEFAULT_COSTS.server_later_phases} s (calibrated to Fig. 12)",
    ])
    return lines


def print_calibration():
    for line in calibration_lines():
        print(line)
