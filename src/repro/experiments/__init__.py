"""Experiment harnesses regenerating every table and figure (paper §6).

One module per artifact:

- :mod:`repro.experiments.supply` — Fig. 8, supply-estimation agility.
- :mod:`repro.experiments.demand` — Fig. 9, demand-estimation agility.
- :mod:`repro.experiments.video` — Fig. 10, video player table.
- :mod:`repro.experiments.web` — Fig. 11, web browser table.
- :mod:`repro.experiments.speech` — Fig. 12, speech recognizer table.
- :mod:`repro.experiments.concurrent` — Figs. 13-14, concurrent applications
  on the urban-walk trace under three resource-management policies.

Shared machinery lives in :mod:`repro.experiments.harness` (trial seeding,
priming, jitter) and :mod:`repro.experiments.stats` (mean/σ cells).  Every
experiment follows the paper's methodology: a 30-second priming period at
the waveform's initial bandwidth, five seeded trials, and mean (standard
deviation) reporting.
"""

from repro.experiments.harness import ExperimentWorld, seeded_rngs
from repro.experiments.stats import Cell, summarize

__all__ = ["Cell", "ExperimentWorld", "seeded_rngs", "summarize"]
