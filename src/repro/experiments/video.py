"""Fig. 10 — video player performance and fidelity.

Four strategies (three static tracks plus Odyssey-adaptive) over the four
reference waveforms.  Drops and mean displayed fidelity, mean (σ) of five
trials, exactly the table's shape.
"""

from dataclasses import dataclass, field

from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld, seeded_rngs
from repro.experiments.stats import Cell
from repro.experiments.supply import REFERENCE_WAVEFORMS
from repro.trace.waveforms import WAVEFORM_DURATION

#: The strategies of Fig. 10, in column order.
VIDEO_STRATEGIES = ("bw", "jpeg50", "jpeg99", "adaptive")

#: Fig. 10's published values, for paper-vs-measured reporting:
#: waveform -> strategy -> (drops, fidelity or None for static tracks).
PAPER_FIG10 = {
    "step-up": {"bw": (0, 0.01), "jpeg50": (3, 0.5), "jpeg99": (169, 1.0),
                "adaptive": (7, 0.73)},
    "step-down": {"bw": (0, 0.01), "jpeg50": (5, 0.5), "jpeg99": (169, 1.0),
                  "adaptive": (25, 0.76)},
    "impulse-up": {"bw": (0, 0.01), "jpeg50": (3, 0.5), "jpeg99": (325, 1.0),
                   "adaptive": (23, 0.50)},
    "impulse-down": {"bw": (0, 0.01), "jpeg50": (0, 0.5), "jpeg99": (12, 1.0),
                     "adaptive": (14, 0.98)},
}


@dataclass
class VideoCell:
    """One (waveform, strategy) cell: drops and fidelity over trials."""

    drops: Cell
    fidelity: Cell


@dataclass
class VideoTable:
    """The Fig. 10 table: rows are waveforms, columns strategies."""

    cells: dict = field(default_factory=dict)  # (waveform, strategy) -> VideoCell

    def cell(self, waveform, strategy):
        return self.cells[(waveform, strategy)]


def run_video_trial(waveform_name, strategy, seed=0, movie_frames=None):
    """One playback; returns the player (stats attached).

    The movie is long enough to cover priming plus the 60-second waveform;
    only the 600 frames whose deadlines fall inside the waveform are
    measured, matching the paper's "600 frames to display during each
    trial" after a 30-second priming period.
    """
    world = ExperimentWorld(waveform_name, seed=seed)
    frames = movie_frames or int((world.prime + WAVEFORM_DURATION + 5) * 10)
    store = MovieStore()
    store.add(Movie("benchmark", n_frames=frames))
    warden, server = build_video(world.sim, world.viceroy, world.network, store)
    world.jitter_service(server.service)
    api = OdysseyAPI(world.viceroy, "xanim")
    player = VideoPlayer(
        world.sim, api, "xanim", "/odyssey/video", "benchmark",
        policy=strategy, measure_from=world.prime,
    )
    start_delay = world.start_offset()
    world.sim.call_in(start_delay, player.start)
    world.run_for(WAVEFORM_DURATION + 3.0)
    return player


def run_video_experiment(waveform_name, strategy, trials=DEFAULT_TRIALS,
                         master_seed=0):
    """One cell of Fig. 10: mean (σ) drops and fidelity."""
    drops, fidelities = [], []
    for rng in seeded_rngs(trials, master_seed):
        player = run_video_trial(waveform_name, strategy, seed=rng)
        measured = player.stats.frames_displayed + player.stats.drops
        # Normalize to exactly 600 measured frames (start offsets can shift
        # a frame or two across the measurement boundary).
        scale = 600.0 / measured if measured else 1.0
        drops.append(player.stats.drops * scale)
        fidelities.append(player.fidelity)
    return VideoCell(drops=Cell(drops, precision=0), fidelity=Cell(fidelities))


def run_video_table(trials=DEFAULT_TRIALS, master_seed=0,
                    waveforms=REFERENCE_WAVEFORMS, strategies=VIDEO_STRATEGIES):
    """The full Fig. 10 table."""
    table = VideoTable()
    for waveform_name in waveforms:
        for strategy in strategies:
            table.cells[(waveform_name, strategy)] = run_video_experiment(
                waveform_name, strategy, trials, master_seed
            )
    return table
