"""Fig. 10 — video player performance and fidelity.

Four strategies (three static tracks plus Odyssey-adaptive) over the four
reference waveforms.  Drops and mean displayed fidelity, mean (σ) of five
trials, exactly the table's shape.
"""

from dataclasses import dataclass, field

from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld
from repro.experiments.stats import Cell
from repro.experiments.supply import REFERENCE_WAVEFORMS
from repro.parallel.runner import TrialUnit, chunked, run_trials, run_units, trial_seeds
from repro.trace.waveforms import WAVEFORM_DURATION

#: The strategies of Fig. 10, in column order.
VIDEO_STRATEGIES = ("bw", "jpeg50", "jpeg99", "adaptive")

#: Fig. 10's published values, for paper-vs-measured reporting:
#: waveform -> strategy -> (drops, fidelity or None for static tracks).
PAPER_FIG10 = {
    "step-up": {"bw": (0, 0.01), "jpeg50": (3, 0.5), "jpeg99": (169, 1.0),
                "adaptive": (7, 0.73)},
    "step-down": {"bw": (0, 0.01), "jpeg50": (5, 0.5), "jpeg99": (169, 1.0),
                  "adaptive": (25, 0.76)},
    "impulse-up": {"bw": (0, 0.01), "jpeg50": (3, 0.5), "jpeg99": (325, 1.0),
                   "adaptive": (23, 0.50)},
    "impulse-down": {"bw": (0, 0.01), "jpeg50": (0, 0.5), "jpeg99": (12, 1.0),
                     "adaptive": (14, 0.98)},
}


@dataclass
class VideoCell:
    """One (waveform, strategy) cell: drops and fidelity over trials."""

    drops: Cell
    fidelity: Cell


@dataclass
class VideoTable:
    """The Fig. 10 table: rows are waveforms, columns strategies."""

    cells: dict = field(default_factory=dict)  # (waveform, strategy) -> VideoCell

    def cell(self, waveform, strategy):
        return self.cells[(waveform, strategy)]


def run_video_trial(waveform_name, strategy, seed=0, movie_frames=None):
    """One playback; returns the player (stats attached).

    The movie is long enough to cover priming plus the 60-second waveform;
    only the 600 frames whose deadlines fall inside the waveform are
    measured, matching the paper's "600 frames to display during each
    trial" after a 30-second priming period.
    """
    world = ExperimentWorld(waveform_name, seed=seed)
    frames = movie_frames or int((world.prime + WAVEFORM_DURATION + 5) * 10)
    store = MovieStore()
    store.add(Movie("benchmark", n_frames=frames))
    warden, server = build_video(world.sim, world.viceroy, world.network, store)
    world.jitter_service(server.service)
    api = OdysseyAPI(world.viceroy, "xanim")
    player = VideoPlayer(
        world.sim, api, "xanim", "/odyssey/video", "benchmark",
        policy=strategy, measure_from=world.prime,
    )
    start_delay = world.start_offset()
    world.sim.call_in(start_delay, player.start)
    world.run_for(WAVEFORM_DURATION + 3.0)
    return player


@dataclass
class VideoTrialOutcome:
    """One trial's numbers, detached from the live player (picklable)."""

    drops: float  # normalized to exactly 600 measured frames
    fidelity: float


def video_trial_outcome(waveform_name, strategy, seed=0, movie_frames=None):
    """One playback reduced to its reported cell values.

    This is the parallel/cache boundary: the live player holds simulator
    state no worker could ship back, so the normalization happens here
    and only the two numbers travel.
    """
    player = run_video_trial(waveform_name, strategy, seed=seed,
                             movie_frames=movie_frames)
    measured = player.stats.frames_displayed + player.stats.drops
    # Normalize to exactly 600 measured frames (start offsets can shift
    # a frame or two across the measurement boundary).
    scale = 600.0 / measured if measured else 1.0
    return VideoTrialOutcome(drops=player.stats.drops * scale,
                             fidelity=player.fidelity)


def _video_cell(outcomes):
    return VideoCell(drops=Cell([o.drops for o in outcomes], precision=0),
                     fidelity=Cell([o.fidelity for o in outcomes]))


def run_video_experiment(waveform_name, strategy, trials=DEFAULT_TRIALS,
                         master_seed=0):
    """One cell of Fig. 10: mean (σ) drops and fidelity."""
    outcomes = run_trials(
        "video", {"waveform_name": waveform_name, "strategy": strategy},
        trials, master_seed,
    )
    return _video_cell(outcomes)


def run_video_table(trials=DEFAULT_TRIALS, master_seed=0,
                    waveforms=REFERENCE_WAVEFORMS, strategies=VIDEO_STRATEGIES):
    """The full Fig. 10 table, fanned out cell x trial."""
    seeds = trial_seeds(trials, master_seed)
    cells = [(waveform_name, strategy)
             for waveform_name in waveforms for strategy in strategies]
    units = [
        TrialUnit("video", {"waveform_name": waveform_name,
                            "strategy": strategy}, seed)
        for waveform_name, strategy in cells for seed in seeds
    ]
    outcomes = run_units(units)
    table = VideoTable()
    for cell, chunk in zip(cells, chunked(outcomes, trials)):
        table.cells[cell] = _video_cell(chunk)
    return table
