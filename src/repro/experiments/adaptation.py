"""End-to-end adaptation agility: from transition to fidelity change.

§2.4 defines agility as "the speed and accuracy with which it detects and
responds to changes in resource availability".  Fig. 8 measures the
*detection* half (the estimate).  This experiment measures the whole
pipeline the paper's architecture implies:

    bandwidth transition → log entries → estimate crosses the window →
    upcall delivered → application switches fidelity

using the adaptive video player, whose track switches are visible events.
Reported per step waveform: detection latency (estimate crossing), upcall
latency (delivery), and response latency (the track switch) — each from
the moment the trace transitioned.
"""

from dataclasses import dataclass

from repro import telemetry
from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import VideoPlayer
from repro.apps.video.warden import build_video
from repro.core.api import OdysseyAPI
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld
from repro.experiments.stats import Cell
from repro.parallel.runner import run_trials
from repro.trace.waveforms import WAVEFORM_DURATION

TRANSITION = WAVEFORM_DURATION / 2


@dataclass
class AdaptationTrial:
    """Latencies (seconds after the transition) for one run."""

    upcall_latency: float
    switch_latency: float


@dataclass
class AdaptationResult:
    waveform: str
    trials: list

    @property
    def upcall_cell(self):
        return Cell([t.upcall_latency for t in self.trials])

    @property
    def switch_cell(self):
        return Cell([t.switch_latency for t in self.trials])


def run_adaptation_trial(waveform_name, seed=0):
    """One adaptive playback over a step; returns an AdaptationTrial."""
    world = ExperimentWorld(waveform_name, seed=seed)
    frames = int((world.prime + WAVEFORM_DURATION + 5) * 10)
    store = MovieStore()
    store.add(Movie("m", n_frames=frames))
    warden, server = build_video(world.sim, world.viceroy, world.network, store)
    world.jitter_service(server.service)
    api = OdysseyAPI(world.viceroy, "xanim")
    player = VideoPlayer(world.sim, api, "xanim", "/odyssey/video", "m",
                         policy="adaptive", measure_from=world.prime)
    player.start()
    world.run_for(WAVEFORM_DURATION)

    transition_at = world.prime + TRANSITION
    upcalls = [t for t, _, _ in world.viceroy.upcalls.delivered_to("xanim")
               if t >= transition_at]
    switches = [t for t, _, _ in player.stats.switches if t >= transition_at]
    if not upcalls or not switches:
        raise RuntimeError(
            f"{waveform_name}: the step produced no adaptation "
            f"(upcalls={len(upcalls)}, switches={len(switches)})"
        )
    upcall_latency = upcalls[0] - transition_at
    switch_latency = switches[0] - transition_at
    rec = telemetry.RECORDER
    if rec.enabled:
        rec.observe("adaptation.upcall_latency_seconds", upcall_latency,
                    waveform=waveform_name)
        rec.observe("adaptation.switch_latency_seconds", switch_latency,
                    waveform=waveform_name)
        rec.event("adaptation.measured", waveform=waveform_name,
                  upcall_latency=upcall_latency,
                  switch_latency=switch_latency)
    return AdaptationTrial(
        upcall_latency=upcall_latency,
        switch_latency=switch_latency,
    )


def run_adaptation_experiment(waveform_name, trials=DEFAULT_TRIALS,
                              master_seed=0):
    """Adaptation agility over one step waveform (trials via the runner)."""
    collected = run_trials("adaptation", {"waveform_name": waveform_name},
                           trials, master_seed)
    return AdaptationResult(waveform_name, collected)


def format_adaptation(results):
    lines = ["Adaptation agility — transition to fidelity change (seconds)"]
    for result in results:
        lines.append(
            f"  {result.waveform:10s} upcall {result.upcall_cell}   "
            f"track switch {result.switch_cell}"
        )
    return "\n".join(lines)
