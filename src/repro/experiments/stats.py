"""Mean/σ cells, formatted the way the paper's tables print them."""

import math

from repro.errors import ReproError


class Cell:
    """A table cell: the mean of several trials with standard deviation.

    Prints as ``mean (σ)`` — e.g. ``169 (2.4)`` — matching the paper's
    convention "Each observation is the mean of five trials, with standard
    deviations given in parentheses."
    """

    def __init__(self, values, precision=2):
        values = [float(v) for v in values]
        if not values:
            raise ReproError("a Cell needs at least one value")
        self.values = values
        self.precision = precision

    @property
    def mean(self):
        return sum(self.values) / len(self.values)

    @property
    def std(self):
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))

    def __format__(self, spec):
        return format(str(self), spec)

    def __str__(self):
        p = self.precision
        return f"{self.mean:.{p}f} ({self.std:.{p}f})"

    def __repr__(self):
        return f"Cell({self})"


def summarize(values, precision=2):
    """Shorthand constructor used by experiment modules."""
    return Cell(values, precision=precision)
