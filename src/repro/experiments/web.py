"""Fig. 11 — web browser performance and fidelity.

Five strategies (four static fidelities plus Odyssey-adaptive) over the
four reference waveforms, plus the unmodified-Ethernet baseline row.
"""

from dataclasses import dataclass, field

from repro.apps.web.browser import CellophaneBrowser
from repro.apps.web.images import ImageStore
from repro.apps.web.warden import build_web
from repro.core.api import OdysseyAPI
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld
from repro.experiments.stats import Cell
from repro.experiments.supply import REFERENCE_WAVEFORMS
from repro.parallel.runner import TrialUnit, chunked, run_trials, run_units, trial_seeds
from repro.trace.waveforms import WAVEFORM_DURATION, ethernet

#: The strategies of Fig. 11, in column order.
WEB_STRATEGIES = (0.05, 0.25, 0.50, 1.00, "adaptive")

#: Fig. 11's published values: waveform -> strategy -> (seconds, fidelity).
PAPER_FIG11 = {
    "ethernet": {"baseline": (0.20, 1.0)},
    "step-up": {0.05: (0.25, 0.05), 0.25: (0.30, 0.25), 0.50: (0.29, 0.5),
                1.00: (0.46, 1.0), "adaptive": (0.35, 0.78)},
    "step-down": {0.05: (0.25, 0.05), 0.25: (0.30, 0.25), 0.50: (0.29, 0.5),
                  1.00: (0.46, 1.0), "adaptive": (0.35, 0.77)},
    "impulse-up": {0.05: (0.27, 0.05), 0.25: (0.33, 0.25), 0.50: (0.34, 0.5),
                   1.00: (0.71, 1.0), "adaptive": (0.42, 0.63)},
    "impulse-down": {0.05: (0.24, 0.05), 0.25: (0.27, 0.25), 0.50: (0.29, 0.5),
                     1.00: (0.34, 1.0), "adaptive": (0.36, 0.99)},
}


@dataclass
class WebCell:
    """One (waveform, strategy) cell: fetch seconds and fidelity."""

    seconds: Cell
    fidelity: Cell


@dataclass
class WebTable:
    cells: dict = field(default_factory=dict)

    def cell(self, waveform, strategy):
        return self.cells[(waveform, strategy)]


def run_web_trial(waveform_name, strategy, seed=0):
    """One browsing run; returns the browser (stats attached).

    ``waveform_name == "ethernet"`` runs the baseline: unmodulated private
    Ethernet, direct to the web server, no distillation.
    """
    direct = waveform_name == "ethernet"
    if direct:
        world = ExperimentWorld(
            ethernet(duration=WAVEFORM_DURATION * 2), seed=seed
        )
    else:
        world = ExperimentWorld(waveform_name, seed=seed)
    store = ImageStore()
    image = store.add_benchmark_image()
    warden, distiller, web_server = build_web(
        world.sim, world.viceroy, world.network, store, direct=direct
    )
    world.jitter_service(web_server.service)
    if distiller is not None:
        world.jitter_service(distiller.service)
    api = OdysseyAPI(world.viceroy, "netscape")
    browser = CellophaneBrowser(
        world.sim, api, "netscape", "/odyssey/web", image.name, image.nbytes,
        policy=(1.0 if direct else strategy), measure_from=world.prime,
    )
    world.sim.call_in(world.start_offset(), browser.start)
    world.run_for(WAVEFORM_DURATION)
    return browser


@dataclass
class WebTrialOutcome:
    """One trial's numbers, detached from the live browser (picklable)."""

    seconds: float
    fidelity: float


def web_trial_outcome(waveform_name, strategy, seed=0):
    """One browsing run reduced to its reported cell values."""
    browser = run_web_trial(waveform_name, strategy, seed=seed)
    return WebTrialOutcome(seconds=browser.stats.mean_seconds,
                           fidelity=browser.stats.mean_fidelity)


def _web_cell(outcomes):
    return WebCell(seconds=Cell([o.seconds for o in outcomes]),
                   fidelity=Cell([o.fidelity for o in outcomes]))


def run_web_experiment(waveform_name, strategy, trials=DEFAULT_TRIALS,
                       master_seed=0):
    """One cell of Fig. 11."""
    outcomes = run_trials(
        "web", {"waveform_name": waveform_name, "strategy": strategy},
        trials, master_seed,
    )
    return _web_cell(outcomes)


def run_web_table(trials=DEFAULT_TRIALS, master_seed=0,
                  waveforms=REFERENCE_WAVEFORMS, strategies=WEB_STRATEGIES):
    """The full Fig. 11 table, fanned out cell x trial.

    The Ethernet baseline row rides in the same unit list as the
    modulated cells.
    """
    seeds = trial_seeds(trials, master_seed)
    cells = [("ethernet", 1.0)]
    cells.extend((waveform_name, strategy)
                 for waveform_name in waveforms for strategy in strategies)
    units = [
        TrialUnit("web", {"waveform_name": waveform_name,
                          "strategy": strategy}, seed)
        for waveform_name, strategy in cells for seed in seeds
    ]
    outcomes = run_units(units)
    table = WebTable()
    for (waveform_name, strategy), chunk in zip(cells,
                                                chunked(outcomes, trials)):
        label = "baseline" if waveform_name == "ethernet" else strategy
        table.cells[(waveform_name, label)] = _web_cell(chunk)
    return table
