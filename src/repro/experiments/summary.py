"""One-shot reproduction: run every table and figure, emit one report.

``python -m repro all --trials 5 --out report.txt`` regenerates the
complete evaluation — the artifact a referee would ask for.
"""

import io

from repro.experiments.calibration import calibration_lines


def run_everything(trials=3, master_seed=0, include_extensions=True):
    """Run all experiments; returns the report text.

    Imports are local so the cost of each experiment is only paid when the
    summary actually runs.
    """
    from repro.experiments import concurrent, demand, speech, supply, video, web
    from repro.experiments.report import (
        format_concurrent_table,
        format_demand_result,
        format_speech_table,
        format_supply_result,
        format_video_table,
        format_web_table,
    )

    out = io.StringIO()

    def emit(*lines):
        for line in lines:
            out.write(str(line) + "\n")

    emit("=" * 72)
    emit("Reproduction report — 'Agile Application-Aware Adaptation for "
         "Mobility'")
    emit(f"trials per observation: {trials}   master seed: {master_seed}")
    emit("=" * 72, "")
    emit(*calibration_lines())
    emit("")

    emit("-" * 72)
    for name, result in supply.run_all_supply(trials, master_seed).items():
        emit(format_supply_result(result))
    emit("")

    emit("-" * 72)
    for utilization, result in demand.run_all_demand(trials,
                                                     master_seed).items():
        emit(format_demand_result(result))
    emit("")

    for title, runner, formatter in (
        ("video", video.run_video_table, format_video_table),
        ("web", web.run_web_table, format_web_table),
        ("speech", speech.run_speech_table, format_speech_table),
        ("concurrent", concurrent.run_concurrent_table,
         format_concurrent_table),
    ):
        emit("-" * 72)
        emit(formatter(runner(trials=trials, master_seed=master_seed)))
        emit("")

    if include_extensions:
        from repro.experiments.adaptation import (
            format_adaptation,
            run_adaptation_experiment,
        )
        from repro.experiments.turbulence import (
            format_turbulence,
            run_turbulence_sweep,
        )

        emit("-" * 72)
        emit(format_adaptation(
            [run_adaptation_experiment(name, trials=trials,
                                       master_seed=master_seed)
             for name in ("step-up", "step-down")]
        ))
        emit("")
        emit("-" * 72)
        emit(format_turbulence(run_turbulence_sweep(trials=trials,
                                                    master_seed=master_seed)))
        emit("")

    emit("=" * 72)
    emit("end of report")
    return out.getvalue()


def main(trials=3, master_seed=0, out_path=None, include_extensions=True):
    """Run and print (and optionally save) the full report."""
    report = run_everything(trials=trials, master_seed=master_seed,
                            include_extensions=include_extensions)
    print(report, end="")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(report)
    return report
