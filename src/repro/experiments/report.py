"""Render experiment results as text tables, paper-vs-measured."""

from repro.telemetry.export import series_to_csv  # noqa: F401 - canonical home
from repro.experiments.concurrent import PAPER_FIG14
from repro.experiments.speech import PAPER_FIG12, SPEECH_STRATEGIES
from repro.experiments.supply import REFERENCE_WAVEFORMS
from repro.experiments.video import PAPER_FIG10, VIDEO_STRATEGIES
from repro.experiments.web import PAPER_FIG11, WEB_STRATEGIES


def _table(headers, rows, title=None):
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_video_table(table):
    """Fig. 10, with the paper's numbers alongside."""
    headers = ["waveform", "strategy", "drops", "paper", "fidelity", "paper"]
    rows = []
    for waveform in REFERENCE_WAVEFORMS:
        for strategy in VIDEO_STRATEGIES:
            cell = table.cell(waveform, strategy)
            paper_drops, paper_fid = PAPER_FIG10[waveform][strategy]
            rows.append([
                waveform, strategy,
                cell.drops, paper_drops,
                cell.fidelity, paper_fid,
            ])
    return _table(headers, rows,
                  title="Fig. 10 — Video Player Performance and Fidelity")


def format_web_table(table):
    """Fig. 11, with the paper's numbers alongside."""
    headers = ["waveform", "strategy", "seconds", "paper", "fidelity", "paper"]
    rows = []
    eth = table.cell("ethernet", "baseline")
    paper_eth = PAPER_FIG11["ethernet"]["baseline"]
    rows.append(["ethernet", "baseline", eth.seconds, paper_eth[0],
                 eth.fidelity, paper_eth[1]])
    for waveform in REFERENCE_WAVEFORMS:
        for strategy in WEB_STRATEGIES:
            cell = table.cell(waveform, strategy)
            paper_sec, paper_fid = PAPER_FIG11[waveform][strategy]
            rows.append([waveform, strategy, cell.seconds, paper_sec,
                         cell.fidelity, paper_fid])
    return _table(headers, rows,
                  title="Fig. 11 — Web Browser Performance and Fidelity")


def format_speech_table(table):
    """Fig. 12, with the paper's numbers alongside."""
    headers = ["waveform", "strategy", "seconds", "paper"]
    rows = []
    for waveform in REFERENCE_WAVEFORMS:
        for strategy in SPEECH_STRATEGIES:
            cell = table.cell(waveform, strategy)
            rows.append([waveform, strategy, cell,
                         PAPER_FIG12[waveform][strategy]])
    return _table(headers, rows, title="Fig. 12 — Speech Recognizer Performance")


def format_concurrent_table(table):
    """Fig. 14, with the paper's numbers alongside."""
    headers = ["policy", "drops", "paper", "v-fid", "paper",
               "web-s", "paper", "w-fid", "paper", "speech-s", "paper"]
    rows = []
    for policy, row in table.rows.items():
        paper = PAPER_FIG14[policy]
        rows.append([
            policy,
            row.video_drops, paper[0],
            row.video_fidelity, paper[1],
            row.web_seconds, paper[2],
            row.web_fidelity, paper[3],
            row.speech_seconds, paper[4],
        ])
    return _table(headers, rows,
                  title="Fig. 14 — Performance and Fidelity of Concurrent Applications")


def format_supply_result(result):
    """Fig. 8 summary: settling/detection metrics for one waveform."""
    lines = [f"Fig. 8 ({result.waveform}) — supply estimation agility"]
    if result.settling_cell is not None:
        lines.append(f"  settling time: {result.settling_cell} s "
                     "(paper: ~0 s step-up, 2.0 s step-down)")
    if result.detection_cell is not None:
        lines.append(f"  50% detection delay: {result.detection_cell} s")
    samples = result.merged_series()
    lines.append(f"  {len(samples)} samples over {len(result.trials)} trials")
    return "\n".join(lines)


def format_demand_result(result):
    """Fig. 9 summary for one utilization level."""
    pct = int(result.utilization * 100)
    return (
        f"Fig. 9 ({pct}% utilization/stream) — demand estimation agility\n"
        f"  second stream settling to nominal share: {result.settling_cell} s "
        "(paper: almost immediate at 10%, ~5 s at 100%)"
    )
