"""Robustness experiment: the connection lifecycle under injected faults.

Exercises the machinery the paper assumes but never stresses (§6.1.2 only
*modulates* the network, it never breaks it): link blackouts, loss bursts,
server stalls and slowdowns from :mod:`repro.faults`, ridden out by the
RPC layer's timeout/retry-with-backoff, plus a mid-run connection failover
through :meth:`~repro.core.warden.Warden.failover_connection`.

One trial runs a synthetic bulk client (fixed-size fetches through a
minimal warden) over the adversarial ``robustness`` scenario family.  The
client keeps a bandwidth window of tolerance registered, so the trial also
exercises the teardown-notification protocol: when its connection is torn
down mid-run, the registration is upcall-notified (``level is None``) and
the client re-registers against the replacement connection.

``run_robustness_comparison`` runs the same seed with and without a fault
plan; the delta is the measured cost of the injected faults.
"""

from dataclasses import dataclass, field

from repro.core.api import OdysseyAPI
from repro.core.resources import Resource
from repro.core.warden import Warden
from repro.errors import RpcError, RpcTimeout, ToleranceError
from repro.experiments.harness import ExperimentWorld
from repro.faults import Blackout, FaultPlan, LossBurst, ServerSlowdown, ServerStall
from repro.parallel.runner import TrialUnit, run_units
from repro.rpc.connection import RetryPolicy, RpcService
from repro.rpc.messages import ServerReply
from repro.trace.scenarios import generate_scenario

APP_NAME = "robust-client"
WINDOW_HANDLER = "bandwidth-window"
SERVER_NAME = "robust-server"
SERVER_PORT = "robust"
MOUNT_POINT = "/odyssey/robust"
OBJECT_PATH = "/odyssey/robust/stream"

#: Bytes per fetched object — a few windows' worth, so a mid-transfer
#: fault costs measurable re-fetched bytes.
OBJECT_BYTES = 48 * 1024
#: Server compute time per request (jittered per trial as usual).
SERVER_COMPUTE_SECONDS = 0.01
#: Pause between fetches: the client is demanding but not a tight spin.
THINK_SECONDS = 0.05
DEFAULT_DURATION = 240.0
#: Half-width of the registered window of tolerance, as a fraction of the
#: estimate at registration time.  Wide: the trial is about lifecycle, not
#: about upcall agility, so only large swings should fire.
WINDOW_SLACK = 0.5


class RobustWarden(Warden):
    """A minimal bulk warden whose fetches ride out faults via retry."""

    TSOPS = {"fetch": "tsop_fetch"}
    FIDELITIES = {"full": 1.0}

    def __init__(self, sim, viceroy, name="robust", retry=None, **kwargs):
        super().__init__(sim, viceroy, name, **kwargs)
        self.retry = retry or RetryPolicy()

    def tsop_fetch(self, app, rest, inbuf):
        """Fetch one object; returns bytes fetched.  Generator."""
        conn = self.primary_connection(rest)
        _, _, nbytes = yield from conn.fetch_with_retry(
            "get", body_bytes=64, retry=self.retry
        )
        return nbytes


@dataclass
class RobustnessResult:
    """Counters from one trial of the lifecycle-under-faults client."""

    policy: str
    #: Fetches that completed (possibly after retries).
    completed: int = 0
    #: Fetches abandoned after the whole retry budget timed out.
    exhausted: int = 0
    #: Fetches that died because their connection was closed under them
    #: (the failover window); the next fetch uses the replacement.
    aborted: int = 0
    bytes_fetched: int = 0
    fetch_seconds: list = field(default_factory=list, repr=False)
    #: RPC timeouts and retry attempts, summed over every connection the
    #: warden ever owned (including pre-failover ones).
    timeouts: int = 0
    retries: int = 0
    failovers: int = 0
    #: Window-of-tolerance upcalls with a real level (estimate left window).
    window_violations: int = 0
    #: Teardown upcalls (``level is None``) from connection unregistration.
    teardown_notices: int = 0
    #: Successful ``request`` registrations over the trial.
    registrations: int = 0
    #: Upcall handlers that raised (must stay zero: the dispatcher survives
    #: them, but this client's handler never throws).
    upcall_failures: int = 0
    #: Packets discarded by injected loss bursts.
    packets_dropped: int = 0
    #: Server stall/slowdown activations that fired.
    fault_events: int = 0

    @property
    def attempts(self):
        return self.completed + self.exhausted + self.aborted

    @property
    def mean_fetch_seconds(self):
        if not self.fetch_seconds:
            return 0.0
        return sum(self.fetch_seconds) / len(self.fetch_seconds)


def default_fault_plan(duration=DEFAULT_DURATION):
    """The benchmark's stock plan: blackout, loss burst, stall, slowdown.

    All windows sit well inside ``duration`` so the trace resumes after
    every fault (a blackout running past the trace end would pin bandwidth
    at zero forever).
    """
    quarter = duration / 4.0
    return FaultPlan(
        [
            Blackout(start=quarter, duration=8.0),
            LossBurst(start=2.0 * quarter, duration=6.0, drop_fraction=0.5),
            ServerStall(start=2.5 * quarter, duration=8.0),
            ServerSlowdown(start=3.0 * quarter, duration=10.0, factor=4.0),
        ],
        name="bench-robustness",
    )


def run_robustness_trial(policy="odyssey", seed=0, duration=DEFAULT_DURATION,
                         trace=None, faults=None, failover_at=None,
                         retry=None):
    """One lifecycle-under-faults run; returns a :class:`RobustnessResult`.

    Parameters
    ----------
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  Blackouts are folded
        into the trace before the world is built (links capture the trace
        at construction); runtime faults are armed on the built world.
    failover_at:
        If given, the warden's connection is failed over to a fresh one at
        this absolute time — the mid-run unregister/re-register exercise.
    """
    trace = trace or generate_scenario("robustness", duration, seed=seed)
    if faults is not None:
        trace = faults.modulate(trace)
    # prime=0: fault-plan times are absolute simulation seconds.
    world = ExperimentWorld(trace, policy=policy, prime=0.0, seed=seed)

    host = world.network.add_host(SERVER_NAME)
    service = RpcService(world.sim, host, SERVER_PORT)

    def _get(body):
        return ServerReply(
            body={"ok": True}, body_bytes=64,
            compute_seconds=SERVER_COMPUTE_SECONDS,
            bulk=service.make_bulk(OBJECT_BYTES),
        )

    service.register("get", _get)
    world.jitter_service(service)

    warden = RobustWarden(world.sim, world.viceroy, "robust", retry=retry)
    world.viceroy.mount(MOUNT_POINT, warden)
    all_connections = [warden.open_connection(SERVER_NAME, SERVER_PORT)]

    injector = None
    if faults is not None:
        injector = faults.arm(
            world.sim, network=world.network, services=[service],
            rng=world.rng,
        )

    result = RobustnessResult(policy=policy)
    api = OdysseyAPI(world.viceroy, APP_NAME)

    def ensure_registration():
        """(Re-)register the bandwidth window if none is live."""
        if world.viceroy.registered_requests(APP_NAME):
            return
        level = api.availability(OBJECT_PATH)
        if level is None:
            return  # no estimate yet; try again after the next fetch
        try:
            api.request(
                OBJECT_PATH, Resource.NETWORK_BANDWIDTH,
                level * (1.0 - WINDOW_SLACK), level * (1.0 + WINDOW_SLACK),
                handler=WINDOW_HANDLER,
            )
        except ToleranceError:
            return  # estimate moved underneath us; next fetch retries
        result.registrations += 1

    def on_window(upcall):
        if upcall.level is None:
            result.teardown_notices += 1
        else:
            result.window_violations += 1
        ensure_registration()

    api.on_upcall(WINDOW_HANDLER, on_window)

    def client_loop():
        while True:
            started = world.sim.now
            try:
                nbytes = yield from api.tsop(OBJECT_PATH, "fetch")
            except RpcTimeout:
                result.exhausted += 1
            except RpcError:
                result.aborted += 1
            else:
                result.completed += 1
                result.bytes_fetched += nbytes
                result.fetch_seconds.append(world.sim.now - started)
            ensure_registration()
            yield world.sim.timeout(THINK_SECONDS)

    world.sim.process(client_loop(), name="robust.client")

    if failover_at is not None:
        def do_failover():
            replacement = warden.failover_connection(warden.primary_connection())
            all_connections.append(replacement)

        world.sim.call_at(failover_at, do_failover)

    world.sim.run(until=duration)

    result.timeouts = sum(c.timeouts for c in all_connections)
    result.retries = sum(c.retries for c in all_connections)
    result.failovers = warden.failovers
    result.upcall_failures = len(world.viceroy.upcalls.failures)
    if injector is not None:
        result.packets_dropped = injector.packets_dropped
        result.fault_events = len(injector.events)
    return result


def run_robustness_comparison(policy="odyssey", seed=0,
                              duration=DEFAULT_DURATION, faults=None,
                              failover_at=None, retry=None):
    """The same trial clean and faulted; returns ``(clean, faulted)``.

    ``seed`` must be an int (not a shared :class:`RngRegistry`): each trial
    builds its own registry from it, so both see an identical trace and
    jitter streams and the delta is attributable to the faults alone.
    """
    faults = faults or default_fault_plan(duration)
    base = {"policy": policy, "duration": duration,
            "failover_at": failover_at, "retry": retry}
    clean, faulted = run_units([
        TrialUnit("robustness", base, seed),
        TrialUnit("robustness", {**base, "faults": faults}, seed),
    ])
    return clean, faulted
