"""Shared experiment machinery: worlds, priming, seeding, jitter.

Every experiment builds an :class:`ExperimentWorld` — simulator, modulated
network, viceroy with the requested policy — from a waveform name and a
trial seed, then attaches servers and applications.  Conventions match the
paper's §6.1.3/§6.2 methodology:

- traces are prefixed with :data:`PRIME_SECONDS` of the waveform's initial
  bandwidth so the system reaches steady state before observation;
- each trial has its own master seed; server compute times carry a few
  percent of seeded jitter, which is where the paper's (small) standard
  deviations come from;
- measurements are filtered to ``t >= PRIME_SECONDS``.
"""

from repro import telemetry
from repro.core.policies import (
    BlindOptimismPolicy,
    LaissezFairePolicy,
    OdysseyPolicy,
)
from repro.core.upcalls import UpcallDispatcher
from repro.core.viceroy import Viceroy
from repro.errors import ReproError
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.trace.replay import ReplayTrace
from repro.trace.waveforms import waveform as make_waveform

#: The paper's priming period (§6.2.1): "we primed it for thirty seconds".
PRIME_SECONDS = 30.0
#: Trials per observation (§6.2.2: "the mean of five trials").
DEFAULT_TRIALS = 5
#: Fractional jitter applied to server compute times per trial.
COMPUTE_JITTER = 0.05

POLICIES = ("odyssey", "laissez-faire", "blind-optimism")


def seeded_rngs(trials, master_seed=0):
    """One :class:`RngRegistry` per trial, independently seeded."""
    base = RngRegistry(master_seed)
    return [base.spawn(f"trial-{i}") for i in range(trials)]


class ExperimentWorld:
    """Simulator + modulated network + viceroy, ready for apps and servers."""

    def __init__(self, waveform, policy="odyssey", prime=PRIME_SECONDS, seed=0,
                 upcall_batch=False, connectivity=None,
                 batched_estimation=False):
        if isinstance(waveform, ReplayTrace):
            trace = waveform
        else:
            trace = make_waveform(waveform)
        self.base_trace = trace
        self.prime = prime
        self.trace = trace.shifted(prime)
        self.rng = seed if isinstance(seed, RngRegistry) else RngRegistry(seed)
        self.sim = Simulator()
        self.network = Network(self.sim, self.trace)
        self.policy_name = policy
        # ``upcall_batch`` trades per-upcall timing granularity for one
        # event per burst (see UpcallDispatcher); the fleet worlds turn it
        # on, the single-application figures keep the golden fine-grained
        # schedule.
        upcalls = UpcallDispatcher(self.sim, batch=True) if upcall_batch \
            else None
        # ``batched_estimation`` backs the odyssey policy's per-connection
        # throughput filters with one vectorized lane batch (bit-identical
        # to the scalar filters); the fleet worlds turn it on, the figure
        # experiments keep the scalar reference path.
        self.batched_estimation = batched_estimation
        # ``connectivity`` forwards hysteresis overrides (degrade_after /
        # disconnect_after / recover_after) to every tracker this world's
        # viceroy creates; chaos worlds tighten them so a storm shorter
        # than the default thresholds still drives the state machine.
        self.viceroy = Viceroy(
            self.sim, self.network, policy=self._make_policy(policy),
            upcalls=upcalls, connectivity=connectivity,
        )
        rec = telemetry.RECORDER
        if rec.enabled:
            # Each trial builds a fresh simulator; the recorder outlives
            # them, so point its clock at this world's.
            rec.bind_clock(lambda: self.sim.now)
            rec.event("experiment.world", policy=policy,
                      waveform=getattr(trace, "name", None), prime=prime)

    def _make_policy(self, name):
        if name == "odyssey":
            return OdysseyPolicy(batched=self.batched_estimation)
        if name == "laissez-faire":
            return LaissezFairePolicy()
        if name == "blind-optimism":
            return BlindOptimismPolicy(self.trace)
        raise ReproError(f"unknown policy {name!r}; known: {POLICIES}")

    def jitter_service(self, service, fraction=COMPUTE_JITTER):
        """Give a server's compute times this trial's seeded jitter."""
        service.set_jitter(self.rng.stream("server-jitter"), fraction)

    def start_offset(self, bound=0.25):
        """A small seeded delay for staggering application start times."""
        return self.rng.stream("start-offsets").uniform(0.0, bound)

    def run_for(self, seconds):
        """Advance the simulation to ``prime + seconds``."""
        self.sim.run(until=self.prime + seconds)

    def relative(self, series):
        """Shift a (time, value) series so the waveform starts at t = 0."""
        return [(t - self.prime, v) for (t, v) in series]
