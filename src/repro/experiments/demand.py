"""Fig. 9 — agility of bandwidth estimation under varying demand.

"We began these experiments with a single bitstream application running on
a client. ... After thirty seconds of observation, we introduced a second,
identical bitstream client.  To study sensitivity of the results to offered
load, we repeated the experiments with each application attempting to
consume 10%, 45%, and 100% of the nominal throughput.  All experiments were
conducted at the higher of our two modulated bandwidths."
"""

from dataclasses import dataclass, field

from repro import telemetry
from repro.apps.bitstream import build_bitstream
from repro.estimation.agility import settling_time
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld
from repro.experiments.stats import Cell
from repro.parallel.runner import TrialUnit, chunked, run_trials, run_units, trial_seeds
from repro.trace.waveforms import HIGH_BANDWIDTH, constant

#: The paper's three offered loads.
UTILIZATIONS = (0.10, 0.45, 1.00)
#: Seconds of single-stream observation before the second stream starts.
SECOND_STREAM_AT = 30.0
#: Seconds of observation after the second stream starts.
TAIL_SECONDS = 30.0
#: How often the sampler records availability estimates.
SAMPLE_PERIOD = 0.25


def moving_average(series, window):
    """Centered-ish trailing moving average of a (time, value) series."""
    smoothed = []
    values = []
    for t, v in series:
        values.append(v)
        if len(values) > window:
            values.pop(0)
        smoothed.append((t, sum(values) / len(values)))
    return smoothed


@dataclass
class DemandTrial:
    """One trial: total estimate plus per-stream availability series."""

    utilization: float
    total_series: list  # (t, bytes/s) — upper curve of Fig. 9
    second_series: list  # (t, bytes/s) — lower curve of Fig. 9
    first_series: list
    second_settling: float  # time for stream 2 to settle at its nominal share


@dataclass
class DemandResult:
    """Fig. 9 for one utilization level."""

    utilization: float
    trials: list = field(default_factory=list)

    @property
    def settling_cell(self):
        return Cell([t.second_settling for t in self.trials])


def run_demand_trial(utilization, seed=0, chunk_bytes=32 * 1024):
    """One two-stream run; returns a :class:`DemandTrial`."""
    world = ExperimentWorld(
        constant(HIGH_BANDWIDTH, duration=SECOND_STREAM_AT + TAIL_SECONDS + 5),
        seed=seed,
    )
    target = utilization * HIGH_BANDWIDTH if utilization < 1.0 else None
    app1, _, server1 = build_bitstream(
        world.sim, world.viceroy, world.network, index=0,
        chunk_bytes=chunk_bytes, target_rate=target,
    )
    world.jitter_service(server1.service)
    app1.start()

    samples = {"total": [], "first": [], "second": []}
    second_conn = []

    def sampler():
        shares = world.viceroy.policy.shares
        while True:
            yield world.sim.timeout(SAMPLE_PERIOD)
            total = shares.total
            if total is None:
                continue
            now = world.sim.now
            samples["total"].append((now, total))
            samples["first"].append((now, shares.availability("bitstream-0:0")))
            if second_conn:
                samples["second"].append(
                    (now, shares.availability(second_conn[0]))
                )

    def launch_second():
        yield world.sim.timeout(world.prime + SECOND_STREAM_AT)
        app2, warden2, server2 = build_bitstream(
            world.sim, world.viceroy, world.network, index=1,
            chunk_bytes=chunk_bytes, target_rate=target,
        )
        world.jitter_service(server2.service)
        second_conn.append(warden2.primary_connection().connection_id)
        app2.start()

    world.sim.process(sampler(), name="sampler")
    world.sim.process(launch_second(), name="launch-second")
    world.run_for(SECOND_STREAM_AT + TAIL_SECONDS)

    rec = telemetry.RECORDER
    if rec.enabled:
        rec.sample_series("fig9.total", samples["total"],
                          utilization=utilization, prime=world.prime)
        rec.sample_series("fig9.second", samples["second"],
                          utilization=utilization, prime=world.prime)

    def rel(series):
        return [(t - world.prime, v) for (t, v) in series]

    second_series = rel(samples["second"])
    # Stream 2's nominal value: the fair half of the link.  (The usage
    # weights equalize at every offered load, since both streams attempt
    # the same rate.)  Settling is judged on a short moving average, as one
    # would read it off the paper's plotted curves — instantaneous
    # availability estimates jitter with each burst at light loads.
    nominal = HIGH_BANDWIDTH / 2.0
    settling = settling_time(
        moving_average(second_series, window=8), SECOND_STREAM_AT, nominal,
        tolerance=0.25, horizon=SECOND_STREAM_AT + TAIL_SECONDS - 1.0,
    )
    return DemandTrial(
        utilization,
        rel(samples["total"]),
        second_series,
        rel(samples["first"]),
        settling,
    )


def run_demand_experiment(utilization, trials=DEFAULT_TRIALS, master_seed=0):
    """Fig. 9 for one utilization level (trials via the runner)."""
    collected = run_trials("demand", {"utilization": utilization},
                           trials, master_seed)
    return DemandResult(utilization, collected)


def run_all_demand(trials=DEFAULT_TRIALS, master_seed=0):
    """All three panels of Fig. 9, fanned out as one flat unit list."""
    seeds = trial_seeds(trials, master_seed)
    units = [TrialUnit("demand", {"utilization": u}, seed)
             for u in UTILIZATIONS for seed in seeds]
    collected = run_units(units)
    return {
        u: DemandResult(u, chunk)
        for u, chunk in zip(UTILIZATIONS, chunked(collected, trials))
    }
