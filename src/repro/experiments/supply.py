"""Fig. 8 — agility of bandwidth estimation under varying supply.

"To measure agility with respect to bandwidth supply, we ran a synthetic
Odyssey application, bitstream, that consumed data as fast as possible
through a streaming warden over a single connection from a server.  During
data transfer, we varied network bandwidth in accordance with the reference
waveforms."
"""

from dataclasses import dataclass, field

from repro import telemetry
from repro.apps.base import negotiate
from repro.apps.bitstream import build_bitstream
from repro.core.api import OdysseyAPI
from repro.core.resources import Resource
from repro.estimation.agility import detection_delay, settling_time, tracking_error
from repro.experiments.harness import DEFAULT_TRIALS, ExperimentWorld
from repro.experiments.stats import Cell
from repro.parallel.runner import TrialUnit, chunked, run_trials, run_units, trial_seeds
from repro.trace.waveforms import (
    HIGH_BANDWIDTH,
    LOW_BANDWIDTH,
    WAVEFORM_DURATION,
    waveform as make_waveform,
)

#: The four §6.1.1 reference waveforms.
REFERENCE_WAVEFORMS = ("step-up", "step-down", "impulse-up", "impulse-down")

#: Tolerance-window half-width factor for the fig8 supply tracker: each
#: registration spans [level/FACTOR, level*FACTOR].  The reference
#: waveforms move bandwidth by ~3x, so every transition violates the
#: window and produces a genuine upcall in the trial's event trace.
TRACK_WINDOW_FACTOR = 2.0


def _levels(name):
    """(initial level, post-transition level, transition time) for a waveform."""
    transition = WAVEFORM_DURATION / 2
    if name == "step-up":
        return LOW_BANDWIDTH, HIGH_BANDWIDTH, transition
    if name == "step-down":
        return HIGH_BANDWIDTH, LOW_BANDWIDTH, transition
    if name == "impulse-up":
        return LOW_BANDWIDTH, HIGH_BANDWIDTH, None
    if name == "impulse-down":
        return HIGH_BANDWIDTH, LOW_BANDWIDTH, None
    raise ValueError(f"not a reference waveform: {name!r}")


@dataclass
class SupplyTrial:
    """One trial's estimate series (times relative to waveform start)."""

    waveform: str
    series: list  # (t, estimated bandwidth bytes/s)
    settling: float  # seconds (steps only; None for impulses)
    detection: float  # seconds to cross halfway (steps only)


@dataclass
class SupplyResult:
    """Fig. 8 for one waveform: five overlaid trials plus summary metrics."""

    waveform: str
    trials: list = field(default_factory=list)

    @property
    def settling_cell(self):
        values = [t.settling for t in self.trials if t.settling is not None]
        return Cell(values) if values else None

    @property
    def detection_cell(self):
        values = [t.detection for t in self.trials if t.detection is not None]
        return Cell(values) if values else None

    def merged_series(self):
        """All trials' samples merged, as the paper's dot plots do."""
        merged = []
        for trial in self.trials:
            merged.extend(trial.series)
        merged.sort()
        return merged


def _register_tracker(world, path, factor=TRACK_WINDOW_FACTOR):
    """Arm a window-of-tolerance tracker on ``path`` after priming.

    Registers a bandwidth window around the current estimate and, on each
    violation upcall, re-registers around the level the upcall delivered —
    the paper's negotiate-again protocol, run purely for observation.  The
    registration itself is a read-only check, so the estimate series the
    trial measures is unchanged; the upcalls it provokes are what give the
    fig8 event trace its application-visible notifications.
    """
    api = OdysseyAPI(world.viceroy, "fig8-tracker")

    def window_for(level):
        if level is None or level <= 0:
            return (0.0, float("inf"))
        return (level / factor, level * factor)

    def handler(upcall):
        if upcall.level is None:
            return None  # connection torn down; nothing to track any more
        return negotiate(api, path, Resource.NETWORK_BANDWIDTH, window_for,
                         lambda level: None, level_hint=upcall.level,
                         handler="bandwidth")

    api.on_upcall("bandwidth", handler)
    world.sim.call_at(
        world.prime,
        lambda: negotiate(api, path, Resource.NETWORK_BANDWIDTH, window_for,
                          lambda level: None,
                          level_hint=api.availability(path),
                          handler="bandwidth"),
    )
    return api


def run_supply_trial(waveform_name, seed=0, chunk_bytes=64 * 1024,
                     track_window=True):
    """One bitstream run over one waveform; returns a :class:`SupplyTrial`."""
    world = ExperimentWorld(waveform_name, seed=seed)
    app, warden, server = build_bitstream(
        world.sim, world.viceroy, world.network, chunk_bytes=chunk_bytes
    )
    world.jitter_service(server.service)
    app.start()
    if track_window:
        _register_tracker(world, app.path)
    world.run_for(WAVEFORM_DURATION)
    series = world.relative(world.viceroy.policy.shares.total_history)
    rec = telemetry.RECORDER
    if rec.enabled:
        # Absolute sim times keep the trace monotonic; ``prime`` lets
        # consumers shift to waveform-relative time themselves.
        rec.sample_series("fig8.estimate",
                          world.viceroy.policy.shares.total_history,
                          waveform=waveform_name, prime=world.prime)
    initial, target, transition = _levels(waveform_name)
    settling = detection = None
    if transition is not None:
        settling = settling_time(
            series, transition, target, tolerance=0.10,
            horizon=WAVEFORM_DURATION - 1.0,
        )
        detection = detection_delay(series, transition, initial, target)
    return SupplyTrial(waveform_name, series, settling, detection)


def run_supply_experiment(waveform_name, trials=DEFAULT_TRIALS, master_seed=0):
    """Fig. 8 for one waveform: ``trials`` seeded runs (via the runner)."""
    collected = run_trials("supply", {"waveform_name": waveform_name},
                           trials, master_seed)
    return SupplyResult(waveform_name, collected)


def run_all_supply(trials=DEFAULT_TRIALS, master_seed=0):
    """All four panels of Fig. 8, fanned out as one flat unit list."""
    seeds = trial_seeds(trials, master_seed)
    units = [TrialUnit("supply", {"waveform_name": name}, seed)
             for name in REFERENCE_WAVEFORMS for seed in seeds]
    collected = run_units(units)
    return {
        name: SupplyResult(name, chunk)
        for name, chunk in zip(REFERENCE_WAVEFORMS,
                               chunked(collected, trials))
    }


def theoretical_series(waveform_name, step=0.25):
    """The dashed 'theoretical bandwidth' line of Fig. 8."""
    trace = make_waveform(waveform_name)
    points = []
    t = 0.0
    while t <= trace.duration:
        points.append((t, trace.bandwidth_at(t)))
        t += step
    return points
