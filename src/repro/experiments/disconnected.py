"""Disconnected operation: degraded service, deferral, and reintegration.

The paper's adaptation story assumes the network degrades but never dies;
this experiment stresses the extension that handles actual death.  One
trial walks the client through the canonical disconnected-operation arc:

1. **connect** — a browsing client fetches a small rotating corpus through
   the web warden (distillation path), warming the warden cache, with a
   bandwidth window of tolerance registered;
2. **blackout** — the link goes dark for a fixed window.  Fetch deadlines
   expire, the connection's :class:`~repro.connectivity.state.ConnectivityTracker`
   walks CONNECTED → DEGRADED → DISCONNECTED, and the viceroy issues
   level-0 "disconnected" upcalls;
3. **serve stale** — reads are answered from the warden cache with their
   staleness recorded; misses fail fast with
   :class:`~repro.errors.Disconnected` instead of hanging in retries;
4. **queue writes** — the client keeps submitting a form; while
   disconnected the mutating tsop lands in the deferred-op log;
5. **reconnect & reintegrate** — heartbeat probes detect the link's
   return (DISCONNECTED → RECONNECTING → CONNECTED) and the warden
   replays the queued ops in order, reporting each as applied or
   conflicted.

A viceroy checkpoint/restore (JSON round-tripped) runs mid-trial,
simulating a restart that must not lose live registrations.

``run_disconnected_comparison`` repeats the identical trial with the
warden cache effectively disabled — the measured value of degraded
service is the gap in blackout-window success rates.
"""

import json
from dataclasses import dataclass, field

from repro.apps.web.images import ImageStore
from repro.apps.web.warden import build_web
from repro.core.api import OdysseyAPI
from repro.core.resources import Resource
from repro.errors import Disconnected, RpcError, RpcTimeout, ToleranceError
from repro.experiments.harness import ExperimentWorld
from repro.faults import Blackout, FaultPlan
from repro.parallel.runner import TrialUnit, run_units
from repro.rpc.connection import RetryPolicy
from repro.trace.scenarios import generate_scenario

APP_NAME = "disconnected-client"
WINDOW_HANDLER = "bandwidth-window"
WEB_PATH = "/odyssey/web/browse"
FORM_NAME = "guestbook"

DEFAULT_DURATION = 180.0
#: The blackout window: long enough for the tracker to reach DISCONNECTED
#: with time left over for pure cache service, ending well before the
#: trace does so recovery and reintegration complete on-trace.
BLACKOUT_START = 60.0
BLACKOUT_SECONDS = 45.0
#: Pause between page fetches.
FETCH_THINK = 0.5
#: Pause between form submissions (the mutating traffic).
POST_INTERVAL = 2.0
#: Images in the rotating corpus; small, so the cache holds all of them
#: and blackout-window reads can be answered stale.
CORPUS_IMAGES = 4
#: When the mid-trial checkpoint/restore runs — before the blackout, while
#: the window registration is alive and must survive the restart.
RESTART_AT = 30.0
#: Fetch/post budget: fail into degraded service within a few seconds
#: rather than exhausting the full backoff schedule.
DEFAULT_RETRY = RetryPolicy(timeout=1.0, retries=2, backoff=0.2,
                            multiplier=2.0, cap=1.0, deadline=3.0)
PROBE_INTERVAL = 2.0
PROBE_TIMEOUT = 1.5
#: Half-width of the bandwidth window, as a fraction of the estimate.
WINDOW_SLACK = 0.6


@dataclass
class DisconnectedResult:
    """Counters from one disconnected-operation trial."""

    policy: str
    cache_enabled: bool
    #: Reads answered live from the network.
    fetched_live: int = 0
    #: Reads answered from cache while degraded/disconnected.
    served_stale: int = 0
    #: Reads that failed fast with a typed Disconnected error.
    failed_disconnected: int = 0
    #: Reads that surfaced a plain RpcTimeout (deadline on a cache miss).
    failed_timeout: int = 0
    #: Age (seconds) of every stale copy served.
    stale_ages: list = field(default_factory=list, repr=False)
    #: Form posts acknowledged live by the origin server.
    posts_live: int = 0
    #: Form posts queued to the deferred-op log.
    posts_deferred: int = 0
    #: Form posts whose retry budget expired before deferral kicked in.
    posts_timeout: int = 0
    #: Reintegration reports by status ("applied"/"conflict"/...).
    reintegrated: dict = field(default_factory=dict)
    #: Replay happened in enqueue order (sequence numbers ascending).
    replay_in_order: bool = True
    #: Level-0 upcalls the viceroy issued on DISCONNECTED.
    disconnect_upcalls: int = 0
    #: The tracker's transition history: (time, source, target, reason).
    transitions: list = field(default_factory=list, repr=False)
    #: Final connectivity state of the warden's connection.
    final_state: str = ""
    #: Fetch attempts started inside the blackout window / how many of
    #: them returned data (live or stale).
    blackout_attempts: int = 0
    blackout_successes: int = 0
    #: Mid-trial checkpoint/restore: registrations snapshotted, restored,
    #: and dropped (unknown connection) by the simulated restart.
    checkpoint_registrations: int = 0
    checkpoint_restored: int = 0
    checkpoint_dropped: int = 0
    #: Window re-registrations over the whole trial.
    registrations: int = 0

    @property
    def blackout_success_rate(self):
        """Fraction of blackout-window reads that returned data."""
        if not self.blackout_attempts:
            return 0.0
        return self.blackout_successes / self.blackout_attempts

    @property
    def mean_staleness(self):
        if not self.stale_ages:
            return 0.0
        return sum(self.stale_ages) / len(self.stale_ages)


def default_blackout_plan(start=BLACKOUT_START, duration=BLACKOUT_SECONDS):
    """A single hard blackout — the disconnection under test."""
    return FaultPlan([Blackout(start=start, duration=duration)],
                     name="disconnection")


def run_disconnected_trial(policy="odyssey", seed=0, duration=DEFAULT_DURATION,
                           faults=None, cache_enabled=True, max_staleness=None,
                           retry=DEFAULT_RETRY):
    """One disconnected-operation run; returns a :class:`DisconnectedResult`.

    ``cache_enabled=False`` shrinks the warden cache to one byte — every
    insert is refused, so degraded service has nothing to serve and every
    blackout read fails.  That is the baseline the benchmark compares
    degraded-service mode against.
    """
    faults = faults or default_blackout_plan()
    blackout = faults.blackouts[0]
    blackout_end = blackout.start + blackout.duration
    trace = faults.modulate(generate_scenario("robustness", duration, seed=seed))
    # prime=0: fault-plan times are absolute simulation seconds.
    world = ExperimentWorld(trace, policy=policy, prime=0.0, seed=seed)

    store = ImageStore()
    corpus = store.add_synthetic_corpus(CORPUS_IMAGES, seed=seed)
    warden, distiller, web_server = build_web(
        world.sim, world.viceroy, world.network, store,
        retry=retry, max_staleness=max_staleness,
        **({} if cache_enabled else {"cache_bytes": 1}),
    )
    world.jitter_service(web_server.service)
    world.jitter_service(distiller.service)
    conn = warden.primary_connection()
    warden.start_heartbeat(conn, interval=PROBE_INTERVAL,
                           timeout=PROBE_TIMEOUT)

    result = DisconnectedResult(policy=policy, cache_enabled=cache_enabled)
    api = OdysseyAPI(world.viceroy, APP_NAME)
    faults.arm(world.sim, network=world.network,
               services=[web_server.service, distiller.service],
               rng=world.rng)

    def ensure_registration():
        """(Re-)register the bandwidth window if none is live."""
        if world.viceroy.registered_requests(APP_NAME):
            return
        tracker = warden.connectivity(conn)
        if tracker is not None and tracker.offline:
            return  # pointless while dark; re-register after recovery
        level = api.availability(WEB_PATH)
        if level is None:
            return
        try:
            api.request(
                WEB_PATH, Resource.NETWORK_BANDWIDTH,
                level * (1.0 - WINDOW_SLACK), level * (1.0 + WINDOW_SLACK),
                handler=WINDOW_HANDLER,
            )
        except ToleranceError:
            return  # estimate moved underneath us; retried after next fetch
        result.registrations += 1

    def on_window(upcall):
        if upcall.level == 0.0:
            result.disconnect_upcalls += 1
        ensure_registration()

    api.on_upcall(WINDOW_HANDLER, on_window)

    def in_blackout(t):
        return blackout.start <= t < blackout_end

    def fetch_loop():
        index = 0
        while True:
            name = corpus[index % len(corpus)].name
            index += 1
            counted = in_blackout(world.sim.now)
            if counted:
                result.blackout_attempts += 1
            stale_before = warden.stale_served
            try:
                yield from api.tsop(WEB_PATH, "get-image", {"name": name})
            except Disconnected:
                result.failed_disconnected += 1
            except RpcTimeout:
                result.failed_timeout += 1
            else:
                if warden.stale_served > stale_before:
                    result.served_stale += 1
                else:
                    result.fetched_live += 1
                if counted:
                    result.blackout_successes += 1
            ensure_registration()
            yield world.sim.timeout(FETCH_THINK)

    def post_loop():
        # The version advances on a live acknowledgement or a deferral
        # (optimistic local versioning), but *not* on a timeout: a post
        # whose reply was lost may already have been applied server-side,
        # so its version is re-submitted and the origin reports it as a
        # conflict — both reintegration outcomes show up in the reports.
        version = 1
        while True:
            try:
                reply = yield from api.tsop(
                    WEB_PATH, "post-form",
                    {"form": FORM_NAME, "version": version},
                )
            except RpcTimeout:
                result.posts_timeout += 1
            except RpcError:
                pass  # connection torn down under the call
            else:
                version += 1
                if reply.get("deferred"):
                    result.posts_deferred += 1
                else:
                    result.posts_live += 1
            yield world.sim.timeout(POST_INTERVAL)

    world.sim.process(fetch_loop(), name="disc.fetch")
    world.sim.process(post_loop(), name="disc.post")

    def do_restart():
        """Simulated viceroy restart: checkpoint, JSON round-trip, restore."""
        snapshot = json.loads(json.dumps(world.viceroy.checkpoint()))
        restored, dropped = world.viceroy.restore(snapshot)
        result.checkpoint_registrations = len(snapshot["registrations"])
        result.checkpoint_restored = restored
        result.checkpoint_dropped = len(dropped)

    world.sim.call_at(RESTART_AT, do_restart)
    world.sim.run(until=duration)

    result.stale_ages = list(warden.staleness_served)
    # An op can be requeued (link relapsed or its replay timed out) before
    # its final execution report: count each op's *last* status, and check
    # ordering over execution reports only — requeue entries are
    # bookkeeping, not replays.
    final_status = {}
    execution_seqs = []
    for report in warden.reintegration_reports:
        final_status[report.op.seq] = report.status
        if report.status != "requeued":
            execution_seqs.append(report.op.seq)
    for status in final_status.values():
        result.reintegrated[status] = result.reintegrated.get(status, 0) + 1
    result.replay_in_order = execution_seqs == sorted(execution_seqs)
    tracker = warden.connectivity(conn)
    if tracker is not None:
        result.transitions = [
            (t.time, t.source.value, t.target.value, t.reason)
            for t in tracker.transitions
        ]
        result.final_state = tracker.state.value
    return result


def run_disconnected_comparison(policy="odyssey", seed=0,
                                duration=DEFAULT_DURATION, faults=None,
                                max_staleness=None):
    """The same blackout with and without the cache: ``(cached, uncached)``.

    Both runs share the seed, trace, fault plan and traffic pattern; the
    success-rate gap inside the blackout window is the measured value of
    degraded-service mode.
    """
    base = {"policy": policy, "duration": duration, "faults": faults,
            "max_staleness": max_staleness}
    cached, uncached = run_units([
        TrialUnit("disconnected", {**base, "cache_enabled": True}, seed),
        TrialUnit("disconnected", {**base, "cache_enabled": False}, seed),
    ])
    return cached, uncached
