"""The chaos experiment family: graceful degradation under fault storms.

The paper measures agility against *gentle* bandwidth waveforms; this
family measures what the same adaptation machinery does when the
environment turns hostile — regional blackouts, flapping links, server
pool outages, and client churn, each compiled into a seeded
:class:`~repro.chaos.storms.ChaosProfile` and fanned across a sharded
fleet by :func:`~repro.chaos.harness.run_chaos_fleet`.

One row of the resulting matrix is one profile's graceful-degradation
scorecard: auditor violations (must be zero), deferred-op conservation,
the fleet-wide fidelity floor, worst-case post-storm recovery time, and
the crash-drill ledger.  The sweep shares its client population, seed,
and scenario family across rows, so the profiles are directly
comparable — the only independent variable is the storm.
"""

from dataclasses import dataclass, field

from repro.chaos.harness import run_chaos_fleet
from repro.chaos.storms import PROFILE_NAMES

#: Sweep defaults: a small fleet that still exercises every mechanism
#: (multiple shards, enough clients per shard for churn to sample from).
DEFAULT_CLIENTS = 128
DEFAULT_SHARDS = 4
DEFAULT_DURATION = 30.0


@dataclass
class ChaosMatrix:
    """One scorecard row per profile, in sweep order."""

    clients: int
    shards: int
    duration: float
    family: str
    master_seed: int
    #: Profile name -> ChaosReport, insertion-ordered by the sweep.
    reports: dict = field(default_factory=dict)

    @property
    def total_violations(self):
        return sum(r.total_violations for r in self.reports.values())

    @property
    def total_ops_lost(self):
        return sum(r.ops_lost for r in self.reports.values())

    def rows(self):
        """(profile name, scorecard dict) per profile, sweep order."""
        return [(name, report.scorecard())
                for name, report in self.reports.items()]


def run_chaos_matrix(profiles=PROFILE_NAMES, clients=DEFAULT_CLIENTS,
                     shards=DEFAULT_SHARDS, duration=DEFAULT_DURATION,
                     family="urban", policy="odyssey", master_seed=0,
                     drill=True, jobs=None):
    """Sweep ``profiles`` over one fleet configuration; returns the matrix."""
    matrix = ChaosMatrix(clients=clients, shards=shards, duration=duration,
                         family=family, master_seed=master_seed)
    for name in profiles:
        matrix.reports[name] = run_chaos_fleet(
            clients, shards=shards, duration=duration, profile=name,
            drill=drill, master_seed=master_seed, family=family,
            policy=policy, jobs=jobs,
        )
    return matrix


def format_chaos_matrix(matrix):
    """Render the sweep as aligned text lines (one row per profile)."""
    lines = [
        f"chaos sweep: {matrix.clients} clients / {matrix.shards} shards / "
        f"{matrix.duration:g} s, family {matrix.family!r} "
        f"(seed {matrix.master_seed})",
        f"{'profile':<18} {'viol':>5} {'lost':>5} {'deferred':>9} "
        f"{'floor':>6} {'mean':>6} {'recov s':>8} {'drill ops':>10}",
    ]
    for name, card in matrix.rows():
        lines.append(
            f"{name:<18} {card['chaos_violations']:>5} "
            f"{card['chaos_ops_lost']:>5} {card['chaos_marks_deferred']:>9} "
            f"{card['chaos_fidelity_floor']:>6.3f} "
            f"{card['chaos_mean_fidelity']:>6.3f} "
            f"{card['chaos_recovery_seconds']:>8.2f} "
            f"{card['chaos_drill_deferred_ops']:>10}"
        )
    lines.append(
        f"total: {matrix.total_violations} violations, "
        f"{matrix.total_ops_lost} deferred ops lost"
    )
    return lines
