"""One fleet shard: a region's viceroy, servers, and clients, run whole.

A shard is a hermetic trial unit — its own :class:`Simulator`, scenario
trace, viceroy/warden/estimation stack, server pool, and client
population — so the trial runner can fan shards across cores exactly like
any other experiment.  Everything a shard returns is a plain picklable
reduction (:class:`ShardResult`): per-client QoE records plus shard-level
upcall statistics, and deliberately **no wall-clock measurements** (a
cached shard must be indistinguishable from a fresh one).

Scaling conventions:

- the scenario trace is a per-shard :func:`generate_scenario` draw from
  the shard's spawned seed, so regions see independent coverage;
- link capacity scales with population (one unscaled trace feeds
  :data:`CLIENTS_PER_LINK` clients), keeping contention — and therefore
  adaptation — meaningful at any shard size;
- servers pool at :data:`CLIENTS_PER_SERVER` clients each, round-robin.
"""

from dataclasses import dataclass

from repro.apps.bitstream import BitstreamServer, StreamWarden
from repro.core.api import OdysseyAPI
from repro.experiments.harness import PRIME_SECONDS, ExperimentWorld
from repro.fleet.client import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_PERIOD,
    FleetClient,
)
from repro.trace.algebra import scale_bandwidth
from repro.trace.scenarios import generate_scenario

#: Clients an unscaled scenario trace is sized for; the shard multiplies
#: its link bandwidth by ``clients / CLIENTS_PER_LINK`` past this point.
CLIENTS_PER_LINK = 16
#: Clients per pooled server (round-robin assignment).
CLIENTS_PER_SERVER = 32


@dataclass(frozen=True)
class ClientRecord:
    """One client's QoE reduction (picklable, deterministic)."""

    name: str
    bytes: int
    chunks: int
    stalls: int
    failures: int
    mean_latency: float
    max_latency: float
    mean_fidelity: float
    upcalls: int
    renegotiations: int


@dataclass(frozen=True)
class ShardResult:
    """Everything one shard reports back to the cross-shard merge."""

    shard: int
    seed: int
    n_clients: int
    n_servers: int
    policy: str
    family: str
    duration: float
    trace_name: str
    records: tuple  # ClientRecord per client, in client order
    upcall_count: int
    upcall_latency_mean: float
    upcall_latency_p95: float
    upcall_latency_max: float
    #: ChaosShardStats when the shard ran under a chaos profile, else None.
    chaos: object = None


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending list (0.0 on empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(fraction * len(sorted_values))))
    return sorted_values[rank]


#: Tracker hysteresis for chaos shards: storms are short relative to the
#: default thresholds, so chaos worlds detect a dead link on the second
#: failed fetch and reconnect on the second healthy probe.
CHAOS_CONNECTIVITY = {"degrade_after": 1, "disconnect_after": 2,
                      "recover_after": 2}


def build_shard_world(clients, duration, policy="odyssey", family="urban",
                      prime=PRIME_SECONDS, chunk_bytes=DEFAULT_CHUNK_BYTES,
                      period=DEFAULT_PERIOD, seed=0, shard=0, chaos=None):
    """Construct (but do not run) a shard: world, servers, clients.

    Returns ``(world, fleet, servers)`` where ``fleet`` is the client list
    in creation order.  Split from :func:`run_fleet_shard` so tests and
    benchmarks can inspect the wiring.

    ``chaos`` (a :class:`~repro.chaos.storms.ChaosProfile`) compiles to
    this shard's storm schedule: blackouts are folded into the scenario
    trace, wardens become evidence-bearing
    :class:`~repro.chaos.warden.ChaosStreamWarden` instances with
    heartbeats, trackers get the tightened :data:`CHAOS_CONNECTIVITY`
    hysteresis, servers learn the ``save-mark`` op, and clients mark
    their position every cycle.  The compiled schedule is left on
    ``world.shard_chaos`` for :func:`repro.chaos.arm.arm_chaos`.  With
    ``chaos=None`` the built world is bit-identical to the pre-chaos
    fleet.
    """
    trace = generate_scenario(family, duration_seconds=duration, seed=seed)
    factor = max(1.0, clients / CLIENTS_PER_LINK)
    if factor > 1.0:
        trace = scale_bandwidth(trace, factor,
                                name=f"{trace.name}x{clients}c")
    n_servers = max(1, -(-clients // CLIENTS_PER_SERVER))
    shard_chaos = None
    if chaos is not None:
        from repro.chaos.warden import ChaosStreamWarden, install_mark_op

        ports = [f"fleet-{i}" for i in range(n_servers)]
        shard_chaos = chaos.for_shard(
            shard, clients=clients, server_ports=ports, duration=duration,
            seed=seed, offset=prime,
        )
        trace = shard_chaos.link_plan().modulate(trace)
    world = ExperimentWorld(
        trace, policy=policy, prime=prime, seed=seed, upcall_batch=True,
        connectivity=CHAOS_CONNECTIVITY if chaos is not None else None,
        # Per-connection Eq. 1 folds vectorize across the whole shard
        # (bit-identical to the scalar filters — the fleet fingerprints
        # gate this); only meaningful under the odyssey policy, harmless
        # under the baselines.
        batched_estimation=True,
    )
    world.shard_chaos = shard_chaos
    servers = []
    for index in range(n_servers):
        host = world.network.add_host(f"fleet-server-{index}")
        server = BitstreamServer(world.sim, host, port=f"fleet-{index}")
        world.jitter_service(server.service)
        if chaos is not None:
            install_mark_op(server.service)
        servers.append(server)

    fleet = []
    for index in range(clients):
        server = servers[index % n_servers]
        if chaos is not None:
            warden = ChaosStreamWarden(world.sim, world.viceroy,
                                       f"fleet-{index}")
        else:
            warden = StreamWarden(world.sim, world.viceroy, f"fleet-{index}")
        conn = warden.open_connection(server.service.host.name,
                                      server.service.port)
        if chaos is not None:
            warden.start_heartbeat(conn)
        path = f"/odyssey/fleet/{index}"
        world.viceroy.mount(path, warden)
        api = OdysseyAPI(world.viceroy, f"fleet-client-{index}")
        client = FleetClient(
            world.sim, api, f"fleet-client-{index}", path,
            chunk_bytes=chunk_bytes, period=period,
            measure_from=world.prime,
            mark_every=1 if chaos is not None else 0,
        )
        fleet.append(client)
    return world, fleet, servers


def run_fleet_shard(clients, duration, policy="odyssey", family="urban",
                    prime=PRIME_SECONDS, chunk_bytes=DEFAULT_CHUNK_BYTES,
                    period=DEFAULT_PERIOD, shard=0, seed=0, chaos=None):
    """Run one shard to completion and reduce it to a :class:`ShardResult`.

    Registered as the ``"fleet"`` trial function: hermetic, keyword-driven,
    picklable result, deterministic for a given argument tuple.  With a
    ``chaos`` profile the shard runs its compiled storm schedule under the
    invariant auditor and the result carries the chaos scorecard.
    """
    world, fleet, servers = build_shard_world(
        clients, duration, policy=policy, family=family, prime=prime,
        chunk_bytes=chunk_bytes, period=period, seed=seed, shard=shard,
        chaos=chaos,
    )
    controller = None
    if chaos is not None:
        from repro.chaos.arm import arm_chaos

        controller = arm_chaos(world, fleet, servers, world.shard_chaos,
                               profile_name=chaos.name)
    for client in fleet:
        # Stagger starts across one pacing period so a shard's first
        # deadline does not arrive as a thundering herd.
        world.sim.call_in(world.start_offset(bound=period), client.start)
    world.run_for(duration)

    start, end = world.prime, world.sim.now
    records = tuple(
        ClientRecord(
            name=client.name,
            bytes=client.bytes_consumed,
            chunks=client.chunks,
            stalls=client.stalls,
            failures=client.failures,
            mean_latency=client.mean_latency,
            max_latency=client.latency_max,
            mean_fidelity=client.mean_fidelity(start, end),
            upcalls=client.upcalls_received,
            renegotiations=client.renegotiations,
        )
        for client in fleet
    )
    latencies = sorted(world.viceroy.upcalls.delivery_latencies())
    count = len(latencies)
    return ShardResult(
        shard=shard,
        seed=seed,
        n_clients=clients,
        n_servers=len(servers),
        policy=policy,
        family=family,
        duration=duration,
        trace_name=world.base_trace.name,
        records=records,
        upcall_count=count,
        upcall_latency_mean=sum(latencies) / count if count else 0.0,
        upcall_latency_p95=percentile(latencies, 0.95),
        upcall_latency_max=latencies[-1] if latencies else 0.0,
        chaos=(controller.finish(start, end)
               if controller is not None else None),
    )
