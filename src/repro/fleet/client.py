"""The fleet client: a small adaptive streamer, instantiated by the thousand.

Each client is a :class:`~repro.apps.base.Application` that fetches chunks
through its own :class:`~repro.apps.bitstream.StreamWarden` connection on a
fixed pacing period, scaling the chunk size by a fidelity ladder.  The
ladder is negotiated with the viceroy exactly as the paper's applications
do: a tolerance window per fidelity level, violation upcalls trigger
re-negotiation at the observed availability.

Unlike the single-application experiments, nothing here is measured at
fine grain — a client reduces itself to a handful of QoE numbers (bytes,
stalls, chunk latency, time-weighted fidelity, upcall traffic) so that
thousands of them stay cheap to aggregate across shards.
"""

from repro.apps.base import Application, negotiate
from repro.core.resources import Resource
from repro.errors import OdysseyError, ProcessInterrupt, RpcError

#: Full-fidelity chunk size, bytes.  Large enough that a chunk's transfer
#: time is bandwidth-dominated rather than latency-dominated — tiny fetches
#: would anchor the viceroy's total-bandwidth estimate at current usage
#: instead of probing actual link capacity.
DEFAULT_CHUNK_BYTES = 32 * 1024
#: Seconds between chunk deadlines (one chunk per period).
DEFAULT_PERIOD = 4.0
#: The fidelity ladder, ascending.  Each level fetches this fraction of the
#: full chunk; the lowest level's tolerance window is open at the bottom so
#: a client can always register, however bad the link.
FIDELITY_LEVELS = (0.125, 0.25, 0.5, 1.0)
#: Hysteresis guards on the tolerance window.  A level's window reaches a
#: little below its own demand and a little above the next level's, so an
#: estimate wobbling around a ladder boundary does not generate an upcall
#: (and a re-registration) per wobble.
LOWER_GUARD = 0.8
UPPER_GUARD = 1.3


class FleetClient(Application):
    """One paced adaptive stream with a negotiated fidelity ladder."""

    def __init__(self, sim, api, name, path, chunk_bytes=DEFAULT_CHUNK_BYTES,
                 period=DEFAULT_PERIOD, levels=FIDELITY_LEVELS,
                 measure_from=0.0, mark_every=0):
        super().__init__(sim, api, name)
        self.path = path
        self.chunk_bytes = chunk_bytes
        self.period = period
        self.levels = tuple(sorted(levels))
        self.measure_from = measure_from
        #: Issue a ``save-mark`` write every N chunk cycles (0 = never).
        #: Chaos fleets turn this on so disconnected periods exercise the
        #: deferred-op log; the plain fleet path stays write-free.
        self.mark_every = mark_every
        self.marks_attempted = 0
        self.marks_deferred = 0
        self.marks_acked = 0
        self.mark_failures = 0
        self._cycles = 0
        self.fidelity = None
        self.fidelity_log = []  # (time, fidelity) at each change
        self.bytes_consumed = 0  # within the measurement window
        self.chunks = 0
        self.stalls = 0  # chunk fetches that overran the pacing period
        self.failures = 0  # fetches lost to RPC/connectivity errors
        self.latency_sum = 0.0
        self.latency_max = 0.0
        self.upcalls_received = 0
        self.renegotiations = 0
        self._needs_register = False
        self._pending_level = None

    # -- fidelity ladder -------------------------------------------------------

    def demand(self, fidelity):
        """Bandwidth (bytes/s) this client consumes at ``fidelity``."""
        return fidelity * self.chunk_bytes / self.period

    def best_level_for(self, bandwidth):
        """Highest sustainable fidelity given ``bandwidth`` (None = no
        estimate yet: be optimistic, as the paper's applications are)."""
        if bandwidth is None:
            return self.levels[-1]
        for level in reversed(self.levels):
            if self.demand(level) <= bandwidth:
                return level
        return self.levels[0]

    def _window_for_level(self, level):
        index = self.levels.index(level)
        lower = 0.0 if index == 0 else self.demand(level) * LOWER_GUARD
        upper = 1e12 if level == self.levels[-1] \
            else self.demand(self.levels[index + 1]) * UPPER_GUARD
        return lower, upper

    # -- negotiation -----------------------------------------------------------

    def _set_fidelity(self, fidelity):
        if fidelity != self.fidelity:
            self.fidelity = fidelity
            self.fidelity_log.append((self.sim.now, fidelity))

    def _register(self, level_hint=None):
        negotiate(
            self.api, self.path, Resource.NETWORK_BANDWIDTH,
            window_for=lambda bw: self._window_for_level(
                self.best_level_for(bw)),
            on_level=lambda bw: self._set_fidelity(self.best_level_for(bw)),
            level_hint=level_hint,
            handler="fleet-bw",
        )

    def _on_upcall(self, upcall):
        """Adapt now, re-register at the client's own cadence.

        Fidelity follows the upcall's level immediately (the paper's
        contract), but the re-registration RPC waits for the next chunk
        boundary: re-registering inline would let a wobbling estimate
        drive one negotiation round-trip per violation, per client — at
        fleet scale that negotiation storm dwarfs the data traffic.
        """
        self.upcalls_received += 1
        self._pending_level = upcall.level
        self._needs_register = True
        if upcall.level is not None:
            self._set_fidelity(self.best_level_for(upcall.level))

    # -- main loop -------------------------------------------------------------

    def run(self):
        self.api.on_upcall("fleet-bw", self._on_upcall)
        self._register(level_hint=self.api.availability(self.path))
        next_due = self.sim.now
        try:
            while True:
                if self._needs_register:
                    self._needs_register = False
                    self.renegotiations += 1
                    self._register(level_hint=self._pending_level)
                started = self.sim.now
                nbytes = max(1, int(self.chunk_bytes * self.fidelity))
                try:
                    fetched = yield from self.api.tsop(
                        self.path, "get-chunk", {"nbytes": nbytes}
                    )
                except (RpcError, OdysseyError):
                    # A dead spot ate the fetch; the viceroy's lifecycle
                    # machinery (and our upcall handler) will adapt — the
                    # client just records the miss and keeps its cadence.
                    fetched = 0
                elapsed = self.sim.now - started
                if self.sim.now > self.measure_from:
                    self.chunks += 1
                    self.bytes_consumed += fetched
                    self.latency_sum += elapsed
                    if elapsed > self.latency_max:
                        self.latency_max = elapsed
                    if elapsed > self.period:
                        self.stalls += 1
                    if fetched == 0:
                        self.failures += 1
                self._cycles += 1
                if self.mark_every and self._cycles % self.mark_every == 0:
                    yield from self._save_mark()
                next_due += self.period
                if next_due > self.sim.now:
                    yield self.sim.timeout(next_due - self.sim.now)
                else:
                    next_due = self.sim.now
        except ProcessInterrupt:
            return self.bytes_consumed

    def _save_mark(self):
        """Persist the stream position; disconnected marks defer, not fail.

        The warden queues the op when the link is down (the result dict
        carries ``deferred``); an RPC/connectivity error just counts — the
        client never retries inline, reintegration owns the replay.
        """
        self.marks_attempted += 1
        try:
            result = yield from self.api.tsop(
                self.path, "save-mark",
                {"client": self.name, "position": self._cycles},
            )
        except (RpcError, OdysseyError):
            self.mark_failures += 1
            return
        if isinstance(result, dict) and result.get("deferred"):
            self.marks_deferred += 1
        else:
            self.marks_acked += 1

    # -- reductions ------------------------------------------------------------

    @property
    def mean_latency(self):
        return self.latency_sum / self.chunks if self.chunks else 0.0

    def mean_fidelity(self, start, end):
        """Time-weighted mean fidelity over [start, end]."""
        if end <= start or not self.fidelity_log:
            return 0.0
        log = self.fidelity_log
        # Value in force at ``start``: the last change at or before it.
        current = log[0][1]
        weighted = 0.0
        cursor = start
        for at, value in log:
            if at <= start:
                current = value
                continue
            if at >= end:
                break
            weighted += current * (at - cursor)
            cursor = at
            current = value
        weighted += current * (end - cursor)
        return weighted / (end - start)

    def min_fidelity(self, start, end):
        """Lowest fidelity in force at any point during [start, end].

        The chaos scorecard's *fidelity floor*: how far a client was
        pushed down the ladder at its worst moment.
        """
        if end <= start or not self.fidelity_log:
            return 0.0
        log = self.fidelity_log
        current = log[0][1]
        floor = None
        for at, value in log:
            if at <= start:
                current = value
                continue
            if at >= end:
                break
            floor = current if floor is None else min(floor, current)
            current = value
        return current if floor is None else min(floor, current)
