"""Fleet-scale sharded simulation: thousands of adaptive clients.

The fleet model (architecture doc §13) spawns 1k-10k simulated adaptive
clients against a pool of servers, sharded across per-region viceroys.
Each shard is one deterministic simulation; shards fan across cores via
the trial runner with its submission-order merge, so the merged report is
byte-identical at any ``--jobs``.
"""

from repro.fleet.client import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_PERIOD,
    FIDELITY_LEVELS,
    FleetClient,
)
from repro.fleet.harness import (
    DEFAULT_DURATION,
    DEFAULT_SHARDS,
    FleetReport,
    ScalingPoint,
    fleet_units,
    jain_fairness,
    run_fleet,
    run_scaling_curve,
    shard_populations,
    shard_seeds,
)
from repro.fleet.report import format_fleet_report, format_scaling_curve
from repro.fleet.shard import (
    CLIENTS_PER_LINK,
    CLIENTS_PER_SERVER,
    ClientRecord,
    ShardResult,
    build_shard_world,
    run_fleet_shard,
)

__all__ = [
    "CLIENTS_PER_LINK",
    "CLIENTS_PER_SERVER",
    "ClientRecord",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_DURATION",
    "DEFAULT_PERIOD",
    "DEFAULT_SHARDS",
    "FIDELITY_LEVELS",
    "FleetClient",
    "FleetReport",
    "ScalingPoint",
    "ShardResult",
    "build_shard_world",
    "fleet_units",
    "format_fleet_report",
    "format_scaling_curve",
    "jain_fairness",
    "run_fleet",
    "run_fleet_shard",
    "run_scaling_curve",
    "shard_populations",
    "shard_seeds",
]
