"""Text rendering of fleet runs (the ``repro fleet`` command's output)."""


def format_fleet_report(report):
    """Human-readable summary of one :class:`FleetReport`."""
    lines = []
    lines.append(
        f"fleet: {report.clients} clients x {report.shards} shards "
        f"({report.family} scenarios, policy {report.policy}, "
        f"{report.duration:g} s measured, seed {report.master_seed})"
    )
    lines.append(
        f"  wall time      : {report.wall_seconds:.2f} s "
        f"({report.clients / report.wall_seconds:.0f} clients/s)"
        if report.wall_seconds > 0 else "  wall time      : (cached)"
    )
    fid5, fid50, fid95 = report.fidelity_distribution()
    lines.append(
        f"  fidelity       : mean {report.mean_fidelity:.3f} "
        f"(p5 {fid5:.3f}, p50 {fid50:.3f}, p95 {fid95:.3f})"
    )
    lat50, lat95, lat_max = report.latency_distribution()
    lines.append(
        f"  chunk latency  : p50 {lat50 * 1000:.1f} ms, "
        f"p95 {lat95 * 1000:.1f} ms, max {lat_max * 1000:.1f} ms"
    )
    records = report.records
    chunks = sum(r.chunks for r in records)
    lines.append(
        f"  chunks         : {chunks} ({report.total_stalls} stalled, "
        f"{sum(r.failures for r in records)} failed)"
    )
    lines.append(f"  bytes delivered: {report.total_bytes}")
    lines.append(f"  fairness (Jain): {report.fairness:.4f}")
    count, mean, p95, peak = report.upcall_latency()
    lines.append(
        f"  upcalls        : {count} delivered "
        f"(mean {mean * 1000:.2f} ms, p95 {p95 * 1000:.2f} ms, "
        f"max {peak * 1000:.2f} ms)"
    )
    lines.append(f"  fingerprint    : {report.fingerprint()}")
    return "\n".join(lines)


def format_scaling_curve(curve):
    """Table of clients vs. wall-seconds vs. per-client fidelity."""
    lines = ["clients  wall_s  clients_per_s  mean_fidelity"]
    for point in curve:
        rate = point.clients / point.wall_seconds \
            if point.wall_seconds > 0 else float("inf")
        lines.append(
            f"{point.clients:7d}  {point.wall_seconds:6.2f}  "
            f"{rate:13.0f}  {point.mean_fidelity:13.3f}"
        )
    return "\n".join(lines)
