"""The fleet harness: shards fanned across cores, merged in shard order.

:func:`run_fleet` splits a client population across per-region shards,
derives each shard's seed with :meth:`RngRegistry.spawn_seed` (a pure
function of the master seed and the shard's *name*, never of execution
order), and routes the shards through :func:`repro.parallel.run_units` —
inheriting its submission-order merge, process-pool fan-out, telemetry
shard absorption, and on-disk result cache.  The merged
:class:`FleetReport` is therefore byte-identical at any ``--jobs``; its
:meth:`~FleetReport.fingerprint` covers every deterministic field and
excludes the harness-level wall-clock measurement.
"""

import hashlib
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.experiments.harness import PRIME_SECONDS
from repro.fleet.client import DEFAULT_CHUNK_BYTES, DEFAULT_PERIOD
from repro.fleet.shard import percentile
from repro.parallel.runner import CONFIGURED, TrialUnit, run_units
from repro.sim.rng import RngRegistry

#: Default shard count: enough regions to exercise the pool at the default
#: population without starving any shard of clients.
DEFAULT_SHARDS = 8
#: Default simulated measurement window per shard, seconds.
DEFAULT_DURATION = 60.0


def shard_populations(clients, shards):
    """Split ``clients`` across ``shards`` as evenly as possible.

    The remainder lands on the first shards, so the split is a pure
    function of the two counts.
    """
    if clients < 1:
        raise ReproError(f"clients must be >= 1, got {clients!r}")
    if shards < 1:
        raise ReproError(f"shards must be >= 1, got {shards!r}")
    if clients < shards:
        raise ReproError(
            f"cannot spread {clients} clients across {shards} shards"
        )
    base, extra = divmod(clients, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


def shard_seeds(shards, master_seed=0):
    """Order-independent per-shard seeds: ``spawn_seed(f"shard-{i}")``."""
    registry = RngRegistry(master_seed)
    return [registry.spawn_seed(f"shard-{i}") for i in range(shards)]


def jain_fairness(values):
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` (1.0 = perfectly fair)."""
    values = list(values)
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


@dataclass
class FleetReport:
    """Cross-shard merge of a fleet run (shard order, deterministic)."""

    clients: int
    shards: int
    duration: float
    policy: str
    family: str
    master_seed: int
    shard_results: tuple  # ShardResult per shard, in shard order
    #: Harness-level wall time around ``run_units`` — measured, not
    #: simulated, so NOT part of the fingerprint (and near zero when every
    #: shard answered from the result cache).
    wall_seconds: float = field(default=0.0, compare=False)

    # -- merged views ----------------------------------------------------------

    @property
    def records(self):
        """Every client record, in shard order then client order."""
        return [record for result in self.shard_results
                for record in result.records]

    @property
    def total_bytes(self):
        return sum(record.bytes for record in self.records)

    @property
    def total_stalls(self):
        return sum(record.stalls for record in self.records)

    @property
    def total_upcalls(self):
        return sum(result.upcall_count for result in self.shard_results)

    @property
    def mean_fidelity(self):
        records = self.records
        if not records:
            return 0.0
        return sum(record.mean_fidelity for record in records) / len(records)

    def fidelity_distribution(self):
        """(p5, p50, p95) of per-client time-weighted mean fidelity."""
        values = sorted(record.mean_fidelity for record in self.records)
        return (percentile(values, 0.05), percentile(values, 0.50),
                percentile(values, 0.95))

    def latency_distribution(self):
        """(p50, p95, max) of per-client mean chunk latency, seconds."""
        values = sorted(record.mean_latency for record in self.records)
        return (percentile(values, 0.50), percentile(values, 0.95),
                values[-1] if values else 0.0)

    def upcall_latency(self):
        """(count, mean, p95, max) of upcall delivery latency, pooled
        across shards by shard-count weighting."""
        count = self.total_upcalls
        if count == 0:
            return (0, 0.0, 0.0, 0.0)
        mean = sum(r.upcall_latency_mean * r.upcall_count
                   for r in self.shard_results) / count
        return (count,
                mean,
                max(r.upcall_latency_p95 for r in self.shard_results),
                max(r.upcall_latency_max for r in self.shard_results))

    @property
    def fairness(self):
        """Jain index over per-client delivered bytes (ClientShares' job)."""
        return jain_fairness(record.bytes for record in self.records)

    # -- determinism -----------------------------------------------------------

    def fingerprint(self):
        """sha256 over every deterministic field, at fixed rounding.

        Byte-identical across ``--jobs`` settings and cache hits; the
        wall-clock measurement is deliberately excluded.
        """
        digest = hashlib.sha256()
        header = (self.clients, self.shards, round(self.duration, 9),
                  self.policy, self.family, self.master_seed)
        digest.update(repr(header).encode())
        for result in self.shard_results:
            meta = (result.shard, result.seed, result.n_clients,
                    result.n_servers, result.trace_name, result.upcall_count,
                    round(result.upcall_latency_mean, 9),
                    round(result.upcall_latency_p95, 9),
                    round(result.upcall_latency_max, 9))
            digest.update(repr(meta).encode())
            for record in result.records:
                row = (record.name, record.bytes, record.chunks,
                       record.stalls, record.failures,
                       round(record.mean_latency, 9),
                       round(record.max_latency, 9),
                       round(record.mean_fidelity, 9),
                       record.upcalls, record.renegotiations)
                digest.update(repr(row).encode())
            chaos = getattr(result, "chaos", None)
            if chaos is not None:
                # Chaos scorecards are deterministic reductions too; plain
                # fleet runs skip this block so their fingerprints are
                # unchanged from the pre-chaos harness.
                digest.update(repr((
                    chaos.profile, chaos.blackouts, chaos.server_stalls,
                    chaos.churn_left, chaos.churn_rejoined,
                    chaos.marks_attempted, chaos.marks_deferred,
                    chaos.marks_applied, chaos.ops_enqueued,
                    chaos.ops_coalesced, chaos.ops_queued_at_end,
                    chaos.ops_lost, round(chaos.fidelity_floor, 9),
                    round(chaos.recovery_max_seconds, 9), chaos.violations,
                    chaos.drill,
                )).encode())
        return digest.hexdigest()


def fleet_units(clients, shards=DEFAULT_SHARDS, duration=DEFAULT_DURATION,
                policy="odyssey", family="urban", prime=PRIME_SECONDS,
                chunk_bytes=DEFAULT_CHUNK_BYTES, period=DEFAULT_PERIOD,
                master_seed=0):
    """The run's :class:`TrialUnit` list, one hermetic unit per shard."""
    populations = shard_populations(clients, shards)
    seeds = shard_seeds(shards, master_seed)
    return [
        TrialUnit(
            "fleet",
            {
                "clients": population, "duration": duration,
                "policy": policy, "family": family, "prime": prime,
                "chunk_bytes": chunk_bytes, "period": period,
                "shard": index,
            },
            seed,
        )
        for index, (population, seed) in enumerate(zip(populations, seeds))
    ]


def run_fleet(clients, shards=DEFAULT_SHARDS, duration=DEFAULT_DURATION,
              policy="odyssey", family="urban", prime=PRIME_SECONDS,
              chunk_bytes=DEFAULT_CHUNK_BYTES, period=DEFAULT_PERIOD,
              master_seed=0, jobs=None, cache=CONFIGURED):
    """Run the whole fleet; returns the merged :class:`FleetReport`."""
    units = fleet_units(clients, shards=shards, duration=duration,
                        policy=policy, family=family, prime=prime,
                        chunk_bytes=chunk_bytes, period=period,
                        master_seed=master_seed)
    started = time.perf_counter()
    results = run_units(units, jobs=jobs, cache=cache)
    wall = time.perf_counter() - started
    return FleetReport(
        clients=clients, shards=shards, duration=duration, policy=policy,
        family=family, master_seed=master_seed,
        shard_results=tuple(results), wall_seconds=wall,
    )


@dataclass(frozen=True)
class ScalingPoint:
    """One point of the scaling curve."""

    clients: int
    wall_seconds: float
    mean_fidelity: float
    report: FleetReport


def run_scaling_curve(points, shards=DEFAULT_SHARDS,
                      duration=DEFAULT_DURATION, policy="odyssey",
                      family="urban", prime=PRIME_SECONDS,
                      chunk_bytes=DEFAULT_CHUNK_BYTES, period=DEFAULT_PERIOD,
                      master_seed=0, jobs=None, cache=CONFIGURED):
    """Clients vs. wall-seconds vs. per-client fidelity, one run per point."""
    curve = []
    for clients in points:
        report = run_fleet(clients, shards=shards, duration=duration,
                           policy=policy, family=family, prime=prime,
                           chunk_bytes=chunk_bytes, period=period,
                           master_seed=master_seed, jobs=jobs, cache=cache)
        curve.append(ScalingPoint(clients=clients,
                                  wall_seconds=report.wall_seconds,
                                  mean_fidelity=report.mean_fidelity,
                                  report=report))
    return curve
