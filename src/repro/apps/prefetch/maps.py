"""Map tiles: spatial data with resolution as its fidelity dimension.

"Spatial data, such as topographical maps, has dimensions of minimum
feature size or resolution" (paper §2.2).  Tiles come in three resolutions;
sizes vary deterministically with position (terrain complexity).
"""

import hashlib

from repro.errors import ReproError
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Fidelity -> mean tile bytes.  Full resolution is a detailed scan;
#: the thumbnail is enough to orient by.
TILE_FIDELITIES = {
    1.0: 48 * 1024,
    0.5: 12 * 1024,
    0.1: 2 * 1024,
}

#: Server time to cut and package one tile.
TILE_COMPUTE_SECONDS = 0.004


def tile_bytes(x, y, fidelity):
    """Deterministic size of tile (x, y) at ``fidelity``."""
    mean = TILE_FIDELITIES.get(fidelity)
    if mean is None:
        raise ReproError(
            f"unknown tile fidelity {fidelity!r}; known: {sorted(TILE_FIDELITIES)}"
        )
    digest = hashlib.blake2b(f"tile:{x}:{y}".encode("utf-8"),
                             digest_size=4).digest()
    factor = 0.8 + 0.4 * (int.from_bytes(digest, "big") / 0xFFFFFFFF)
    return max(int(mean * factor), 256)


class MapServer:
    """A geographical-information back end serving tiles by coordinate."""

    def __init__(self, sim, host, port="maps"):
        self.sim = sim
        self.service = RpcService(sim, host, port)
        self.service.register("get-tile", self._get_tile)
        self.tiles_served = 0

    def _get_tile(self, body):
        x, y, fidelity = body["x"], body["y"], body["fidelity"]
        nbytes = tile_bytes(x, y, fidelity)
        self.tiles_served += 1
        return ServerReply(
            body={"x": x, "y": y, "fidelity": fidelity},
            body_bytes=48,
            compute_seconds=TILE_COMPUTE_SECONDS,
            bulk=self.service.make_bulk(
                nbytes, meta={"x": x, "y": y, "fidelity": fidelity}
            ),
        )
