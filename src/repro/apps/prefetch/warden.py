"""The map warden: cached tiles and path-ahead prefetching."""

from collections import deque

from repro.apps.prefetch.maps import TILE_FIDELITIES, tile_bytes
from repro.core.warden import Warden
from repro.errors import OdysseyError

#: Tiles prefetched ahead of the current position along the planned path.
PREFETCH_HORIZON = 6
#: Concurrent tile fetches (overlap round trips, as the video warden does).
FETCH_PIPELINE = 2


class MapWarden(Warden):
    """Serves tiles from cache, prefetching along the announced path.

    tsops:

    - ``get-tile`` — blocking fetch of one tile at the current fidelity;
      cache hits return immediately (that is the point of prefetching).
    - ``set-path`` — the application's predicted future positions; the
      warden prefetches the next :data:`PREFETCH_HORIZON` of them.
    - ``set-fidelity`` — resolution used for subsequent fetches.
    """

    TSOPS = {
        "get-tile": "tsop_get_tile",
        "set-path": "tsop_set_path",
        "set-fidelity": "tsop_set_fidelity",
        "cache-stats": "tsop_cache_stats",
    }
    FIDELITIES = {"full": 1.0, "half": 0.5, "thumb": 0.1}

    def __init__(self, sim, viceroy, name="maps", prefetch=True,
                 cache_bytes=8 * 1024 * 1024, **kwargs):
        super().__init__(sim, viceroy, name, cache_bytes=cache_bytes, **kwargs)
        self.prefetch_enabled = prefetch
        self.fidelity = 1.0
        self._path = deque()
        self._inflight = set()
        self._arrivals = {}
        self._wakeups = []
        self.tiles_fetched = 0
        for i in range(FETCH_PIPELINE):
            sim.process(self._fetch_loop(), name=f"{name}.fetch{i}")

    # -- tsops ------------------------------------------------------------

    def tsop_set_fidelity(self, app, rest, inbuf):
        fidelity = float(inbuf["fidelity"])
        if fidelity not in TILE_FIDELITIES:
            raise OdysseyError(
                f"fidelity {fidelity!r} not offered; "
                f"levels: {sorted(TILE_FIDELITIES)}"
            )
        self.fidelity = fidelity
        return fidelity
        yield  # pragma: no cover - generator protocol

    def tsop_set_path(self, app, rest, inbuf):
        """Announce predicted future positions: list of (x, y)."""
        self._path = deque(tuple(p) for p in inbuf["path"])
        self._kick()
        return len(self._path)
        yield  # pragma: no cover - generator protocol

    def tsop_get_tile(self, app, rest, inbuf):
        """Fetch tile (x, y) at the current fidelity; returns its bytes."""
        key = (inbuf["x"], inbuf["y"], self.fidelity)
        # Arriving at a position consumes it from the prefetch path.
        while self._path and self._path[0] == (key[0], key[1]):
            self._path.popleft()
        cached = self.cache.get(key)
        if cached is not None:
            self._kick()
            return {"nbytes": cached, "hit": True}
        if key not in self._inflight:
            self._inflight.add(key)
            self.sim.process(self._fetch_one(key), name=f"{self.name}.demand")
        event = self._arrival_event(key)
        self._kick()
        nbytes = yield event
        return {"nbytes": nbytes, "hit": False}

    def tsop_cache_stats(self, app, rest, inbuf):
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "used_bytes": self.cache.used_bytes,
            "fetched": self.tiles_fetched,
        }
        yield  # pragma: no cover - generator protocol

    # -- prefetch machinery --------------------------------------------------

    def _arrival_event(self, key):
        event = self._arrivals.get(key)
        if event is None:
            event = self.sim.event(name=f"tile:{key}")
            self._arrivals[key] = event
        return event

    def _kick(self):
        while self._wakeups:
            self._wakeups.pop().succeed()

    def _next_prefetch_key(self):
        if not self.prefetch_enabled:
            return None
        for x, y in list(self._path)[:PREFETCH_HORIZON]:
            key = (x, y, self.fidelity)
            if key in self.cache or key in self._inflight:
                continue
            return key
        return None

    def _fetch_loop(self):
        while True:
            key = self._next_prefetch_key()
            if key is None:
                wakeup = self.sim.event(name=f"{self.name}.wakeup")
                self._wakeups.append(wakeup)
                yield wakeup
                continue
            self._inflight.add(key)
            yield from self._fetch_one(key)

    def _fetch_one(self, key):
        x, y, fidelity = key
        conn = self.primary_connection()
        try:
            _, _, nbytes = yield from conn.fetch(
                "get-tile", body={"x": x, "y": y, "fidelity": fidelity},
                body_bytes=64,
            )
        finally:
            self._inflight.discard(key)
        self.tiles_fetched += 1
        self.cache.put(key, nbytes, nbytes)
        event = self._arrivals.pop(key, None)
        if event is not None and not event.triggered:
            event.succeed(nbytes)


def build_maps(sim, viceroy, network, server_host=None,
               mount="/odyssey/maps", **warden_kwargs):
    """Wire map server + warden; returns (warden, server)."""
    from repro.apps.prefetch.maps import MapServer

    host = server_host or network.add_host("map-server")
    server = MapServer(sim, host)
    warden = MapWarden(sim, viceroy, **warden_kwargs)
    warden.open_connection(host.name, "maps")
    viceroy.mount(mount, warden)
    return warden, server
