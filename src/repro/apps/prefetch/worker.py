"""The field worker: moves along a path, viewing the tile at each stop."""

from dataclasses import dataclass, field

from repro.apps.base import Application, negotiate
from repro.apps.prefetch.maps import TILE_FIDELITIES, tile_bytes
from repro.core.resources import Resource
from repro.errors import ProcessInterrupt

#: The worker wants each tile on screen within this long of arriving.
VIEW_GOAL_SECONDS = 0.5
#: Hysteresis multiple for resolution upgrades.
UPGRADE_MARGIN = 1.10
NO_UPPER = 1e12


def walk_path(length, seed=0, start=(0, 0)):
    """A deterministic lawn-mower sweep over the damage-assessment grid."""
    x, y = start
    path = []
    direction = 1
    for i in range(length):
        path.append((x, y))
        x += direction
        if i % 8 == 7:  # end of a sweep row
            direction = -direction
            y += 1
    return path


@dataclass
class WorkerStats:
    """Per-view accounting."""

    views: list = field(default_factory=list)  # (time, seconds, hit, fidelity)

    @property
    def count(self):
        return len(self.views)

    @property
    def hit_rate(self):
        if not self.views:
            return 0.0
        return sum(1 for _, _, hit, _ in self.views if hit) / len(self.views)

    @property
    def mean_view_seconds(self):
        if not self.views:
            return 0.0
        return sum(s for _, s, _, _ in self.views) / len(self.views)

    @property
    def mean_fidelity(self):
        if not self.views:
            return 0.0
        return sum(f for _, _, _, f in self.views) / len(self.views)


class FieldWorker(Application):
    """Walks the grid, pausing at each tile, adapting map resolution.

    Parameters
    ----------
    dwell_seconds:
        Time spent assessing each position before moving on — the window
    	the prefetcher has to stay ahead.
    policy:
        ``"adaptive"`` or a fixed fidelity level.
    """

    def __init__(self, sim, api, name, path, route, dwell_seconds=2.0,
                 policy="adaptive", measure_from=0.0):
        super().__init__(sim, api, name)
        self.path = path
        self.route = list(route)
        self.dwell_seconds = dwell_seconds
        self.policy = policy
        self.measure_from = measure_from
        self.stats = WorkerStats()
        self.fidelity = policy if policy != "adaptive" else 1.0
        self._levels = sorted(TILE_FIDELITIES, reverse=True)

    # -- adaptation: resolution from bandwidth -----------------------------

    def demand(self, fidelity):
        """Bandwidth needed to prefetch one tile per dwell at ``fidelity``."""
        mean_tile = TILE_FIDELITIES[fidelity]
        return mean_tile * 1.25 / self.dwell_seconds  # headroom for headers

    def best_level_for(self, bandwidth):
        if bandwidth is None:
            return self._levels[0]
        for level in self._levels:
            if self.demand(level) <= bandwidth:
                return level
        return self._levels[-1]

    def _window_for_level(self, level):
        lower = 0.0 if level == self._levels[-1] else self.demand(level)
        better = [l for l in self._levels if l > level]
        upper = self.demand(min(better)) * UPGRADE_MARGIN if better else NO_UPPER
        return lower, upper

    def _register(self, level_hint=None):
        if self.policy != "adaptive":
            return

        def on_level(bandwidth):
            self.fidelity = self.best_level_for(bandwidth)

        negotiate(
            self.api, self.path, Resource.NETWORK_BANDWIDTH,
            window_for=lambda bw: self._window_for_level(
                self.best_level_for(bw)),
            on_level=on_level,
            level_hint=level_hint,
            handler="maps-bandwidth",
        )

    def _on_upcall(self, upcall):
        self._register(level_hint=upcall.level)

    # -- the walk --------------------------------------------------------------

    def run(self):
        if self.policy == "adaptive":
            self.api.on_upcall("maps-bandwidth", self._on_upcall)
            self._register(level_hint=self.api.availability(self.path))
        try:
            for step, (x, y) in enumerate(self.route):
                yield from self.api.tsop(
                    self.path, "set-fidelity", {"fidelity": self.fidelity}
                )
                # Announce where we are heading so the warden can prefetch.
                yield from self.api.tsop(
                    self.path, "set-path", {"path": self.route[step:]}
                )
                started = self.sim.now
                result = yield from self.api.tsop(
                    self.path, "get-tile", {"x": x, "y": y}
                )
                elapsed = self.sim.now - started
                if started >= self.measure_from:
                    self.stats.views.append(
                        (self.sim.now, elapsed, result["hit"], self.fidelity)
                    )
                yield self.sim.timeout(self.dwell_seconds)
        except ProcessInterrupt:
            pass
        return self.stats
