"""The §2.3 emergency-response prefetcher.

"An application used in emergency response situations may monitor physical
location and motion, and prefetch damage-assessment information for the
areas to be traversed shortly."

A field worker walks a grid of map tiles; the map warden prefetches the
tiles ahead along the predicted path, at a fidelity chosen from the current
bandwidth, so that when the worker arrives the tile is (usually) already
cached.  Combines most of the platform: wardens, caching, dynamic-set-style
concurrent fetching, and bandwidth-adaptive fidelity.
"""

from repro.apps.prefetch.maps import MapServer, TILE_FIDELITIES, tile_bytes
from repro.apps.prefetch.warden import MapWarden, build_maps
from repro.apps.prefetch.worker import FieldWorker, WorkerStats, walk_path

__all__ = [
    "FieldWorker",
    "MapServer",
    "MapWarden",
    "TILE_FIDELITIES",
    "WorkerStats",
    "build_maps",
    "tile_bytes",
    "walk_path",
]
