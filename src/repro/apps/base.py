"""Shared application scaffolding."""

from repro.errors import ToleranceError


class Application:
    """Base class for Odyssey applications.

    Subclasses implement :meth:`run` as a generator; :meth:`start` spawns
    it as a simulated process.  ``self.api`` is the application's
    :class:`~repro.core.api.OdysseyAPI`.
    """

    def __init__(self, sim, api, name):
        self.sim = sim
        self.api = api
        self.name = name
        self.process = None

    def start(self):
        """Spawn the application's main loop; returns the process."""
        if self.process is not None and self.process.alive:
            raise RuntimeError(f"application {self.name!r} already running")
        self.process = self.sim.process(self.run(), name=self.name)
        return self.process

    def run(self):
        """The application's main loop (generator)."""
        raise NotImplementedError

    def stop(self):
        """Interrupt the main loop, if running."""
        if self.process is not None and self.process.alive:
            self.process.interrupt("stop")


def negotiate(api, path, resource, window_for, on_level, level_hint=None,
              handler="default"):
    """Register a tolerance window, retrying on :class:`ToleranceError`.

    The paper's protocol: if ``request`` finds the resource outside the
    window, it fails with the current level and "the application is then
    expected to try again, with a new window of tolerance corresponding to
    a new fidelity level".

    Parameters
    ----------
    window_for:
        ``level -> (lower, upper)``: the tolerance window the application
        wants given an observed availability (None means "no estimate yet"
        — the mapping should return its optimistic default).
    on_level:
        Called with each observed level (including None on the first
        attempt) so the caller can set its fidelity to match.
    level_hint:
        Availability level to seed the first attempt, if the caller already
        knows one (e.g. from an upcall).

    Returns the request id.
    """
    level = level_hint
    while True:
        on_level(level)
        lower, upper = window_for(level)
        try:
            return api.request(path, resource, lower, upper, handler=handler)
        except ToleranceError as err:
            if level is not None and err.available == level:
                raise  # the mapping is not converging; surface loudly
            level = err.available
