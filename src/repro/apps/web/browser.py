"""Netscape behind the cellophane: the browsing loop and its adaptation.

"Our Web client's adaptation goal is to display the best quality image that
can be fetched within twice the Ethernet time, in this case 0.4 seconds."
(paper §6.2.2)

The cellophane predicts a level's fetch time as ``fixed overhead + size /
available bandwidth`` and picks the best level meeting the goal.  The fixed
overhead is its calibration against the measured request path (round trip,
web server, distillation, rendering).
"""

from dataclasses import dataclass, field

from repro.apps.base import Application, negotiate
from repro.apps.web.distill import DISTILL_COMPUTE
from repro.apps.web.images import FIDELITY_LEVELS, distilled_bytes
from repro.apps.web.server import WEB_SERVER_COMPUTE
from repro.core.resources import Resource
from repro.errors import ProcessInterrupt

#: The adaptation goal: fetch-and-display within twice the Ethernet time.
LATENCY_GOAL_SECONDS = 0.40
#: Netscape's image decode + paint time.
RENDER_SECONDS = 0.05
#: The cellophane's model of bandwidth-independent latency per fetch.
FIXED_OVERHEAD_SECONDS = (
    0.021  # protocol round trip (paper §6.1.3)
    + WEB_SERVER_COMPUTE
    + DISTILL_COMPUTE
    + RENDER_SECONDS
)
#: Hysteresis: an upgrade needs this multiple of the level's minimum bandwidth.
UPGRADE_MARGIN = 1.05
NO_UPPER = 1e12


@dataclass
class BrowserStats:
    """What one browsing run measured (the Fig. 11 columns)."""

    fetches: list = field(default_factory=list)  # (time, elapsed, fidelity)

    @property
    def count(self):
        return len(self.fetches)

    @property
    def mean_seconds(self):
        if not self.fetches:
            return 0.0
        return sum(elapsed for _, elapsed, _ in self.fetches) / len(self.fetches)

    @property
    def mean_fidelity(self):
        if not self.fetches:
            return 0.0
        return sum(f for _, _, f in self.fetches) / len(self.fetches)

    def goal_met_fraction(self, goal=LATENCY_GOAL_SECONDS):
        if not self.fetches:
            return 0.0
        return sum(1 for _, e, _ in self.fetches if e <= goal) / len(self.fetches)


class CellophaneBrowser(Application):
    """Repeatedly fetches an image "as fast as possible" (paper §6.2.2).

    Parameters
    ----------
    policy:
        ``"adaptive"`` or a fixed fidelity level (1.0 / 0.5 / 0.25 / 0.05).
    image_name / image_bytes:
        What to fetch and its original size (the cellophane knows sizes
        from content-length headers, so it can predict transfer times).
    think_seconds:
        Pause between fetches; 0 reproduces the paper's benchmark.
    """

    def __init__(self, sim, api, name, path, image_name, image_bytes,
                 policy="adaptive", goal=LATENCY_GOAL_SECONDS,
                 think_seconds=0.0, measure_from=0.0):
        super().__init__(sim, api, name)
        self.path = path
        self.image_name = image_name
        self.image_bytes = image_bytes
        self.policy = policy
        self.goal = goal
        self.think_seconds = think_seconds
        self.measure_from = measure_from
        self.stats = BrowserStats()
        self.level = policy if policy != "adaptive" else 1.0
        self._levels = sorted(FIDELITY_LEVELS, reverse=True)  # best first

    # -- adaptation ---------------------------------------------------------

    def predicted_seconds(self, fidelity, bandwidth):
        """The cellophane's time model for one fetch at ``fidelity``."""
        size = distilled_bytes(self.image_bytes, fidelity)
        return FIXED_OVERHEAD_SECONDS + size / bandwidth

    def min_bandwidth(self, fidelity):
        """Lowest bandwidth at which ``fidelity`` meets the goal."""
        size = distilled_bytes(self.image_bytes, fidelity)
        budget = self.goal - FIXED_OVERHEAD_SECONDS
        if budget <= 0:
            return NO_UPPER
        return size / budget

    def best_level_for(self, bandwidth):
        """Best fidelity meeting the goal at ``bandwidth`` (None = optimism)."""
        if bandwidth is None:
            return self._levels[0]
        for level in self._levels:
            if self.min_bandwidth(level) <= bandwidth:
                return level
        return self._levels[-1]  # even the worst misses the goal; degrade fully

    def _window_for_level(self, level):
        lower = self.min_bandwidth(level)
        if level == self._levels[-1]:
            lower = 0.0
        better = [l for l in self._levels if l > level]
        if better:
            upper = self.min_bandwidth(min(better)) * UPGRADE_MARGIN
        else:
            upper = NO_UPPER
        return lower, upper

    def _register(self, level_hint=None):
        if self.policy != "adaptive":
            return

        def on_level(bandwidth):
            self.level = self.best_level_for(bandwidth)

        negotiate(
            self.api, self.path, Resource.NETWORK_BANDWIDTH,
            window_for=lambda bw: self._window_for_level(self.best_level_for(bw)),
            on_level=on_level,
            level_hint=level_hint,
            handler="web-bandwidth",
        )

    def _on_upcall(self, upcall):
        self._register(level_hint=upcall.level)

    # -- the browsing loop -----------------------------------------------------

    def run(self):
        if self.policy == "adaptive":
            self.api.on_upcall("web-bandwidth", self._on_upcall)
            self._register(level_hint=self.api.availability(self.path))
        try:
            while True:
                started = self.sim.now
                yield from self.api.tsop(
                    self.path, "set-fidelity", {"fidelity": self.level}
                )
                result = yield from self.api.tsop(
                    self.path, "get-image", {"name": self.image_name}
                )
                yield self.sim.timeout(RENDER_SECONDS)
                elapsed = self.sim.now - started
                if started >= self.measure_from:
                    self.stats.fetches.append(
                        (self.sim.now, elapsed, result["fidelity"])
                    )
                if self.think_seconds > 0:
                    yield self.sim.timeout(self.think_seconds)
        except ProcessInterrupt:
            return self.stats
