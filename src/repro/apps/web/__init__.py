"""The adaptive web browser (paper §5.2).

Netscape's source is closed, so the paper interposes: all requests are
redirected to a client module called the *cellophane*, which uses the
Odyssey API and selects fidelity levels; a *web warden* forwards requests
over the mobile link to a *distillation server*, which fetches originals
from web servers and distills images to the requested JPEG quality.
Netscape passively benefits.
"""

from repro.apps.web.browser import BrowserStats, CellophaneBrowser
from repro.apps.web.distill import DistillationServer
from repro.apps.web.images import FIDELITY_LEVELS, ImageStore, WebImage, distilled_bytes
from repro.apps.web.server import WebServer
from repro.apps.web.warden import WebWarden, build_web

__all__ = [
    "BrowserStats",
    "CellophaneBrowser",
    "DistillationServer",
    "FIDELITY_LEVELS",
    "ImageStore",
    "WebImage",
    "WebServer",
    "WebWarden",
    "build_web",
    "distilled_bytes",
]
