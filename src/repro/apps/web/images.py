"""Web images and the distillation size model (paper §5.2, §6.2.2).

"The cellophane could choose one of four levels of fidelity: original
quality or JPEG compression at quality levels 50, 25, or 5.  The fidelity of
each of these levels is 1.0, 0.5, 0.25, and 0.05 respectively."

The benchmark image is 22 KB (the paper's test image).  Distilled sizes are
calibrated from the paper's Fig. 11 latencies: the gap between a level's
fetch time at 40 vs 120 KB/s pins its transfer size.
"""

import hashlib
from dataclasses import dataclass

from repro.errors import ReproError

#: Image fidelity -> (JPEG quality, distilled size as a fraction of the
#: original).  Fraction 1.0 means the original, uncompressed bytes.
FIDELITY_LEVELS = {
    1.00: ("original", 1.000),
    0.50: ("jpeg-50", 0.182),
    0.25: ("jpeg-25", 0.114),
    0.05: ("jpeg-5", 0.057),
}

#: Text/HTML fidelity levels (§8 short-term: "incorporate adaptation for
#: objects other than images").  Distillation strips markup, then content:
#: full page -> text-only -> headlines/outline.
TEXT_FIDELITY_LEVELS = {
    1.00: ("full-html", 1.000),
    0.50: ("text-only", 0.350),
    0.10: ("outline", 0.060),
}

#: Distillation tables by object kind.
KIND_LEVELS = {
    "image": FIDELITY_LEVELS,
    "text": TEXT_FIDELITY_LEVELS,
}

#: The paper's benchmark image size, bytes (§6.2.2: "a 22KB image").
BENCHMARK_IMAGE_BYTES = 22 * 1024


def distilled_bytes(original_bytes, fidelity, kind="image"):
    """Size of ``original_bytes`` distilled to ``fidelity`` for ``kind``."""
    levels = KIND_LEVELS.get(kind)
    if levels is None:
        raise ReproError(f"unknown object kind {kind!r}; known: "
                         f"{sorted(KIND_LEVELS)}")
    try:
        _, fraction = levels[fidelity]
    except KeyError:
        known = sorted(levels)
        raise ReproError(f"unknown {kind} fidelity {fidelity!r}; "
                         f"known: {known}") from None
    return max(int(original_bytes * fraction), 256)


@dataclass(frozen=True)
class WebImage:
    """One resource on a web server (an image unless ``kind`` says otherwise)."""

    name: str
    nbytes: int
    kind: str = "image"

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ReproError(f"object size must be positive, got {self.nbytes!r}")
        if self.kind not in KIND_LEVELS:
            raise ReproError(f"unknown object kind {self.kind!r}")


#: Alias making the generalization explicit at call sites.
WebObject = WebImage


class ImageStore:
    """A web server's image corpus."""

    def __init__(self):
        self._images = {}

    def add(self, image):
        if image.name in self._images:
            raise ReproError(f"image {image.name!r} already in store")
        self._images[image.name] = image
        return image

    def add_benchmark_image(self, name="test.gif"):
        """The paper's 22 KB benchmark image."""
        return self.add(WebImage(name, BENCHMARK_IMAGE_BYTES))

    def add_page(self, name, nbytes=30 * 1024):
        """An HTML page — the §8 non-image object type."""
        return self.add(WebObject(name, nbytes, kind="text"))

    def add_synthetic_corpus(self, count, seed=0, min_bytes=4 * 1024,
                             max_bytes=80 * 1024, prefix="img"):
        """A deterministic corpus with varied sizes (for realistic browsing).

        Sizes derive from a hash of (seed, index); no RNG state involved.
        """
        if count <= 0:
            raise ReproError(f"count must be positive, got {count!r}")
        span = max_bytes - min_bytes
        created = []
        for i in range(count):
            digest = hashlib.blake2b(
                f"{seed}:{i}".encode("utf-8"), digest_size=4
            ).digest()
            size = min_bytes + int.from_bytes(digest, "big") % max(span, 1)
            created.append(self.add(WebImage(f"{prefix}{i}.gif", size)))
        return created

    def get(self, name):
        image = self._images.get(name)
        if image is None:
            raise ReproError(f"no such image {name!r}")
        return image

    def names(self):
        return sorted(self._images)

    def __len__(self):
        return len(self._images)
