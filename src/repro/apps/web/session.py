"""A realistic browsing session: pages with inline images and think time.

The paper's Fig. 11 benchmark fetches one image in a tight loop for
experimental control.  Real browsing — the workload the §2.1 tourist
generates — fetches an HTML page, then its inline images, then pauses
while the user reads.  This module models that, over the §8-extended
warden (text + image distillation), with per-kind adaptive fidelity.
"""

import hashlib
from dataclasses import dataclass, field

from repro.apps.base import Application, negotiate
from repro.apps.web.browser import FIXED_OVERHEAD_SECONDS, LATENCY_GOAL_SECONDS
from repro.apps.web.images import KIND_LEVELS, distilled_bytes
from repro.core.resources import Resource
from repro.errors import ProcessInterrupt, ReproError


@dataclass(frozen=True)
class Page:
    """One page: an HTML object plus inline images (all must be in the store)."""

    html: str
    images: tuple

    def __post_init__(self):
        if not self.html:
            raise ReproError("a page needs an HTML object")


def synthetic_site(store, pages=6, images_per_page=3, seed=0):
    """Populate ``store`` with a deterministic site; returns the pages."""
    site = []
    for i in range(pages):
        digest = hashlib.blake2b(f"site:{seed}:{i}".encode("utf-8"),
                                 digest_size=4).digest()
        html_bytes = 12 * 1024 + int.from_bytes(digest, "big") % (30 * 1024)
        html = store.add_page(f"page{i}.html", nbytes=html_bytes).name
        images = store.add_synthetic_corpus(
            images_per_page, seed=seed * 1000 + i,
            min_bytes=8 * 1024, max_bytes=40 * 1024,
            prefix=f"p{i}-img",
        )
        site.append(Page(html=html, images=tuple(img.name for img in images)))
    return site


@dataclass
class SessionStats:
    """Per-page-load accounting."""

    loads: list = field(default_factory=list)
    # each: (time, seconds, image fidelity, text fidelity)

    @property
    def count(self):
        return len(self.loads)

    @property
    def mean_load_seconds(self):
        if not self.loads:
            return 0.0
        return sum(s for _, s, _, _ in self.loads) / len(self.loads)

    @property
    def mean_image_fidelity(self):
        if not self.loads:
            return 0.0
        return sum(f for _, _, f, _ in self.loads) / len(self.loads)

    def goal_met_fraction(self, goal_seconds):
        if not self.loads:
            return 0.0
        return sum(1 for _, s, _, _ in self.loads
                   if s <= goal_seconds) / len(self.loads)


class BrowsingSession(Application):
    """Loads pages from a site in order, adapting both object kinds.

    The page-load goal scales the single-image goal by the number of
    objects on a page: a page with one HTML object and three images gets
    4x the 0.4 s budget.
    """

    def __init__(self, sim, api, name, path, site, store,
                 think_seconds=5.0, policy="adaptive", measure_from=0.0):
        super().__init__(sim, api, name)
        self.path = path
        self.site = list(site)
        self.store = store
        self.think_seconds = think_seconds
        self.policy = policy
        self.measure_from = measure_from
        self.stats = SessionStats()
        self.image_level = policy if policy != "adaptive" else 1.0
        self.text_level = 1.0
        self._image_levels = sorted(KIND_LEVELS["image"], reverse=True)
        self._text_levels = sorted(KIND_LEVELS["text"], reverse=True)

    # -- adaptation (per kind, from one bandwidth estimate) ------------------

    def _typical_bytes(self, kind, level):
        """A representative object size for goal arithmetic."""
        representative = 22 * 1024 if kind == "image" else 24 * 1024
        return distilled_bytes(representative, level, kind=kind)

    def _min_bandwidth(self, kind, level):
        budget = LATENCY_GOAL_SECONDS - FIXED_OVERHEAD_SECONDS
        return self._typical_bytes(kind, level) / budget

    def best_levels_for(self, bandwidth):
        if bandwidth is None:
            return self._image_levels[0], self._text_levels[0]
        image = next((l for l in self._image_levels
                      if self._min_bandwidth("image", l) <= bandwidth),
                     self._image_levels[-1])
        text = next((l for l in self._text_levels
                     if self._min_bandwidth("text", l) <= bandwidth),
                    self._text_levels[-1])
        return image, text

    def _register(self, level_hint=None):
        if self.policy != "adaptive":
            return

        def on_level(bandwidth):
            self.image_level, self.text_level = self.best_levels_for(bandwidth)

        def window_for(bandwidth):
            image, _ = self.best_levels_for(bandwidth)
            lower = 0.0 if image == self._image_levels[-1] \
                else self._min_bandwidth("image", image)
            better = [l for l in self._image_levels if l > image]
            upper = self._min_bandwidth("image", min(better)) * 1.05 \
                if better else 1e12
            return lower, upper

        negotiate(self.api, self.path, Resource.NETWORK_BANDWIDTH,
                  window_for, on_level, level_hint=level_hint,
                  handler="session-bw")

    # -- the session ---------------------------------------------------------------

    def _load_page(self, page):
        yield from self.api.tsop(
            self.path, "set-fidelity",
            {"fidelity": self.text_level, "kind": "text"},
        )
        yield from self.api.tsop(
            self.path, "set-fidelity",
            {"fidelity": self.image_level, "kind": "image"},
        )
        yield from self.api.tsop(
            self.path, "get-image", {"name": page.html, "kind": "text"}
        )
        for image in page.images:
            yield from self.api.tsop(
                self.path, "get-image", {"name": image, "kind": "image"}
            )

    def page_goal_seconds(self, page):
        return LATENCY_GOAL_SECONDS * (1 + len(page.images))

    def run(self):
        if self.policy == "adaptive":
            self.api.on_upcall("session-bw",
                               lambda up: self._register(up.level))
            self._register(level_hint=self.api.availability(self.path))
        try:
            for page in self.site:
                started = self.sim.now
                yield from self._load_page(page)
                elapsed = self.sim.now - started
                if started >= self.measure_from:
                    self.stats.loads.append(
                        (self.sim.now, elapsed, self.image_level,
                         self.text_level)
                    )
                yield self.sim.timeout(self.think_seconds)
        except ProcessInterrupt:
            pass
        return self.stats
