"""The distillation server (paper §5.2, after Fox et al.).

"The distillation server fetches requested objects from the appropriate Web
server, distills them to the requested fidelity level, and sends the results
to the warden."  It sits on the wired side of the network: the expensive
hop — client to distillation server — is the modulated one.
"""

from repro.apps.web.images import distilled_bytes
from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.messages import ServerReply

#: CPU time to decode + recompress one image.
DISTILL_COMPUTE = 0.02
#: CPU time to strip markup / summarize a text object (much cheaper).
TEXT_DISTILL_COMPUTE = 0.005


class DistillationServer:
    """Distills images to a requested fidelity on behalf of mobile clients.

    Operations:

    - ``get-image`` — body ``{"name", "fidelity"}``; fetches the original
      from the web server over its own (wired) RPC connection, distills,
      and replies with a bulk source of the distilled bytes.  Fidelity 1.0
      skips recompression and ships the original.
    """

    def __init__(self, sim, network, host, web_server_name, web_port="http",
                 port="distill"):
        self.sim = sim
        self.service = RpcService(sim, host, port)
        self.service.register("get-image", self._get_image)
        self.service.register("post", self._post)
        self.web_connection = RpcConnection(
            sim, network, web_server_name, web_port,
            connection_id=f"{host.name}->{web_server_name}",
            client_host=host,
        )
        self.images_distilled = 0
        self.bytes_saved = 0
        self.posts_forwarded = 0

    def _post(self, body):
        """Generator handler: forward a form submission to the origin server.

        Distillation never owns writes — the origin's accept/conflict
        verdict passes through untouched so reintegration reports reflect
        the authoritative copy.
        """
        reply_body, _ = yield from self.web_connection.call(
            "post", body=body, body_bytes=128
        )
        self.posts_forwarded += 1
        return ServerReply(body=reply_body, body_bytes=48)

    def _get_image(self, body):
        """Generator handler: wired fetch, distill, reply with bulk.

        Handles both images (JPEG recompression) and, per the paper's §8
        short-term plan, text objects (markup stripping / summarization) —
        ``body["kind"]`` selects the distillation table.
        """
        name, fidelity = body["name"], body["fidelity"]
        kind = body.get("kind", "image")
        _, meta, original_bytes = yield from self.web_connection.fetch(
            "get-object", body={"name": name}, body_bytes=96
        )
        out_bytes = distilled_bytes(original_bytes, fidelity, kind=kind)
        compute = 0.0
        if fidelity < 1.0:
            compute = DISTILL_COMPUTE if kind == "image" else TEXT_DISTILL_COMPUTE
            self.bytes_saved += original_bytes - out_bytes
        self.images_distilled += 1
        return ServerReply(
            body={"name": name, "fidelity": fidelity, "nbytes": out_bytes,
                  "kind": kind},
            body_bytes=64,
            compute_seconds=compute,
            bulk=self.service.make_bulk(
                out_bytes, meta={"name": name, "fidelity": fidelity}
            ),
        )
