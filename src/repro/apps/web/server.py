"""The origin web server (kept on the test network for experimental control,
exactly as in the paper §6.2.2)."""

from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Server time to locate and start serving an object (CGI-era web server).
WEB_SERVER_COMPUTE = 0.10


class WebServer:
    """Serves original images by name via ``get-object``."""

    def __init__(self, sim, host, store, port="http"):
        self.sim = sim
        self.store = store
        self.service = RpcService(sim, host, port)
        self.service.register("get-object", self._get_object)
        self.requests = 0

    def _get_object(self, body):
        image = self.store.get(body["name"])
        self.requests += 1
        return ServerReply(
            body={"name": image.name, "nbytes": image.nbytes},
            body_bytes=64,
            compute_seconds=WEB_SERVER_COMPUTE,
            bulk=self.service.make_bulk(image.nbytes, meta={"name": image.name}),
        )
