"""The origin web server (kept on the test network for experimental control,
exactly as in the paper §6.2.2)."""

from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Server time to locate and start serving an object (CGI-era web server).
WEB_SERVER_COMPUTE = 0.10


class WebServer:
    """Serves original images by name via ``get-object``."""

    def __init__(self, sim, host, store, port="http"):
        self.sim = sim
        self.store = store
        self.service = RpcService(sim, host, port)
        self.service.register("get-object", self._get_object)
        self.service.register("post", self._post)
        self.requests = 0
        #: Form submissions: name -> accepted version (optimistic
        #: concurrency — a replayed write older than the accepted version
        #: is a reintegration conflict, not an overwrite).
        self.forms = {}
        self.posts_accepted = 0
        self.posts_conflicted = 0

    def _get_object(self, body):
        image = self.store.get(body["name"])
        self.requests += 1
        return ServerReply(
            body={"name": image.name, "nbytes": image.nbytes},
            body_bytes=64,
            compute_seconds=WEB_SERVER_COMPUTE,
            bulk=self.service.make_bulk(image.nbytes, meta={"name": image.name}),
        )

    def _post(self, body):
        form, version = body["form"], body["version"]
        current = self.forms.get(form, 0)
        conflict = version <= current
        if conflict:
            self.posts_conflicted += 1
        else:
            self.forms[form] = version
            self.posts_accepted += 1
        return ServerReply(
            body={"form": form, "version": self.forms.get(form, current),
                  "conflict": conflict},
            body_bytes=48,
            compute_seconds=WEB_SERVER_COMPUTE,
        )
