"""The web warden (paper §5.2).

Transforms the cellophane's requests into fetches from the distillation
server over the mobile connection.  "The warden provides a tsop to set the
fidelity level."  A ``direct`` mode bypasses distillation and talks straight
to the web server — the paper's unmodified-Ethernet baseline.
"""

from repro.apps.web.images import FIDELITY_LEVELS, KIND_LEVELS
from repro.core.warden import Warden
from repro.errors import OdysseyError


class WebWarden(Warden):
    """Fetches (possibly distilled) web objects for the browser."""

    TSOPS = {
        "set-fidelity": "tsop_set_fidelity",
        "get-fidelity": "tsop_get_fidelity",
        "get-image": "tsop_get_image",
    }
    FIDELITIES = {name: level for level, (name, _) in FIDELITY_LEVELS.items()}

    def __init__(self, sim, viceroy, name="web", direct=False, **kwargs):
        super().__init__(sim, viceroy, name, **kwargs)
        self.direct = direct
        #: Per-kind fidelity levels (images and, per §8, text objects).
        self.fidelities = {"image": 1.0, "text": 1.0}
        self.images_fetched = 0

    @property
    def fidelity(self):
        """Image fidelity (the Fig. 11 dimension)."""
        return self.fidelities["image"]

    def tsop_set_fidelity(self, app, rest, inbuf):
        """Set the fidelity used for subsequent fetches of a kind."""
        level = float(inbuf["fidelity"])
        kind = inbuf.get("kind", "image")
        levels = KIND_LEVELS.get(kind)
        if levels is None:
            raise OdysseyError(f"unknown object kind {kind!r}")
        if level not in levels:
            raise OdysseyError(
                f"{kind} fidelity {level!r} not offered; "
                f"levels: {sorted(levels)}"
            )
        self.fidelities[kind] = level
        return level
        yield  # pragma: no cover - generator protocol

    def tsop_get_fidelity(self, app, rest, inbuf):
        """Current fidelity level for a kind (default: images)."""
        return self.fidelities[inbuf.get("kind", "image") if inbuf else "image"]
        yield  # pragma: no cover - generator protocol

    def tsop_get_image(self, app, rest, inbuf):
        """Fetch an image at the current fidelity.

        Returns ``{"name", "fidelity", "nbytes"}``.  In ``direct`` mode the
        original is fetched from the web server at full fidelity.
        """
        name = inbuf["name"]
        kind = inbuf.get("kind", "image")
        conn = self.primary_connection(rest)
        if self.direct:
            reply, _, nbytes = yield from conn.fetch(
                "get-object", body={"name": name}, body_bytes=96
            )
            fidelity = 1.0
        else:
            fidelity = self.fidelities[kind]
            reply, _, nbytes = yield from conn.fetch(
                "get-image",
                body={"name": name, "fidelity": fidelity, "kind": kind},
                body_bytes=96,
            )
        self.images_fetched += 1
        return {"name": name, "fidelity": fidelity, "nbytes": nbytes,
                "kind": kind}


def build_web(sim, viceroy, network, store, direct=False,
              mount="/odyssey/web", **warden_kwargs):
    """Wire web server (+ distillation server unless direct) and warden.

    Returns ``(warden, distillation_server_or_None, web_server)``.
    """
    from repro.apps.web.distill import DistillationServer
    from repro.apps.web.server import WebServer

    web_host = network.add_host("web-server")
    web_server = WebServer(sim, web_host, store)
    distiller = None
    warden = WebWarden(sim, viceroy, direct=direct, **warden_kwargs)
    if direct:
        warden.open_connection("web-server", "http")
    else:
        distill_host = network.add_host("distill-server")
        distiller = DistillationServer(sim, network, distill_host, "web-server")
        warden.open_connection("distill-server", "distill")
    viceroy.mount(mount, warden)
    return warden, distiller, web_server
