"""The web warden (paper §5.2).

Transforms the cellophane's requests into fetches from the distillation
server over the mobile connection.  "The warden provides a tsop to set the
fidelity level."  A ``direct`` mode bypasses distillation and talks straight
to the web server — the paper's unmodified-Ethernet baseline.

Disconnected operation: every fetched object is write-through cached, so a
blackout is served from cache (stale, with the staleness recorded) through
:meth:`~repro.core.warden.Warden.resilient_fetch`; form submissions — the
warden's mutating tsop — queue to the deferred-op log and reintegrate on
reconnection.
"""

from repro.apps.web.images import FIDELITY_LEVELS, KIND_LEVELS
from repro.core.warden import Warden
from repro.errors import OdysseyError

#: Request bytes for a form submission (name + version + small payload).
POST_BODY_BYTES = 256


class WebWarden(Warden):
    """Fetches (possibly distilled) web objects for the browser."""

    TSOPS = {
        "set-fidelity": "tsop_set_fidelity",
        "get-fidelity": "tsop_get_fidelity",
        "get-image": "tsop_get_image",
        "post-form": "tsop_post_form",
    }
    FIDELITIES = {name: level for level, (name, _) in FIDELITY_LEVELS.items()}
    DEFERRABLE_TSOPS = frozenset({"post-form"})

    def __init__(self, sim, viceroy, name="web", direct=False, retry=None,
                 **kwargs):
        super().__init__(sim, viceroy, name, **kwargs)
        self.direct = direct
        #: Optional RetryPolicy.  None keeps the paper-faithful behaviour —
        #: fetches wait indefinitely; set one (with a ``deadline``) to make
        #: fetches fail fast into degraded service during outages.
        self.retry = retry
        #: Per-kind fidelity levels (images and, per §8, text objects).
        self.fidelities = {"image": 1.0, "text": 1.0}
        self.images_fetched = 0
        self.forms_posted = 0

    @property
    def fidelity(self):
        """Image fidelity (the Fig. 11 dimension)."""
        return self.fidelities["image"]

    def tsop_set_fidelity(self, app, rest, inbuf):
        """Set the fidelity used for subsequent fetches of a kind."""
        level = float(inbuf["fidelity"])
        kind = inbuf.get("kind", "image")
        levels = KIND_LEVELS.get(kind)
        if levels is None:
            raise OdysseyError(f"unknown object kind {kind!r}")
        if level not in levels:
            raise OdysseyError(
                f"{kind} fidelity {level!r} not offered; "
                f"levels: {sorted(levels)}"
            )
        self.fidelities[kind] = level
        return level
        yield  # pragma: no cover - generator protocol

    def tsop_get_fidelity(self, app, rest, inbuf):
        """Current fidelity level for a kind (default: images)."""
        return self.fidelities[inbuf.get("kind", "image") if inbuf else "image"]
        yield  # pragma: no cover - generator protocol

    def tsop_get_image(self, app, rest, inbuf):
        """Fetch an image at the current fidelity.

        Returns ``{"name", "fidelity", "nbytes"}``.  In ``direct`` mode the
        original is fetched from the web server at full fidelity.  While
        the connection is healthy the fetch always goes to the network (the
        result is cached write-through); while disconnected, the cached
        copy is served stale or a miss raises
        :class:`~repro.errors.Disconnected`.
        """
        name = inbuf["name"]
        kind = inbuf.get("kind", "image")
        conn = self.primary_connection(rest)
        fidelity = 1.0 if self.direct else self.fidelities[kind]
        key = ("image", name, kind, fidelity)

        def fetch_op():
            if self.direct:
                _, _, nbytes = yield from self._fetch(
                    conn, "get-object", {"name": name}
                )
            else:
                _, _, nbytes = yield from self._fetch(
                    conn, "get-image",
                    {"name": name, "fidelity": fidelity, "kind": kind},
                )
            self.images_fetched += 1
            value = {"name": name, "fidelity": fidelity, "nbytes": nbytes,
                     "kind": kind}
            return value, nbytes

        result = yield from self.resilient_fetch(conn, key, fetch_op)
        return result

    def tsop_post_form(self, app, rest, inbuf):
        """Submit a form to the origin server — the warden's mutating tsop.

        ``inbuf``: ``{"form": name, "version": int}``.  Returns the
        server's ``{"form", "version", "conflict"}`` reply; ``conflict``
        means a newer version already landed (the reintegration report
        surfaces this as a per-op conflict).  While disconnected the op is
        queued instead (dispatch returns a ``{"deferred": True}`` marker).
        """
        conn = self.primary_connection(rest)
        body = {"form": inbuf["form"], "version": inbuf.get("version", 1)}
        if self.retry is None:
            reply, _ = yield from conn.call(
                "post", body=body, body_bytes=POST_BODY_BYTES
            )
        else:
            reply, _ = yield from conn.call_with_retry(
                "post", body=body, body_bytes=POST_BODY_BYTES,
                retry=self.retry,
            )
        self.forms_posted += 1
        return reply

    def _fetch(self, conn, op, body):
        """One network fetch, retried iff a policy is configured.  Generator."""
        if self.retry is None:
            result = yield from conn.fetch(op, body=body, body_bytes=96)
        else:
            result = yield from conn.fetch_with_retry(
                op, body=body, body_bytes=96, retry=self.retry
            )
        return result


def build_web(sim, viceroy, network, store, direct=False,
              mount="/odyssey/web", **warden_kwargs):
    """Wire web server (+ distillation server unless direct) and warden.

    Returns ``(warden, distillation_server_or_None, web_server)``.
    """
    from repro.apps.web.distill import DistillationServer
    from repro.apps.web.server import WebServer

    web_host = network.add_host("web-server")
    web_server = WebServer(sim, web_host, store)
    distiller = None
    warden = WebWarden(sim, viceroy, direct=direct, **warden_kwargs)
    if direct:
        warden.open_connection("web-server", "http")
    else:
        distill_host = network.add_host("distill-server")
        distiller = DistillationServer(sim, network, distill_host, "web-server")
        warden.open_connection("distill-server", "distill")
    viceroy.mount(mount, warden)
    return warden, distiller, web_server
