"""Cost model for split Janus recognition.

Calibrated against the paper's Fig. 12 so that:

- hybrid is always at least as fast as remote at 40 and 120 KB/s
  ("hybrid translation is always the correct strategy when speech is the
  sole application" at the reference bandwidths);
- the two are nearly tied at the high bandwidth (Impulse-Down: 0.76 vs
  0.77 s), and remote wins only above the reference range ("at higher
  bandwidths an adaptive strategy has benefits");
- the remote penalty at low bandwidth matches the paper's ~1.11 s.
"""

from dataclasses import dataclass

from repro.errors import ReproError

#: 90 MHz Pentium client vs 200 MHz Pentium Pro servers (paper §6.1.3).
#: The server runs the first pass roughly this much faster.
SERVER_SPEEDUP = 1.9


@dataclass(frozen=True)
class Utterance:
    """A captured utterance: a short phrase (paper uses one per trial)."""

    name: str
    raw_bytes: int = 20480
    compression_ratio: float = 5.0  # paper: "approximately 5:1"
    text: str = "move the map to the north"

    def __post_init__(self):
        if self.raw_bytes <= 0:
            raise ReproError(f"raw_bytes must be positive, got {self.raw_bytes!r}")
        if self.compression_ratio <= 1:
            raise ReproError("compression_ratio must exceed 1")

    @property
    def preprocessed_bytes(self):
        return int(self.raw_bytes / self.compression_ratio)


#: Recognition fidelity levels (§8 short-term: "add support for multiple
#: levels of recognition fidelity").  Vocabulary size scales both quality
#: and compute: the tiny vocabulary is what §2.1's wearable falls back to
#: when disconnected.
VOCABULARIES = {
    "full": {"fidelity": 1.0, "compute_scale": 1.0},
    "small": {"fidelity": 0.5, "compute_scale": 0.45},
    "tiny": {"fidelity": 0.1, "compute_scale": 0.12},
}


@dataclass(frozen=True)
class SpeechCosts:
    """CPU seconds for the phases of Janus on client and server."""

    client_first_pass: float = 0.28  # slow mobile CPU
    server_first_pass: float = 0.15  # = client_first_pass / SERVER_SPEEDUP
    server_later_phases: float = 0.41
    local_full_recognition: float = 4.0  # disconnected fallback, severe

    def remote_seconds(self, utterance, bandwidth, round_trip):
        """Predicted time to ship raw audio and recognize fully remotely."""
        return (round_trip + utterance.raw_bytes / bandwidth
                + self.server_first_pass + self.server_later_phases)

    def hybrid_seconds(self, utterance, bandwidth, round_trip):
        """Predicted time to preprocess locally and ship the compressed form."""
        return (self.client_first_pass + round_trip
                + utterance.preprocessed_bytes / bandwidth
                + self.server_later_phases)

    def local_seconds(self, vocabulary="full"):
        """Fully-local recognition at a given vocabulary level.

        The full vocabulary is severe on the mobile CPU (paper §5.3); the
        tiny vocabulary trades recognition fidelity for a response time
        usable while disconnected (§2.1).
        """
        scale = vocabulary_info(vocabulary)["compute_scale"]
        return self.local_full_recognition * scale


def vocabulary_info(name):
    """Look up a vocabulary fidelity level."""
    try:
        return VOCABULARIES[name]
    except KeyError:
        known = ", ".join(sorted(VOCABULARIES))
        raise ReproError(f"unknown vocabulary {name!r}; known: {known}") from None


DEFAULT_COSTS = SpeechCosts()


def crossover_bandwidth(utterance, costs=DEFAULT_COSTS):
    """Bandwidth above which shipping raw audio beats local preprocessing.

    Setting remote == hybrid:  (raw - pre)/bw = client_fp - server_fp.
    """
    cpu_saving = costs.client_first_pass - costs.server_first_pass
    if cpu_saving <= 0:
        return float("inf")
    extra_bytes = utterance.raw_bytes - utterance.preprocessed_bytes
    return extra_bytes / cpu_saving
