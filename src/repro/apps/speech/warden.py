"""The speech warden (paper §5.3).

"The speech front-end captures a raw speech utterance and then writes it to
an object in the Odyssey namespace.  The warden, using the current bandwidth
estimate, decides whether it is faster to perform the first pass of the
recognition on the local, slower CPU, or to ship the larger, raw utterance
to the server.  In the extreme case of disconnection, the local Janus is
capable of recognizing the utterance, but at a severe CPU and memory cost.
When the utterance is recognized, the resulting text is made available to
the front-end through a read operation."

Strategy modes (set via tsop, for the Fig. 12 static comparisons):
``adaptive`` (the warden decides), ``hybrid``, ``remote``, ``local``.
"""

import itertools

from repro.apps.speech.model import DEFAULT_COSTS, vocabulary_info
from repro.core.shipping import Plan, PlacementEngine
from repro.core.warden import Warden
from repro.errors import OdysseyError

STRATEGIES = ("adaptive", "hybrid", "remote", "local")

#: If every network plan predicts worse than this, recognition goes fully
#: local at a degraded vocabulary — the paper's §2.1 disconnected mode.
DISCONNECTION_THRESHOLD_SECONDS = 3.0
#: While disconnected, probe the server this often.  Passive estimation
#: sees no traffic in local mode, so without probes a stale estimate would
#: pin the warden offline forever (Coda solved the same problem the same
#: way).
PROBE_INTERVAL_SECONDS = 10.0
#: A probe round trip under this means the link is usable again.
PROBE_RTT_THRESHOLD_SECONDS = 0.15

#: Placement hysteresis: enough to damp estimate noise without hiding the
#: hybrid/remote crossover just above the reference bandwidths.
PLACEMENT_HYSTERESIS = 0.05


class SpeechWarden(Warden):
    """Decides recognition placement and runs it."""

    TSOPS = {
        "set-strategy": "tsop_set_strategy",
        "get-strategy": "tsop_get_strategy",
        "set-vocabulary": "tsop_set_vocabulary",
        "get-vocabulary": "tsop_get_vocabulary",
    }
    FIDELITIES = {"full": 1.0, "small": 0.5, "tiny": 0.1}

    def __init__(self, sim, viceroy, name="speech", costs=DEFAULT_COSTS, **kwargs):
        super().__init__(sim, viceroy, name, **kwargs)
        self.costs = costs
        self.strategy = "adaptive"
        self.vocabulary = "full"
        self.decisions = []  # (time, chosen, bandwidth estimate)
        self._handles = {}
        self._handle_ids = itertools.count(1)
        # The §8 generalization: placement decided by the shared engine
        # rather than ad-hoc warden arithmetic.
        self.placement = PlacementEngine(
            viceroy, connection_id=None, hysteresis=PLACEMENT_HYSTERESIS
        )
        self._last_probe = None
        self._probe_running = False
        self._reconnected = False

    def plans_for(self, utterance):
        """The placement alternatives for one utterance."""
        return (
            Plan(
                "hybrid",
                local_seconds=self.costs.client_first_pass,
                remote_seconds=self.costs.server_later_phases,
                ship_bytes=utterance.preprocessed_bytes,
                result_bytes=128,
            ),
            Plan(
                "remote",
                remote_seconds=(self.costs.server_first_pass
                                + self.costs.server_later_phases),
                ship_bytes=utterance.raw_bytes,
                result_bytes=128,
            ),
        )

    # -- tsops ----------------------------------------------------------------

    def tsop_set_strategy(self, app, rest, inbuf):
        """Force a placement strategy (static modes of Fig. 12)."""
        strategy = inbuf["strategy"]
        if strategy not in STRATEGIES:
            raise OdysseyError(
                f"unknown strategy {strategy!r}; known: {STRATEGIES}"
            )
        self.strategy = strategy
        return strategy
        yield  # pragma: no cover - generator protocol

    def tsop_get_strategy(self, app, rest, inbuf):
        return self.strategy
        yield  # pragma: no cover - generator protocol

    def tsop_set_vocabulary(self, app, rest, inbuf):
        """Select a recognition fidelity level (vocabulary size)."""
        vocabulary = inbuf["vocabulary"]
        vocabulary_info(vocabulary)  # validates
        self.vocabulary = vocabulary
        return vocabulary
        yield  # pragma: no cover - generator protocol

    def tsop_get_vocabulary(self, app, rest, inbuf):
        return self.vocabulary
        yield  # pragma: no cover - generator protocol

    # -- the write-then-read recognition flow -------------------------------------

    def vfs_open(self, app, rest, flags="r"):
        handle = {"id": next(self._handle_ids), "path": rest, "result": None}
        return handle

    def vfs_write(self, app, handle, utterance):
        """Recognize ``utterance``; the text appears for a later read."""
        choice = self._choose(utterance)
        self.decisions.append((self.sim.now, choice, self._bandwidth()))
        if choice == "local":
            yield self.sim.timeout(self.costs.local_seconds(self.vocabulary))
            fidelity = vocabulary_info(self.vocabulary)["fidelity"]
            result = {"text": utterance.text,
                      "confidence": 0.80 * fidelity,
                      "vocabulary": self.vocabulary}
        elif choice == "remote":
            result = yield from self._recognize_remote(utterance)
        else:  # hybrid
            result = yield from self._recognize_hybrid(utterance)
        handle["result"] = result
        return len(utterance.text)

    def vfs_read(self, app, handle, nbytes):
        """The recognized text (None until a write completes)."""
        return handle["result"]
        yield  # pragma: no cover - generator protocol

    def vfs_close(self, app, handle):
        handle["result"] = None

    # -- placement ------------------------------------------------------------------

    def _bandwidth(self):
        conn = self.primary_connection()
        return self.viceroy.availability_for_connection(conn.connection_id)

    def _choose(self, utterance):
        if self.strategy != "adaptive":
            return self.strategy
        self.placement.connection_id = self.primary_connection().connection_id
        plan = self.placement.decide(self.plans_for(utterance))
        # §2.1's extreme case: effectively disconnected.  If the best
        # network plan predicts an unusable response time, recognize
        # locally at a degraded vocabulary rather than waiting.
        predicted = self.placement.decisions[-1][1]
        if predicted > DISCONNECTION_THRESHOLD_SECONDS and not self._reconnected:
            self.vocabulary = "tiny"
            self._maybe_probe()
            return "local"
        self._reconnected = False
        self.vocabulary = "full"
        return plan.name

    def _maybe_probe(self):
        """Background reconnection probe while operating locally."""
        now = self.sim.now
        if self._probe_running:
            return
        if self._last_probe is not None and \
                now - self._last_probe < PROBE_INTERVAL_SECONDS:
            return
        self._last_probe = now
        self._probe_running = True
        self.sim.process(self._probe(), name=f"{self.name}.probe")

    def _probe(self):
        conn = self.primary_connection()
        started = self.sim.now
        try:
            yield from conn.call("prepare", body_bytes=64)
        finally:
            self._probe_running = False
        if self.sim.now - started < PROBE_RTT_THRESHOLD_SECONDS:
            # The link is back: forget the stale placement and let the next
            # recognition use the network (which refreshes the estimates).
            self.placement.reset()
            self._reconnected = True

    def _recognize_remote(self, utterance):
        conn = self.primary_connection()
        yield from conn.call("prepare", body_bytes=64)
        result = yield from conn.push(
            "recognize-raw", utterance.raw_bytes,
            body={"text": utterance.text},
        )
        return result

    def _recognize_hybrid(self, utterance):
        conn = self.primary_connection()
        yield from conn.call("prepare", body_bytes=64)
        # First pass on the local, slower CPU...
        yield self.sim.timeout(self.costs.client_first_pass)
        # ...then ship the 5:1-compressed form.
        result = yield from conn.push(
            "recognize-pre", utterance.preprocessed_bytes,
            body={"text": utterance.text},
        )
        return result


def build_speech(sim, viceroy, network, costs=DEFAULT_COSTS,
                 mount="/odyssey/speech", **warden_kwargs):
    """Wire Janus server + warden; returns (warden, server)."""
    from repro.apps.speech.server import JanusServer

    host = network.add_host("janus-server")
    server = JanusServer(sim, host, costs=costs)
    warden = SpeechWarden(sim, viceroy, costs=costs, **warden_kwargs)
    warden.open_connection("janus-server", "janus")
    viceroy.mount(mount, warden)
    return warden, server
