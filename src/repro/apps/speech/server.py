"""The remote Janus server."""

from repro.apps.speech.model import DEFAULT_COSTS
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply


class JanusServer:
    """Accepts raw or preprocessed utterances (paper §5.3).

    Both operations are reached via :meth:`RpcConnection.push` — the
    utterance bytes are shipped to the server, then the handler runs:

    - ``recognize-raw`` — server runs the first pass and later phases;
    - ``recognize-pre`` — the client already ran the first pass.

    The CPU semaphore serializes recognitions: a 200 MHz Pentium Pro runs
    one Janus instance at a time.
    """

    def __init__(self, sim, host, costs=DEFAULT_COSTS, port="janus"):
        self.sim = sim
        self.costs = costs
        self.service = RpcService(sim, host, port, cpus=1)
        self.service.register("prepare", self._prepare)
        self.service.register("recognize-raw", self._recognize_raw)
        self.service.register("recognize-pre", self._recognize_pre)
        self.recognitions = 0

    def _prepare(self, body):
        """Session setup before an utterance is shipped.

        A small exchange, so it also feeds the connection's round-trip log
        — without it the push-only speech endpoint would never observe a
        round trip and Eq. 2 could not correct its throughput samples.
        """
        return ServerReply(body={"session": True}, body_bytes=32,
                           compute_seconds=0.002)

    def _reply(self, body, compute):
        self.recognitions += 1
        return ServerReply(
            body={"text": body["text"], "confidence": 0.95},
            body_bytes=128,
            compute_seconds=compute,
        )

    def _recognize_raw(self, body):
        compute = self.costs.server_first_pass + self.costs.server_later_phases
        return self._reply(body, compute)

    def _recognize_pre(self, body):
        return self._reply(body, self.costs.server_later_phases)
