"""The speech recognizer (paper §5.3).

Janus split into client and server.  "The server accepts two forms of
input: a raw utterance, or an utterance that has already been processed by
the first of several phases of Janus.  This pre-processing yields a
compression ratio of approximately 5:1 at modest CPU cost."  The warden
decides, from the current bandwidth estimate, whether to run the first pass
locally (hybrid) or ship the raw utterance (remote); in the extreme case of
disconnection a purely local recognition is possible at severe CPU cost.
"""

from repro.apps.speech.model import (
    SpeechCosts,
    Utterance,
    DEFAULT_COSTS,
    crossover_bandwidth,
)
from repro.apps.speech.recognizer import RecognizerStats, SpeechFrontEnd
from repro.apps.speech.server import JanusServer
from repro.apps.speech.warden import SpeechWarden, build_speech

__all__ = [
    "DEFAULT_COSTS",
    "JanusServer",
    "RecognizerStats",
    "SpeechCosts",
    "SpeechFrontEnd",
    "SpeechWarden",
    "Utterance",
    "crossover_bandwidth",
]
