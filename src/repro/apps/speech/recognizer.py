"""The speech front-end: capture, write, read (paper §5.3, §6.2.2).

"For the speech experiments, we recognized a single, short phrase, repeating
the recognition as quickly as possible.  Since the quality of recognition
does not vary, the only interesting metric is the speed with which
recognitions take place."
"""

from dataclasses import dataclass, field

from repro.apps.base import Application
from repro.apps.speech.model import Utterance
from repro.errors import ProcessInterrupt


@dataclass
class RecognizerStats:
    """What one run measured (the Fig. 12 columns)."""

    recognitions: list = field(default_factory=list)  # (time, seconds)

    @property
    def count(self):
        return len(self.recognitions)

    @property
    def mean_seconds(self):
        if not self.recognitions:
            return 0.0
        return sum(s for _, s in self.recognitions) / len(self.recognitions)


class SpeechFrontEnd(Application):
    """Captures utterances and recognizes them through the Odyssey namespace.

    Parameters
    ----------
    strategy:
        ``adaptive``, ``hybrid``, ``remote``, or ``local`` — forwarded to
        the warden via the set-strategy tsop before the loop starts.
    utterance:
        The phrase recognized repeatedly.
    pause_seconds:
        Gap between recognitions (0 = the paper's as-fast-as-possible).
    """

    def __init__(self, sim, api, name, path, strategy="adaptive",
                 utterance=None, pause_seconds=0.0, measure_from=0.0):
        super().__init__(sim, api, name)
        self.path = path
        self.strategy = strategy
        self.utterance = utterance or Utterance("benchmark-phrase")
        self.pause_seconds = pause_seconds
        self.measure_from = measure_from
        self.stats = RecognizerStats()

    def run(self):
        yield from self.api.tsop(
            self.path, "set-strategy", {"strategy": self.strategy}
        )
        object_path = f"{self.path}/{self.utterance.name}"
        try:
            while True:
                started = self.sim.now
                fd = self.api.open(object_path, flags="w")
                yield from self.api.write(fd, self.utterance)
                result = yield from self.api.read(fd)
                self.api.close(fd)
                assert result["text"] == self.utterance.text
                if started >= self.measure_from:
                    self.stats.recognitions.append(
                        (self.sim.now, self.sim.now - started)
                    )
                if self.pause_seconds > 0:
                    yield self.sim.timeout(self.pause_seconds)
        except ProcessInterrupt:
            return self.stats
