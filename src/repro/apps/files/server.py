"""A versioned file server (the Coda-style remote repository)."""

import hashlib

from repro.errors import ReproError
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Server time to validate or locate a file.
VALIDATE_COMPUTE_SECONDS = 0.002
FETCH_COMPUTE_SECONDS = 0.004


def file_bytes(name, version):
    """Deterministic size of a file at a version (documents grow/shrink)."""
    digest = hashlib.blake2b(f"file:{name}:{version}".encode("utf-8"),
                             digest_size=4).digest()
    factor = 0.7 + 0.6 * (int.from_bytes(digest, "big") / 0xFFFFFFFF)
    return max(int(24 * 1024 * factor), 1024)


class FileServer:
    """Holds versioned files; versions advance as writers elsewhere commit.

    Operations:

    - ``validate`` — small exchange: the current version of a file (what a
      strong-consistency open pays for);
    - ``fetch`` — bulk: the file's current contents plus its version.
    """

    def __init__(self, sim, host, port="files", update_period=None):
        self.sim = sim
        self.service = RpcService(sim, host, port)
        self.service.register("validate", self._validate)
        self.service.register("fetch", self._fetch)
        self._versions = {}
        self.update_period = update_period
        if update_period is not None:
            if update_period <= 0:
                raise ReproError("update_period must be positive")
            sim.process(self._mutator(), name="files.mutator")

    def _mutator(self):
        """Background writers elsewhere in the system commit updates."""
        while True:
            yield self.sim.timeout(self.update_period)
            for name in list(self._versions):
                self._versions[name] += 1

    def create(self, name):
        if name in self._versions:
            raise ReproError(f"file {name!r} already exists")
        self._versions[name] = 1
        return name

    def touch(self, name):
        """Commit an update to ``name`` (tests drive staleness with this)."""
        self._version_of(name)
        self._versions[name] += 1

    def version(self, name):
        return self._version_of(name)

    def _version_of(self, name):
        version = self._versions.get(name)
        if version is None:
            raise ReproError(f"no such file {name!r}")
        return version

    # -- handlers ------------------------------------------------------------

    def _validate(self, body):
        version = self._version_of(body["name"])
        return ServerReply(
            body={"name": body["name"], "version": version},
            body_bytes=48,
            compute_seconds=VALIDATE_COMPUTE_SECONDS,
        )

    def _fetch(self, body):
        name = body["name"]
        version = self._version_of(name)
        nbytes = file_bytes(name, version)
        return ServerReply(
            body={"name": name, "version": version},
            body_bytes=48,
            compute_seconds=FETCH_COMPUTE_SECONDS,
            bulk=self.service.make_bulk(
                nbytes, meta={"name": name, "version": version}
            ),
        )
