"""Cached files with *consistency* as the fidelity dimension (§2.2).

"Fidelity has many dimensions.  One well-known, universal dimension is
consistency.  Systems such as Coda, Ficus and Bayou expose potentially
stale data to applications when network connectivity is poor or
nonexistent."

This package is that dimension, made concrete: a file warden that caches
whole files and offers three consistency levels — validate-on-every-open
(strong), and two optimistic levels that serve cached copies within a
staleness bound.  An adaptive reader widens its staleness tolerance as
bandwidth drops, trading freshness for open latency exactly as Coda trades
consistency for availability.
"""

from repro.apps.files.server import FileServer
from repro.apps.files.warden import CONSISTENCY_LEVELS, FileWarden, build_files
from repro.apps.files.reader import DocumentReader, ReaderStats

__all__ = [
    "CONSISTENCY_LEVELS",
    "DocumentReader",
    "FileServer",
    "FileWarden",
    "ReaderStats",
    "build_files",
]
