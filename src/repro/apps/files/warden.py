"""The file warden: whole-file caching with selectable consistency.

The fidelity levels are staleness bounds, Coda-style:

- ``1.0`` (strong)   — validate with the server on every open;
- ``0.5`` (fresh)    — serve cached copies validated within 10 s;
- ``0.1`` (relaxed)  — serve cached copies validated within 60 s.

Lower levels risk exposing stale data (§2.2's tradeoff) but make opens
cheap — at the relaxed level, an open during a bandwidth shadow usually
costs nothing at all.
"""

from dataclasses import dataclass

from repro.core.warden import Warden
from repro.errors import NoSuchObject, OdysseyError

#: Fidelity -> maximum seconds since last validation before re-validating.
#: Strong consistency is a zero staleness bound.
CONSISTENCY_LEVELS = {1.0: 0.0, 0.5: 10.0, 0.1: 60.0}


@dataclass
class CachedFile:
    name: str
    version: int
    nbytes: int
    validated_at: float


class FileWarden(Warden):
    """Caches whole files; consistency level selected by tsop."""

    TSOPS = {
        "set-consistency": "tsop_set_consistency",
        "get-consistency": "tsop_get_consistency",
        "open-stats": "tsop_open_stats",
    }
    FIDELITIES = {"strong": 1.0, "fresh": 0.5, "relaxed": 0.1}

    def __init__(self, sim, viceroy, name="files", **kwargs):
        super().__init__(sim, viceroy, name, **kwargs)
        self.consistency = 1.0
        self.validations = 0
        self.refetches = 0
        self.cache_serves = 0

    # -- tsops -----------------------------------------------------------------

    def tsop_set_consistency(self, app, rest, inbuf):
        level = float(inbuf["consistency"])
        if level not in CONSISTENCY_LEVELS:
            raise OdysseyError(
                f"consistency {level!r} not offered; "
                f"levels: {sorted(CONSISTENCY_LEVELS)}"
            )
        self.consistency = level
        return level
        yield  # pragma: no cover - generator protocol

    def tsop_get_consistency(self, app, rest, inbuf):
        return self.consistency
        yield  # pragma: no cover - generator protocol

    def tsop_open_stats(self, app, rest, inbuf):
        return {
            "validations": self.validations,
            "refetches": self.refetches,
            "cache_serves": self.cache_serves,
        }
        yield  # pragma: no cover - generator protocol

    # -- vfs: open/read through the cache ------------------------------------------

    def vfs_open(self, app, rest, flags="r"):
        if not rest:
            raise NoSuchObject("file opens need a name")
        return {"name": rest, "entry": None}

    def vfs_read(self, app, handle, nbytes):
        """Read the file's contents (as a size + version descriptor).

        The consistency work happens here: depending on the level, the
        cached copy is served as-is, revalidated, or refetched.
        """
        entry = yield from self._ensure_fresh(handle["name"])
        handle["entry"] = entry
        return {"name": entry.name, "version": entry.version,
                "nbytes": entry.nbytes}

    def vfs_stat(self, rest):
        cached = self.cache.get(rest)
        if cached is None:
            raise NoSuchObject(f"{rest!r} not cached; read it first")
        return {"size": cached.nbytes, "version": cached.version,
                "validated_at": cached.validated_at}

    # -- the consistency machinery ---------------------------------------------------

    def _staleness_bound(self):
        return CONSISTENCY_LEVELS[self.consistency]

    def _ensure_fresh(self, name):
        conn = self.primary_connection()
        cached = self.cache.get(name)
        if cached is not None:
            age = self.sim.now - cached.validated_at
            if age <= self._staleness_bound():
                self.cache_serves += 1
                return cached
            # Validate the cached copy with a small exchange.
            self.validations += 1
            reply, _ = yield from conn.call(
                "validate", body={"name": name}, body_bytes=64
            )
            if reply["version"] == cached.version:
                cached.validated_at = self.sim.now
                self.cache.put(name, cached, cached.nbytes)
                return cached
        # Miss or stale: fetch the current contents.
        self.refetches += 1
        reply, meta, nbytes = yield from conn.fetch(
            "fetch", body={"name": name}, body_bytes=64
        )
        entry = CachedFile(name=name, version=meta["version"], nbytes=nbytes,
                           validated_at=self.sim.now)
        self.cache.put(name, entry, nbytes)
        return entry


def build_files(sim, viceroy, network, update_period=None,
                mount="/odyssey/files", **warden_kwargs):
    """Wire file server + warden; returns (warden, server)."""
    from repro.apps.files.server import FileServer

    host = network.add_host("file-server")
    server = FileServer(sim, host, update_period=update_period)
    warden = FileWarden(sim, viceroy, **warden_kwargs)
    warden.open_connection(host.name, "files")
    viceroy.mount(mount, warden)
    return warden, server
