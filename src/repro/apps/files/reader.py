"""A document reader that trades consistency for open latency."""

from dataclasses import dataclass, field

from repro.apps.base import Application, negotiate
from repro.apps.files.warden import CONSISTENCY_LEVELS
from repro.core.resources import Resource
from repro.errors import ProcessInterrupt

#: Bandwidth (bytes/s) above which each consistency level is affordable:
#: strong consistency costs a validation round trip (and often a refetch)
#: per open, so it wants a healthy link.
LEVEL_DEMAND = {1.0: 64 * 1024, 0.5: 16 * 1024, 0.1: 0.0}
UPGRADE_MARGIN = 1.10
NO_UPPER = 1e12


@dataclass
class ReaderStats:
    """Per-open accounting, including observed staleness."""

    opens: list = field(default_factory=list)
    # each: (time, seconds, version read, version at server, level)

    @property
    def count(self):
        return len(self.opens)

    @property
    def mean_open_seconds(self):
        if not self.opens:
            return 0.0
        return sum(s for _, s, _, _, _ in self.opens) / len(self.opens)

    @property
    def stale_reads(self):
        """Opens that returned a version behind the server's."""
        return sum(1 for _, _, got, current, _ in self.opens if got < current)

    @property
    def stale_fraction(self):
        return self.stale_reads / len(self.opens) if self.opens else 0.0


class DocumentReader(Application):
    """Re-reads a working set of documents, adapting consistency.

    ``server`` is consulted (out of band, as an oracle) to measure
    staleness; the application itself never touches it.
    """

    def __init__(self, sim, api, name, path, documents, server,
                 period_seconds=1.0, policy="adaptive", measure_from=0.0):
        super().__init__(sim, api, name)
        self.path = path
        self.documents = list(documents)
        self.server = server
        self.period_seconds = period_seconds
        self.policy = policy
        self.measure_from = measure_from
        self.stats = ReaderStats()
        self.level = policy if policy != "adaptive" else 1.0
        self._levels = sorted(CONSISTENCY_LEVELS, reverse=True)

    def best_level_for(self, bandwidth):
        if bandwidth is None:
            return self._levels[0]
        for level in self._levels:
            if LEVEL_DEMAND[level] <= bandwidth:
                return level
        return self._levels[-1]

    def _window_for_level(self, level):
        lower = LEVEL_DEMAND[level]
        better = [l for l in self._levels if l > level]
        upper = LEVEL_DEMAND[min(better)] * UPGRADE_MARGIN if better else NO_UPPER
        return lower, upper

    def _register(self, level_hint=None):
        if self.policy != "adaptive":
            return

        def on_level(bandwidth):
            self.level = self.best_level_for(bandwidth)

        negotiate(
            self.api, self.path, Resource.NETWORK_BANDWIDTH,
            window_for=lambda bw: self._window_for_level(
                self.best_level_for(bw)),
            on_level=on_level,
            level_hint=level_hint,
            handler="files-bandwidth",
        )

    def run(self):
        if self.policy == "adaptive":
            self.api.on_upcall("files-bandwidth",
                               lambda up: self._register(up.level))
            self._register(level_hint=self.api.availability(self.path))
        index = 0
        try:
            while True:
                name = self.documents[index % len(self.documents)]
                index += 1
                yield from self.api.tsop(
                    self.path, "set-consistency", {"consistency": self.level}
                )
                started = self.sim.now
                # The staleness oracle: what a perfectly consistent open
                # would have returned at this instant.  (Captured before
                # the transfer, or a slow fetch races the server's writers
                # and strong consistency looks spuriously stale.)
                version_at_open = self.server.version(name)
                fd = self.api.open(f"{self.path}/{name}")
                contents = yield from self.api.read(fd)
                self.api.close(fd)
                elapsed = self.sim.now - started
                if started >= self.measure_from:
                    self.stats.opens.append(
                        (self.sim.now, elapsed, contents["version"],
                         version_at_open, self.level)
                    )
                yield self.sim.timeout(self.period_seconds)
        except ProcessInterrupt:
            return self.stats
