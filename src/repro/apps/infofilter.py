"""The §2.3 background information filter.

"An information filtering application may run in the background monitoring
data such as stock prices or enemy movements, and alert the user as
appropriate."

The filter polls a feed server for updates.  Its fidelity dimensions are
*timeliness* (poll period — the paper's telemetry dimension, §2.2) and
*detail* (full update vs. summary).  It adapts to two resources at once:
network bandwidth (upcalls shorten or stretch the period) and the
communication budget tracked by the :class:`~repro.core.monitors.MoneyMonitor`
— a metered link mustn't be drained by a background task (§2.3's point
about coordinating background applications).
"""

from dataclasses import dataclass, field

from repro.apps.base import Application, negotiate
from repro.core.resources import Resource
from repro.core.warden import Warden
from repro.errors import OdysseyError, ProcessInterrupt
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Detail levels: fidelity -> update payload bytes.
DETAIL_LEVELS = {1.0: 16 * 1024, 0.4: 3 * 1024, 0.1: 512}
#: Poll periods by urgency (seconds); faster polling = better timeliness.
POLL_PERIODS = (2.0, 5.0, 15.0)
#: Server time to assemble an update.
FEED_COMPUTE_SECONDS = 0.004


class FeedServer:
    """Publishes monotonically-numbered updates on demand."""

    def __init__(self, sim, host, port="feed"):
        self.sim = sim
        self.service = RpcService(sim, host, port)
        self.service.register("poll", self._poll)
        self.version = 0
        sim.process(self._tick(), name="feed.tick")

    def _tick(self):
        while True:
            yield self.sim.timeout(1.0)
            self.version += 1

    def _poll(self, body):
        nbytes = DETAIL_LEVELS[body["detail"]]
        return ServerReply(
            body={"version": self.version},
            body_bytes=48,
            compute_seconds=FEED_COMPUTE_SECONDS,
            bulk=self.service.make_bulk(nbytes, meta={"version": self.version}),
        )


class FeedWarden(Warden):
    """Type-specific support for feed objects."""

    TSOPS = {"poll": "tsop_poll"}
    FIDELITIES = {f"detail-{level}": level for level in DETAIL_LEVELS}

    def tsop_poll(self, app, rest, inbuf):
        """Fetch one update at the requested detail; returns its version."""
        detail = inbuf["detail"]
        if detail not in DETAIL_LEVELS:
            raise OdysseyError(
                f"detail {detail!r} not offered; levels: {sorted(DETAIL_LEVELS)}"
            )
        conn = self.primary_connection(rest)
        reply, meta, nbytes = yield from conn.fetch(
            "poll", body={"detail": detail}, body_bytes=64
        )
        return {"version": meta["version"], "nbytes": nbytes}


@dataclass
class FilterStats:
    polls: list = field(default_factory=list)  # (time, version, detail)
    alerts: int = 0

    @property
    def count(self):
        return len(self.polls)

    def staleness(self, feed_version, at):
        """Versions behind the feed at time ``at`` (coarse timeliness)."""
        seen = [v for t, v, _ in self.polls if t <= at]
        return feed_version - max(seen) if seen else feed_version


class InformationFilter(Application):
    """Background poller balancing timeliness, detail, and budget."""

    def __init__(self, sim, api, name, path, money=None,
                 alert_every=10, measure_from=0.0):
        super().__init__(sim, api, name)
        self.path = path
        self.money = money  # optional MoneyMonitor
        self.alert_every = alert_every
        self.measure_from = measure_from
        self.stats = FilterStats()
        self.detail = 1.0
        self.period = POLL_PERIODS[0]
        self._details = sorted(DETAIL_LEVELS, reverse=True)

    # -- adaptation ------------------------------------------------------------

    #: Planning horizon for budget pacing: spend no faster than the rate
    #: that would drain the remaining budget over this many seconds.
    BUDGET_HORIZON_SECONDS = 600.0

    def demand(self, detail, period):
        return DETAIL_LEVELS[detail] * 1.25 / period

    def _affordable_bytes_per_second(self):
        """Transfer rate the remaining communication budget sustains."""
        if self.money is None or self.money.cents_per_megabyte <= 0:
            return float("inf")
        cents_per_second = self.money.current() / self.BUDGET_HORIZON_SECONDS
        return cents_per_second / self.money.cents_per_megabyte * 1024 * 1024

    def _configure_for(self, bandwidth):
        """Best (detail, period) within both bandwidth and budget."""
        cap = self._affordable_bytes_per_second()
        if bandwidth is not None:
            cap = min(cap, bandwidth)
        for detail in self._details:
            for period in POLL_PERIODS:
                if self.demand(detail, period) <= cap:
                    self.detail, self.period = detail, period
                    return
        self.detail, self.period = self._details[-1], POLL_PERIODS[-1]

    def _register(self, level_hint=None):
        def on_level(bandwidth):
            self._configure_for(bandwidth)

        def window_for(bandwidth):
            lower = 0.0
            if (self.detail, self.period) != (self._details[-1], POLL_PERIODS[-1]):
                lower = self.demand(self.detail, self.period)
            return lower, 1e12

        negotiate(self.api, self.path, Resource.NETWORK_BANDWIDTH,
                  window_for, on_level, level_hint=level_hint,
                  handler="filter-bw")

    # -- main loop ---------------------------------------------------------------

    def run(self):
        self.api.on_upcall("filter-bw", lambda up: self._register(up.level))
        self._register(level_hint=self.api.availability(self.path))
        last_version = -1
        try:
            while True:
                if self.money is not None:
                    self._configure_for(
                        self.api.availability(self.path)
                    )  # budget may have moved without an upcall
                result = yield from self.api.tsop(
                    self.path, "poll", {"detail": self.detail}
                )
                if self.money is not None:
                    self.money.charge_bytes(result["nbytes"])
                if self.sim.now >= self.measure_from:
                    self.stats.polls.append(
                        (self.sim.now, result["version"], self.detail)
                    )
                if (result["version"] != last_version
                        and result["version"] % self.alert_every == 0):
                    self.stats.alerts += 1
                last_version = result["version"]
                yield self.sim.timeout(self.period)
        except ProcessInterrupt:
            return self.stats


def build_filter(sim, viceroy, network, money=None,
                 mount="/odyssey/feed", **kwargs):
    """Wire feed server + warden + filter app; returns (app, warden, server)."""
    from repro.core.api import OdysseyAPI

    host = network.add_host("feed-server")
    server = FeedServer(sim, host)
    warden = FeedWarden(sim, viceroy, "feed")
    warden.open_connection(host.name, "feed")
    viceroy.mount(mount, warden)
    api = OdysseyAPI(viceroy, "info-filter")
    app = InformationFilter(sim, api, "info-filter", mount, money=money,
                            **kwargs)
    return app, warden, server
