"""The video warden: type-specific support for movies (paper §5.1).

"The warden supports two tsops: to read a movie's meta-data, and to get a
particular frame from a specified track.  The warden performs read-ahead of
frames to lower latency.  ...  If the player switches from a low fidelity
track to a higher one, the warden discards the prefetched low-quality
frames."

Fetches are executed by a small pool of fetcher processes (depth 2 by
default) so the per-frame request round trip overlaps the previous frame's
data transfer — the read-ahead pipelining that makes a track whose demand
is near link capacity sustainable.
"""

import math
from collections import deque

from repro.apps.video.codec import track as track_spec
from repro.core.warden import Warden
from repro.errors import Disconnected, OdysseyError, RpcTimeout

#: How many frames ahead of the playback position the warden prefetches.
READAHEAD_DEPTH = 8
#: Concurrent fetches in flight (demand + read-ahead pipelining).
#: Three keeps frame data flowing back-to-back: with fewer, a frame's
#: initial call response queues behind the previous frame's fragments and
#: a full round trip leaks into every frame time.
FETCH_PIPELINE = 3


class VideoWarden(Warden):
    """Caches frames, reads ahead, serves the player's tsops."""

    TSOPS = {
        "get-meta": "tsop_get_meta",
        "get-frame": "tsop_get_frame",
        "save-position": "tsop_save_position",
        "cache-stats": "tsop_cache_stats",
    }
    FIDELITIES = {"bw": 0.01, "jpeg50": 0.50, "jpeg99": 1.00}
    DEFERRABLE_TSOPS = frozenset({"save-position"})

    def __init__(self, sim, viceroy, name="video", cache_bytes=4 * 1024 * 1024,
                 readahead=READAHEAD_DEPTH, pipeline=FETCH_PIPELINE,
                 retry=None, **kwargs):
        super().__init__(sim, viceroy, name, cache_bytes=cache_bytes, **kwargs)
        #: Optional RetryPolicy for frame fetches.  None keeps the
        #: paper-faithful behaviour (fetches wait indefinitely); set one
        #: with a ``deadline`` so pipeline fetches fail fast into degraded
        #: service and feed the connectivity tracker.
        self.retry = retry
        self.readahead = readahead
        self._movie = None  # name of the movie being played
        self._meta = None
        self._track = None
        self._position = -1
        self._stride = 1
        self._urgent = deque()
        self._inflight = set()
        self._arrivals = {}  # key -> Event for demand waiters
        self._watchers = []  # (movie, track, min index, event) for catch-up
        self._wakeups = []
        self.frames_fetched = 0
        self.bytes_wasted = 0  # prefetched then discarded
        for i in range(pipeline):
            sim.process(self._fetch_loop(), name=f"{name}.fetch{i}")

    # -- tsops -------------------------------------------------------------

    def tsop_get_meta(self, app, rest, inbuf):
        """Fetch movie metadata; caches it for the session."""
        movie = inbuf["movie"]
        conn = self.primary_connection(rest)
        meta, _ = yield from conn.call("get-meta", body={"movie": movie},
                                       body_bytes=96)
        self._movie = movie
        self._meta = meta
        return meta

    def tsop_get_frame(self, app, rest, inbuf):
        """Get the next displayable frame at or after ``index``.

        Returns ``(actual_index, nbytes)``.  When bandwidth cannot sustain
        the frame rate, the warden's read-ahead runs at a stride computed
        from the viceroy's bandwidth estimate; serving the nearest frame the
        pipeline has (or will shortly have) means no fetched byte is ever
        wasted on a frame that cannot be shown.  Pass ``exact: True`` to
        force fetching precisely ``index``.

        Switching tracks here is what triggers the discard of stale
        prefetched frames.
        """
        movie, track_name, index = inbuf["movie"], inbuf["track"], inbuf["index"]
        self._note_track(track_name, index)
        self._position = index
        self._update_stride(track_name)
        key = (movie, track_name, index)
        cached = self.cache.get(key)
        if cached is not None:
            self._kick()
            return index, cached
        tracker = self.connectivity(self.primary_connection(rest))
        if tracker is not None and tracker.offline:
            # Degraded service: the pipeline's fetches are dead with the
            # link, so never wait on them — serve the nearest cached frame
            # (stale, with its age recorded) or fail fast with a typed
            # error the player can catch to pause on the last-shown frame.
            candidate = self._nearest_cached(movie, track_name, index)
            if candidate is None:
                self.disconnected_misses += 1
                raise Disconnected(
                    f"warden {self.name!r}: no cached frame at or after "
                    f"{index} on track {track_name!r} while disconnected",
                    key=key,
                )
            ckey = (movie, track_name, candidate)
            age = self.cache.age(ckey)
            nbytes = self.cache.get(ckey)
            self.stale_served += 1
            self.staleness_served.append(age)
            self._position = candidate
            return candidate, nbytes
        if not inbuf.get("exact", False):
            candidate = self._nearest_available(movie, track_name, index)
            if candidate is not None:
                key = (movie, track_name, candidate)
                self._position = candidate
                cached = self.cache.get(key)
                if cached is not None:
                    self._kick()
                    return candidate, cached
                event = self._arrival_event(key)
                self._kick()
                nbytes = yield event
                if nbytes is None:  # the fetch under us timed out
                    raise Disconnected(
                        f"warden {self.name!r}: fetch of frame {candidate} "
                        f"timed out", key=key,
                    )
                return candidate, nbytes
            # Nothing at or beyond ``index`` is cached or in flight: the
            # pipeline fell behind (a resync jump, or a cold start at low
            # bandwidth).  Queueing an exact fetch here would wait behind
            # every stale in-flight frame; instead wait for the first
            # *fresh* arrival the realigned prefetcher produces.
            event = self.sim.event(name=f"watch:{index}")
            self._watchers.append((movie, track_name, index, event))
            self._kick()
            got_index, nbytes = yield event
            self._position = got_index
            return got_index, nbytes
        if key not in self._inflight and key not in self._urgent:
            self._urgent.append(key)
        event = self._arrival_event(key)
        self._kick()
        nbytes = yield event
        if nbytes is None:
            raise Disconnected(
                f"warden {self.name!r}: fetch of frame {index} timed out",
                key=key,
            )
        return key[2], nbytes

    def _nearest_cached(self, movie, track_name, index):
        """Smallest *cached* frame index >= ``index`` (degraded service)."""
        best = None
        for m, t, i in self._list_cached():
            if m == movie and t == track_name and i >= index:
                if best is None or i < best:
                    best = i
        return best

    def _nearest_available(self, movie, track_name, index):
        """Smallest cached or in-flight frame index >= ``index`` on track."""
        best = None
        for cached_key in self._list_cached():
            m, t, i = cached_key
            if m == movie and t == track_name and i >= index:
                if best is None or i < best:
                    best = i
        for m, t, i in self._inflight:
            if m == movie and t == track_name and i >= index:
                if best is None or i < best:
                    best = i
        return best

    def _update_stride(self, track_name):
        """Prefetch stride from the bandwidth estimate and track demand.

        ``ceil(track demand / available bandwidth)``: the spacing at which
        sequential prefetch exactly keeps up with the playback clock.
        """
        if self._meta is None:
            return
        track_info = self._meta["tracks"].get(track_name)
        if track_info is None:
            return
        conn = self.primary_connection()
        available = self.viceroy.availability_for_connection(conn.connection_id)
        if not available:
            self._stride = 1
            return
        self._stride = max(1, math.ceil(track_info["bandwidth"] / available))

    def tsop_save_position(self, app, rest, inbuf):
        """Persist the playback position server-side (resume support).

        The warden's mutating tsop: ``{"movie", "position"}``.  While
        disconnected these queue to the deferred-op log and *coalesce* —
        a player saving every few seconds leaves one op, the latest
        position, to replay at reintegration.
        """
        conn = self.primary_connection(rest)
        reply, _ = yield from conn.call(
            "save-position",
            body={"movie": inbuf["movie"], "position": inbuf["position"]},
            body_bytes=48,
        )
        return reply

    def coalesce_key(self, opcode, rest, inbuf):
        if opcode == "save-position":
            return f"save-position:{inbuf['movie']}"
        return None

    def tsop_cache_stats(self, app, rest, inbuf):
        """Cache occupancy and hit statistics (diagnostics)."""
        return {
            "used_bytes": self.cache.used_bytes,
            "entries": len(self.cache),
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "wasted_bytes": self.bytes_wasted,
        }
        yield  # pragma: no cover - generator protocol

    # -- vfs ------------------------------------------------------------------

    def vfs_readdir(self, rest):
        if rest:
            raise OdysseyError(f"video warden has no directory {rest!r}")
        return [self._movie] if self._movie else []

    def vfs_stat(self, rest):
        if self._meta is None or rest != self._movie:
            raise OdysseyError(f"no metadata for {rest!r}; run get-meta first")
        return {"size": self._meta["frames"], "type": "movie", "meta": self._meta}

    # -- track switching ----------------------------------------------------------

    def _note_track(self, track_name, position):
        if track_name == self._track:
            return
        old, self._track = self._track, track_name
        if old is None:
            return
        if track_spec(track_name).fidelity > track_spec(old).fidelity:
            # Paper: on an upward switch, discard prefetched low-quality
            # frames (they are beyond the playback position, never shown).
            def stale(key):
                _, key_track, key_index = key
                return key_track == old and key_index >= position

            discarded = [k for k in self._list_cached() if stale(k)]
            for key in discarded:
                self.bytes_wasted += self.cache.get(key) or 0
                self.cache.discard(key)
        # Stale urgent entries for another track are dropped; in-flight
        # fetches complete and land in the cache harmlessly.
        self._urgent = deque(k for k in self._urgent if k[1] == track_name)

    def _list_cached(self):
        return list(self.cache._entries.keys())

    # -- fetch machinery -------------------------------------------------------------

    def _arrival_event(self, key):
        event = self._arrivals.get(key)
        if event is None:
            event = self.sim.event(name=f"frame:{key}")
            self._arrivals[key] = event
        return event

    def _kick(self):
        while self._wakeups:
            self._wakeups.pop().succeed()

    def _next_prefetch_key(self):
        if self._movie is None or self._track is None or self._meta is None:
            return None
        n_frames = self._meta["frames"]
        for step in range(1, self.readahead + 1):
            index = self._position + step * self._stride
            if index >= n_frames:
                break
            key = (self._movie, self._track, index)
            if key in self.cache or key in self._inflight:
                continue
            return key
        return None

    def _take_work(self):
        while self._urgent:
            key = self._urgent.popleft()
            if key not in self.cache and key not in self._inflight:
                return key
        return self._next_prefetch_key()

    def _fetch_loop(self):
        while True:
            key = self._take_work()
            if key is None:
                wakeup = self.sim.event(name=f"{self.name}.wakeup")
                self._wakeups.append(wakeup)
                yield wakeup
                continue
            self._inflight.add(key)
            try:
                yield from self._fetch_one(key)
            finally:
                self._inflight.discard(key)

    def _fetch_one(self, key):
        movie, track_name, index = key
        conn = self.primary_connection()
        tracker = self.connectivity(conn)
        body = {"movie": movie, "track": track_name, "index": index}
        try:
            if self.retry is None:
                _, _, nbytes = yield from conn.fetch(
                    "get-frame", body=body, body_bytes=96
                )
            else:
                _, _, nbytes = yield from conn.fetch_with_retry(
                    "get-frame", body=body, body_bytes=96, retry=self.retry
                )
        except RpcTimeout:
            if tracker is not None:
                tracker.note_failure()
            # Wake any demand waiter with None (converted to Disconnected
            # at the tsop layer).  Never ``fail`` the event: an arrival
            # event with no waiter would propagate the exception out of
            # the simulator loop.
            event = self._arrivals.pop(key, None)
            if event is not None and not event.triggered:
                event.succeed(None)
            return
        if tracker is not None:
            tracker.note_success()
        self.frames_fetched += 1
        self.cache.put(key, nbytes, nbytes)
        event = self._arrivals.pop(key, None)
        if event is not None and not event.triggered:
            event.succeed(nbytes)
        if self._watchers:
            satisfied = []
            for watcher in self._watchers:
                w_movie, w_track, w_index, w_event = watcher
                if movie == w_movie and track_name == w_track and index >= w_index:
                    if not w_event.triggered:
                        w_event.succeed((index, nbytes))
                    satisfied.append(watcher)
            for watcher in satisfied:
                self._watchers.remove(watcher)


def build_video(sim, viceroy, network, store, server_host=None,
                mount="/odyssey/video", **warden_kwargs):
    """Wire server + warden; returns (warden, server)."""
    from repro.apps.video.server import VideoServer  # local import avoids cycle

    host = server_host or network.add_host("video-server")
    server = VideoServer(sim, host, store)
    warden = VideoWarden(sim, viceroy, **warden_kwargs)
    warden.open_connection(host.name, "video")
    viceroy.mount(mount, warden)
    return warden, server
