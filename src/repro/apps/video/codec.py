"""Frame-size model for QuickTime tracks at three fidelity levels.

The paper stores each movie in three tracks: JPEG(99) and JPEG(50) colour
frames, and black-and-white frames, encoded at ten frames per second
(§5.1, §6.2.2).  Absolute frame sizes are not published; these are
calibrated so that per-track bandwidth demand straddles the two modulated
levels exactly as in the paper:

- JPEG(99): ~11 KB/frame → ~110 KB/s at 10 fps.  Sustainable only at the
  high bandwidth (120 KB/s).
- JPEG(50): ~3.3 KB/frame → ~33 KB/s.  "At the low bandwidth, JPEG(50)
  frames can be fetched without loss" (40 KB/s).
- Black-and-white: ~0.9 KB/frame → ~9 KB/s.  Always sustainable.

Frame sizes vary deterministically around the mean (content-dependent
compression), so tests are reproducible and different frames genuinely
differ.  "Storing all three tracks incurs only modest overhead, typically
about 60 % more than storing just the highest fidelity track" — the chosen
means give (11 + 3.3 + 0.9) / 11 ≈ 1.38, within the paper's "typical".
"""

import hashlib
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TrackSpec:
    """One fidelity level of a movie."""

    name: str
    fidelity: float  # the §6.2.2 fidelity values: 1.0 / 0.5 / 0.01
    mean_frame_bytes: int
    jpeg_quality: int  # 0 means black-and-white

    def __post_init__(self):
        if not 0 < self.fidelity <= 1:
            raise ValueError(f"fidelity must be in (0, 1], got {self.fidelity!r}")


#: The paper's three tracks, ordered worst-first (ascending fidelity).
#: Means are calibrated so demand at 10 fps sits a few percent below what
#: the estimator reads at each modulated level (protocol stalls make the
#: estimate ~95 % of theoretical): JPEG(99) ≈ 98 KB/s demand under the
#: 120 KB/s level, JPEG(50) ≈ 34 KB/s under the 40 KB/s level.
TRACKS = (
    TrackSpec("bw", 0.01, 920, 0),
    TrackSpec("jpeg50", 0.50, 3380, 50),
    TrackSpec("jpeg99", 1.00, 9850, 99),
)

TRACK_BY_NAME = {track.name: track for track in TRACKS}

#: Fractional size variation around the track mean.
SIZE_JITTER = 0.12


def track(name):
    """Look up a :class:`TrackSpec` by name."""
    try:
        return TRACK_BY_NAME[name]
    except KeyError:
        known = ", ".join(t.name for t in TRACKS)
        raise KeyError(f"unknown track {name!r}; known: {known}") from None


def frame_bytes(movie_name, track_name, index):
    """Deterministic size of one frame.

    Combines a smooth content wave (scene complexity drifts) with per-frame
    hash noise, scaled by the track mean.  Stable across processes — no
    dependence on ``PYTHONHASHSEED``.
    """
    spec = track(track_name)
    wave = math.sin(index / 23.0) * 0.5  # slow scene-complexity drift
    digest = hashlib.blake2b(
        f"{movie_name}:{track_name}:{index}".encode("utf-8"), digest_size=4
    ).digest()
    noise = (int.from_bytes(digest, "big") / 0xFFFFFFFF) - 0.5
    factor = 1.0 + SIZE_JITTER * (0.6 * wave + 0.4 * 2 * noise)
    return max(int(spec.mean_frame_bytes * factor), 64)


def better_tracks(track_name):
    """Track specs strictly better than ``track_name``, ascending."""
    spec = track(track_name)
    return [t for t in TRACKS if t.fidelity > spec.fidelity]


def next_better(track_name):
    """The immediately better track, or None at the top."""
    better = better_tracks(track_name)
    return better[0] if better else None
