"""The xanim player: static and adaptive playback policies (paper §6.2.2).

"Xanim's adaptation goal is to play the highest quality possible without
dropping frames."  The player computes each track's bandwidth requirement
from the movie metadata, begins at the highest sustainable quality, and
registers a window of tolerance around its current track: the lower edge is
the track's own demand, the upper edge the demand of the next-better track
(crossing it means an upgrade is possible).  Frames whose data has not
arrived by their display deadline are dropped, and the playback clock never
stalls — a movie is 60 seconds long no matter what.
"""

from dataclasses import dataclass, field

from repro.apps.base import Application, negotiate
from repro.core.resources import Resource
from repro.errors import ProcessInterrupt

#: Per-frame protocol overhead (request + headers) charged when the player
#: converts track frame rates into bandwidth demands, bytes.
WIRE_OVERHEAD_BYTES = 224
#: Hysteresis: an upgrade needs this multiple of the better track's demand.
UPGRADE_MARGIN = 1.03
#: A huge upper bound standing in for "no upgrade possible".
NO_UPPER = 1e12
#: Frames buffered (via warden read-ahead) before the playback clock starts.
STARTUP_BUFFER_FRAMES = 4
#: Minimum seconds between track switches.  Every switch empties the
#: read-ahead buffer, so chasing a noisy estimate costs more frames than
#: it saves; within the dwell the player widens its tolerance window and
#: re-evaluates when the dwell expires.
SWITCH_DWELL_SECONDS = 3.0


@dataclass
class PlayerStats:
    """What one playback run measured (the Fig. 10 columns)."""

    displayed: dict = field(default_factory=dict)  # track -> frames shown
    drops: int = 0
    switches: list = field(default_factory=list)  # (time, from, to)
    frame_log: list = field(default_factory=list)  # (index, track or None)

    @property
    def frames_displayed(self):
        return sum(self.displayed.values())

    def fidelity(self, fidelity_of):
        """Mean fidelity over displayed frames (paper §6.2.2)."""
        shown = self.frames_displayed
        if shown == 0:
            return 0.0
        total = sum(fidelity_of(track) * count
                    for track, count in self.displayed.items())
        return total / shown


class VideoPlayer(Application):
    """Plays one movie through the video warden.

    Parameters
    ----------
    policy:
        ``"adaptive"`` or a fixed track name (``"jpeg99"``, ``"jpeg50"``,
        ``"bw"``) — the paper's static strategies.
    """

    def __init__(self, sim, api, name, path, movie_name, policy="adaptive",
                 measure_from=0.0):
        super().__init__(sim, api, name)
        self.path = path
        self.movie_name = movie_name
        self.policy = policy
        #: Frames whose deadline falls before this simulation time are
        #: played but not counted — the paper's 30-second priming period.
        self.measure_from = measure_from
        self.stats = PlayerStats()
        self.meta = None
        self.demands = {}
        self.fidelities = {}
        self.current_track = None
        self._tracks_by_quality = []  # ascending fidelity
        self._rebuffer_pending = False
        self._last_switch = None
        self._dwelling = False
        self._recheck_scheduled = False

    # -- track selection -----------------------------------------------------

    def _load_meta(self, meta):
        self.meta = meta
        tracks = meta["tracks"]
        self._tracks_by_quality = sorted(tracks, key=lambda t: tracks[t]["fidelity"])
        self.fidelities = {t: tracks[t]["fidelity"] for t in tracks}
        self.demands = {
            t: tracks[t]["bandwidth"] + WIRE_OVERHEAD_BYTES * meta["fps"]
            for t in tracks
        }

    def best_track_for(self, level):
        """Highest-fidelity track sustainable at availability ``level``.

        "The player begins the movie at highest possible quality" — with no
        estimate at all, optimism is the paper's choice.
        """
        if level is None:
            return self._tracks_by_quality[-1]
        best = self._tracks_by_quality[0]
        for track in self._tracks_by_quality:
            if self.demands[track] <= level:
                best = track
        return best

    def _window_for_track(self, track):
        """Tolerance window while playing ``track``.

        Below the lower edge the track is unsustainable; above the upper
        edge the next-better track (with hysteresis margin) fits.
        """
        lower = self.demands[track]
        index = self._tracks_by_quality.index(track)
        if track == self._tracks_by_quality[0]:
            lower = 0.0  # nothing worse to fall back to
        if index + 1 < len(self._tracks_by_quality):
            upper = self.demands[self._tracks_by_quality[index + 1]] * UPGRADE_MARGIN
        else:
            upper = NO_UPPER
        return lower, upper

    def _register(self, level_hint=None):
        if self.policy != "adaptive":
            return

        def on_level(level):
            self._dwelling = False
            track = self.best_track_for(level)
            if track == self.current_track:
                return
            now = self.sim.now
            if (self._last_switch is not None
                    and now - self._last_switch < SWITCH_DWELL_SECONDS):
                self._dwelling = True
                self._schedule_recheck(
                    self._last_switch + SWITCH_DWELL_SECONDS - now
                )
                return
            self.stats.switches.append((now, self.current_track, track))
            self.current_track = track
            self._last_switch = now
            self._rebuffer_pending = True

        def window_for(level):
            lower, upper = self._window_for_track(self.current_track)
            if self._dwelling and level is not None:
                # Refusing to switch while the estimate sits outside the
                # track's window: widen so the registration is accepted;
                # the scheduled recheck revisits the decision.
                lower = min(lower, level * 0.90)
                upper = max(upper, level * 1.10)
            return lower, upper

        negotiate(
            self.api, self.path, Resource.NETWORK_BANDWIDTH,
            window_for=window_for,
            on_level=on_level,
            level_hint=level_hint,
            handler="video-bandwidth",
        )

    def _schedule_recheck(self, delay):
        if self._recheck_scheduled:
            return
        self._recheck_scheduled = True

        def recheck():
            self._recheck_scheduled = False
            if self.process is None or not self.process.alive:
                return
            for registration in self.api.viceroy.registered_requests(self.api.app):
                self.api.cancel(registration.request_id)
            self._register(level_hint=self.api.availability(self.path))

        self.sim.call_in(max(delay, 1e-3), recheck)

    def _on_upcall(self, upcall):
        self._register(level_hint=upcall.level)

    # -- playback ------------------------------------------------------------------

    def run(self):
        meta = yield from self.api.tsop(self.path, "get-meta",
                                        {"movie": self.movie_name})
        self._load_meta(meta)
        if self.policy == "adaptive":
            self.api.on_upcall("video-bandwidth", self._on_upcall)
            level = self.api.availability(self.path)
            self.current_track = self.best_track_for(level)
            self._register(level_hint=level)
        else:
            self.current_track = self.policy
        fps = meta["fps"]
        n_frames = meta["frames"]
        # Fetch the first frame, then let the warden's read-ahead build a
        # small buffer before the playback clock starts — without this, the
        # per-frame round trip keeps playback perpetually one frame late.
        yield from self.api.tsop(
            self.path, "get-frame",
            {"movie": self.movie_name, "track": self.current_track, "index": 0,
             "exact": True},
        )
        yield self.sim.timeout(STARTUP_BUFFER_FRAMES / fps)
        start = self.sim.now
        index = 0
        try:
            while index < n_frames:
                if self._rebuffer_pending:
                    # A track switch emptied the read-ahead buffer (the
                    # warden discards stale prefetches).  Sacrifice a few
                    # frames up front so the new track's pipeline starts
                    # with margin, instead of sputtering for seconds.
                    self._rebuffer_pending = False
                    for _ in range(STARTUP_BUFFER_FRAMES):
                        if index >= n_frames:
                            break
                        self._drop(index, start + index / fps)
                        index += 1
                    continue
                deadline = start + index / fps
                if self.sim.now > deadline:
                    # This frame's moment has already passed: drop it and
                    # move on without wasting bandwidth on it.
                    self._drop(index, deadline)
                    index += 1
                    continue
                track = self.current_track
                got_index, _ = yield from self.api.tsop(
                    self.path, "get-frame",
                    {"movie": self.movie_name, "track": track, "index": index},
                )
                # The warden may serve a later frame: under constrained
                # bandwidth its read-ahead strides through the movie, and
                # the frames in between were never fetched.  They are the
                # drops (paper: performance metric is frames dropped).
                for skipped in range(index, got_index):
                    self._drop(skipped, start + skipped / fps)
                deadline = start + got_index / fps
                if self.sim.now <= deadline:
                    yield self.sim.timeout(deadline - self.sim.now)
                    self._display(got_index, track, deadline)
                    index = got_index + 1
                else:
                    # Arrived late (paper: frames in flight at a downward
                    # transition are destined to be late).  Skip far enough
                    # ahead to restore the pipeline's margin: the next
                    # demand realigns the warden's read-ahead position, so
                    # lateness costs a bounded burst of drops instead of a
                    # permanent every-other-frame sputter.
                    self._drop(got_index, deadline)
                    lateness = self.sim.now - deadline
                    index = got_index + 1
                    if lateness > 2.0 / fps:
                        # Substantially behind: rebuild margin.  Minor
                        # lateness self-corrects through the skip at the
                        # loop top; resyncing for it would discard frames
                        # the pipeline already has.
                        resync = int(lateness * fps) + STARTUP_BUFFER_FRAMES
                        for _ in range(resync):
                            if index >= n_frames:
                                break
                            self._drop(index, start + index / fps)
                            index += 1
        except ProcessInterrupt:
            pass
        return self.stats

    def _display(self, index, track, deadline):
        if deadline < self.measure_from:
            return
        self.stats.displayed[track] = self.stats.displayed.get(track, 0) + 1
        self.stats.frame_log.append((index, track))

    def _drop(self, index, deadline):
        if deadline < self.measure_from:
            return
        self.stats.drops += 1
        self.stats.frame_log.append((index, None))

    @property
    def fidelity(self):
        """Mean fidelity of displayed frames."""
        return self.stats.fidelity(lambda track: self.fidelities[track])
