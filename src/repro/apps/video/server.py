"""The video server: the remote half of the split *xanim*."""

from repro.errors import ReproError
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Server CPU time to locate and package metadata / a frame.
META_COMPUTE_SECONDS = 0.002
FRAME_COMPUTE_SECONDS = 0.001


class VideoServer:
    """Serves movie metadata and individual frames from specified tracks.

    Operations:

    - ``get-meta`` — body ``{"movie": name}``; replies with the movie's
      metadata dictionary.
    - ``get-frame`` — body ``{"movie", "track", "index"}``; replies with a
      bulk source holding the frame's bytes.
    """

    def __init__(self, sim, host, store, port="video"):
        self.sim = sim
        self.store = store
        self.service = RpcService(sim, host, port)
        self.service.register("get-meta", self._get_meta)
        self.service.register("get-frame", self._get_frame)
        self.frames_served = 0

    def _get_meta(self, body):
        movie = self.store.get(body["movie"])
        return ServerReply(
            body=movie.meta(),
            body_bytes=512,
            compute_seconds=META_COMPUTE_SECONDS,
        )

    def _get_frame(self, body):
        movie = self.store.get(body["movie"])
        index = body["index"]
        track_name = body["track"]
        nbytes = movie.frame_bytes(track_name, index)
        if nbytes <= 0:
            raise ReproError(f"empty frame {index} on {track_name!r}")
        self.frames_served += 1
        return ServerReply(
            body={"movie": movie.name, "track": track_name, "index": index},
            body_bytes=48,
            compute_seconds=FRAME_COMPUTE_SECONDS,
            bulk=self.service.make_bulk(
                nbytes, meta={"track": track_name, "index": index}
            ),
        )
