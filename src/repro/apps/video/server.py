"""The video server: the remote half of the split *xanim*."""

from repro.errors import ReproError
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Server CPU time to locate and package metadata / a frame.
META_COMPUTE_SECONDS = 0.002
FRAME_COMPUTE_SECONDS = 0.001


class VideoServer:
    """Serves movie metadata and individual frames from specified tracks.

    Operations:

    - ``get-meta`` — body ``{"movie": name}``; replies with the movie's
      metadata dictionary.
    - ``get-frame`` — body ``{"movie", "track", "index"}``; replies with a
      bulk source holding the frame's bytes.
    - ``save-position`` — body ``{"movie", "position"}``; records the
      playback position for resume.  A position behind the stored one is a
      conflict (an older deferred write replayed after a newer one landed).
    """

    def __init__(self, sim, host, store, port="video"):
        self.sim = sim
        self.store = store
        self.service = RpcService(sim, host, port)
        self.service.register("get-meta", self._get_meta)
        self.service.register("get-frame", self._get_frame)
        self.service.register("save-position", self._save_position)
        self.frames_served = 0
        #: movie -> last saved playback position.
        self.positions = {}
        self.positions_saved = 0
        self.position_conflicts = 0

    def _get_meta(self, body):
        movie = self.store.get(body["movie"])
        return ServerReply(
            body=movie.meta(),
            body_bytes=512,
            compute_seconds=META_COMPUTE_SECONDS,
        )

    def _save_position(self, body):
        movie, position = body["movie"], body["position"]
        current = self.positions.get(movie, -1)
        conflict = position < current
        if conflict:
            self.position_conflicts += 1
        else:
            self.positions[movie] = position
            self.positions_saved += 1
        return ServerReply(
            body={"movie": movie,
                  "position": self.positions.get(movie, current),
                  "conflict": conflict},
            body_bytes=48,
            compute_seconds=META_COMPUTE_SECONDS,
        )

    def _get_frame(self, body):
        movie = self.store.get(body["movie"])
        index = body["index"]
        track_name = body["track"]
        nbytes = movie.frame_bytes(track_name, index)
        if nbytes <= 0:
            raise ReproError(f"empty frame {index} on {track_name!r}")
        self.frames_served += 1
        return ServerReply(
            body={"movie": movie.name, "track": track_name, "index": index},
            body_bytes=48,
            compute_seconds=FRAME_COMPUTE_SECONDS,
            bulk=self.service.make_bulk(
                nbytes, meta={"track": track_name, "index": index}
            ),
        )
