"""Movies: multi-track frame stores and their metadata."""

from repro.apps.video.codec import TRACKS, frame_bytes
from repro.errors import ReproError

#: Paper §6.2.2: "All movie tracks are encoded at ten frames per second,
#: with 600 frames to display during each trial."
DEFAULT_FRAMES = 600
DEFAULT_FPS = 10.0


class Movie:
    """One movie stored in all three tracks."""

    def __init__(self, name, n_frames=DEFAULT_FRAMES, fps=DEFAULT_FPS):
        if n_frames <= 0:
            raise ReproError(f"n_frames must be positive, got {n_frames!r}")
        if fps <= 0:
            raise ReproError(f"fps must be positive, got {fps!r}")
        self.name = name
        self.n_frames = n_frames
        self.fps = fps

    def frame_bytes(self, track_name, index):
        """Size in bytes of frame ``index`` on ``track_name``."""
        if not 0 <= index < self.n_frames:
            raise ReproError(
                f"frame {index} out of range [0, {self.n_frames}) for {self.name!r}"
            )
        return frame_bytes(self.name, track_name, index)

    def track_bandwidth(self, track_name):
        """Exact average bandwidth demand of a track (bytes/s at ``fps``).

        The player computes its per-track requirements from movie metadata
        (paper §5.1); this is that computation, done on true sizes.
        """
        total = sum(self.frame_bytes(track_name, i) for i in range(self.n_frames))
        return total * self.fps / self.n_frames

    def meta(self):
        """The metadata dictionary shipped to clients by the get-meta tsop."""
        return {
            "name": self.name,
            "frames": self.n_frames,
            "fps": self.fps,
            "tracks": {
                spec.name: {
                    "fidelity": spec.fidelity,
                    "jpeg_quality": spec.jpeg_quality,
                    "bandwidth": self.track_bandwidth(spec.name),
                }
                for spec in TRACKS
            },
        }

    def storage_bytes(self):
        """Total bytes to store all tracks (the paper's ~60 % overhead claim)."""
        return sum(
            self.frame_bytes(spec.name, i)
            for spec in TRACKS
            for i in range(self.n_frames)
        )


class MovieStore:
    """The video server's library."""

    def __init__(self):
        self._movies = {}

    def add(self, movie):
        if movie.name in self._movies:
            raise ReproError(f"movie {movie.name!r} already in store")
        self._movies[movie.name] = movie
        return movie

    def get(self, name):
        movie = self._movies.get(name)
        if movie is None:
            raise ReproError(f"no such movie {name!r}")
        return movie

    def names(self):
        return sorted(self._movies)

    def __contains__(self, name):
        return name in self._movies

    def __len__(self):
        return len(self._movies)
