"""The adaptive video player (paper §5.1).

The paper splits *xanim* into a client and server with a video warden
between them.  Movies are stored in multiple tracks at the server, one per
fidelity level — JPEG-compressed colour frames at qualities 99 and 50, and
black-and-white frames — and the player switches tracks as bandwidth
changes.  The warden reads ahead to lower latency and discards prefetched
low-quality frames when the player switches up.
"""

from repro.apps.video.codec import TRACKS, TrackSpec, frame_bytes
from repro.apps.video.movie import Movie, MovieStore
from repro.apps.video.player import PlayerStats, VideoPlayer
from repro.apps.video.server import VideoServer
from repro.apps.video.warden import VideoWarden, build_video

__all__ = [
    "Movie",
    "MovieStore",
    "PlayerStats",
    "TRACKS",
    "TrackSpec",
    "VideoPlayer",
    "VideoServer",
    "VideoWarden",
    "build_video",
    "frame_bytes",
]
