"""The *bitstream* synthetic application (paper §6.2.1).

"A synthetic Odyssey application, bitstream, that consumed data as fast as
possible through a streaming warden over a single connection from a
server."  Used for both agility experiments: varying supply (Fig. 8) and
varying demand (Fig. 9), where paced copies attempt 10 %, 45 % and 100 % of
nominal throughput.
"""

from repro.apps.base import Application
from repro.core.warden import Warden
from repro.errors import ProcessInterrupt
from repro.rpc.connection import RpcService
from repro.rpc.messages import ServerReply

#: Bytes fetched per chunk request.
DEFAULT_CHUNK_BYTES = 64 * 1024


class BitstreamServer:
    """Serves arbitrary-length chunks of synthetic data."""

    def __init__(self, sim, host, port="bitstream"):
        self.sim = sim
        self.service = RpcService(sim, host, port)
        self.service.register("get-chunk", self._get_chunk)
        self.chunks_served = 0

    def _get_chunk(self, body):
        nbytes = int(body["nbytes"])
        self.chunks_served += 1
        return ServerReply(
            body={"chunk": self.chunks_served},
            body_bytes=32,
            bulk=self.service.make_bulk(nbytes),
        )


class StreamWarden(Warden):
    """A minimal warden: one streaming connection, one tsop."""

    TSOPS = {"get-chunk": "tsop_get_chunk"}
    FIDELITIES = {"stream": 1.0}

    def tsop_get_chunk(self, app, rest, inbuf):
        """Fetch ``inbuf['nbytes']`` from the server; returns bytes fetched."""
        conn = self.primary_connection(rest)
        nbytes = int(inbuf.get("nbytes", DEFAULT_CHUNK_BYTES))
        _, _, fetched = yield from conn.fetch(
            "get-chunk", body={"nbytes": nbytes}, body_bytes=64
        )
        return fetched


class BitstreamApp(Application):
    """Consumes chunks as fast as possible, or paced to a target rate.

    Parameters
    ----------
    target_rate:
        Bytes/second to *attempt* to consume; None means unlimited (as fast
        as possible).  Pacing matches the paper's utilization levels: the
        app sleeps between chunks so its average demand equals the target.
    """

    def __init__(self, sim, api, name, path, chunk_bytes=DEFAULT_CHUNK_BYTES,
                 target_rate=None):
        super().__init__(sim, api, name)
        self.path = path
        self.chunk_bytes = chunk_bytes
        self.target_rate = target_rate
        self.bytes_consumed = 0
        self.chunk_times = []  # (completion time, seconds per chunk)

    def run(self):
        next_due = self.sim.now
        try:
            while True:
                started = self.sim.now
                fetched = yield from self.api.tsop(
                    self.path, "get-chunk", {"nbytes": self.chunk_bytes}
                )
                self.bytes_consumed += fetched
                self.chunk_times.append((self.sim.now, self.sim.now - started))
                if self.target_rate is not None:
                    next_due += self.chunk_bytes / self.target_rate
                    if next_due > self.sim.now:
                        yield self.sim.timeout(next_due - self.sim.now)
                    else:
                        next_due = self.sim.now
        except ProcessInterrupt:
            return self.bytes_consumed

    def mean_rate(self, start, end):
        """Average consumption rate over [start, end] (bytes/s)."""
        if end <= start:
            return 0.0
        consumed = sum(
            self.chunk_bytes for (t, _) in self.chunk_times if start < t <= end
        )
        return consumed / (end - start)


def build_bitstream(sim, viceroy, network, server_host=None, index=0,
                    chunk_bytes=DEFAULT_CHUNK_BYTES, target_rate=None,
                    **rpc_kwargs):
    """Wire up server, warden, and app; returns (app, warden, server).

    A convenience used by experiments and examples: each bitstream instance
    gets its own warden, connection, and mount point so the viceroy sees
    one logged endpoint per stream.
    """
    from repro.core.api import OdysseyAPI  # local import avoids a cycle

    host = server_host or network.add_host(f"bitstream-server-{index}")
    server = BitstreamServer(sim, host, port=f"bitstream-{index}")
    warden = StreamWarden(sim, viceroy, f"bitstream-{index}")
    warden.open_connection(host.name, f"bitstream-{index}", **rpc_kwargs)
    path = f"/odyssey/bitstream/{index}"
    viceroy.mount(path, warden)
    api = OdysseyAPI(viceroy, f"bitstream-app-{index}")
    app = BitstreamApp(
        sim, api, f"bitstream-app-{index}", path,
        chunk_bytes=chunk_bytes, target_rate=target_rate,
    )
    return app, warden, server
