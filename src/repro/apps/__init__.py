"""Adaptive applications (paper §5 and the §2.3/§8 agenda).

The paper's four applications:

- :mod:`repro.apps.video` — a video player (the paper's modified *xanim*):
  movies stored in one track per fidelity level, adaptive track switching.
- :mod:`repro.apps.web` — a web browser (*Netscape* behind a *cellophane*
  proxy) fetching images — and, per §8, text objects — through a
  distillation server; :mod:`repro.apps.web.session` adds realistic
  page-plus-images browsing.
- :mod:`repro.apps.speech` — a speech recognizer (*Janus* split
  client/server): hybrid vs. remote placement, vocabulary fidelity levels,
  and disconnected operation.
- :mod:`repro.apps.bitstream` — the synthetic streaming consumer used to
  measure estimation agility (§6.2.1).

Plus the applications the paper motivates but never built:

- :mod:`repro.apps.prefetch` — the §2.3 emergency-response map prefetcher.
- :mod:`repro.apps.infofilter` — the §2.3 background information filter,
  paced by bandwidth and a metered communication budget.
- :mod:`repro.apps.files` — cached files with §2.2's consistency dimension.

Each application has static (fixed-fidelity) policies and an adaptive
policy, because the paper's evaluation compares exactly those.
"""

from repro.apps.base import Application, negotiate

__all__ = ["Application", "negotiate"]
