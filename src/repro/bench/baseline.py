"""Capture benchmark headline metrics and compare runs against a baseline.

pytest-benchmark writes a run report (``--benchmark-json``) containing
timing stats plus whatever each benchmark stored in ``extra_info``.  This
module reduces such a report to a flat ``{metric_name: value}`` mapping
(:func:`headline_metrics`), freezes one into a *baseline document* with
per-metric tolerance bands (:func:`capture_baseline`), and judges a later
run against it (:func:`compare_metrics`).

A baseline document looks like::

    {
      "schema": "repro-bench-baseline/1",
      "captured_at": "2026-08-05",
      "metrics": {
        "test_event_loop_throughput.min_seconds":
            {"value": 0.029, "tolerance": 2.0, "direction": "lower"},
        ...
      }
    }

``direction`` says which way is good: ``"lower"`` (timings — regression
when ``current > value * tolerance``) or ``"higher"`` (rates — regression
when ``current < value / tolerance``).  Tolerances are multiplicative so
one committed baseline survives both runner-to-runner speed differences
and ordinary noise; CI scales them further via ``tolerance_scale``.

Failure semantics: a metric present in the baseline but absent from the
run is a failure (a renamed or deleted benchmark must be re-baselined
deliberately, never silently), while a metric present in the run but not
in the baseline is merely reported as new.
"""

import json
import math
from dataclasses import dataclass, field

from repro.errors import BenchmarkError

#: Default multiplicative tolerance band captured into new baselines.
DEFAULT_TOLERANCE = 2.0

#: Tighter band for ``.min_seconds`` metrics: min-of-rounds is the stable
#: stat (least scheduler noise), and two independent captures agreeing
#: justify holding it to 1.5x.  ``.mean_seconds`` keeps the 2x band for
#: CI noise.
MIN_SECONDS_TOLERANCE = 1.5

#: Baseline document schema tag (bump on incompatible changes).
SCHEMA = "repro-bench-baseline/1"

#: Timing stats lifted from every benchmark.  ``min`` is the stable one
#: (least scheduler noise); ``mean`` is kept for trajectory plots.
_TIMING_STATS = ("min", "mean")

_DIRECTIONS = ("lower", "higher")

#: Metric-name suffixes where bigger is better.  Everything else in a
#: capture defaults to ``"lower"`` (timings, counts whose growth signals
#: a regression).  A "lower" gate on these would fail a run for being
#: *too fast* (clients/s on a quicker CI runner) and never catch the
#: real regression (a fidelity or fairness drop).
HIGHER_IS_BETTER_SUFFIXES = (
    "_speedup",
    "_clients_per_second",
    "_mean_fidelity",
    "_fairness",
    "_fidelity_floor",
    "_drill_deferred_ops",
)

#: Tolerances are multiplicative bands around the baseline value; below
#: unity they would demand the run beat its own baseline.
_MIN_TOLERANCE = 1.0


def _numeric(value):
    """True for real numbers usable as metrics (bools excluded)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def headline_metrics(report):
    """Flatten a pytest-benchmark JSON report to ``{metric: value}``.

    Per benchmark ``<name>``: ``<name>.min_seconds`` / ``<name>.mean_seconds``
    from the timing stats, plus every numeric ``extra_info`` entry as
    ``<name>.<key>`` (one level of nested dicts is flattened to
    ``<name>.<key>.<subkey>``).  Raises :class:`BenchmarkError` on a
    malformed report.
    """
    if not isinstance(report, dict) or not isinstance(report.get("benchmarks"), list):
        raise BenchmarkError(
            "not a pytest-benchmark report: missing 'benchmarks' list"
        )
    metrics = {}
    for bench in report["benchmarks"]:
        if not isinstance(bench, dict) or "name" not in bench:
            raise BenchmarkError(f"malformed benchmark entry: {bench!r}")
        name = bench["name"]
        stats = bench.get("stats") or {}
        for stat in _TIMING_STATS:
            if _numeric(stats.get(stat)):
                metrics[f"{name}.{stat}_seconds"] = float(stats[stat])
        for key, value in (bench.get("extra_info") or {}).items():
            if _numeric(value):
                metrics[f"{name}.{key}"] = float(value)
            elif isinstance(value, dict):
                for subkey, subvalue in value.items():
                    if _numeric(subvalue):
                        metrics[f"{name}.{key}.{subkey}"] = float(subvalue)
    return metrics


def load_report(path):
    """Read a pytest-benchmark JSON report file."""
    try:
        with open(path) as fh:
            report = json.load(fh)
    except OSError as exc:
        raise BenchmarkError(f"cannot read benchmark report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"benchmark report {path!r} is not JSON: {exc}") from exc
    return report


def default_tolerances(metrics):
    """Per-metric tolerance overrides for a capture: tighter ``min_seconds``.

    Returns ``{name: MIN_SECONDS_TOLERANCE}`` for every ``.min_seconds``
    metric in ``metrics``; everything else keeps the capture's default
    band.
    """
    return {name: MIN_SECONDS_TOLERANCE for name in metrics
            if name.endswith(".min_seconds")}


def default_directions(metrics):
    """Per-metric direction overrides for a capture.

    Returns ``{name: "higher"}`` for every metric whose name ends in one
    of :data:`HIGHER_IS_BETTER_SUFFIXES`; everything else keeps the
    capture's default ``"lower"``.
    """
    return {name: "higher" for name in metrics
            if name.endswith(HIGHER_IS_BETTER_SUFFIXES)}


def capture_baseline(metrics, tolerance=DEFAULT_TOLERANCE, captured_at=None,
                     directions=None, notes=None, tolerances=None):
    """Freeze ``metrics`` into a baseline document.

    ``directions`` optionally maps metric names (exact) to ``"higher"`` for
    metrics where bigger is better; everything else defaults to
    ``"lower"``.  ``tolerances`` optionally maps metric names (exact) to a
    per-metric band overriding ``tolerance`` — see
    :func:`default_tolerances`.
    """
    if tolerance < _MIN_TOLERANCE:
        raise BenchmarkError(f"tolerance must be >= 1, got {tolerance!r}")
    tolerances = tolerances or {}
    for name, band in tolerances.items():
        if band < _MIN_TOLERANCE:
            raise BenchmarkError(
                f"tolerance for {name!r} must be >= 1, got {band!r}"
            )
    directions = directions or {}
    doc = {
        "schema": SCHEMA,
        "captured_at": captured_at,
        "metrics": {
            name: {
                "value": float(value),
                "tolerance": float(tolerances.get(name, tolerance)),
                "direction": directions.get(name, "lower"),
            }
            for name, value in sorted(metrics.items())
        },
    }
    if notes:
        doc["notes"] = notes
    return doc


def write_baseline(doc, path):
    """Write a baseline document as stable, diffable JSON."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path):
    """Read and validate a baseline document.

    Raises :class:`BenchmarkError` on unreadable files, non-JSON content,
    or a structurally invalid document — the perf gate must fail loudly on
    a corrupt baseline, not pass vacuously.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise BenchmarkError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"baseline {path!r} is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("metrics"), dict):
        raise BenchmarkError(f"baseline {path!r}: missing 'metrics' mapping")
    for name, entry in doc["metrics"].items():
        if not isinstance(entry, dict) or not _numeric(entry.get("value")):
            raise BenchmarkError(
                f"baseline {path!r}: metric {name!r} needs a numeric 'value'"
            )
        tolerance = entry.get("tolerance", DEFAULT_TOLERANCE)
        if not _numeric(tolerance) or tolerance < _MIN_TOLERANCE:
            raise BenchmarkError(
                f"baseline {path!r}: metric {name!r} tolerance must be >= 1, "
                f"got {tolerance!r}"
            )
        if entry.get("direction", "lower") not in _DIRECTIONS:
            raise BenchmarkError(
                f"baseline {path!r}: metric {name!r} direction must be one of "
                f"{_DIRECTIONS}, got {entry.get('direction')!r}"
            )
    return doc


@dataclass(frozen=True, slots=True)
class MetricCheck:
    """The verdict on one baseline metric."""

    metric: str
    status: str  # "ok" | "regression" | "missing"
    baseline: float
    current: float = None  # None when missing
    allowed: float = None  # the bound current was held to
    ratio: float = None  # current / baseline


@dataclass(slots=True)
class ComparisonReport:
    """Every per-metric verdict from one comparison."""

    checks: list = field(default_factory=list)
    new_metrics: list = field(default_factory=list)  # in run, not in baseline

    @property
    def regressions(self):
        return [c for c in self.checks if c.status == "regression"]

    @property
    def missing(self):
        return [c for c in self.checks if c.status == "missing"]

    @property
    def ok(self):
        """True when every baseline metric was present and within band."""
        return not self.regressions and not self.missing


def compare_metrics(current, baseline_doc, tolerance_scale=1.0, only=None):
    """Judge ``current`` (``{metric: value}``) against a baseline document.

    ``tolerance_scale`` multiplies every per-metric tolerance — CI uses a
    generous scale so shared-runner noise cannot fail the gate while a
    genuine slowdown still does.  ``only`` restricts the judgement to the
    named baseline metrics (the strict kernel gate runs a handful of
    metrics at scale 1.0 while the rest keep their bands); naming a
    metric the baseline lacks is an error, not a vacuous pass.
    """
    if tolerance_scale < _MIN_TOLERANCE:
        raise BenchmarkError(
            f"tolerance_scale must be >= 1, got {tolerance_scale!r}"
        )
    report = ComparisonReport()
    baseline_metrics = baseline_doc["metrics"]
    if only is not None:
        unknown = sorted(set(only) - set(baseline_metrics))
        if unknown:
            raise BenchmarkError(
                f"--metrics names absent from the baseline: {unknown}"
            )
        baseline_metrics = {name: baseline_metrics[name] for name in only}
        current = {name: value for name, value in current.items()
                   if name in baseline_metrics}
    for name, entry in sorted(baseline_metrics.items()):
        value = entry["value"]
        tolerance = entry.get("tolerance", DEFAULT_TOLERANCE) * tolerance_scale
        direction = entry.get("direction", "lower")
        observed = current.get(name)
        if observed is None:
            report.checks.append(MetricCheck(name, "missing", value))
            continue
        if direction == "lower":
            allowed = value * tolerance
            bad = observed > allowed
        else:
            allowed = value / tolerance
            bad = observed < allowed
        ratio = observed / value if value else math.inf
        report.checks.append(MetricCheck(
            name, "regression" if bad else "ok", value, observed, allowed, ratio,
        ))
    report.new_metrics = sorted(set(current) - set(baseline_metrics))
    return report


def format_report(report):
    """Human-readable comparison summary, worst news first."""
    lines = []
    for check in report.regressions:
        lines.append(
            f"REGRESSION {check.metric}: {check.current:.6g} vs baseline "
            f"{check.baseline:.6g} ({check.ratio:.2f}x, allowed "
            f"{check.allowed:.6g})"
        )
    for check in report.missing:
        lines.append(
            f"MISSING    {check.metric}: in baseline ({check.baseline:.6g}) "
            "but absent from this run — re-baseline deliberately if the "
            "benchmark was renamed or removed"
        )
    for check in report.checks:
        if check.status == "ok":
            lines.append(
                f"ok         {check.metric}: {check.current:.6g} vs "
                f"{check.baseline:.6g} ({check.ratio:.2f}x)"
            )
    for name in report.new_metrics:
        lines.append(f"new        {name}: not in baseline (not gated)")
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(
        f"{verdict}: {len(report.regressions)} regression(s), "
        f"{len(report.missing)} missing, "
        f"{sum(1 for c in report.checks if c.status == 'ok')} ok, "
        f"{len(report.new_metrics)} new"
    )
    return "\n".join(lines)
