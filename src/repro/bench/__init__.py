"""Benchmark baseline capture and comparison.

The perf trajectory of this reproduction is recorded as ``BENCH_*.json``
documents (one per capture) and enforced against a committed
``benchmarks/baseline.json`` — see :mod:`repro.bench.baseline`.
"""

from repro.bench.baseline import (
    DEFAULT_TOLERANCE,
    MIN_SECONDS_TOLERANCE,
    ComparisonReport,
    MetricCheck,
    capture_baseline,
    compare_metrics,
    default_tolerances,
    format_report,
    headline_metrics,
    load_baseline,
    write_baseline,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "MIN_SECONDS_TOLERANCE",
    "ComparisonReport",
    "MetricCheck",
    "capture_baseline",
    "compare_metrics",
    "default_tolerances",
    "format_report",
    "headline_metrics",
    "load_baseline",
    "write_baseline",
]
