"""The clock seam: retry deadlines that work on sim time *and* wall time.

:class:`~repro.rpc.connection.RetryPolicy` arithmetic — per-attempt
timeouts clipped to a deadline, backoff pauses between attempts — used to
read ``sim.now`` directly, a latent assumption that the policy only ran
inside the simulator.  The real transport (:mod:`repro.broker`) retries
over wall-clock time, so the arithmetic now goes through a clock object:

- :class:`SimClock` — ``now`` is ``sim.now``; ``sleep`` returns a
  simulation timeout event to ``yield`` (generator processes);
- :class:`MonotonicClock` — ``now`` is :func:`time.monotonic`; ``sleep``
  returns an :func:`asyncio.sleep` coroutine to ``await``.

:class:`RetrySchedule` is the shared driver state: one per operation,
computing attempt timeouts and deadline checks identically on both clocks.
The sim path's behaviour is unchanged to the byte — same reads of the
same clock in the same order.
"""

import asyncio
import time


class SimClock:
    """Simulation time.  ``sleep`` yields inside a simulated process."""

    __slots__ = ("sim",)

    def __init__(self, sim):
        self.sim = sim

    def now(self):
        return self.sim.now

    def sleep(self, seconds):
        """A timeout event: ``yield clock.sleep(delay)``."""
        return self.sim.timeout(seconds)


class MonotonicClock:
    """Wall-clock time.  ``sleep`` awaits inside an asyncio coroutine."""

    __slots__ = ()

    def now(self):
        return time.monotonic()

    def sleep(self, seconds):
        """A coroutine: ``await clock.sleep(delay)``."""
        return asyncio.sleep(seconds)


class RetrySchedule:
    """One operation's walk through a retry policy, on a given clock.

    The driver loop (generator or coroutine) owns control flow; this
    object owns the arithmetic:

    - :meth:`attempt_timeout` — the next attempt's timeout, clipped to
      what remains of the overall deadline;
    - :meth:`next_delay` — the next backoff pause, ``None`` once retries
      are exhausted;
    - :meth:`past_deadline` — whether pausing ``delay`` seconds would
      land past the deadline (no retry may start there).
    """

    __slots__ = ("policy", "clock", "deadline_at", "_delays")

    def __init__(self, policy, clock):
        self.policy = policy
        self.clock = clock
        self._delays = policy.delays()
        self.deadline_at = None
        if policy.deadline is not None:
            self.deadline_at = clock.now() + policy.deadline

    def attempt_timeout(self):
        timeout = self.policy.timeout
        if self.deadline_at is not None:
            timeout = min(timeout, self.deadline_at - self.clock.now())
        return timeout

    def next_delay(self):
        return next(self._delays, None)

    def past_deadline(self, delay):
        return (self.deadline_at is not None
                and self.clock.now() + delay >= self.deadline_at)
