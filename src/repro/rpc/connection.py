"""The RPC protocol: small exchanges plus windowed bulk transfer.

Client side (:class:`RpcConnection`) and server side (:class:`RpcService`)
of the paper's user-level RPC mechanism.  The operations are generators: a
simulated process drives them with ``yield from`` and receives the result::

    def app(sim, conn):
        reply = yield from conn.call("ping", body_bytes=128)
        data = yield from conn.fetch("get-object", body={"name": "x"})

Reliability: the simulated links never drop or corrupt packets, so there is
no retransmission machinery.  The protocol's observable behaviour — what
gets logged when — is what matters for reproducing the paper's estimation
agility.
"""

import itertools
from dataclasses import dataclass

from repro import telemetry
from repro.errors import RpcError, RpcTimeout
from repro.sim.events import AnyOf
from repro.net.packet import HEADER_BYTES, Packet
from repro.rpc.clock import RetrySchedule, SimClock
from repro.rpc.logs import RpcLog
from repro.rpc.messages import (
    BulkPush,
    BulkSource,
    CallRequest,
    CallResponse,
    Fragment,
    ServerReply,
    WindowAck,
    WindowRequest,
)
from repro.sim.queues import Semaphore

#: Default window for bulk transfers (paper's protocol window).
DEFAULT_WINDOW_BYTES = 32 * 1024
#: Payload bytes per fragment packet.  Kept small (near-MTU scale) so small
#: control packets interleave with bulk data instead of waiting behind a
#: whole window — at 40 KB/s an 8 KB fragment would head-of-line-block a
#: round-trip response for 200 ms and poison the RTT estimate.
DEFAULT_FRAGMENT_BYTES = 2048

#: Operation every service answers without registration: the heartbeat
#: probe (:mod:`repro.connectivity.probe`).  Zero compute, tiny reply —
#: its only job is proving the path is alive.
PING_OP = "__ping__"
PING_REPLY_BYTES = 16

#: Per-attempt timeout for retried operations, seconds.  Long enough to
#: ride out one LOW_BANDWIDTH window transmission; short enough that a
#: blacked-out link is detected within a couple of seconds.
DEFAULT_RETRY_TIMEOUT = 2.0
#: Retries after the first attempt before giving up.
DEFAULT_RETRY_LIMIT = 5
#: First backoff pause, seconds; doubles per retry up to the cap.
DEFAULT_BACKOFF_SECONDS = 0.5
DEFAULT_BACKOFF_MULTIPLIER = 2.0
DEFAULT_BACKOFF_CAP_SECONDS = 8.0

#: Histogram buckets (seconds) for RPC round trips and fetch windows: from
#: LAN-scale exchanges to retried degraded-mode operations.
RPC_SECONDS_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Timeout/retry-with-backoff parameters for RPC operations.

    An operation is attempted with ``timeout`` seconds per attempt; each
    :class:`~repro.errors.RpcTimeout` triggers a backoff pause that grows by
    ``multiplier`` up to ``cap`` before the next attempt.  After ``retries``
    failed retries the last timeout propagates to the caller.

    ``deadline`` (seconds, ``None`` = unbounded) is an overall wall-clock
    budget across every attempt and backoff pause: per-attempt timeouts are
    clipped to the remaining budget and no retry starts past it.  Degraded
    service depends on this — a disconnected fetch must fail into the cache
    within a couple of seconds, not exhaust the full backoff schedule.
    """

    timeout: float = DEFAULT_RETRY_TIMEOUT
    retries: int = DEFAULT_RETRY_LIMIT
    backoff: float = DEFAULT_BACKOFF_SECONDS
    multiplier: float = DEFAULT_BACKOFF_MULTIPLIER
    cap: float = DEFAULT_BACKOFF_CAP_SECONDS
    deadline: float = None

    def __post_init__(self):
        if self.timeout <= 0:
            raise RpcError(f"retry timeout must be positive, got {self.timeout!r}")
        if self.retries < 0:
            raise RpcError(f"retries must be >= 0, got {self.retries!r}")
        if self.backoff < 0 or self.cap < self.backoff:
            raise RpcError(
                f"backoff must satisfy 0 <= backoff <= cap, got "
                f"{self.backoff!r}/{self.cap!r}"
            )
        if self.multiplier < 1:
            raise RpcError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise RpcError(f"deadline must be positive, got {self.deadline!r}")

    def delays(self):
        """Yield the backoff pause before each retry, in order."""
        delay = self.backoff
        for _ in range(self.retries):
            yield delay
            delay = min(delay * self.multiplier, self.cap)


class RpcService:
    """Server half: operation dispatch, compute modeling, bulk serving.

    Parameters
    ----------
    sim, host, port:
        Where the service listens.
    cpus:
        If given, compute time is serialized through a semaphore with this
        many units (models a server CPU that concurrent requests share).
    """

    def __init__(self, sim, host, port, cpus=None):
        self.sim = sim
        self.host = host
        self.port = port
        self._handlers = {}
        self._bulk_sources = {}
        self._transfer_ids = itertools.count(1)
        self._push_buffers = {}
        self._handlers[PING_OP] = lambda body: ServerReply(
            body={"pong": True}, body_bytes=PING_REPLY_BYTES
        )
        self._cpu = Semaphore(sim, cpus, name=f"{port}.cpu") if cpus else None
        self._jitter_rng = None
        self._jitter_fraction = 0.0
        self._outage_until = None
        self._slow_until = None
        self._slow_factor = 1.0
        host.bind(port, self._on_packet)
        self.requests_served = 0
        self.dropped_during_outage = 0

    def set_outage(self, duration):
        """Silently drop everything arriving in the next ``duration`` seconds.

        Failure injection: models a crashed or partitioned server.  Clients
        see nothing — their recourse is the ``timeout`` parameter of
        :meth:`RpcConnection.call` / ``fetch``.
        """
        if duration <= 0:
            raise RpcError(f"outage duration must be positive, got {duration!r}")
        self._outage_until = self.sim.now + duration

    @property
    def in_outage(self):
        return self._outage_until is not None and self.sim.now < self._outage_until

    def set_slowdown(self, factor, duration):
        """Multiply compute times by ``factor`` for ``duration`` seconds.

        Failure injection: models an overloaded or cold-started server that
        still answers, just slowly.  Clients observe longer round trips
        (their timeout/retry policy decides whether to wait or back off).
        """
        if factor < 1:
            raise RpcError(f"slowdown factor must be >= 1, got {factor!r}")
        if duration <= 0:
            raise RpcError(f"slowdown duration must be positive, got {duration!r}")
        self._slow_until = self.sim.now + duration
        self._slow_factor = factor

    @property
    def in_slowdown(self):
        return self._slow_until is not None and self.sim.now < self._slow_until

    def set_jitter(self, rng, fraction):
        """Perturb compute times by ±``fraction`` using ``rng``.

        Models run-to-run variation in server load; this is where the
        experiments' standard deviations come from.
        """
        if not 0 <= fraction < 1:
            raise RpcError(f"jitter fraction must be in [0, 1), got {fraction!r}")
        self._jitter_rng = rng
        self._jitter_fraction = fraction

    def _jittered(self, seconds):
        if seconds <= 0:
            return seconds
        if self.in_slowdown:
            seconds *= self._slow_factor
        if self._jitter_rng is None:
            return seconds
        spread = self._jitter_fraction
        return seconds * (1.0 + self._jitter_rng.uniform(-spread, spread))

    def register(self, op, handler):
        """Register ``handler(body)`` for operation ``op``.

        The handler returns a :class:`ServerReply`, or a generator that
        yields simulation events and returns one (for handlers that must
        wait — e.g. the distillation server fetching from a web server).
        """
        if op in self._handlers:
            raise RpcError(f"service {self.port!r}: op {op!r} already registered")
        self._handlers[op] = handler

    def make_bulk(self, nbytes, meta=None):
        """Create a :class:`BulkSource` clients can fetch from."""
        source = BulkSource(next(self._transfer_ids), int(nbytes), meta)
        self._bulk_sources[source.transfer_id] = source
        return source

    # -- packet handling -----------------------------------------------------

    def _on_packet(self, packet):
        if self.in_outage:
            self.dropped_during_outage += 1
            return
        message = packet.payload
        if isinstance(message, CallRequest):
            self.sim.process(self._serve_call(message), name=f"{self.port}.call")
        elif isinstance(message, WindowRequest):
            self._serve_window(message)
        elif isinstance(message, BulkPush):
            self.sim.process(self._serve_push(message), name=f"{self.port}.push")
        else:
            raise RpcError(f"service {self.port!r}: unexpected message {message!r}")

    def _run_handler(self, op, body):
        handler = self._handlers.get(op)
        if handler is None:
            raise RpcError(f"service {self.port!r}: no handler for op {op!r}")
        result = handler(body)
        if hasattr(result, "send"):  # generator-style handler
            result = yield self.sim.process(result)
        if not isinstance(result, ServerReply):
            raise RpcError(
                f"service {self.port!r}: handler for {op!r} returned {result!r}, "
                "expected ServerReply"
            )
        return result

    def _serve_call(self, request):
        self.requests_served += 1
        error = None
        try:
            reply = yield from self._run_handler(request.op, request.body)
        except RpcError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced at the caller's yield
            error = exc
            reply = ServerReply(body=None, body_bytes=HEADER_BYTES)
        server_seconds = self._jittered(reply.compute_seconds)
        if server_seconds > 0:
            if self._cpu is not None:
                yield self._cpu.acquire()
                try:
                    yield self.sim.timeout(server_seconds)
                finally:
                    self._cpu.release()
            else:
                yield self.sim.timeout(server_seconds)
        bulk_ticket = None
        if reply.bulk is not None:
            bulk_ticket = (reply.bulk.transfer_id, reply.bulk.nbytes, reply.bulk.meta)
        response = CallResponse(
            connection_id=request.connection_id,
            seq=request.seq,
            body=(reply.body, bulk_ticket),
            body_bytes=reply.body_bytes,
            server_seconds=server_seconds,
            error=error,
        )
        self.host.send(
            Packet(
                src=self.host.name,
                dst=_host_of(request.reply_port),
                port=request.reply_port,
                size=HEADER_BYTES + response.body_bytes,
                payload=response,
            )
        )

    def _serve_window(self, request):
        source = self._bulk_sources.get(request.transfer_id)
        if source is None:
            raise RpcError(
                f"service {self.port!r}: window request for unknown transfer "
                f"{request.transfer_id}"
            )
        remaining_total = source.nbytes - request.offset
        window = min(request.window_bytes, remaining_total)
        if window <= 0:
            raise RpcError(
                f"service {self.port!r}: empty window at offset {request.offset}"
            )
        fragment_bytes = request.fragment_bytes
        sent = 0
        while sent < window:
            nbytes = min(fragment_bytes, window - sent)
            last_in_window = sent + nbytes >= window
            last_in_transfer = request.offset + sent + nbytes >= source.nbytes
            fragment = Fragment(
                connection_id=request.connection_id,
                seq=request.seq,
                transfer_id=request.transfer_id,
                offset=request.offset + sent,
                nbytes=nbytes,
                last_in_window=last_in_window,
                last_in_transfer=last_in_transfer,
            )
            self.host.send(
                Packet(
                    src=self.host.name,
                    dst=_host_of(request.reply_port),
                    port=request.reply_port,
                    size=HEADER_BYTES + nbytes,
                    payload=fragment,
                )
            )
            sent += nbytes
        source.consumed = max(source.consumed, request.offset + sent)
        if source.consumed >= source.nbytes:
            del self._bulk_sources[request.transfer_id]

    def _serve_push(self, push):
        key = (push.connection_id, push.transfer_id)
        state = self._push_buffers.setdefault(key, {"received": 0})
        state["received"] += push.nbytes
        if push.last_in_window:
            # Ack the window immediately — the sender's throughput entry must
            # measure transmission, not server compute.
            ack = WindowAck(
                connection_id=push.connection_id,
                seq=push.seq,
                transfer_id=push.transfer_id,
                next_offset=push.offset + push.nbytes,
            )
            self.host.send(
                Packet(
                    src=self.host.name,
                    dst=_host_of(push.reply_port),
                    port=push.reply_port,
                    size=HEADER_BYTES,
                    payload=ack,
                )
            )
        if push.last_in_transfer:
            del self._push_buffers[key]
            reply = yield from self._run_handler(push.body[0], push.body[1])
            compute_seconds = self._jittered(reply.compute_seconds)
            if compute_seconds > 0:
                if self._cpu is not None:
                    yield self._cpu.acquire()
                    try:
                        yield self.sim.timeout(compute_seconds)
                    finally:
                        self._cpu.release()
                else:
                    yield self.sim.timeout(compute_seconds)
            response = CallResponse(
                connection_id=push.connection_id,
                seq=push.response_seq,
                body=(reply.body, None),
                body_bytes=reply.body_bytes,
                server_seconds=compute_seconds,
            )
            self.host.send(
                Packet(
                    src=self.host.name,
                    dst=_host_of(push.reply_port),
                    port=push.reply_port,
                    size=HEADER_BYTES + response.body_bytes,
                    payload=response,
                )
            )


def _host_of(reply_port):
    """Reply ports are ``host/port`` strings; extract the host."""
    return reply_port.split("/", 1)[0]


class _WindowState:
    """Receive-side accounting for one in-flight bulk window.

    A slotted pair instead of a dict: one is allocated per window and its
    ``received`` field is bumped once per arriving fragment.
    """

    __slots__ = ("received", "event")

    def __init__(self, event):
        self.received = 0
        self.event = event


class RpcConnection:
    """Client half: one logged endpoint to one service.

    Every distinct (warden, server) pair gets its own connection and hence
    its own :class:`~repro.rpc.logs.RpcLog` — "each distinct endpoint has
    its own log" (paper §6.2.1).
    """

    def __init__(self, sim, network, server_name, server_port, connection_id,
                 window_bytes=DEFAULT_WINDOW_BYTES,
                 fragment_bytes=DEFAULT_FRAGMENT_BYTES,
                 client_host=None):
        if window_bytes <= 0 or fragment_bytes <= 0:
            raise RpcError("window_bytes and fragment_bytes must be positive")
        self.sim = sim
        self.network = network
        #: Clock the retry machinery reads; the seam that lets
        #: :class:`RetryPolicy` arithmetic also run on wall time (the real
        #: transport swaps in a monotonic clock — see :mod:`repro.rpc.clock`).
        self.clock = SimClock(sim)
        # Usually the mobile client; a wired host for server-to-server
        # connections (e.g. the distillation server fetching from the web).
        self.client = client_host or network.client
        self.server_name = server_name
        self.server_port = server_port
        self.connection_id = connection_id
        self.window_bytes = window_bytes
        self.fragment_bytes = fragment_bytes
        self.log = RpcLog(sim, connection_id)
        self._seq = itertools.count(1)
        self._pending = {}
        self._abandoned = set()  # timed-out seqs whose late replies we drop
        self.late_replies = 0
        self.timeouts = 0  # RpcTimeouts raised (any operation)
        self.retries = 0  # attempts re-issued by *_with_retry
        self._port = f"{self.client.name}/rpc:{connection_id}"
        self.client.bind(self._port, self._on_packet)
        self._closed = False

    def __repr__(self):
        return f"<RpcConnection {self.connection_id!r} -> {self.server_name}:{self.server_port}>"

    def close(self):
        """Close the connection.  Further operations raise.

        The client port stays bound — to a sink that just counts — because
        replies may still be in flight (or queued behind a blackout) when a
        connection is torn down mid-run; a straggler must land harmlessly,
        not crash the host with an unbound-port error.
        """
        if not self._closed:
            self.client.unbind(self._port)
            self.client.bind(self._port, self._on_packet_after_close)
            self._closed = True

    def _on_packet_after_close(self, packet):
        self.late_replies += 1
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("rpc.late_replies", connection=self.connection_id)

    # -- small exchanges -------------------------------------------------------

    def call(self, op, body=None, body_bytes=256, timeout=None):
        """Small-exchange RPC.  Generator; returns the reply body.

        Logs one round-trip entry (elapsed minus server compute).  If the
        reply references bulk data, returns ``(body, bulk_ticket)`` where
        ``bulk_ticket`` is ``(transfer_id, nbytes, meta)`` usable with
        :meth:`fetch_ticket`.

        ``timeout`` (seconds) raises :class:`~repro.errors.RpcTimeout` if
        no reply arrives in time — the recourse against a crashed or
        partitioned server.  There is no retransmission; retries are the
        caller's policy.
        """
        rec = telemetry.RECORDER
        span = None
        if rec.enabled:
            rec.count("rpc.calls", connection=self.connection_id)
            span = rec.begin("rpc.call", connection=self.connection_id, op=op)
        try:
            response = yield from self._exchange(op, body, body_bytes, timeout)
        except RpcTimeout:
            if span is not None:
                rec.end(span, status="timeout")
            raise
        started, reply = response
        elapsed = self.sim.now - started
        observed = max(elapsed - reply.server_seconds, 1e-6)
        if span is not None:
            rec.observe("rpc.round_trip_seconds", observed,
                        buckets=RPC_SECONDS_BUCKETS,
                        connection=self.connection_id)
            rec.end(span, status="ok", observed=observed)
        self.log.add_round_trip(observed, body_bytes + HEADER_BYTES,
                                reply.body_bytes + HEADER_BYTES)
        self.log.add_delivery(reply.body_bytes)
        if reply.error is not None:
            raise reply.error
        return reply.body  # (body, bulk_ticket)

    def _exchange(self, op, body, body_bytes, timeout=None):
        self._check_open()
        seq = next(self._seq)
        request = CallRequest(
            connection_id=self.connection_id,
            seq=seq,
            op=op,
            body=body,
            body_bytes=body_bytes,
            reply_port=self._port,
        )
        event = self.sim.event(name="rpc")
        started = self.sim.now
        self._pending[seq] = event
        self.client.send(
            Packet(
                src=self.client.name,
                dst=self.server_name,
                port=self.server_port,
                size=HEADER_BYTES + body_bytes,
                payload=request,
            )
        )
        reply = yield from self._await(event, seq, timeout, f"call {op!r}")
        return started, reply

    def _await(self, event, seq, timeout, what):
        """Wait for ``event``, optionally bounded by ``timeout`` seconds."""
        if timeout is None:
            reply = yield event
            return reply
        deadline = self.sim.timeout(timeout)
        yield AnyOf(self.sim, [event, deadline])
        if not event.triggered:
            # Abandon the exchange: a late reply must not be mistaken for
            # a response to some future sequence number.
            self._pending.pop(seq, None)
            self._abandoned.add(seq)
            self.timeouts += 1
            rec = telemetry.RECORDER
            if rec.enabled:
                rec.count("rpc.timeouts", connection=self.connection_id)
                rec.event("rpc.timeout", connection=self.connection_id,
                          what=what, timeout=timeout)
            raise RpcTimeout(
                f"{self.connection_id}: {what} timed out after {timeout} s"
            )
        return event.value

    # -- retry-with-backoff ----------------------------------------------------

    def _with_retry(self, attempt, retry):
        """Drive ``attempt(timeout)`` under ``retry``, backing off between timeouts."""
        retry = retry or RetryPolicy()
        schedule = RetrySchedule(retry, self.clock)
        rec = telemetry.RECORDER  # one lookup for the whole retry loop
        while True:
            try:
                result = yield from attempt(schedule.attempt_timeout())
                return result
            except RpcTimeout:
                delay = schedule.next_delay()
                if delay is None:
                    raise
                if schedule.past_deadline(delay):
                    self.timeouts += 1
                    if rec.enabled:
                        rec.count("rpc.timeouts", connection=self.connection_id)
                        rec.event("rpc.timeout", connection=self.connection_id,
                                  what="retry deadline", timeout=retry.deadline)
                    raise RpcTimeout(
                        f"{self.connection_id}: retry deadline "
                        f"({retry.deadline} s) exhausted"
                    )
                self.retries += 1
                if rec.enabled:
                    rec.count("rpc.retries", connection=self.connection_id)
                    rec.event("rpc.retry", connection=self.connection_id,
                              backoff=delay)
                if delay > 0:
                    yield self.clock.sleep(delay)

    def call_with_retry(self, op, body=None, body_bytes=256, retry=None):
        """:meth:`call` with timeout/retry-with-backoff (see :class:`RetryPolicy`).

        Generator; returns the reply body.  The recourse against injected
        link blackouts, loss bursts, and server stalls: instead of hanging
        forever (no timeout) or failing on the first drop (bare timeout),
        the caller rides out the fault and resumes when connectivity does.
        """
        result = yield from self._with_retry(
            lambda timeout: self.call(op, body, body_bytes, timeout=timeout),
            retry,
        )
        return result

    def fetch_with_retry(self, op, body=None, body_bytes=256, retry=None):
        """:meth:`fetch` with timeout/retry-with-backoff.

        Generator; returns ``(reply_body, meta, nbytes)``.  A timed-out
        transfer is restarted from scratch (the server issues a fresh bulk
        ticket), so a fault mid-transfer costs the bytes already moved —
        robustness benchmarks measure exactly this degradation.
        """
        result = yield from self._with_retry(
            lambda timeout: self.fetch(op, body, body_bytes, timeout=timeout),
            retry,
        )
        return result

    # -- bulk fetch (receiver-driven) ------------------------------------------

    def fetch(self, op, body=None, body_bytes=256, timeout=None):
        """Call ``op`` and fetch the bulk data its reply references.

        Generator; returns ``(reply_body, meta, nbytes)``.  Logs one
        round-trip entry for the initial exchange and one throughput entry
        per window of the transfer.  ``timeout`` bounds the initial call
        and each window independently.
        """
        reply_body, ticket = yield from self.call(op, body, body_bytes,
                                                  timeout=timeout)
        if ticket is None:
            raise RpcError(f"fetch: op {op!r} reply carries no bulk data")
        transfer_id, nbytes, meta = ticket
        yield from self.fetch_ticket(transfer_id, nbytes, timeout=timeout)
        return reply_body, meta, nbytes

    def fetch_ticket(self, transfer_id, nbytes, timeout=None):
        """Fetch ``nbytes`` of a known bulk source, window by window."""
        self._check_open()
        # One recorder lookup per transfer, not per window: the module
        # attribute cannot change mid-operation (enable/disable happens
        # between runs, never inside one).
        rec = telemetry.RECORDER
        offset = 0
        while offset < nbytes:
            window = min(self.window_bytes, nbytes - offset)
            received = yield from self._fetch_window(transfer_id, offset,
                                                     window, timeout, rec)
            offset += received
        return nbytes

    def _fetch_window(self, transfer_id, offset, window, timeout=None, rec=None):
        if rec is None:
            rec = telemetry.RECORDER
        seq = next(self._seq)
        request = WindowRequest(
            connection_id=self.connection_id,
            seq=seq,
            transfer_id=transfer_id,
            offset=offset,
            window_bytes=window,
            fragment_bytes=self.fragment_bytes,
            reply_port=self._port,
        )
        event = self.sim.event(name="window")
        state = _WindowState(event)
        started = self.sim.now
        self._pending[seq] = state
        span = None
        if rec.enabled:
            span = rec.begin("rpc.window", connection=self.connection_id,
                             offset=offset, window_bytes=window)
        self.client.send(
            Packet(
                src=self.client.name,
                dst=self.server_name,
                port=self.server_port,
                size=HEADER_BYTES,
                payload=request,
            )
        )
        try:
            yield from self._await(event, seq, timeout, f"window @{offset}")
        except RpcTimeout:
            if span is not None:
                rec.end(span, status="timeout")
            raise
        if span is not None:
            rec.observe("rpc.window_seconds", self.sim.now - started,
                        buckets=RPC_SECONDS_BUCKETS,
                        connection=self.connection_id)
            rec.end(span, status="ok", received=state.received)
        self.log.add_throughput(started, state.received)
        return state.received

    # -- bulk push (sender-driven) ---------------------------------------------

    def push(self, op, nbytes, body=None, reply_bytes=64):
        """Ship ``nbytes`` to the server, then run ``op`` on it there.

        Generator; returns the handler's reply body.  Logs one throughput
        entry per window ("a sender to transmit that data and receive an
        acknowledgement") — the final window's acknowledgement is the
        operation's response itself.
        """
        self._check_open()
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise RpcError(f"push: nbytes must be positive, got {nbytes}")
        transfer_id = next(self._seq)
        response_seq = next(self._seq)
        response_event = self.sim.event(name="pushresp")
        self._pending[response_seq] = response_event
        offset = 0
        while offset < nbytes:
            window = min(self.window_bytes, nbytes - offset)
            started = self.sim.now
            seq = next(self._seq)
            event = self.sim.event(name="push")
            self._pending[seq] = event
            last_in_transfer = offset + window >= nbytes
            sent = 0
            while sent < window:
                frag = min(self.fragment_bytes, window - sent)
                is_window_end = sent + frag >= window
                is_transfer_end = last_in_transfer and is_window_end
                push = BulkPush(
                    connection_id=self.connection_id,
                    seq=seq,
                    transfer_id=transfer_id,
                    offset=offset + sent,
                    nbytes=frag,
                    last_in_window=is_window_end,
                    last_in_transfer=is_transfer_end,
                    reply_port=self._port,
                    body=(op, body) if is_transfer_end else None,
                    response_seq=response_seq if is_transfer_end else None,
                )
                self.client.send(
                    Packet(
                        src=self.client.name,
                        dst=self.server_name,
                        port=self.server_port,
                        size=HEADER_BYTES + frag,
                        payload=push,
                    )
                )
                sent += frag
            yield event
            self.log.add_throughput(started, window)
            offset += window
        response = yield response_event
        self.log.add_delivery(response.body_bytes)
        if response.error is not None:
            raise response.error
        return response.body[0]

    # -- receive dispatch --------------------------------------------------------

    def _on_packet(self, packet):
        message = packet.payload
        # The abandoned set is empty except around timeouts, so test it
        # before paying for the getattr — this dispatch runs per packet.
        if self._abandoned and getattr(message, "seq", None) in self._abandoned:
            # A reply outliving its timeout: drop it (the exchange's state
            # is gone) but account for it.
            self.late_replies += 1
            rec = telemetry.RECORDER
            if rec.enabled:
                rec.count("rpc.late_replies", connection=self.connection_id)
            if isinstance(message, (CallResponse, WindowAck)) or (
                    isinstance(message, Fragment) and message.last_in_window):
                self._abandoned.discard(message.seq)
            return
        if isinstance(message, Fragment):
            state = self._pending.get(message.seq)
            if state is None:
                raise RpcError(f"{self!r}: fragment for unknown seq {message.seq}")
            state.received += message.nbytes
            self.log.add_delivery(message.nbytes)
            if message.last_in_window:
                del self._pending[message.seq]
                state.event.succeed()
        elif isinstance(message, CallResponse):
            waiter = self._pending.pop(message.seq, None)
            if waiter is None:
                raise RpcError(f"{self!r}: response for unknown seq {message.seq}")
            waiter.succeed(message)
        elif isinstance(message, WindowAck):
            waiter = self._pending.pop(message.seq, None)
            if waiter is None:
                raise RpcError(f"{self!r}: ack for unknown seq {message.seq}")
            waiter.succeed(message)
        else:
            raise RpcError(f"{self!r}: unexpected message {message!r}")

    def _check_open(self):
        if self._closed:
            raise RpcError(f"{self!r} is closed")
