"""Per-endpoint observation logs (paper §6.2.1).

"Each distinct endpoint has its own log, and observations for different
endpoints are recorded independently."  Entries are appended by the RPC
protocol as a side effect of ordinary traffic — estimation is purely
passive.  Observers (the viceroy's policy) subscribe to be told about each
new entry.

Beyond the two entry kinds the paper names, the log also records raw
*delivery* events (timestamped byte arrivals).  The centralized viceroy uses
these to compute aggregate link throughput across all connections during any
interval — the mechanism behind "the viceroy collects information from all
logs to estimate the total bandwidth available to the client".

Deliveries are kept in time order (simulation time never goes backwards),
so interval queries bisect into a prefix-sum index instead of scanning the
whole retained window; with thousands of fleet connections each throughput
observation triggers one such query per peer log, which made the linear
scan the dominant cost of estimation at scale.
"""

from bisect import bisect_right
from dataclasses import dataclass

#: How much delivery history each log retains, seconds.
DELIVERY_HISTORY_SECONDS = 30.0

#: Round-trip / throughput entries retained per log.  Estimators only ever
#: read the newest entry (plus the delivery window above), so with
#: thousands of fleet connections the unbounded lists were pure memory
#: growth.  Compaction keeps the most recent ``HISTORY_LIMIT`` entries and
#: runs only once the list doubles past the cap, so the amortized cost per
#: append is O(1).
HISTORY_LIMIT = 512


@dataclass(frozen=True, slots=True)
class RoundTripEntry:
    """One small exchange: elapsed wall time minus server compute time."""

    at: float  # completion time
    seconds: float  # R: round trip less server computation
    request_bytes: int
    response_bytes: int


@dataclass(frozen=True, slots=True)
class ThroughputEntry:
    """One bulk-transfer window: request-to-last-byte elapsed time."""

    at: float  # completion time
    started: float  # window request time
    nbytes: int  # W: window payload bytes
    seconds: float  # T: elapsed

    @property
    def raw_rate(self):
        """Unsmoothed W/T in bytes/s (no round-trip correction)."""
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0


class RpcLog:
    """The observation log of one RPC endpoint (connection)."""

    #: Entry-history cap; a class attribute so tests can tighten it.
    history_limit = HISTORY_LIMIT

    def __init__(self, sim, connection_id):
        self.sim = sim
        self.connection_id = connection_id
        self.round_trips = []
        self.throughputs = []
        #: Delivery index: parallel, time-sorted lists.  ``_delivery_cums``
        #: holds the running byte total *including pruned entries*, so an
        #: interval sum is one subtraction of two bisected positions.
        #: ``_delivery_head`` marks the first live (un-pruned) index; the
        #: dead prefix is physically removed only in chunks, keeping
        #: pruning amortized O(1) like the old deque's ``popleft``.
        self._delivery_times = []
        self._delivery_cums = []
        self._delivery_head = 0
        #: Running total as of the last *physically removed* entry, so a
        #: query bisecting to index 0 subtracts the pruned prefix.
        self._delivery_cum_base = 0
        self._delivered_total = 0
        self._observers = []
        #: Single hot-path callback invoked (with no arguments) after every
        #: delivery.  The observer protocol above deliberately excludes
        #: deliveries — they are far too frequent for a fan-out list — but
        #: the centralized share estimator needs a change signal to keep
        #: its usage memo exact.  One attribute check per delivery, the
        #: same discipline as the telemetry recorder's ``enabled`` gate.
        self.delivery_listener = None

    def subscribe(self, observer):
        """Register ``observer``; it must expose ``on_round_trip(log, entry)``
        and ``on_throughput(log, entry)`` methods."""
        self._observers.append(observer)

    def unsubscribe(self, observer):
        self._observers.remove(observer)

    # -- appends (called by the protocol) -----------------------------------

    def _compact(self, entries):
        if len(entries) > 2 * self.history_limit:
            del entries[:len(entries) - self.history_limit]

    def add_round_trip(self, seconds, request_bytes, response_bytes):
        entry = RoundTripEntry(self.sim.now, seconds, request_bytes, response_bytes)
        self.round_trips.append(entry)
        self._compact(self.round_trips)
        for observer in list(self._observers):
            observer.on_round_trip(self, entry)
        return entry

    def add_throughput(self, started, nbytes):
        entry = ThroughputEntry(
            self.sim.now, started, nbytes, self.sim.now - started
        )
        self.throughputs.append(entry)
        self._compact(self.throughputs)
        for observer in list(self._observers):
            observer.on_throughput(self, entry)
        return entry

    def add_delivery(self, nbytes):
        """Record ``nbytes`` of payload arriving now (fragment or response)."""
        self._delivered_total += nbytes
        self._delivery_times.append(self.sim.now)
        self._delivery_cums.append(self._delivered_total)
        horizon = self.sim.now - DELIVERY_HISTORY_SECONDS
        times = self._delivery_times
        head = self._delivery_head
        while head < len(times) and times[head] < horizon:
            head += 1
        if head > 4096 and head * 2 > len(times):
            self._delivery_cum_base = self._delivery_cums[head - 1]
            del self._delivery_times[:head]
            del self._delivery_cums[:head]
            head = 0
        self._delivery_head = head
        if self.delivery_listener is not None:
            self.delivery_listener()

    # -- queries (used by estimators) ----------------------------------------

    @property
    def delivered_total(self):
        """Total payload bytes ever delivered on this endpoint."""
        return self._delivered_total

    def bytes_delivered_between(self, start, end):
        """Payload bytes that arrived in the half-open interval (start, end].

        Only ``DELIVERY_HISTORY_SECONDS`` of history is retained; asking
        about older intervals undercounts, which estimators tolerate.
        """
        times = self._delivery_times
        head = self._delivery_head
        lo = bisect_right(times, start, head)
        hi = bisect_right(times, end, head)
        if hi <= lo:
            return 0
        cums = self._delivery_cums
        base = cums[lo - 1] if lo > 0 else self._delivery_cum_base
        return cums[hi - 1] - base

    def recent_rate(self, horizon):
        """Mean delivery rate over the last ``horizon`` seconds (bytes/s)."""
        if horizon <= 0:
            return 0.0
        start = self.sim.now - horizon
        return self.bytes_delivered_between(start, self.sim.now) / horizon

    def last_activity(self):
        """Time of the most recent entry of any kind, or None."""
        times = []
        if self.round_trips:
            times.append(self.round_trips[-1].at)
        if self.throughputs:
            times.append(self.throughputs[-1].at)
        if len(self._delivery_times) > self._delivery_head:
            times.append(self._delivery_times[-1])
        return max(times) if times else None
