"""Per-endpoint observation logs (paper §6.2.1).

"Each distinct endpoint has its own log, and observations for different
endpoints are recorded independently."  Entries are appended by the RPC
protocol as a side effect of ordinary traffic — estimation is purely
passive.  Observers (the viceroy's policy) subscribe to be told about each
new entry.

Beyond the two entry kinds the paper names, the log also records raw
*delivery* events (timestamped byte arrivals).  The centralized viceroy uses
these to compute aggregate link throughput across all connections during any
interval — the mechanism behind "the viceroy collects information from all
logs to estimate the total bandwidth available to the client".
"""

from collections import deque
from dataclasses import dataclass

#: How much delivery history each log retains, seconds.
DELIVERY_HISTORY_SECONDS = 30.0


@dataclass(frozen=True, slots=True)
class RoundTripEntry:
    """One small exchange: elapsed wall time minus server compute time."""

    at: float  # completion time
    seconds: float  # R: round trip less server computation
    request_bytes: int
    response_bytes: int


@dataclass(frozen=True, slots=True)
class ThroughputEntry:
    """One bulk-transfer window: request-to-last-byte elapsed time."""

    at: float  # completion time
    started: float  # window request time
    nbytes: int  # W: window payload bytes
    seconds: float  # T: elapsed

    @property
    def raw_rate(self):
        """Unsmoothed W/T in bytes/s (no round-trip correction)."""
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0


class RpcLog:
    """The observation log of one RPC endpoint (connection)."""

    def __init__(self, sim, connection_id):
        self.sim = sim
        self.connection_id = connection_id
        self.round_trips = []
        self.throughputs = []
        self._deliveries = deque()  # (time, payload_bytes)
        self._delivered_total = 0
        self._observers = []

    def subscribe(self, observer):
        """Register ``observer``; it must expose ``on_round_trip(log, entry)``
        and ``on_throughput(log, entry)`` methods."""
        self._observers.append(observer)

    def unsubscribe(self, observer):
        self._observers.remove(observer)

    # -- appends (called by the protocol) -----------------------------------

    def add_round_trip(self, seconds, request_bytes, response_bytes):
        entry = RoundTripEntry(self.sim.now, seconds, request_bytes, response_bytes)
        self.round_trips.append(entry)
        for observer in list(self._observers):
            observer.on_round_trip(self, entry)
        return entry

    def add_throughput(self, started, nbytes):
        entry = ThroughputEntry(
            self.sim.now, started, nbytes, self.sim.now - started
        )
        self.throughputs.append(entry)
        for observer in list(self._observers):
            observer.on_throughput(self, entry)
        return entry

    def add_delivery(self, nbytes):
        """Record ``nbytes`` of payload arriving now (fragment or response)."""
        self._deliveries.append((self.sim.now, nbytes))
        self._delivered_total += nbytes
        horizon = self.sim.now - DELIVERY_HISTORY_SECONDS
        while self._deliveries and self._deliveries[0][0] < horizon:
            self._deliveries.popleft()

    # -- queries (used by estimators) ----------------------------------------

    @property
    def delivered_total(self):
        """Total payload bytes ever delivered on this endpoint."""
        return self._delivered_total

    def bytes_delivered_between(self, start, end):
        """Payload bytes that arrived in the half-open interval (start, end].

        Only ``DELIVERY_HISTORY_SECONDS`` of history is retained; asking
        about older intervals undercounts, which estimators tolerate.
        """
        return sum(n for (t, n) in self._deliveries if start < t <= end)

    def recent_rate(self, horizon):
        """Mean delivery rate over the last ``horizon`` seconds (bytes/s)."""
        if horizon <= 0:
            return 0.0
        start = self.sim.now - horizon
        return self.bytes_delivered_between(start, self.sim.now) / horizon

    def last_activity(self):
        """Time of the most recent entry of any kind, or None."""
        times = []
        if self.round_trips:
            times.append(self.round_trips[-1].at)
        if self.throughputs:
            times.append(self.throughputs[-1].at)
        if self._deliveries:
            times.append(self._deliveries[-1][0])
        return max(times) if times else None
