"""Message types exchanged by the RPC protocol.

These are payload objects carried inside :class:`~repro.net.Packet`; they
are never serialized, only sized.  All are slotted: fragments and acks are
allocated per packet on the bulk-transfer hot path.
"""

from dataclasses import dataclass, field


@dataclass(slots=True)
class CallRequest:
    """A small-exchange request (paper: 'conventional RPC protocol')."""

    connection_id: str
    seq: int
    op: str
    body: object
    body_bytes: int
    reply_port: str


@dataclass(slots=True)
class CallResponse:
    """Reply to a :class:`CallRequest`.

    ``server_seconds`` is the server computation time, reported so the
    client can subtract it from the observed elapsed time (paper §6.2.1).
    """

    connection_id: str
    seq: int
    body: object
    body_bytes: int
    server_seconds: float
    error: object = None


@dataclass(slots=True)
class WindowRequest:
    """Receiver-driven request for the next window of a bulk transfer."""

    connection_id: str
    seq: int
    transfer_id: int
    offset: int
    window_bytes: int
    fragment_bytes: int
    reply_port: str


@dataclass(slots=True)
class Fragment:
    """One packet's worth of a bulk-transfer window."""

    connection_id: str
    seq: int
    transfer_id: int
    offset: int
    nbytes: int
    last_in_window: bool
    last_in_transfer: bool


@dataclass(slots=True)
class BulkPush:
    """Sender-side bulk transfer: a window of data offered to the server.

    Models the 'sender transmits that data and receives an acknowledgement'
    half of the paper's protocol (used by the speech application to ship
    utterances to the server).
    """

    connection_id: str
    seq: int
    transfer_id: int
    offset: int
    nbytes: int
    last_in_window: bool
    last_in_transfer: bool
    reply_port: str
    body: object = None
    response_seq: int = None


@dataclass(slots=True)
class WindowAck:
    """Acknowledgement completing a pushed window."""

    connection_id: str
    seq: int
    transfer_id: int
    next_offset: int


@dataclass(slots=True)
class ServerReply:
    """What an operation handler returns to the RPC service.

    ``body`` rides back in the response; ``body_bytes`` is its wire size.
    ``compute_seconds`` models the handler's CPU time (elapsed on the server
    before the response leaves, and reported to the client so it can be
    subtracted from round-trip observations).  ``bulk`` optionally names a
    :class:`BulkSource` the client may then ``fetch``.
    """

    body: object = None
    body_bytes: int = 64
    compute_seconds: float = 0.0
    bulk: object = None


@dataclass(slots=True)
class BulkSource:
    """Server-side descriptor of fetchable bulk data."""

    transfer_id: int
    nbytes: int
    meta: object = None
    consumed: int = field(default=0, compare=False)
