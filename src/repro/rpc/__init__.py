"""User-level RPC with passive network observation (paper §6.2.1).

Odyssey estimates bandwidth from *purely passive observations* logged by its
RPC mechanism: a conventional request/response protocol for small exchanges,
combined with a windowed bulk-transfer protocol for data.  Two kinds of log
entries result:

- **round-trip entries** — elapsed time for a small exchange, minus server
  computation time;
- **throughput entries** — the time for a receiver to request and receive a
  window's worth of data.

This package implements both protocols over :mod:`repro.net`, plus the
per-endpoint logs (:class:`RpcLog`) that the viceroy's estimators observe.

- :class:`RpcService` — server-side: registers operation handlers, models
  server compute time, serves windowed bulk reads.
- :class:`RpcConnection` — client-side endpoint: ``call`` for small
  exchanges, ``fetch``/``push`` for bulk transfers, each a generator to be
  driven with ``yield from`` inside a simulated process.
"""

from repro.rpc.connection import RpcConnection, RpcService
from repro.rpc.logs import RoundTripEntry, RpcLog, ThroughputEntry
from repro.rpc.messages import BulkSource, ServerReply

__all__ = [
    "BulkSource",
    "RoundTripEntry",
    "RpcConnection",
    "RpcLog",
    "RpcService",
    "ServerReply",
    "ThroughputEntry",
]
