"""The Odyssey namespace: VFS integration and the interceptor (paper §4.1).

Odyssey objects live under a mount point (``/odyssey`` by default).  In the
paper a small in-kernel interceptor redirects operations on such paths to
the user-space viceroy, which routes them to the warden managing the
object's type.  Here the :class:`Namespace` is that mount table plus
longest-prefix routing, with naming extensions "similar in spirit to
virtual directories": wardens enumerate their own children.
"""

import posixpath

from repro.errors import NoSuchObject, OdysseyError


def normalize(path):
    """Canonicalize an Odyssey path (absolute, no trailing slash)."""
    if not path or not path.startswith("/"):
        raise NoSuchObject(f"Odyssey paths are absolute, got {path!r}")
    norm = posixpath.normpath(path)
    return norm


class Namespace:
    """Mount table mapping path prefixes to wardens."""

    def __init__(self, root="/odyssey"):
        self.root = normalize(root)
        self._mounts = {}

    def mount(self, prefix, warden):
        """Mount ``warden`` at ``prefix`` (must lie under the root)."""
        prefix = normalize(prefix)
        if prefix != self.root and not prefix.startswith(self.root + "/"):
            raise OdysseyError(f"mount {prefix!r} outside Odyssey root {self.root!r}")
        if prefix in self._mounts:
            raise OdysseyError(f"mount point {prefix!r} already in use")
        self._mounts[prefix] = warden

    def unmount(self, prefix):
        prefix = normalize(prefix)
        if prefix not in self._mounts:
            raise OdysseyError(f"nothing mounted at {prefix!r}")
        del self._mounts[prefix]

    @property
    def mounts(self):
        """Mapping of mount prefix to warden (read-only copy)."""
        return dict(self._mounts)

    def is_odyssey_path(self, path):
        """Would the interceptor redirect this path to the viceroy?"""
        path = normalize(path)
        return path == self.root or path.startswith(self.root + "/")

    def resolve(self, path):
        """Longest-prefix match: returns ``(warden, rest)``.

        ``rest`` is the path relative to the mount point ('' for the mount
        point itself).  Raises :class:`NoSuchObject` when no warden claims
        the path.
        """
        path = normalize(path)
        best = None
        for prefix, warden in self._mounts.items():
            if path == prefix or path.startswith(prefix + "/"):
                if best is None or len(prefix) > len(best[0]):
                    best = (prefix, warden)
        if best is None:
            raise NoSuchObject(f"no warden manages {path!r}")
        prefix, warden = best
        rest = path[len(prefix):].lstrip("/")
        return warden, rest

    def readdir(self, path):
        """List names under ``path``.

        At the root, lists mount points; below a mount, delegates to the
        warden's ``vfs_readdir`` (virtual-directory style naming).
        """
        path = normalize(path)
        if path == self.root:
            return sorted(
                prefix[len(self.root):].lstrip("/").split("/")[0]
                for prefix in self._mounts
            )
        warden, rest = self.resolve(path)
        return warden.vfs_readdir(rest)
