"""Generic resources and resource descriptors (paper Fig. 3b-c).

The paper enumerates six generic resources a mobile client must manage.
The prototype — like the paper's — treats network bandwidth as the critical
one, but all six are first-class here and :mod:`repro.core.monitors`
provides sources for the rest.
"""

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import BadDescriptor


class Resource(enum.Enum):
    """The generic resources of Fig. 3(c), with their units."""

    NETWORK_BANDWIDTH = ("network-bandwidth", "bytes/second")
    NETWORK_LATENCY = ("network-latency", "microseconds")
    DISK_CACHE_SPACE = ("disk-cache-space", "kilobytes")
    CPU = ("cpu", "SPECint95")
    BATTERY_POWER = ("battery-power", "minutes")
    MONEY = ("money", "cents")

    def __init__(self, label, unit):
        self.label = label
        self.unit = unit

    def __str__(self):
        return self.label

    @classmethod
    def from_label(cls, label):
        """Look up a resource by its string label."""
        for resource in cls:
            if resource.label == label:
                return resource
        raise BadDescriptor(f"unknown resource {label!r}")


@dataclass(frozen=True)
class Window:
    """A window of tolerance: [lower, upper] on a resource's availability."""

    lower: float
    upper: float

    def __post_init__(self):
        if self.lower < 0:
            raise BadDescriptor(f"window lower bound must be >= 0, got {self.lower!r}")
        if self.upper < self.lower:
            raise BadDescriptor(
                f"window upper bound {self.upper!r} below lower bound {self.lower!r}"
            )

    def contains(self, level):
        """True if ``level`` lies within the window (inclusive)."""
        return self.lower <= level <= self.upper


@dataclass(frozen=True)
class ResourceDescriptor:
    """The argument to ``request`` (paper Fig. 3b).

    ``handler`` names the application's upcall handler to invoke when the
    resource strays outside the window.
    """

    resource: Resource
    window: Window
    handler: str = "default"

    def __post_init__(self):
        if not isinstance(self.resource, Resource):
            raise BadDescriptor(f"resource must be a Resource, got {self.resource!r}")
        if not isinstance(self.window, Window):
            raise BadDescriptor(f"window must be a Window, got {self.window!r}")


_request_ids = itertools.count(1)


def advance_request_ids(minimum):
    """Ensure freshly minted request ids exceed ``minimum``.

    Checkpoint restore (:meth:`~repro.core.viceroy.Viceroy.restore`)
    re-creates registrations under their original ids; the shared counter
    must jump past them, or a later ``request`` would mint a duplicate id
    and silently clobber a restored registration.  Never moves backwards.
    """
    global _request_ids
    current = next(_request_ids)
    _request_ids = itertools.count(max(current, minimum + 1))


@dataclass
class Registration:
    """A live ``request``: the viceroy watches its window until violated
    or cancelled."""

    app: str
    path: str
    descriptor: ResourceDescriptor
    connection_id: str = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
