"""Monitors for the non-network resources of Fig. 3(c).

The paper's prototype "only manages the most critical resource in mobile
computing: network bandwidth", with the rest listed as medium-term work
(§8).  We implement them: each monitor tracks one resource's availability,
reports it through :meth:`current`, and pokes the viceroy whenever the level
changes so registered windows are re-checked and upcalls generated.

All monitors share the :class:`ResourceMonitor` contract the viceroy
expects: a ``resource`` attribute, ``current()``, and ``attach(viceroy)``.
"""

from repro.core.resources import Resource
from repro.errors import OdysseyError, ReproError


class ResourceMonitor:
    """Base class: level storage plus viceroy notification."""

    resource = None

    def __init__(self, sim):
        self.sim = sim
        self.viceroy = None
        self.history = []  # (time, level)

    def attach(self, viceroy):
        self.viceroy = viceroy

    def current(self):
        """Current availability, in the resource's Fig. 3(c) unit."""
        raise NotImplementedError

    def _changed(self):
        self.history.append((self.sim.now, self.current()))
        if self.viceroy is not None:
            self.viceroy.monitor_changed(self.resource)


class BatteryMonitor(ResourceMonitor):
    """Battery power in minutes remaining.

    A linear drain model: the battery loses wall-clock minutes scaled by a
    load factor (1.0 = nominal draw).  Applications that light up radios or
    CPUs raise the factor via :meth:`set_load`.  The level is re-published
    every ``tick`` seconds.
    """

    resource = Resource.BATTERY_POWER

    def __init__(self, sim, capacity_minutes, load=1.0, tick=1.0):
        super().__init__(sim)
        if capacity_minutes <= 0:
            raise ReproError(f"capacity must be positive, got {capacity_minutes!r}")
        self.capacity_minutes = float(capacity_minutes)
        self._remaining = float(capacity_minutes)
        self._load = load
        self.tick = tick
        sim.process(self._drain_loop(), name="battery.drain")

    @property
    def load(self):
        return self._load

    def set_load(self, load):
        """Set the drain multiplier (>= 0)."""
        if load < 0:
            raise ReproError(f"load must be >= 0, got {load!r}")
        self._load = load

    def current(self):
        return max(self._remaining, 0.0)

    def _drain_loop(self):
        while self._remaining > 0:
            yield self.sim.timeout(self.tick)
            self._remaining -= self._load * self.tick / 60.0
            self._changed()


class CpuMonitor(ResourceMonitor):
    """CPU availability in SPECint95 (rating scaled by idle fraction)."""

    resource = Resource.CPU

    def __init__(self, sim, rating_specint95, load=0.0):
        super().__init__(sim)
        if rating_specint95 <= 0:
            raise ReproError(f"rating must be positive, got {rating_specint95!r}")
        self.rating = float(rating_specint95)
        self._load = load

    @property
    def load(self):
        return self._load

    def set_load(self, load):
        """Set utilization in [0, 1]; publishes the change."""
        if not 0 <= load <= 1:
            raise ReproError(f"load must be in [0, 1], got {load!r}")
        self._load = load
        self._changed()

    def current(self):
        return self.rating * (1.0 - self._load)


class DiskCacheMonitor(ResourceMonitor):
    """Free disk cache space in kilobytes, aggregated over warden caches."""

    resource = Resource.DISK_CACHE_SPACE

    def __init__(self, sim):
        super().__init__(sim)
        self._caches = []

    def watch(self, cache):
        """Include a :class:`~repro.core.warden.WardenCache` in the total."""
        if cache in self._caches:
            raise OdysseyError("cache already watched")
        self._caches.append(cache)

    def current(self):
        free = sum(c.capacity_bytes - c.used_bytes for c in self._caches)
        return free / 1024.0

    def poll(self):
        """Re-publish the level (caches have no change hooks; callers poll)."""
        self._changed()


class MoneyMonitor(ResourceMonitor):
    """Remaining communication budget in cents.

    Models a metered network tariff: :meth:`charge_bytes` debits transfer
    volume at ``cents_per_megabyte``; arbitrary debits via :meth:`charge`.
    """

    resource = Resource.MONEY

    def __init__(self, sim, budget_cents, cents_per_megabyte=0.0):
        super().__init__(sim)
        if budget_cents < 0:
            raise ReproError(f"budget must be >= 0, got {budget_cents!r}")
        self.budget_cents = float(budget_cents)
        self._spent = 0.0
        self.cents_per_megabyte = cents_per_megabyte

    def charge(self, cents):
        """Debit ``cents`` (>= 0) and publish the new level."""
        if cents < 0:
            raise ReproError(f"charge must be >= 0, got {cents!r}")
        self._spent += cents
        self._changed()

    def charge_bytes(self, nbytes):
        """Debit a transfer of ``nbytes`` at the configured tariff."""
        self.charge(self.cents_per_megabyte * nbytes / (1024.0 * 1024.0))

    @property
    def spent(self):
        return self._spent

    def current(self):
        return max(self.budget_cents - self._spent, 0.0)
