"""The Odyssey core: viceroy, wardens, upcalls, and the API of Fig. 3.

This package is the paper's primary contribution.  Applications operate on
Odyssey objects through a namespace (the VFS interceptor), express resource
expectations with ``request``, are notified through upcalls when
expectations no longer hold, and change fidelity through type-specific
operations (``tsop``).

- :class:`Viceroy` — type-independent centralized resource manager.
- :class:`Warden` — base class for type-specific components.
- :class:`OdysseyAPI` — the per-application system-call surface.
- :class:`UpcallDispatcher` — exactly-once, in-order notification delivery.
- :mod:`repro.core.policies` — Odyssey's centralized estimation plus the
  two §6.2.3 baselines (laissez-faire, blind-optimism).
- :mod:`repro.core.monitors` — the Fig. 3(c) generic resources beyond
  network bandwidth (battery, CPU, cache space, money, latency).
"""

from repro.core.api import OdysseyAPI
from repro.core.dynsets import DynamicSet
from repro.core.interceptor import Interceptor, LocalFS
from repro.core.monitors import (
    BatteryMonitor,
    CpuMonitor,
    DiskCacheMonitor,
    MoneyMonitor,
)
from repro.core.namespace import Namespace
from repro.core.shipping import PlacementEngine, Plan
from repro.core.policies import (
    BlindOptimismPolicy,
    LaissezFairePolicy,
    OdysseyPolicy,
)
from repro.core.resources import Resource, ResourceDescriptor, Window
from repro.core.upcalls import Upcall, UpcallDispatcher
from repro.core.viceroy import Viceroy
from repro.core.warden import Warden

__all__ = [
    "BatteryMonitor",
    "BlindOptimismPolicy",
    "CpuMonitor",
    "DiskCacheMonitor",
    "DynamicSet",
    "Interceptor",
    "LaissezFairePolicy",
    "LocalFS",
    "MoneyMonitor",
    "Namespace",
    "OdysseyAPI",
    "OdysseyPolicy",
    "PlacementEngine",
    "Plan",
    "Resource",
    "ResourceDescriptor",
    "Upcall",
    "UpcallDispatcher",
    "Viceroy",
    "Warden",
    "Window",
]
