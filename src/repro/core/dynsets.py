"""Dynamic sets: reducing aggregate I/O latency for mobile search (§8).

The paper's long-term agenda: "Search of distributed repositories performs
poorly when mobile because it lacks the temporal locality needed for
caching to be effective ... We plan to explore a solution that uses dynamic
sets" (Steere's SOSP'97 work).  The insight: a search application iterating
over a *set* of objects usually does not care about order, so the system
may (a) fetch members concurrently and (b) yield whichever member arrives
first — small objects unblock the application while large ones are still
in flight.

:class:`DynamicSet` implements exactly that over Odyssey objects:

- ``open`` the set with the member paths (or tsop specs);
- ``iterate`` yields members in *completion order*, overlapping fetches
  with bounded parallelism;
- compare against :func:`iterate_in_order`, the conventional
  one-at-a-time loop, to measure the aggregate-latency win.

Fetching is delegated to a caller-supplied ``fetch(spec)`` generator (a
warden tsop, an RPC fetch, ...), so dynamic sets layer on any data type.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.sim.queues import Store

#: Concurrent member fetches in flight (the set's "advice" to the system).
DEFAULT_PARALLELISM = 4


@dataclass
class SetStats:
    """Latency accounting for one iteration of a set."""

    yields: list = field(default_factory=list)  # (time, spec)
    opened_at: float = 0.0
    completed_at: float = None

    @property
    def aggregate_latency(self):
        """Sum over members of (yield time - open time).

        The metric dynamic sets minimize: how long, in total, the
        application waited for data across the whole search.
        """
        return sum(t - self.opened_at for t, _ in self.yields)

    @property
    def first_result_latency(self):
        if not self.yields:
            return None
        return self.yields[0][0] - self.opened_at

    @property
    def makespan(self):
        if self.completed_at is None:
            return None
        return self.completed_at - self.opened_at


class DynamicSet:
    """An unordered collection whose iteration overlaps member fetches."""

    def __init__(self, sim, specs, fetch, parallelism=DEFAULT_PARALLELISM):
        if parallelism <= 0:
            raise ReproError(f"parallelism must be positive, got {parallelism!r}")
        if not specs:
            raise ReproError("a dynamic set needs at least one member")
        self.sim = sim
        self.specs = list(specs)
        self.fetch = fetch
        self.parallelism = parallelism
        self.stats = SetStats(opened_at=sim.now)
        self._results = Store(sim, name="dynset.results")
        self._pending = deque(self.specs)
        self._failures = []
        self._workers_done = 0
        self._started = False

    def _start(self):
        if self._started:
            return
        self._started = True
        for i in range(min(self.parallelism, len(self.specs))):
            self.sim.process(self._worker(), name=f"dynset.worker{i}")

    def _worker(self):
        while self._pending:
            spec = self._pending.popleft()
            try:
                value = yield from self.fetch(spec)
            except Exception as exc:  # noqa: BLE001 - reported to the iterator
                self._failures.append((spec, exc))
                self._results.put(("error", spec, exc))
                continue
            self._results.put(("ok", spec, value))

    def iterate(self):
        """Yield ``(spec, value)`` pairs in completion order (generator).

        Drive with ``yield from`` inside a simulated process.  Members whose
        fetch failed are skipped (inspect :attr:`failures`); this mirrors
        dynamic sets' semantics that a search tolerates partial results.
        """
        self._start()
        produced = []
        for _ in range(len(self.specs)):
            kind, spec, value = yield self._results.get()
            if kind == "ok":
                self.stats.yields.append((self.sim.now, spec))
                produced.append((spec, value))
        self.stats.completed_at = self.sim.now
        return produced

    @property
    def failures(self):
        """Members whose fetch raised: list of (spec, exception)."""
        return list(self._failures)


def iterate_in_order(sim, specs, fetch):
    """The conventional loop dynamic sets improve on: one member at a time,
    in the order given.  Returns (results, SetStats) — generator."""
    stats = SetStats(opened_at=sim.now)
    results = []
    for spec in specs:
        value = yield from fetch(spec)
        stats.yields.append((sim.now, spec))
        results.append((spec, value))
    stats.completed_at = sim.now
    return results, stats
