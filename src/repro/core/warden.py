"""Wardens: type-specific system components (paper §3.2).

"A warden encapsulates the system-level support at a client necessary to
effectively manage a data type."  Wardens are subordinate to the viceroy,
communicate with their servers over logged RPC connections, cache data, and
expose fidelity levels through type-specific operations.

:class:`Warden` is the base class concrete wardens (video, web, speech,
bitstream) extend.  :class:`WardenCache` is a byte-accounted LRU cache used
by wardens that cache server data; its occupancy backs the disk-cache-space
resource monitor.
"""

from collections import OrderedDict

from repro.errors import NoSuchObject, NoSuchOperation, OdysseyError
from repro.rpc.connection import RpcConnection


class WardenCache:
    """A byte-accounted LRU cache of warden objects."""

    def __init__(self, capacity_bytes):
        if capacity_bytes <= 0:
            raise OdysseyError(f"cache capacity must be positive, got {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self._entries = OrderedDict()  # key -> (value, nbytes)
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """Return the cached value or None, updating recency and stats."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key, value, nbytes):
        """Insert ``value``; evicts LRU entries to stay within capacity.

        Objects larger than the whole cache are refused (returns False).
        """
        if nbytes > self.capacity_bytes:
            return False
        if key in self._entries:
            self.discard(key)
        while self.used_bytes + nbytes > self.capacity_bytes:
            old_key, (_, old_bytes) = self._entries.popitem(last=False)
            self.used_bytes -= old_bytes
            self.evictions += 1
        self._entries[key] = (value, nbytes)
        self.used_bytes += nbytes
        return True

    def discard(self, key):
        """Remove ``key`` if present; returns True if something was removed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.used_bytes -= entry[1]
        return True

    def discard_matching(self, predicate):
        """Remove all entries whose key satisfies ``predicate``; returns count.

        Used by the video warden, which discards prefetched low-quality
        frames when switching to a higher-fidelity track (paper §5.1).
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            self.discard(key)
        return len(doomed)

    def clear(self):
        self._entries.clear()
        self.used_bytes = 0


class Warden:
    """Base class for type-specific wardens.

    Subclasses:

    - set :attr:`TSOPS`, mapping opcode strings to method names; tsop
      methods are generators ``(app, rest, inbuf) -> outbuf``;
    - implement the ``vfs_*`` hooks they support;
    - describe their fidelity levels in :attr:`FIDELITIES`, a mapping of
      level name to a numeric fidelity in (0, 1] (strictly increasing with
      quality, as §6.1.2 requires).

    Wardens are statically linked with the viceroy in the paper; here they
    are registered with :meth:`Viceroy.mount` and share its address space
    trivially.
    """

    #: opcode -> method name for type-specific operations.
    TSOPS = {}
    #: fidelity level name -> numeric fidelity in (0, 1].
    FIDELITIES = {}

    def __init__(self, sim, viceroy, name, cache_bytes=8 * 1024 * 1024):
        self.sim = sim
        self.viceroy = viceroy
        self.name = name
        self.cache = WardenCache(cache_bytes)
        self.connections = []
        self.failovers = 0

    def __repr__(self):
        return f"<{self.__class__.__name__} {self.name!r}>"

    # -- connections ----------------------------------------------------------

    def open_connection(self, server_name, server_port, connection_id=None,
                        **rpc_kwargs):
        """Create a logged RPC connection and register it with the viceroy.

        Applications never contact servers directly (paper §4.1): all
        communication flows through warden connections, which is what makes
        centralized observation possible.
        """
        connection_id = connection_id or f"{self.name}:{len(self.connections)}"
        conn = RpcConnection(
            self.sim, self.viceroy.network, server_name, server_port,
            connection_id, **rpc_kwargs,
        )
        self.connections.append(conn)
        self.viceroy.register_connection(conn, warden=self)
        return conn

    def close_connection(self, conn, notify=True):
        """Tear ``conn`` down cleanly: viceroy first, then the socket.

        Unregisters from the viceroy (which drops or upcall-notifies any
        registrations riding on the connection), closes the endpoint, and
        forgets it.  ``notify`` is forwarded to
        :meth:`~repro.core.viceroy.Viceroy.unregister_connection`.
        """
        if conn not in self.connections:
            raise OdysseyError(f"warden {self.name!r} does not own {conn!r}")
        self.viceroy.unregister_connection(conn.connection_id, notify=notify)
        conn.close()
        self.connections.remove(conn)

    def failover_connection(self, conn, connection_id=None, notify=True):
        """Replace ``conn`` with a fresh connection to the same server.

        The failed connection is torn down exactly as in
        :meth:`close_connection`; the replacement takes its slot in
        :attr:`connections` (so :meth:`primary_connection` routing is
        preserved) and is registered with the viceroy under a new id.
        Returns the replacement connection.
        """
        index = self.connections.index(conn)  # raises if not ours
        self.viceroy.unregister_connection(conn.connection_id, notify=notify)
        conn.close()
        self.failovers += 1
        connection_id = connection_id or f"{conn.connection_id}+f{self.failovers}"
        replacement = RpcConnection(
            self.sim, self.viceroy.network, conn.server_name, conn.server_port,
            connection_id, window_bytes=conn.window_bytes,
            fragment_bytes=conn.fragment_bytes, client_host=conn.client,
        )
        self.connections[index] = replacement
        self.viceroy.register_connection(replacement, warden=self)
        return replacement

    def primary_connection(self, rest=None):
        """The connection serving ``rest`` (default: the first one)."""
        if not self.connections:
            raise OdysseyError(f"warden {self.name!r} has no connections")
        return self.connections[0]

    # -- tsop dispatch -----------------------------------------------------------

    def tsop(self, app, rest, opcode, inbuf):
        """Dispatch a type-specific operation.  Generator."""
        method_name = self.TSOPS.get(opcode)
        if method_name is None:
            raise NoSuchOperation(
                f"warden {self.name!r} has no tsop {opcode!r}; "
                f"supported: {sorted(self.TSOPS)}"
            )
        method = getattr(self, method_name)
        result = yield from method(app, rest, inbuf)
        return result

    # -- vfs hooks (subclasses override what they support) ------------------------

    def vfs_open(self, app, rest, flags="r"):
        """Open an object; returns an opaque per-open handle object."""
        raise NoSuchObject(f"warden {self.name!r} does not support open on {rest!r}")

    def vfs_read(self, app, handle, nbytes):
        """Read from an open object.  Generator returning bytes-like or object."""
        raise NoSuchObject(f"warden {self.name!r} does not support read")
        yield  # pragma: no cover - makes this a generator

    def vfs_write(self, app, handle, data):
        """Write to an open object.  Generator."""
        raise NoSuchObject(f"warden {self.name!r} does not support write")
        yield  # pragma: no cover - makes this a generator

    def vfs_close(self, app, handle):
        """Close an open handle (default: no-op)."""

    def vfs_stat(self, rest):
        """Metadata for an object: a dict with at least 'size'."""
        raise NoSuchObject(f"warden {self.name!r} does not support stat on {rest!r}")

    def vfs_readdir(self, rest):
        """Names under ``rest`` (virtual-directory naming)."""
        raise NoSuchObject(f"warden {self.name!r} does not support readdir on {rest!r}")
