"""Wardens: type-specific system components (paper §3.2).

"A warden encapsulates the system-level support at a client necessary to
effectively manage a data type."  Wardens are subordinate to the viceroy,
communicate with their servers over logged RPC connections, cache data, and
expose fidelity levels through type-specific operations.

:class:`Warden` is the base class concrete wardens (video, web, speech,
bitstream) extend.  :class:`WardenCache` is a byte-accounted LRU cache used
by wardens that cache server data; its occupancy backs the disk-cache-space
resource monitor.
"""

from collections import OrderedDict

from repro import telemetry
from repro.connectivity.deferred import (
    DEFAULT_CAPACITY,
    DeferredOp,
    DeferredOpLog,
    ReplayReport,
)
from repro.connectivity.probe import HeartbeatProber
from repro.errors import (
    Disconnected,
    NoSuchObject,
    NoSuchOperation,
    OdysseyError,
    RpcError,
    RpcTimeout,
)
from repro.rpc.connection import RpcConnection

#: Histogram buckets (seconds) for the age of stale copies served in
#: degraded mode: seconds-old reconnection gaps up to hour-long outages.
STALENESS_BUCKETS = (1.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 3600.0)


class WardenCache:
    """A byte-accounted LRU cache of warden objects.

    Each entry remembers when it was stored (``clock`` is a zero-arg
    callable returning the current time; wardens pass the simulation
    clock), which is what degraded-service mode's per-entry staleness
    tracking reads through :meth:`age`.
    """

    def __init__(self, capacity_bytes, clock=None, name=None):
        if capacity_bytes <= 0:
            raise OdysseyError(f"cache capacity must be positive, got {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self.clock = clock or (lambda: 0.0)
        #: Label for telemetry series (the owning warden's name).
        self.name = name or "cache"
        self._entries = OrderedDict()  # key -> (value, nbytes, stored_at)
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    @property
    def hit_ratio(self):
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(self, key):
        """Return the cached value or None, updating recency and stats."""
        entry = self._entries.get(key)
        rec = telemetry.RECORDER
        if entry is None:
            self.misses += 1
            if rec.enabled:
                rec.count("warden.cache_misses", warden=self.name)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if rec.enabled:
            rec.count("warden.cache_hits", warden=self.name)
        return entry[0]

    def peek(self, key):
        """Return the cached value or None — no recency or stat mutation.

        The degraded-service probe: wardens consult the cache without
        committing to serving from it (and without polluting hit counters
        that tune adaptation decisions).
        """
        entry = self._entries.get(key)
        return None if entry is None else entry[0]

    def age(self, key):
        """Seconds since ``key`` was stored, or None if absent."""
        entry = self._entries.get(key)
        return None if entry is None else self.clock() - entry[2]

    def put(self, key, value, nbytes):
        """Insert ``value``; evicts LRU entries to stay within capacity.

        Objects larger than the whole cache are refused (returns False);
        non-positive sizes raise — a zero-byte entry would make occupancy
        accounting (and the disk-cache-space monitor riding on it) lie.
        """
        if nbytes <= 0:
            raise OdysseyError(f"cache entry size must be positive, got {nbytes!r}")
        if nbytes > self.capacity_bytes:
            return False
        if key in self._entries:
            self.discard(key)
        rec = telemetry.RECORDER
        while self.used_bytes + nbytes > self.capacity_bytes:
            old_key, (_, old_bytes, _) = self._entries.popitem(last=False)
            self.used_bytes -= old_bytes
            self.evictions += 1
            if rec.enabled:
                rec.count("warden.cache_evictions", warden=self.name)
        self._entries[key] = (value, nbytes, self.clock())
        self.used_bytes += nbytes
        return True

    def discard(self, key):
        """Remove ``key`` if present; returns True if something was removed."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.used_bytes -= entry[1]
        return True

    def discard_matching(self, predicate):
        """Remove all entries whose key satisfies ``predicate``; returns count.

        Used by the video warden, which discards prefetched low-quality
        frames when switching to a higher-fidelity track (paper §5.1).
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            self.discard(key)
        return len(doomed)

    def clear(self):
        self._entries.clear()
        self.used_bytes = 0


class Warden:
    """Base class for type-specific wardens.

    Subclasses:

    - set :attr:`TSOPS`, mapping opcode strings to method names; tsop
      methods are generators ``(app, rest, inbuf) -> outbuf``;
    - implement the ``vfs_*`` hooks they support;
    - describe their fidelity levels in :attr:`FIDELITIES`, a mapping of
      level name to a numeric fidelity in (0, 1] (strictly increasing with
      quality, as §6.1.2 requires).

    Wardens are statically linked with the viceroy in the paper; here they
    are registered with :meth:`Viceroy.mount` and share its address space
    trivially.
    """

    #: opcode -> method name for type-specific operations.
    TSOPS = {}
    #: fidelity level name -> numeric fidelity in (0, 1].
    FIDELITIES = {}

    #: tsop opcodes that mutate server state: queued to the deferred-op log
    #: while their connection is disconnected, replayed on reconnection.
    DEFERRABLE_TSOPS = frozenset()

    def __init__(self, sim, viceroy, name, cache_bytes=8 * 1024 * 1024,
                 max_staleness=None, deferred_capacity=DEFAULT_CAPACITY):
        self.sim = sim
        self.viceroy = viceroy
        self.name = name
        self.cache = WardenCache(cache_bytes, clock=lambda: sim.now, name=name)
        self.connections = []
        self.failovers = 0
        #: Staleness bound for degraded service, seconds (None = serve any
        #: cached copy, however old).
        self.max_staleness = max_staleness
        self.deferred = DeferredOpLog(deferred_capacity)
        self.reintegration_reports = []
        self.stale_served = 0
        self.disconnected_misses = 0
        self.staleness_served = []  # age (s) of each stale copy served
        self._probers = {}  # connection_id -> HeartbeatProber

    def __repr__(self):
        return f"<{self.__class__.__name__} {self.name!r}>"

    # -- connections ----------------------------------------------------------

    def open_connection(self, server_name, server_port, connection_id=None,
                        **rpc_kwargs):
        """Create a logged RPC connection and register it with the viceroy.

        Applications never contact servers directly (paper §4.1): all
        communication flows through warden connections, which is what makes
        centralized observation possible.
        """
        connection_id = connection_id or f"{self.name}:{len(self.connections)}"
        conn = RpcConnection(
            self.sim, self.viceroy.network, server_name, server_port,
            connection_id, **rpc_kwargs,
        )
        self.connections.append(conn)
        self.viceroy.register_connection(conn, warden=self)
        return conn

    def close_connection(self, conn, notify=True):
        """Tear ``conn`` down cleanly: viceroy first, then the socket.

        Unregisters from the viceroy (which drops or upcall-notifies any
        registrations riding on the connection), closes the endpoint, and
        forgets it.  ``notify`` is forwarded to
        :meth:`~repro.core.viceroy.Viceroy.unregister_connection`.
        """
        if conn not in self.connections:
            raise OdysseyError(f"warden {self.name!r} does not own {conn!r}")
        self._stop_heartbeat(conn)
        self.viceroy.unregister_connection(conn.connection_id, notify=notify)
        conn.close()
        self.connections.remove(conn)

    def failover_connection(self, conn, connection_id=None, notify=True):
        """Replace ``conn`` with a fresh connection to the same server.

        The failed connection is torn down exactly as in
        :meth:`close_connection`; the replacement takes its slot in
        :attr:`connections` (so :meth:`primary_connection` routing is
        preserved) and is registered with the viceroy under a new id.
        Returns the replacement connection.
        """
        index = self.connections.index(conn)  # raises if not ours
        prober = self._stop_heartbeat(conn)
        self.viceroy.unregister_connection(conn.connection_id, notify=notify)
        conn.close()
        self.failovers += 1
        connection_id = connection_id or f"{conn.connection_id}+f{self.failovers}"
        replacement = RpcConnection(
            self.sim, self.viceroy.network, conn.server_name, conn.server_port,
            connection_id, window_bytes=conn.window_bytes,
            fragment_bytes=conn.fragment_bytes, client_host=conn.client,
        )
        self.connections[index] = replacement
        self.viceroy.register_connection(replacement, warden=self)
        if prober is not None:  # the heartbeat follows the warden, not the socket
            self.start_heartbeat(replacement, interval=prober.interval,
                                 timeout=prober.timeout)
        return replacement

    # -- connectivity ---------------------------------------------------------

    def connectivity(self, conn):
        """The viceroy's connectivity tracker for ``conn`` (or None)."""
        return self.viceroy.connectivity(conn.connection_id)

    def start_heartbeat(self, conn, **probe_kwargs):
        """Attach a heartbeat prober to ``conn``; returns it.

        The prober feeds probe evidence into the viceroy's tracker for the
        connection — without one, a connection that stops carrying fetch
        traffic (because degraded mode keeps traffic off it) would never
        produce the success evidence that ends an outage.
        """
        tracker = self.connectivity(conn)
        if tracker is None:
            raise OdysseyError(
                f"connection {conn.connection_id!r} has no connectivity "
                "tracker; register it with the viceroy first"
            )
        if conn.connection_id in self._probers:
            raise OdysseyError(
                f"connection {conn.connection_id!r} already has a heartbeat"
            )
        prober = HeartbeatProber(self.sim, conn, tracker, **probe_kwargs)
        self._probers[conn.connection_id] = prober
        return prober

    def _stop_heartbeat(self, conn):
        prober = self._probers.pop(conn.connection_id, None)
        if prober is not None:
            prober.stop()
        return prober

    def primary_connection(self, rest=None):
        """The connection serving ``rest`` (default: the first one)."""
        if not self.connections:
            raise OdysseyError(f"warden {self.name!r} has no connections")
        return self.connections[0]

    # -- tsop dispatch -----------------------------------------------------------

    def tsop(self, app, rest, opcode, inbuf):
        """Dispatch a type-specific operation.  Generator.

        Mutating opcodes (listed in :attr:`DEFERRABLE_TSOPS`) issued while
        the object's connection is disconnected are queued to the
        deferred-op log instead of dispatched; the caller receives a
        ``{"deferred": True, "seq": ...}`` marker immediately and the op is
        replayed during reintegration.
        """
        method_name = self.TSOPS.get(opcode)
        if method_name is None:
            raise NoSuchOperation(
                f"warden {self.name!r} has no tsop {opcode!r}; "
                f"supported: {sorted(self.TSOPS)}"
            )
        if opcode in self.DEFERRABLE_TSOPS and self._should_defer(rest):
            op = self.deferred.append(DeferredOp(
                app=app, rest=rest, opcode=opcode, inbuf=inbuf,
                queued_at=self.sim.now,
                coalesce=self.coalesce_key(opcode, rest, inbuf),
            ))
            rec = telemetry.RECORDER
            if rec.enabled:
                rec.count("warden.deferred_ops", warden=self.name)
                rec.gauge("warden.deferred_depth", len(self.deferred),
                          warden=self.name)
                rec.event("warden.deferred", warden=self.name,
                          opcode=opcode, seq=op.seq,
                          depth=len(self.deferred))
            return {"deferred": True, "seq": op.seq, "opcode": opcode}
        method = getattr(self, method_name)
        result = yield from method(app, rest, inbuf)
        return result

    def coalesce_key(self, opcode, rest, inbuf):
        """Coalescing key for a deferrable op (None = never coalesce).

        Subclasses override for ops where only the latest value matters
        (e.g. the video warden's playback-position saves).
        """
        return None

    def _should_defer(self, rest):
        if not self.connections:
            return False
        # A non-empty log means earlier writes are still waiting to replay:
        # new writes queue behind them, or they would overtake the backlog
        # and invert the client's write order at the server.
        if self.deferred:
            return True
        tracker = self.connectivity(self.primary_connection(rest))
        return tracker is not None and tracker.offline

    # -- degraded service ------------------------------------------------------

    def resilient_fetch(self, conn, key, fetch_op):
        """Fetch through degraded-service mode.  Generator.

        ``fetch_op`` is a zero-arg callable returning a generator that
        performs the real network fetch and returns ``(value, nbytes)``.
        While the connection is healthy the fetch runs normally, feeds
        success/failure evidence to the connectivity tracker, and caches
        its result.  While DISCONNECTED (or RECONNECTING) the network is
        not touched: a cached copy within :attr:`max_staleness` is served
        (its age recorded in :attr:`staleness_served`), and a miss raises
        :class:`~repro.errors.Disconnected` instead of hanging in retries.
        A timeout on the healthy path falls back to the cache the same way,
        re-raising the timeout on a miss.
        """
        tracker = self.connectivity(conn)
        if tracker is not None and tracker.offline:
            return self._serve_degraded(key, cause=None)
        try:
            value, nbytes = yield from fetch_op()
        except RpcTimeout as cause:
            if tracker is not None:
                tracker.note_failure()
            return self._serve_degraded(key, cause=cause)
        if tracker is not None:
            tracker.note_success()
        self.cache.put(key, value, nbytes)
        return value

    def _serve_degraded(self, key, cause):
        """Serve ``key`` from cache under the staleness bound, or raise.

        ``cause`` is the triggering :class:`~repro.errors.RpcTimeout` when
        the network was actually tried (and is re-raised on a miss, keeping
        connected-path semantics); ``None`` means degraded mode skipped the
        network, where a miss is a typed ``Disconnected`` error.
        """
        value = self.cache.peek(key)
        if value is not None:
            age = self.cache.age(key)
            if self.max_staleness is None or age <= self.max_staleness:
                self.cache.get(key)  # commit: count the hit, refresh recency
                self.stale_served += 1
                self.staleness_served.append(age)
                rec = telemetry.RECORDER
                if rec.enabled:
                    rec.count("warden.stale_served", warden=self.name)
                    rec.observe("warden.staleness_seconds", age,
                                buckets=STALENESS_BUCKETS, warden=self.name)
                    rec.event("warden.stale_serve", warden=self.name,
                              key=str(key), age=age)
                return value
            if cause is None:
                raise Disconnected(
                    f"warden {self.name!r}: cached {key!r} is {age:.1f} s old, "
                    f"over the {self.max_staleness:.1f} s staleness bound",
                    key=key, age=age,
                )
        if cause is not None:
            raise cause
        self.disconnected_misses += 1
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("warden.disconnected_misses", warden=self.name)
        raise Disconnected(
            f"warden {self.name!r}: {key!r} not cached while disconnected",
            key=key,
        )

    # -- reintegration ---------------------------------------------------------

    def on_reconnect(self, conn):
        """Viceroy hook: ``conn`` recovered; replay the deferred-op log."""
        if self.deferred:
            self.sim.process(self._reintegrate(conn),
                             name=f"{self.name}.reintegrate")

    def _requeue_tail(self, ops):
        """Put unplayed ops back at the front of the log, with reports."""
        self.deferred.requeue(ops)
        rec = telemetry.RECORDER
        for op in ops:
            self.reintegration_reports.append(ReplayReport(
                op, "requeued", replayed_at=self.sim.now,
            ))
            if rec.enabled:
                rec.count("warden.reintegration", warden=self.name,
                          status="requeued")
        if rec.enabled:
            rec.gauge("warden.deferred_depth", len(self.deferred),
                      warden=self.name)

    def _reintegrate(self, conn):
        """Replay queued ops in enqueue order, recording each op's fate.

        Dispatches each op's method directly (not through :meth:`tsop`,
        whose deferral check would send the replay straight back into the
        log).  Ops deferred *during* replay — writers keep writing — are
        picked up by draining again until the log stays empty.  If the
        link dies again mid-replay, the unplayed tail is requeued at the
        front and replay stops; the next reconnection resumes it.

        A replay attempt that *times out* does not discard the write: the
        op (and the tail behind it) is requeued and retried on the next
        pass.  The timeout is also fed to the connectivity tracker, so a
        link that keeps flaking walks back to DISCONNECTED and ends the
        replay rather than spinning.  Only non-timeout errors — the op is
        malformed, the connection was torn down — report ``failed``.
        """
        while self.deferred:
            batch = self.deferred.drain()
            for position, op in enumerate(batch):
                tracker = self.connectivity(conn)
                if tracker is not None and tracker.offline:
                    self._requeue_tail(batch[position:])
                    return
                method = getattr(self, self.TSOPS[op.opcode])
                try:
                    result = yield from method(op.app, op.rest, op.inbuf)
                except RpcTimeout:
                    if tracker is not None:
                        tracker.note_failure()
                    self._requeue_tail(batch[position:])
                    if tracker is not None and tracker.offline:
                        return
                    break  # drain again and retry from this op
                except (RpcError, OdysseyError) as exc:
                    status, detail = "failed", exc
                else:
                    if tracker is not None:
                        tracker.note_success()
                    if isinstance(result, dict) and result.get("conflict"):
                        status = "conflict"
                    else:
                        status = "applied"
                    detail = result
                self.reintegration_reports.append(ReplayReport(
                    op, status, detail=detail, replayed_at=self.sim.now,
                ))
                rec = telemetry.RECORDER
                if rec.enabled:
                    rec.count("warden.reintegration", warden=self.name,
                              status=status)
                    rec.gauge("warden.deferred_depth", len(self.deferred),
                              warden=self.name)

    # -- vfs hooks (subclasses override what they support) ------------------------

    def vfs_open(self, app, rest, flags="r"):
        """Open an object; returns an opaque per-open handle object."""
        raise NoSuchObject(f"warden {self.name!r} does not support open on {rest!r}")

    def vfs_read(self, app, handle, nbytes):
        """Read from an open object.  Generator returning bytes-like or object."""
        raise NoSuchObject(f"warden {self.name!r} does not support read")
        yield  # pragma: no cover - makes this a generator

    def vfs_write(self, app, handle, data):
        """Write to an open object.  Generator."""
        raise NoSuchObject(f"warden {self.name!r} does not support write")
        yield  # pragma: no cover - makes this a generator

    def vfs_close(self, app, handle):
        """Close an open handle (default: no-op)."""

    def vfs_stat(self, rest):
        """Metadata for an object: a dict with at least 'size'."""
        raise NoSuchObject(f"warden {self.name!r} does not support stat on {rest!r}")

    def vfs_readdir(self, rest):
        """Names under ``rest`` (virtual-directory naming)."""
        raise NoSuchObject(f"warden {self.name!r} does not support readdir on {rest!r}")
