"""Dynamic function-vs-data shipping (paper §8).

"The speech application suggests the importance of being able to
dynamically decide whether to ship data or computation.  This capability is
currently provided in an ad hoc manner by the speech warden.  Extending
Odyssey to provide full support for deciding between dynamic function or
data shipping would enable us to more thoroughly explore this tradeoff."

This module is that extension: a placement engine any warden can use.  A
*plan* names one way to execute an operation — how many bytes move up and
down, and how much computation runs locally vs remotely.  The engine
predicts each plan's completion time from the viceroy's current bandwidth
and round-trip estimates, picks the fastest, and applies hysteresis so a
noisy estimate cannot flap placement decisions.
"""

from dataclasses import dataclass

from repro.errors import ReproError

#: A new plan must beat the incumbent by this fraction to displace it.
DEFAULT_HYSTERESIS = 0.10
#: Bandwidth assumed before any estimate exists (pessimistic mobile default).
DEFAULT_BANDWIDTH_GUESS = 32 * 1024
DEFAULT_ROUND_TRIP_GUESS = 0.021


@dataclass(frozen=True)
class Plan:
    """One placement of an operation's work.

    ``ship_bytes`` move over the mobile link before remote work starts;
    ``result_bytes`` come back after it.  Pure-local plans have zero bytes
    and zero remote seconds.
    """

    name: str
    local_seconds: float = 0.0
    remote_seconds: float = 0.0
    ship_bytes: int = 0
    result_bytes: int = 0

    def __post_init__(self):
        if self.local_seconds < 0 or self.remote_seconds < 0:
            raise ReproError(f"plan {self.name!r}: negative compute time")
        if self.ship_bytes < 0 or self.result_bytes < 0:
            raise ReproError(f"plan {self.name!r}: negative byte count")

    @property
    def uses_network(self):
        return self.ship_bytes > 0 or self.result_bytes > 0 \
            or self.remote_seconds > 0


class PlacementEngine:
    """Predicts plan completion times and chooses placements with hysteresis."""

    def __init__(self, viceroy=None, connection_id=None,
                 hysteresis=DEFAULT_HYSTERESIS):
        if hysteresis < 0:
            raise ReproError(f"hysteresis must be >= 0, got {hysteresis!r}")
        self.viceroy = viceroy
        self.connection_id = connection_id
        self.hysteresis = hysteresis
        self.decisions = []  # (plan name, predicted seconds, bandwidth)
        self._incumbent = None

    # -- estimates --------------------------------------------------------------

    def current_bandwidth(self):
        """Bytes/s from the viceroy, or the pessimistic default."""
        if self.viceroy is not None and self.connection_id is not None:
            level = self.viceroy.availability_for_connection(self.connection_id)
            if level:
                return level
        return DEFAULT_BANDWIDTH_GUESS

    def current_round_trip(self):
        if self.viceroy is not None and self.connection_id is not None:
            rtt = self.viceroy.policy.round_trip(self.connection_id)
            if rtt:
                return rtt
        return DEFAULT_ROUND_TRIP_GUESS

    # -- prediction ---------------------------------------------------------------

    def predict(self, plan, bandwidth=None, round_trip=None):
        """Predicted completion time of ``plan`` in seconds."""
        if not plan.uses_network:
            return plan.local_seconds
        bandwidth = bandwidth or self.current_bandwidth()
        round_trip = round_trip if round_trip is not None \
            else self.current_round_trip()
        transfer = (plan.ship_bytes + plan.result_bytes) / bandwidth
        return (plan.local_seconds + round_trip + transfer
                + plan.remote_seconds)

    def decide(self, plans, bandwidth=None):
        """The fastest plan, sticky to the incumbent within hysteresis.

        Returns the chosen :class:`Plan`.  The decision and its inputs are
        appended to :attr:`decisions` for inspection.
        """
        if not plans:
            raise ReproError("decide() needs at least one plan")
        bandwidth = bandwidth or self.current_bandwidth()
        predictions = {plan.name: self.predict(plan, bandwidth=bandwidth)
                       for plan in plans}
        best = min(plans, key=lambda plan: predictions[plan.name])
        chosen = best
        if self._incumbent is not None:
            incumbent = next((p for p in plans
                              if p.name == self._incumbent), None)
            if incumbent is not None and best.name != incumbent.name:
                # Only displace the incumbent for a clear win.
                if predictions[best.name] > \
                        predictions[incumbent.name] * (1 - self.hysteresis):
                    chosen = incumbent
        self._incumbent = chosen.name
        self.decisions.append(
            (chosen.name, predictions[chosen.name], bandwidth)
        )
        return chosen

    def reset(self):
        """Forget the incumbent (e.g. after a network technology switch)."""
        self._incumbent = None


def crossover_bandwidth(plan_a, plan_b, round_trip=DEFAULT_ROUND_TRIP_GUESS):
    """Bandwidth at which two plans' predicted times are equal.

    Returns ``math.inf`` when the byte-lighter plan is also compute-lighter
    (it wins at every bandwidth).  Analysis helper — e.g. the speech
    hybrid/remote crossover of Fig. 12's discussion.
    """
    import math

    bytes_a = plan_a.ship_bytes + plan_a.result_bytes
    bytes_b = plan_b.ship_bytes + plan_b.result_bytes
    compute_a = plan_a.local_seconds + plan_a.remote_seconds \
        + (round_trip if plan_a.uses_network else 0.0)
    compute_b = plan_b.local_seconds + plan_b.remote_seconds \
        + (round_trip if plan_b.uses_network else 0.0)
    byte_gap = bytes_a - bytes_b
    compute_gap = compute_b - compute_a
    if byte_gap == 0:
        return math.inf
    crossover = byte_gap / compute_gap if compute_gap != 0 else math.inf
    return crossover if crossover > 0 else math.inf
