"""Upcalls: Odyssey's notification mechanism (paper §4.3).

"Upcalls closely resemble Unix signals, but offer improved functionality.
Like signals, upcalls can be sent to one or more processes, can be blocked
or ignored, and have similar inheritance semantics on process fork.  Unlike
signals, upcalls offer exactly-once, in-order semantics for each receiver of
a particular upcall.  Further, upcalls allow parameters to be passed to
target processes and results to be returned."

The dispatcher keeps one FIFO per receiving application.  Deliveries are
asynchronous (a small fixed dispatch latency models the kernel-to-user
crossing) and strictly ordered per receiver.  Blocking a receiver queues
deliveries; ignoring a handler discards them.  ``fork`` copies handler
registrations to a child, mirroring signal-disposition inheritance.
"""

from collections import deque
from dataclasses import dataclass

from repro import telemetry
from repro.errors import OdysseyError

#: Simulated dispatch latency per upcall, seconds.
UPCALL_LATENCY = 0.0005

#: Histogram buckets (seconds) for queue-to-delivery latency.  The floor is
#: the dispatch latency itself; the tail covers deliveries held back by a
#: blocked receiver for whole simulated seconds.
UPCALL_DELIVERY_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.1, 1.0, 10.0)


@dataclass(frozen=True)
class Upcall:
    """Parameters delivered to a handler (paper Fig. 3d).

    ``level`` is the resource's availability at violation time — or ``None``
    when the registration was torn down with its connection (the viceroy can
    no longer say what is available; the application should re-register once
    its warden has a live connection again).
    """

    request_id: int
    resource: object
    level: float


class _Receiver:
    """Per-application delivery state."""

    def __init__(self, app):
        self.app = app
        self.handlers = {}
        self.ignored = set()
        self.blocked = False
        self.queue = deque()
        self.delivering = False
        self.delivered = []  # (time, handler_name, upcall) for inspection
        self.failed = []  # (time, handler_name, upcall, exception)
        self.latencies = []  # queue-to-delivery seconds, in delivery order


class UpcallDispatcher:
    """Exactly-once, in-order upcall delivery to registered applications."""

    def __init__(self, sim, latency=UPCALL_LATENCY, batch=False):
        self.sim = sim
        self.latency = latency
        #: With ``batch=True`` everything queued for a receiver when its
        #: dispatch timer fires is delivered in one callback (all at the
        #: same simulated instant, FIFO order preserved) instead of one
        #: scheduled event per upcall at ``latency`` intervals.  At fleet
        #: scale the per-delivery events dominate the kernel's event queue;
        #: batching trades per-upcall timing granularity for one event per
        #: burst.  Off by default — the fine-grained schedule is part of
        #: the golden event ordering of the single-client experiments.
        self.batch = batch
        self._receivers = {}
        #: Handler return values: (app, handler, result), in delivery order.
        self.results = []
        #: Handler exceptions: (app, handler, upcall, exception), in delivery
        #: order.  A throwing handler never stalls its receiver's FIFO; the
        #: failure is recorded here instead (senders poll this the way they
        #: poll :attr:`results`).
        self.failures = []

    def _receiver(self, app, create=False):
        receiver = self._receivers.get(app)
        if receiver is None:
            if not create:
                raise OdysseyError(f"unknown upcall receiver {app!r}")
            receiver = self._receivers[app] = _Receiver(app)
        return receiver

    # -- registration ----------------------------------------------------------

    def register(self, app, handler_name, fn):
        """Bind ``fn`` as ``app``'s handler named ``handler_name``.

        ``fn(upcall)`` is invoked at delivery; its return value is recorded
        (upcalls may return results to the sender's log).
        """
        receiver = self._receiver(app, create=True)
        receiver.handlers[handler_name] = fn
        receiver.ignored.discard(handler_name)

    def ignore(self, app, handler_name):
        """Discard future deliveries to ``handler_name`` (like SIG_IGN)."""
        self._receiver(app, create=True).ignored.add(handler_name)

    def block(self, app):
        """Queue deliveries to ``app`` until :meth:`unblock` (like sigprocmask)."""
        self._receiver(app, create=True).blocked = True

    def unblock(self, app):
        """Resume delivery, draining anything queued while blocked, in order."""
        receiver = self._receiver(app)
        receiver.blocked = False
        self._pump(receiver)

    def fork(self, parent, child):
        """Copy handler dispositions from ``parent`` to a new ``child``.

        Pending (queued) deliveries are *not* inherited, matching signal
        semantics: the child starts with an empty pending set.
        """
        source = self._receiver(parent)
        target = self._receiver(child, create=True)
        target.handlers = dict(source.handlers)
        target.ignored = set(source.ignored)
        target.blocked = source.blocked

    def has_receiver(self, app):
        """Whether ``app`` ever registered with this dispatcher."""
        return app in self._receivers

    def delivered_to(self, app):
        """Delivery records for ``app``: list of (time, handler, upcall)."""
        return list(self._receiver(app, create=True).delivered)

    def failures_for(self, app):
        """Handler failures for ``app``: (time, handler, upcall, exception)."""
        return list(self._receiver(app, create=True).failed)

    def delivery_latencies(self):
        """Queue-to-delivery seconds for every delivered upcall, grouped by
        receiver in registration order.  The fleet report distributes these
        without needing a live telemetry recorder."""
        return [latency for receiver in self._receivers.values()
                for latency in receiver.latencies]

    # -- sending ------------------------------------------------------------------

    def send(self, app, handler_name, upcall):
        """Queue ``upcall`` for ``app``'s ``handler_name``.

        Delivery happens after the dispatch latency, in FIFO order per
        receiver, exactly once.  Unknown receivers raise; unknown handler
        names raise at delivery time (the registration was validated when
        the request was made, so this indicates handler deregistration).
        """
        receiver = self._receiver(app)
        receiver.queue.append((handler_name, upcall, self.sim.now))
        rec = telemetry.RECORDER
        if rec.enabled:
            rec.count("upcalls.sent", app=app)
            rec.event("upcall.sent", app=app, handler=handler_name,
                      request_id=getattr(upcall, "request_id", None),
                      queued=len(receiver.queue))
        self._pump(receiver)

    def broadcast(self, apps, handler_name, upcall):
        """Send the same upcall to several receivers ("one or more processes")."""
        for app in apps:
            self.send(app, handler_name, upcall)

    # -- delivery machinery ----------------------------------------------------------

    def _pump(self, receiver):
        if receiver.delivering or receiver.blocked or not receiver.queue:
            return
        receiver.delivering = True
        if self.batch:
            self.sim.call_in(self.latency, self._deliver_batch, receiver)
        else:
            self.sim.call_in(self.latency, self._deliver_next, receiver)

    def _deliver_next(self, receiver):
        receiver.delivering = False
        if receiver.blocked or not receiver.queue:
            return
        try:
            self._deliver_one(receiver)
        finally:
            # Deliver the rest of the queue even when this delivery blew up —
            # exactly-once semantics cover the remaining entries too.
            self._pump(receiver)

    def _deliver_batch(self, receiver):
        """Deliver everything queued when the dispatch timer fires.

        The queue length is snapshotted before the first delivery, so
        upcalls queued *by the handlers themselves* wait for the next
        batch (they still see a fresh dispatch latency, as they would
        unbatched).  Blocking mid-batch stops delivery immediately.
        """
        receiver.delivering = False
        count = len(receiver.queue)
        try:
            for _ in range(count):
                if receiver.blocked or not receiver.queue:
                    break
                self._deliver_one(receiver)
        finally:
            self._pump(receiver)

    def _deliver_one(self, receiver):
        """Pop and deliver the receiver's oldest queued upcall (no re-pump)."""
        handler_name, upcall, enqueued_at = receiver.queue.popleft()
        if handler_name in receiver.ignored:
            return
        fn = receiver.handlers.get(handler_name)
        if fn is None:
            raise OdysseyError(
                f"app {receiver.app!r} has no upcall handler {handler_name!r}"
            )
        receiver.delivered.append((self.sim.now, handler_name, upcall))
        receiver.latencies.append(self.sim.now - enqueued_at)
        rec = telemetry.RECORDER
        if rec.enabled:
            latency = self.sim.now - enqueued_at
            rec.observe("upcalls.delivery_seconds", latency,
                        buckets=UPCALL_DELIVERY_BUCKETS,
                        app=receiver.app)
            rec.event("upcall.delivered", app=receiver.app,
                      handler=handler_name,
                      request_id=getattr(upcall, "request_id", None),
                      latency=latency)
        # "upcalls allow parameters to be passed to target processes
        # and results to be returned" (§4.3): keep the handler's
        # result for the sender's inspection.
        try:
            result = fn(upcall)
        except Exception as exc:  # noqa: BLE001 - a handler fault is the receiver's bug, not the queue's
            receiver.failed.append((self.sim.now, handler_name, upcall, exc))
            self.failures.append((receiver.app, handler_name, upcall, exc))
        else:
            self.results.append((receiver.app, handler_name, result))
