"""The per-application Odyssey API (paper Fig. 3).

One :class:`OdysseyAPI` instance per application process.  It bundles:

- ``request`` / ``cancel`` — resource negotiation, by path or descriptor;
- upcall handler registration (``on_upcall``);
- ``tsop`` — type-specific operations, by path or file descriptor;
- file operations on Odyssey objects (``open`` / ``read`` / ``write`` /
  ``close`` / ``stat`` / ``readdir``) routed through the interceptor.

The paper notes that ``request`` and ``tsop`` have variants identifying
objects by file descriptor rather than pathname; both variants exist here
(``request_fd``, ``tsop_fd``).
"""

import itertools

from repro.core.resources import Resource, ResourceDescriptor, Window
from repro.errors import OdysseyError


class OdysseyAPI:
    """System-call surface bound to one application."""

    def __init__(self, viceroy, app_name):
        self.viceroy = viceroy
        self.app = app_name
        self._fds = {}
        self._fd_counter = itertools.count(3)  # 0-2 taken, as tradition demands

    # -- resource negotiation ---------------------------------------------------

    def request(self, path, resource, lower, upper, handler="default"):
        """Register a window of tolerance on ``resource`` for ``path``.

        Returns a request id.  Raises
        :class:`~repro.errors.ToleranceError` (carrying the current level)
        if availability is already outside [lower, upper].
        """
        descriptor = ResourceDescriptor(
            resource=resource, window=Window(lower, upper), handler=handler
        )
        return self.viceroy.request(self.app, path, descriptor)

    def request_fd(self, fd, resource, lower, upper, handler="default"):
        """The file-descriptor variant of :meth:`request`."""
        return self.request(self._path_of(fd), resource, lower, upper, handler)

    def cancel(self, request_id):
        """Discard a registered request."""
        self.viceroy.cancel(request_id)

    def on_upcall(self, handler_name, fn):
        """Bind ``fn(upcall)`` as this application's named upcall handler."""
        self.viceroy.upcalls.register(self.app, handler_name, fn)

    def availability(self, path, resource=Resource.NETWORK_BANDWIDTH):
        """Convenience query of current availability for ``path``."""
        return self.viceroy.availability(resource, path=path)

    # -- type-specific operations -------------------------------------------------

    def tsop(self, path, opcode, inbuf=None):
        """Type-specific operation (generator; drive with ``yield from``)."""
        result = yield from self.viceroy.tsop(self.app, path, opcode, inbuf)
        return result

    def tsop_fd(self, fd, opcode, inbuf=None):
        """The file-descriptor variant of :meth:`tsop`."""
        result = yield from self.tsop(self._path_of(fd), opcode, inbuf)
        return result

    # -- file operations ------------------------------------------------------------

    def open(self, path, flags="r"):
        """Open an Odyssey object; returns a file descriptor (int)."""
        warden, handle = self.viceroy.vfs_open(self.app, path, flags)
        fd = next(self._fd_counter)
        self._fds[fd] = (path, warden, handle)
        return fd

    def read(self, fd, nbytes=None):
        """Read from an open descriptor (generator)."""
        _, warden, handle = self._entry(fd)
        result = yield from warden.vfs_read(self.app, handle, nbytes)
        return result

    def write(self, fd, data):
        """Write to an open descriptor (generator)."""
        _, warden, handle = self._entry(fd)
        result = yield from warden.vfs_write(self.app, handle, data)
        return result

    def close(self, fd):
        """Close a descriptor."""
        _, warden, handle = self._entry(fd)
        warden.vfs_close(self.app, handle)
        del self._fds[fd]

    def stat(self, path):
        """Object metadata (dict with at least 'size')."""
        return self.viceroy.vfs_stat(path)

    def readdir(self, path):
        """List names under an Odyssey directory."""
        return self.viceroy.vfs_readdir(path)

    # -- internals ---------------------------------------------------------------------

    def _entry(self, fd):
        entry = self._fds.get(fd)
        if entry is None:
            raise OdysseyError(f"bad file descriptor {fd!r}")
        return entry

    def _path_of(self, fd):
        return self._entry(fd)[0]
