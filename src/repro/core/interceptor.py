"""The in-kernel interceptor and the local file system it guards (§4.1).

Fig. 2 of the paper: "Operations on Odyssey objects are redirected to the
viceroy by a small in-kernel interceptor module.  All other system calls
are handled directly by NetBSD."  This module completes that picture: a
single system-call surface that routes each path-based operation either to
the viceroy (under ``/odyssey``) or to an ordinary local file system.

:class:`LocalFS` is a minimal in-memory Unix-like tree — enough for
applications that mix Odyssey objects with plain files (logs, preferences,
spooled speech utterances).  :class:`Interceptor` is the dispatcher.
"""

import posixpath

from repro.core.namespace import normalize
from repro.errors import NoSuchObject, OdysseyError


class LocalFS:
    """A tiny in-memory file system standing in for NetBSD's FFS.

    Supports the operations the interceptor needs to forward: open/read/
    write/close, stat, unlink, mkdir, readdir.  Directories are implicit
    for file creation but explicit entries may be made with mkdir.
    """

    def __init__(self):
        self._files = {}  # path -> bytes-like content (str is fine)
        self._dirs = {"/"}

    # -- files -------------------------------------------------------------

    def exists(self, path):
        path = normalize(path)
        return path in self._files or path in self._dirs

    def write_file(self, path, content):
        path = normalize(path)
        if path in self._dirs:
            raise OdysseyError(f"{path!r} is a directory")
        parent = posixpath.dirname(path)
        self._ensure_dir(parent)
        self._files[path] = content
        return len(content)

    def read_file(self, path):
        path = normalize(path)
        content = self._files.get(path)
        if content is None:
            raise NoSuchObject(f"no such file {path!r}")
        return content

    def append_file(self, path, content):
        path = normalize(path)
        existing = self._files.get(path, "")
        self._files[path] = existing + content
        self._ensure_dir(posixpath.dirname(path))
        return len(content)

    def unlink(self, path):
        path = normalize(path)
        if path not in self._files:
            raise NoSuchObject(f"no such file {path!r}")
        del self._files[path]

    def stat(self, path):
        path = normalize(path)
        if path in self._files:
            return {"size": len(self._files[path]), "type": "file"}
        if path in self._dirs:
            return {"size": 0, "type": "directory"}
        raise NoSuchObject(f"no such path {path!r}")

    # -- directories ---------------------------------------------------------

    def mkdir(self, path):
        path = normalize(path)
        if path in self._files:
            raise OdysseyError(f"{path!r} exists as a file")
        self._ensure_dir(path)

    def _ensure_dir(self, path):
        path = normalize(path) if path else "/"
        while path not in self._dirs:
            self._dirs.add(path)
            if path == "/":
                break
            path = posixpath.dirname(path)

    def readdir(self, path):
        path = normalize(path)
        if path not in self._dirs:
            raise NoSuchObject(f"no such directory {path!r}")
        prefix = path.rstrip("/") + "/"
        names = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)


class Interceptor:
    """Routes path operations to the viceroy or the local file system.

    The application-visible contract of Fig. 2: one ``open``/``stat``/
    ``readdir`` surface; paths under the Odyssey root reach wardens, all
    others the local FS.  Only the small Odyssey-path test lives "in the
    kernel" — everything else is delegation.
    """

    def __init__(self, api, localfs=None):
        self.api = api
        self.localfs = localfs or LocalFS()
        self.redirected = 0
        self.passed_through = 0

    def is_odyssey(self, path):
        return self.api.viceroy.namespace.is_odyssey_path(path)

    def open(self, path, flags="r"):
        """Open either kind of object.

        Returns ``("odyssey", fd)`` or ``("local", path)`` — local files
        need no descriptor state beyond the path in this in-memory FS.
        """
        if self.is_odyssey(path):
            self.redirected += 1
            return ("odyssey", self.api.open(path, flags))
        self.passed_through += 1
        if flags == "r" and not self.localfs.exists(path):
            raise NoSuchObject(f"no such file {path!r}")
        return ("local", normalize(path))

    def read(self, handle, nbytes=None):
        """Read from an opened handle.  Generator (local reads are instant
        but keep the same calling convention)."""
        kind, ref = handle
        if kind == "odyssey":
            result = yield from self.api.read(ref, nbytes)
            return result
        content = self.localfs.read_file(ref)
        return content if nbytes is None else content[:nbytes]

    def write(self, handle, data):
        """Write through an opened handle.  Generator."""
        kind, ref = handle
        if kind == "odyssey":
            result = yield from self.api.write(ref, data)
            return result
        return self.localfs.write_file(ref, data)

    def close(self, handle):
        kind, ref = handle
        if kind == "odyssey":
            self.api.close(ref)

    def stat(self, path):
        if self.is_odyssey(path):
            self.redirected += 1
            return self.api.stat(path)
        self.passed_through += 1
        return self.localfs.stat(path)

    def readdir(self, path):
        if self.is_odyssey(path):
            self.redirected += 1
            return self.api.readdir(path)
        self.passed_through += 1
        return self.localfs.readdir(path)
