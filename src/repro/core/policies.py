"""Resource-management policies: Odyssey and the §6.2.3 baselines.

A policy answers one question for the viceroy: *how much network bandwidth
is available to a given connection right now?*  Three answers are compared
in the paper's Fig. 14 experiment:

- :class:`OdysseyPolicy` — centralized estimation: every log feeds a shared
  total, split into competed-for and fair-share parts per connection.
- :class:`LaissezFairePolicy` — "each log is examined in isolation.  This
  reflects what applications would discover on their own: information is
  less accurate than that globally obtained but with similar delays."  Each
  connection believes its own measured throughput is what it can get.
- :class:`BlindOptimismPolicy` — "the networking layer ... immediately
  notifying applications when switching between networking technologies":
  the theoretical link bandwidth arrives with zero delay at every trace
  transition, but ignores the impact of other applications entirely.
"""

from repro.errors import ReproError
from repro.estimation.bandwidth import ConnectionEstimator
from repro.estimation.share import ClientShares


class Policy:
    """Interface: availability computation fed by log observations."""

    name = "abstract"

    def attach(self, viceroy):
        """Called once when the viceroy adopts this policy."""
        self.viceroy = viceroy

    def register_connection(self, conn):
        raise NotImplementedError

    def unregister_connection(self, connection_id):
        raise NotImplementedError

    def on_round_trip(self, log, entry):
        raise NotImplementedError

    def on_throughput(self, log, entry):
        raise NotImplementedError

    def availability(self, connection_id):
        """Estimated bandwidth available to ``connection_id`` (bytes/s) or None."""
        raise NotImplementedError

    def total(self):
        """Estimated total client bandwidth (bytes/s) or None."""
        raise NotImplementedError

    def round_trip(self, connection_id):
        """Smoothed round-trip seconds for a connection (0.0 until known)."""
        raise NotImplementedError


class OdysseyPolicy(Policy):
    """Centralized resource management (the paper's contribution)."""

    name = "odyssey"

    def __init__(self, **share_kwargs):
        self._share_kwargs = share_kwargs
        self.shares = None

    def attach(self, viceroy):
        super().attach(viceroy)
        self.shares = ClientShares(viceroy.sim, **self._share_kwargs)

    def register_connection(self, conn):
        self.shares.register(conn.log)

    def unregister_connection(self, connection_id):
        self.shares.unregister(connection_id)

    def on_round_trip(self, log, entry):
        self.shares.on_round_trip(log, entry)

    def on_throughput(self, log, entry):
        self.shares.on_throughput(log, entry)

    def availability(self, connection_id):
        return self.shares.availability(connection_id)

    def total(self):
        return self.shares.total

    def round_trip(self, connection_id):
        return self.shares.estimator(connection_id).round_trip


class LaissezFairePolicy(Policy):
    """Uncoordinated estimation: every connection sees only its own log."""

    name = "laissez-faire"

    def __init__(self):
        self._estimators = {}

    def register_connection(self, conn):
        if conn.connection_id in self._estimators:
            raise ReproError(f"connection {conn.connection_id!r} already registered")
        # The naive per-log estimate, without the centralized viceroy's
        # defenses: queueing-polluted smoothed round trips, and each window
        # measured in isolation — "information is less accurate than that
        # globally obtained but with similar delays" (§6.2.3).
        self._estimators[conn.connection_id] = ConnectionEstimator(
            self.viceroy.sim, conn.connection_id, eq2_rtt="smoothed",
            aggregate_own_log=False,
        )

    def unregister_connection(self, connection_id):
        self._estimators.pop(connection_id, None)

    def on_round_trip(self, log, entry):
        self._estimators[log.connection_id].on_round_trip(log, entry)

    def on_throughput(self, log, entry):
        self._estimators[log.connection_id].on_throughput(log, entry)

    def availability(self, connection_id):
        return self._estimators[connection_id].bandwidth

    def total(self):
        estimates = [e.bandwidth for e in self._estimators.values()
                     if e.bandwidth is not None]
        return max(estimates) if estimates else None

    def round_trip(self, connection_id):
        return self._estimators[connection_id].round_trip


class BlindOptimismPolicy(Policy):
    """Theoretical bandwidth, delivered instantly, blind to competition.

    The trace is known to the networking layer; at every transition the new
    theoretical bandwidth is pushed to the viceroy ("via an upcall"), which
    then re-checks all registered windows.  Round-trip estimation still
    runs per connection, since Eq. 2-style corrections are not the point of
    this baseline.
    """

    name = "blind-optimism"

    def __init__(self, trace):
        self.trace = trace
        self._level = trace.bandwidth_at(0.0)
        self._estimators = {}

    def attach(self, viceroy):
        super().attach(viceroy)
        for when in self.trace.transitions:
            viceroy.sim.call_at(when, self._on_transition, when)

    def _on_transition(self, when):
        self._level = self.trace.bandwidth_at(when)
        self.viceroy.recheck_bandwidth()

    def register_connection(self, conn):
        self._estimators[conn.connection_id] = ConnectionEstimator(
            self.viceroy.sim, conn.connection_id
        )

    def unregister_connection(self, connection_id):
        self._estimators.pop(connection_id, None)

    def on_round_trip(self, log, entry):
        self._estimators[log.connection_id].on_round_trip(log, entry)

    def on_throughput(self, log, entry):
        """Measurements are ignored — this baseline trusts the hardware."""

    def availability(self, connection_id):
        return self._level

    def total(self):
        return self._level

    def round_trip(self, connection_id):
        return self._estimators[connection_id].round_trip
